// Tiny CLI around the instance file format: read an instance, solve one of
// the bi-criteria problems, print (and optionally verify) the mapping.
//
//   $ ./instance_tool write-demo demo.txt        # emit a sample instance
//   $ ./instance_tool min-fp demo.txt 22         # min FP s.t. latency <= 22
//   $ ./instance_tool min-latency demo.txt 0.25  # min latency s.t. FP <= 0.25
//   $ ./instance_tool eval demo.txt "[0..0]->{0} [1..1]->{1,2}"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "relap/algorithms/solve.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/io/instance_format.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/mapping/reliability.hpp"
#include "relap/mapping/validate.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: instance_tool write-demo <file>\n"
               "       instance_tool min-fp <file> <latency-threshold>\n"
               "       instance_tool min-latency <file> <fp-threshold>\n"
               "       instance_tool eval <file> <mapping>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace relap;
  if (argc < 3) return usage();
  const char* command = argv[1];
  const std::string path = argv[2];

  if (std::strcmp(command, "write-demo") == 0) {
    const io::Instance demo{gen::fig5_pipeline(), gen::fig5_platform()};
    const auto saved = io::save_instance(demo, path);
    if (!saved) {
      std::fprintf(stderr, "error: %s\n", saved.error().to_string().c_str());
      return 1;
    }
    std::printf("wrote the paper's Figure 5 instance to %s\n", path.c_str());
    return 0;
  }

  const auto instance = io::load_instance(path);
  if (!instance) {
    std::fprintf(stderr, "error: %s\n", instance.error().to_string().c_str());
    return 1;
  }
  std::printf("loaded %s\n  %s\n  %s\n", path.c_str(),
              instance->pipeline.describe().c_str(), instance->platform.describe().c_str());

  if (std::strcmp(command, "eval") == 0) {
    if (argc < 4) return usage();
    const auto mapping = io::parse_mapping(argv[3]);
    if (!mapping) {
      std::fprintf(stderr, "error: %s\n", mapping.error().to_string().c_str());
      return 1;
    }
    const auto valid = mapping::validate(instance->pipeline, instance->platform, *mapping);
    if (!valid) {
      std::fprintf(stderr, "invalid mapping: %s\n", valid.error().to_string().c_str());
      return 1;
    }
    std::printf("mapping %s\n  latency %.6f\n  failure probability %.6f\n",
                mapping->describe().c_str(),
                mapping::latency(instance->pipeline, instance->platform, *mapping),
                mapping::failure_probability(instance->platform, *mapping));
    return 0;
  }

  if (argc < 4) return usage();
  const double threshold = std::strtod(argv[3], nullptr);
  const bool min_fp = std::strcmp(command, "min-fp") == 0;
  if (!min_fp && std::strcmp(command, "min-latency") != 0) return usage();

  const auto solved =
      min_fp ? algorithms::solve_min_fp_for_latency(instance->pipeline, instance->platform,
                                                    threshold)
             : algorithms::solve_min_latency_for_fp(instance->pipeline, instance->platform,
                                                    threshold);
  if (!solved) {
    std::fprintf(stderr, "no solution: %s\n", solved.error().to_string().c_str());
    return 1;
  }
  std::printf("%s (via %s%s)\n  mapping %s\n  latency %.6f\n  failure probability %.6f\n",
              min_fp ? "minimized failure probability" : "minimized latency",
              solved->algorithm.c_str(), solved->exact ? ", certified optimal" : "",
              solved->solution.mapping.describe().c_str(), solved->solution.latency,
              solved->solution.failure_probability);
  return 0;
}
