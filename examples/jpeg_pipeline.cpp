// JPEG-encoder scenario (the paper's motivating application class and the
// companion report [3]'s case study): map a 7-stage JPEG-like pipeline onto
// a heterogeneous workstation cluster and print the latency/reliability
// trade-off table a deployment engineer would read.
//
//   $ ./jpeg_pipeline [seed]

#include <cstdio>
#include <cstdlib>

#include "relap/algorithms/pareto_driver.hpp"
#include "relap/algorithms/solve.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/mapping/throughput.hpp"

int main(int argc, char** argv) {
  using namespace relap;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2008;

  // The application: color transform, subsample, block split, DCT,
  // quantize, zigzag/RLE, entropy coding.
  const pipeline::Pipeline pipe = gen::jpeg_like_pipeline();
  static const char* kStageNames[] = {"rgb->ycbcr", "subsample", "blocksplit", "dct",
                                      "quantize",   "zigzag",    "entropy"};
  std::printf("JPEG-like pipeline (7 stages):\n");
  for (std::size_t k = 0; k < pipe.stage_count(); ++k) {
    std::printf("  %-10s  work %6.1f  in %5.1f  out %5.1f\n", kStageNames[k], pipe.work(k),
                pipe.input_size(k), pipe.output_size(k));
  }

  // The platform: 10 workstations, heterogeneous speeds and failure rates,
  // one switched LAN (identical links) — the Communication Homogeneous /
  // Failure Heterogeneous class whose complexity the paper leaves open.
  gen::PlatformGenOptions options;
  options.processors = 10;
  options.speed_min = 2.0;
  options.speed_max = 30.0;
  options.fp_min = 0.02;
  options.fp_max = 0.4;
  const platform::Platform plat = gen::random_comm_hom_het_failures(options, seed);
  std::printf("\ncluster: %s\n", plat.describe().c_str());

  // Sweep the latency budget and report the best reachable reliability.
  const auto front = algorithms::heuristic_pareto_front(pipe, plat);
  std::printf("\n%-12s %-14s %-12s %-10s  mapping\n", "latency<=", "failure prob",
              "reliability", "period");
  for (const auto& point : front) {
    std::printf("%-12.3f %-14.6f %-12.6f %-10.3f  %s\n", point.latency,
                point.failure_probability, 1.0 - point.failure_probability,
                mapping::period(pipe, plat, point.mapping),
                point.mapping.describe().c_str());
  }

  // A concrete deployment question: "we need five-nines per job batch and
  // can tolerate 3x the best possible latency — what do we run?"
  const double budget = 3.0 * mapping::latency_lower_bound(pipe, plat);
  const auto solved = algorithms::solve_min_fp_for_latency(pipe, plat, budget);
  if (solved) {
    std::printf("\nunder budget %.3f: %s\n  -> latency %.3f, FP %.6f [%s]\n", budget,
                solved->solution.mapping.describe().c_str(), solved->solution.latency,
                solved->solution.failure_probability, solved->algorithm.c_str());
  } else {
    std::printf("\nunder budget %.3f: %s\n", budget, solved.error().to_string().c_str());
  }
  return 0;
}
