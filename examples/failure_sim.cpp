// Failure-injection simulation of a chosen mapping: empirical vs analytic
// failure probability, latency distribution under random mid-run failures,
// and the worst-case adversarial schedule reproducing Eq. (1)/(2).
//
//   $ ./failure_sim [trials] [seed]

#include <cstdio>
#include <cstdlib>

#include "relap/gen/paper_instances.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/mapping/reliability.hpp"
#include "relap/sim/engine.hpp"
#include "relap/sim/monte_carlo.hpp"

int main(int argc, char** argv) {
  using namespace relap;
  const std::size_t trials = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  const pipeline::Pipeline pipe = gen::fig5_pipeline();
  const platform::Platform plat = gen::fig5_platform();
  const mapping::IntervalMapping m = gen::fig5_two_interval_mapping();

  std::printf("mapping under test: %s\n", m.describe().c_str());
  std::printf("analytic: latency (worst case) %.3f, FP %.6f\n\n",
              mapping::latency(pipe, plat, m), mapping::failure_probability(plat, m));

  // 1. A failure-free run with a full operation trace.
  sim::Trace trace;
  sim::SimOptions options;
  options.trace = &trace;
  const auto free_run =
      sim::simulate(pipe, plat, m, sim::FailureScenario::none(plat.processor_count()), options);
  std::printf("failure-free run: latency %.3f\n--- trace ---\n%s\n",
              free_run.datasets[0].latency(), trace.describe().c_str());

  // 2. The adversarial worst case the paper's formulas describe.
  const auto worst = sim::FailureScenario::worst_case(pipe, plat, m);
  sim::SimOptions worst_options;
  worst_options.send_order = sim::SendOrder::WorstCaseLast;
  const auto worst_run = sim::simulate(pipe, plat, m, worst, worst_options);
  std::printf("adversarial worst case: latency %.3f (Eq. 1 predicts %.3f)\n\n",
              worst_run.datasets[0].latency(), mapping::latency(pipe, plat, m));

  // 3. Monte Carlo: empirical failure frequency vs the product formula.
  sim::MonteCarloOptions mc;
  mc.trials = trials;
  mc.seed = seed;
  const auto direct = sim::estimate_failure_rate(plat, m, mc);
  std::printf("Monte Carlo (%zu trials, direct): empirical FP %.6f vs analytic %.6f "
              "(95%% CI +/- %.6f) -> %s\n",
              trials, direct.empirical, direct.analytic, direct.ci95_half_width,
              direct.consistent(0.01) ? "consistent" : "INCONSISTENT");

  // 4. Full-engine trials: failures land mid-run, latency spreads out.
  sim::TrialOptions engine_trials;
  engine_trials.trials = std::min<std::size_t>(trials, 5'000);
  engine_trials.seed = seed;
  const auto stats = sim::run_trials(pipe, plat, m, engine_trials);
  std::printf("engine trials (%zu): run-failure rate %.6f; surviving-run latency "
              "mean %.3f, max %.3f (failure-free %.3f)\n",
              engine_trials.trials, stats.failure.empirical, stats.latency.mean(),
              stats.latency.max(), stats.failure_free_latency);
  return 0;
}
