// Quickstart: build a pipeline and a platform, pick thresholds, solve both
// bi-criteria directions with the automatic facade, inspect the result.
//
//   $ ./quickstart
//
// This walks the paper's Figure 5 instance because it tells the whole story
// in eleven processors: a latency budget, a reliability target, and an
// optimal mapping that needs both interval splitting and replication.

#include <cstdio>

#include "relap/algorithms/solve.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/mapping/reliability.hpp"

int main() {
  using namespace relap;

  // 1. The application: a 2-stage pipeline. Stage 0 is cheap (w=1), stage 1
  //    is heavy (w=100); delta = [10, 1, 0] are the data sizes flowing in,
  //    between and out.
  const pipeline::Pipeline pipe = gen::fig5_pipeline();
  std::printf("application: %s\n", pipe.describe().c_str());

  // 2. The platform: one slow reliable processor and ten fast flaky ones,
  //    identical unit-bandwidth links.
  const platform::Platform plat = gen::fig5_platform();
  std::printf("platform:    %s\n\n", plat.describe().c_str());

  // 3. Minimize the failure probability subject to a latency budget.
  const double latency_budget = gen::fig5_latency_threshold();  // 22 time-units
  algorithms::SolveOptions options;
  options.exhaustive.max_evaluations = 10'000'000;
  const auto min_fp = algorithms::solve_min_fp_for_latency(pipe, plat, latency_budget, options);
  if (!min_fp) {
    std::printf("min-FP solve failed: %s\n", min_fp.error().to_string().c_str());
    return 1;
  }
  std::printf("minimize FP s.t. latency <= %.0f  [%s%s]\n", latency_budget,
              min_fp->algorithm.c_str(), min_fp->exact ? ", certified optimal" : "");
  std::printf("  mapping: %s\n", min_fp->solution.mapping.describe().c_str());
  std::printf("  latency = %.2f   failure probability = %.4f\n\n", min_fp->solution.latency,
              min_fp->solution.failure_probability);

  // 4. The other direction: minimize latency subject to a reliability target.
  const double fp_target = 0.25;
  const auto min_lat = algorithms::solve_min_latency_for_fp(pipe, plat, fp_target, options);
  if (!min_lat) {
    std::printf("min-latency solve failed: %s\n", min_lat.error().to_string().c_str());
    return 1;
  }
  std::printf("minimize latency s.t. FP <= %.2f  [%s%s]\n", fp_target,
              min_lat->algorithm.c_str(), min_lat->exact ? ", certified optimal" : "");
  std::printf("  mapping: %s\n", min_lat->solution.mapping.describe().c_str());
  std::printf("  latency = %.2f   failure probability = %.4f\n\n", min_lat->solution.latency,
              min_lat->solution.failure_probability);

  // 5. Every mapping can be re-evaluated directly with the cost model.
  const auto& m = min_fp->solution.mapping;
  std::printf("re-evaluated: latency %.2f (Eq. 1), FP %.4f (product formula)\n",
              mapping::latency(pipe, plat, m), mapping::failure_probability(plat, m));
  return 0;
}
