// The relap serving front: a long-lived broker process speaking the
// newline-delimited line protocol of service/server.hpp over stdin/stdout
// (default) or a loopback TCP socket.
//
//   $ ./relap_serve [--stdio] [--port N] [--snapshot PATH] [--journal PATH]
//                   [--journal-fsync-every N] [--snapshot-interval-s N]
//                   [--cache-entries N] [--max-stages N] [--max-processors N]
//                   [--max-connections N] [--read-timeout-ms N]
//                   [--write-timeout-ms N] [--queue-high-watermark N]
//                   [--queue-low-watermark N] [--degrade]
//
//   --stdio            serve one session over stdin/stdout (default)
//   --port N           serve loopback TCP on port N instead (0 = ephemeral;
//                      the chosen port is printed to stderr)
//   --snapshot PATH    warm-start the memo cache from PATH if it exists, and
//                      save the cache back to PATH on clean exit
//   --journal PATH     write-ahead journal: every cache-miss solve appends a
//                      checksummed record; on startup the journal is replayed
//                      on top of the snapshot (torn tail truncated), so a
//                      kill -9 loses at most the unsynced group-commit suffix
//   --journal-fsync-every N  group-commit interval: fsync the journal every
//                            N records (default 1 = every record; 0 = never)
//   --snapshot-interval-s N  autosave the snapshot (and compact the journal)
//                            every N seconds while serving (0 = only on exit)
//   --cache-entries N  memo-cache capacity (entries)
//   --max-stages N     admission cap on pipeline stages
//   --max-processors N admission cap on platform processors
//   --max-connections N    concurrent TCP connection cap (extra connections
//                          get `err overloaded` and are closed)
//   --read-timeout-ms N    reap TCP connections idle this long (0 = never)
//   --write-timeout-ms N   give up on peers not draining responses (0 = off)
//   --queue-high-watermark N  shed lowest-priority queued work past this
//                             many pending tickets (`err overloaded`)
//   --queue-low-watermark N   shed down to this many (default: half of high)
//   --degrade          answer deadline-cancelled solves with the fast
//                      heuristic front (degraded=1, exact=0) instead of
//                      `err deadline-exceeded`
//
// In TCP mode SIGTERM/SIGINT trigger a graceful drain: the server stops
// accepting, live connections get `err shutting-down` on their next line,
// in-flight work finishes, and the snapshot (if configured) is saved before
// exit — so an orchestrator's stop signal never tears a snapshot or drops
// an accepted request silently.
//
// On exit the full metrics JSON is printed to stderr, so scripted sessions
// (CI drives one end-to-end) can assert on the counters without mixing
// diagnostics into the protocol stream on stdout.

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "relap/service/broker.hpp"
#include "relap/service/server.hpp"
#include "relap/util/strings.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--stdio] [--port N] [--snapshot PATH] [--journal PATH]\n"
               "          [--journal-fsync-every N] [--snapshot-interval-s N]\n"
               "          [--cache-entries N] [--max-stages N] [--max-processors N]\n"
               "          [--max-connections N] [--read-timeout-ms N] [--write-timeout-ms N]\n"
               "          [--queue-high-watermark N] [--queue-low-watermark N] [--degrade]\n",
               argv0);
  return 2;
}

// Signal handlers may only touch async-signal-safe state: request_stop() is
// an atomic store plus shutdown(2) on the listener. The broker's own drain
// (which takes a mutex) happens on the main thread once serve() returns.
relap::service::TcpServer* g_server = nullptr;

void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace relap;

  bool use_tcp = false;
  std::size_t port = 0;
  std::string snapshot_path;
  std::string journal_path;
  service::JournalOptions journal_options;
  std::size_t snapshot_interval_s = 0;
  service::BrokerOptions options;
  service::ServerOptions server_options;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next_size = [&]() -> std::optional<std::size_t> {
      if (i + 1 >= argc) return std::nullopt;
      return util::parse_size(argv[++i]);
    };
    if (arg == "--stdio") {
      use_tcp = false;
    } else if (arg == "--port") {
      const std::optional<std::size_t> value = next_size();
      if (!value || *value > 65535) return usage(argv[0]);
      use_tcp = true;
      port = *value;
    } else if (arg == "--snapshot") {
      if (i + 1 >= argc) return usage(argv[0]);
      snapshot_path = argv[++i];
    } else if (arg == "--journal") {
      if (i + 1 >= argc) return usage(argv[0]);
      journal_path = argv[++i];
    } else if (arg == "--journal-fsync-every") {
      const std::optional<std::size_t> value = next_size();
      if (!value) return usage(argv[0]);
      journal_options.fsync_every = *value;
    } else if (arg == "--snapshot-interval-s") {
      const std::optional<std::size_t> value = next_size();
      if (!value || *value > 86'400) return usage(argv[0]);
      snapshot_interval_s = *value;
    } else if (arg == "--cache-entries") {
      const std::optional<std::size_t> value = next_size();
      if (!value || *value == 0) return usage(argv[0]);
      options.cache.capacity = *value;
    } else if (arg == "--max-stages") {
      const std::optional<std::size_t> value = next_size();
      if (!value || *value == 0) return usage(argv[0]);
      options.max_stages = *value;
    } else if (arg == "--max-processors") {
      const std::optional<std::size_t> value = next_size();
      if (!value || *value == 0) return usage(argv[0]);
      options.max_processors = *value;
    } else if (arg == "--max-connections") {
      const std::optional<std::size_t> value = next_size();
      if (!value || *value == 0) return usage(argv[0]);
      server_options.max_connections = *value;
    } else if (arg == "--read-timeout-ms") {
      const std::optional<std::size_t> value = next_size();
      if (!value || *value > 86'400'000) return usage(argv[0]);
      server_options.read_timeout_ms = static_cast<int>(*value);
    } else if (arg == "--write-timeout-ms") {
      const std::optional<std::size_t> value = next_size();
      if (!value || *value > 86'400'000) return usage(argv[0]);
      server_options.write_timeout_ms = static_cast<int>(*value);
    } else if (arg == "--queue-high-watermark") {
      const std::optional<std::size_t> value = next_size();
      if (!value) return usage(argv[0]);
      options.queue_high_watermark = *value;
    } else if (arg == "--queue-low-watermark") {
      const std::optional<std::size_t> value = next_size();
      if (!value) return usage(argv[0]);
      options.queue_low_watermark = *value;
    } else if (arg == "--degrade") {
      options.degrade_on_deadline = true;
    } else {
      return usage(argv[0]);
    }
  }

  service::Broker broker(options);

  if (!snapshot_path.empty() || !journal_path.empty()) {
    // Startup recovery: snapshot (if present) + journal replay. A rejected
    // snapshot or a corrupt journal is a real problem: refusing to run
    // beats silently serving cold and overwriting the evidence on exit.
    const auto recovered = broker.recover(snapshot_path, journal_path, journal_options);
    if (!recovered.has_value()) {
      std::fprintf(stderr, "relap_serve: recovery failed: %s\n",
                   recovered.error().to_string().c_str());
      return 1;
    }
    if (recovered->snapshot_loaded || recovered->journal_records > 0) {
      std::fprintf(stderr,
                   "relap_serve: warm start: %zu snapshot entries + %llu journal records "
                   "(%llu torn discarded) in %.3fs\n",
                   recovered->snapshot_entries,
                   static_cast<unsigned long long>(recovered->journal_records),
                   static_cast<unsigned long long>(recovered->torn_records),
                   recovered->seconds);
    } else {
      std::fprintf(stderr, "relap_serve: cold start (nothing to recover)\n");
    }
  }

  // Periodic autosave: snapshot + journal compaction on a timer, so a crash
  // replays a short journal instead of the whole uptime's worth of solves.
  std::thread autosave;
  std::mutex autosave_mutex;
  std::condition_variable autosave_cv;
  bool autosave_stop = false;
  if (snapshot_interval_s > 0 && !snapshot_path.empty()) {
    autosave = std::thread([&] {
      std::unique_lock<std::mutex> lock(autosave_mutex);
      while (!autosave_cv.wait_for(lock, std::chrono::seconds(snapshot_interval_s),
                                   [&] { return autosave_stop; })) {
        lock.unlock();
        const auto saved = broker.save_snapshot(snapshot_path);
        if (saved.has_value()) {
          std::fprintf(stderr, "relap_serve: autosaved %zu entries to %s\n", saved->entries,
                       snapshot_path.c_str());
        } else {
          std::fprintf(stderr, "relap_serve: autosave failed: %s\n",
                       saved.error().to_string().c_str());
        }
        lock.lock();
      }
    });
  }

  if (use_tcp) {
    auto server = service::TcpServer::bind_localhost(static_cast<std::uint16_t>(port));
    if (!server.has_value()) {
      std::fprintf(stderr, "relap_serve: %s\n", server.error().to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "relap_serve: listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server->port()));
    g_server = &server.value();
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGINT, handle_stop_signal);
    const std::size_t sessions = server.value().serve(broker, server_options);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    g_server = nullptr;
    // Graceful drain: refuse any further broker work before the snapshot is
    // saved (connection threads have already been joined by serve()).
    broker.begin_shutdown();
    std::fprintf(stderr, "relap_serve: served %zu session(s)\n", sessions);
  } else {
    (void)service::serve_stream(broker, std::cin, std::cout);
  }

  if (autosave.joinable()) {
    {
      std::lock_guard<std::mutex> lock(autosave_mutex);
      autosave_stop = true;
    }
    autosave_cv.notify_all();
    autosave.join();
  }

  if (!snapshot_path.empty()) {
    const auto saved = broker.save_snapshot(snapshot_path);
    if (saved.has_value()) {
      std::fprintf(stderr, "relap_serve: saved %zu entries (%zu bytes) to %s\n", saved->entries,
                   saved->bytes, snapshot_path.c_str());
    } else {
      std::fprintf(stderr, "relap_serve: snapshot save failed: %s\n",
                   saved.error().to_string().c_str());
      return 1;
    }
  } else if (!journal_path.empty()) {
    // No snapshot to compact into: make the journal tail durable instead.
    const auto synced = broker.sync_journal();
    if (!synced.has_value()) {
      std::fprintf(stderr, "relap_serve: journal sync failed: %s\n",
                   synced.error().to_string().c_str());
    }
  }

  std::fprintf(stderr, "%s\n", broker.metrics_json().c_str());
  return 0;
}
