// Grid-broker scenario: a large Fully Heterogeneous "grid" of unreliable
// nodes (the large-scale-platform setting of the paper's Section 5
// motivation). Compares the heuristic suite's front against the best single
// interval and prints what each extra latency budget buys in reliability.
//
//   $ ./grid_broker [processors] [stages] [seed]

#include <cstdio>
#include <cstdlib>

#include "relap/algorithms/pareto_driver.hpp"
#include "relap/algorithms/single_interval.hpp"
#include "relap/algorithms/solve.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/latency.hpp"

int main(int argc, char** argv) {
  using namespace relap;
  const std::size_t processors =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 24;
  const std::size_t stages = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  const pipeline::Pipeline pipe = gen::bimodal_pipeline(stages, seed);
  gen::PlatformGenOptions options;
  options.processors = processors;
  options.fp_min = 0.05;
  options.fp_max = 0.6;  // grid nodes come and go
  const platform::Platform plat = gen::random_fully_heterogeneous(options, seed * 31);

  std::printf("grid:     %s\n", plat.describe().c_str());
  std::printf("workflow: %s\n\n", pipe.describe().c_str());

  // The broker's menu: heuristic Pareto front over the full mapping space.
  const auto front = algorithms::heuristic_pareto_front(pipe, plat);

  std::printf("%-4s %-12s %-14s %-9s %-10s\n", "#", "latency", "failure prob", "intervals",
              "replicas");
  for (std::size_t i = 0; i < front.size(); ++i) {
    const auto& p = front[i];
    std::printf("%-4zu %-12.3f %-14.6f %-9zu %-10zu\n", i, p.latency, p.failure_probability,
                p.mapping.interval_count(), p.mapping.processors_used());
  }

  // How much does multi-interval structure buy over the single-interval
  // baseline at matched budgets? (On Fully Heterogeneous platforms the
  // single-interval solver below needs identical links, so fall back to the
  // front's own single-interval points as baseline when links differ.)
  std::printf("\nbudget -> FP (suite) vs FP (best single interval in front):\n");
  for (const auto& p : front) {
    double single_best = 1.0;
    for (const auto& q : front) {
      if (q.mapping.interval_count() == 1 && q.latency <= p.latency * (1 + 1e-9)) {
        single_best = std::min(single_best, q.failure_probability);
      }
    }
    std::printf("  %.3f: %.6f vs %.6f%s\n", p.latency, p.failure_probability, single_best,
                p.failure_probability < single_best * (1 - 1e-9) ? "   <- split wins" : "");
  }
  return 0;
}
