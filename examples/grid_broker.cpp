// Grid-broker scenario: a large Fully Heterogeneous "grid" of unreliable
// nodes (the large-scale-platform setting of the paper's Section 5
// motivation), served through the solver service. Several tenants ask about
// the same grid, each naming the nodes in its own order — the broker
// canonicalizes the presentations onto one cache key, solves once and serves
// the rest warm, bit-identical. The front is then read as a menu: what each
// extra latency budget buys in reliability over the best single interval.
//
//   $ ./grid_broker [processors] [stages] [tenants] [seed] [--snapshot PATH]
//
// With --snapshot, the broker warm-starts from PATH when it exists and saves
// its cache back on exit — run twice and the second run serves every tenant
// warm, bit-identical. The full metrics JSON is printed at exit either way.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "relap/service/broker.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/util/hash.hpp"
#include "relap/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace relap;
  std::string snapshot_path;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::size_t processors =
      positional.size() > 0 ? std::strtoull(positional[0], nullptr, 10) : 24;
  const std::size_t stages = positional.size() > 1 ? std::strtoull(positional[1], nullptr, 10) : 8;
  const std::size_t tenants = positional.size() > 2 ? std::strtoull(positional[2], nullptr, 10) : 6;
  const std::uint64_t seed = positional.size() > 3 ? std::strtoull(positional[3], nullptr, 10) : 1;

  const pipeline::Pipeline pipe = gen::bimodal_pipeline(stages, seed);
  gen::PlatformGenOptions options;
  options.processors = processors;
  options.fp_min = 0.05;
  options.fp_max = 0.6;  // grid nodes come and go
  const platform::Platform plat = gen::random_fully_heterogeneous(options, seed * 31);

  std::printf("grid:     %s\n", plat.describe().c_str());
  std::printf("workflow: %s\n\n", pipe.describe().c_str());

  // Each tenant presents the same grid with its own node naming (and the
  // second half also in its own units — power-of-two rescalings share the
  // canonical form too).
  const service::InstanceData base = service::InstanceData::from(pipe, plat);
  util::Rng rng(seed * 97 + 5);
  std::vector<service::SolveRequest> batch;
  for (std::size_t t = 0; t < tenants; ++t) {
    service::SolveRequest request;
    if (t == 0) {
      request.instance = base;
    } else {
      std::vector<std::size_t> stage_order = util::iota_indices(base.stages.size());
      std::vector<std::size_t> processor_order = util::iota_indices(base.processors.size());
      rng.shuffle(stage_order);
      rng.shuffle(processor_order);
      request.instance = base.relabeled(stage_order, processor_order);
      if (t % 2 == 0) request.instance = request.instance.scaled(0.5, 4.0, 2.0);
    }
    request.objective = service::Objective::ParetoFront;
    request.priority = t == 0 ? 1 : 0;  // the first tenant's solve seeds the cache
    batch.push_back(std::move(request));
  }

  service::Broker broker;
  if (!snapshot_path.empty()) {
    const auto loaded = broker.load_snapshot(snapshot_path);
    if (loaded.has_value()) {
      std::printf("warm start: %zu cached fronts from %s\n\n", loaded->entries,
                  snapshot_path.c_str());
    } else if (loaded.error().code != "io") {
      std::printf("snapshot rejected: %s\n", loaded.error().to_string().c_str());
      return 1;
    }
  }
  const auto replies = broker.solve_batch(batch);

  std::printf("%-7s %-6s %-10s %-7s %-20s\n", "tenant", "cache", "solve ms", "points",
              "front checksum");
  for (std::size_t t = 0; t < replies.size(); ++t) {
    if (!replies[t].has_value()) {
      std::printf("%-7zu rejected: %s\n", t, replies[t].error().to_string().c_str());
      continue;
    }
    const service::Reply& reply = *replies[t];
    std::printf("%-7zu %-6s %-10.3f %-7zu %s\n", t, reply.cache_hit ? "warm" : "cold",
                reply.solve_seconds * 1e3, reply.front.size(),
                util::Fnv1a(service::front_checksum(reply.front)).hex().c_str());
  }
  const service::CacheStats stats = broker.cache_stats();
  std::printf("\ncache: %llu hit / %llu miss (hit rate %.0f%%)\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses), stats.hit_rate() * 100.0);

  if (!replies.front().has_value()) return 1;
  const auto& front = replies.front()->front;

  std::printf("\n%-4s %-12s %-14s %-9s %-10s\n", "#", "latency", "failure prob", "intervals",
              "replicas");
  for (std::size_t i = 0; i < front.size(); ++i) {
    const auto& p = front[i];
    std::printf("%-4zu %-12.3f %-14.6f %-9zu %-10zu\n", i, p.latency, p.failure_probability,
                p.mapping.interval_count(), p.mapping.processors_used());
  }

  // How much does multi-interval structure buy over the single-interval
  // baseline at matched budgets? The front arrives sorted by latency, so one
  // pre-pass carrying the best single-interval FP seen so far answers every
  // budget in O(n).
  std::printf("\nbudget -> FP (suite) vs FP (best single interval in front):\n");
  double single_best = 1.0;
  for (const auto& p : front) {
    if (p.mapping.interval_count() == 1) {
      single_best = std::min(single_best, p.failure_probability);
    }
    std::printf("  %.3f: %.6f vs %.6f%s\n", p.latency, p.failure_probability, single_best,
                p.failure_probability < single_best * (1 - 1e-9) ? "   <- split wins" : "");
  }

  if (!snapshot_path.empty()) {
    const auto saved = broker.save_snapshot(snapshot_path);
    if (!saved.has_value()) {
      std::printf("snapshot save failed: %s\n", saved.error().to_string().c_str());
      return 1;
    }
    std::printf("\nsnapshot: %zu entries (%zu bytes) -> %s\n", saved->entries, saved->bytes,
                snapshot_path.c_str());
  }
  std::printf("\nmetrics: %s\n", broker.metrics_json().c_str());
  return 0;
}
