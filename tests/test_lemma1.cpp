// Lemma 1 as an executable property: on Fully Homogeneous platforms (any
// failure probabilities) and on Communication Homogeneous + Failure
// Homogeneous platforms, some single-interval mapping is Pareto-optimal at
// every point of the exhaustive front — and the counterexample side: on
// Communication Homogeneous + Failure Heterogeneous platforms (Figure 5) the
// optimum can require two intervals.

#include <gtest/gtest.h>

#include <optional>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/mapping/reliability.hpp"
#include "relap/util/stats.hpp"

namespace relap::algorithms {
namespace {

/// True iff every point of the exhaustive Pareto front is achieved (or
/// dominated) by a single-interval mapping.
bool single_interval_suffices(const pipeline::Pipeline& pipe, const platform::Platform& plat) {
  const auto full = exhaustive_pareto(pipe, plat);
  ExhaustiveOptions restricted;
  restricted.max_intervals = 1;
  const auto single = exhaustive_pareto(pipe, plat, restricted);
  if (!full.has_value() || !single.has_value()) return false;

  for (const auto& point : full->front) {
    bool matched = false;
    for (const auto& s : single->front) {
      const bool no_worse_latency =
          s.latency <= point.latency || util::approx_equal(s.latency, point.latency);
      const bool no_worse_fp = s.failure_probability <= point.failure_probability ||
                               util::approx_equal(s.failure_probability, point.failure_probability);
      if (no_worse_latency && no_worse_fp) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

class Lemma1FullyHom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1FullyHom, SingleIntervalDominatesEvenWithHetFailures) {
  const std::uint64_t seed = GetParam();
  const auto pipe = gen::random_uniform_pipeline(3, seed);
  gen::PlatformGenOptions options;
  options.processors = 4;
  // The stronger form: Fully Homogeneous speeds/links, heterogeneous fps.
  const auto plat = gen::random_fully_hom_het_failures(options, seed * 11);
  EXPECT_TRUE(single_interval_suffices(pipe, plat)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1FullyHom, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class Lemma1CommHom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1CommHom, SingleIntervalDominatesWithHomFailures) {
  const std::uint64_t seed = GetParam();
  const auto pipe = gen::random_uniform_pipeline(3, seed);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = gen::random_comm_homogeneous(options, seed * 13);
  EXPECT_TRUE(single_interval_suffices(pipe, plat)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1CommHom, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Lemma1Boundary, Fig5NeedsTwoIntervals) {
  // The paper's counterexample for Comm. Homogeneous + Failure
  // Heterogeneous: under L = 22 the exhaustive optimum uses two intervals
  // and strictly beats every single-interval mapping.
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();

  ExhaustiveOptions options;
  options.max_evaluations = 100'000'000;
  const Result full = exhaustive_min_fp_for_latency(pipe, plat, gen::fig5_latency_threshold(),
                                                    options);
  ASSERT_TRUE(full.has_value()) << full.error().to_string();
  EXPECT_EQ(full->mapping.interval_count(), 2u);
  EXPECT_LT(full->failure_probability, 0.2);

  ExhaustiveOptions restricted = options;
  restricted.max_intervals = 1;
  const Result single = exhaustive_min_fp_for_latency(pipe, plat, gen::fig5_latency_threshold(),
                                                      restricted);
  ASSERT_TRUE(single.has_value());
  EXPECT_NEAR(single->failure_probability, 0.64, 1e-12);
  EXPECT_LT(full->failure_probability, single->failure_probability);
}

TEST(Lemma1Boundary, Fig5OptimumIsThePaperMapping) {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  ExhaustiveOptions options;
  options.max_evaluations = 100'000'000;
  const Result full =
      exhaustive_min_fp_for_latency(pipe, plat, gen::fig5_latency_threshold(), options);
  ASSERT_TRUE(full.has_value());
  const auto paper_mapping = gen::fig5_two_interval_mapping();
  EXPECT_TRUE(util::approx_equal(full->failure_probability,
                                 mapping::failure_probability(plat, paper_mapping)));
  EXPECT_EQ(full->mapping, paper_mapping);
}

}  // namespace
}  // namespace relap::algorithms
