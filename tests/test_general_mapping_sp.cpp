// Tests for algorithms/general_mapping_sp.hpp — Theorem 4's layered-graph
// shortest path, cross-checked against brute-force enumeration of all m^n
// general mappings.

#include "relap/algorithms/general_mapping_sp.hpp"

#include <gtest/gtest.h>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/platform/builders.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/util/stats.hpp"

namespace relap::algorithms {
namespace {

TEST(GeneralMappingSp, SolvesFig4ExampleOptimally) {
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  const GeneralSolution s = general_mapping_min_latency(pipe, plat);
  EXPECT_DOUBLE_EQ(s.latency, 7.0);
  EXPECT_EQ(s.mapping.assignment(), (std::vector<platform::ProcessorId>{0, 1}));
}

TEST(GeneralMappingSp, SingleProcessorWhenCommDominates) {
  // Communication-heavy pipeline on identical links: one processor wins.
  const auto pipe = gen::comm_heavy_pipeline(5, 3);
  const auto plat = platform::make_comm_homogeneous({2.0, 1.0, 1.5}, 1.0, 0.1);
  const GeneralSolution s = general_mapping_min_latency(pipe, plat);
  for (const auto u : s.mapping.assignment()) EXPECT_EQ(u, plat.fastest_processor());
}

TEST(GeneralMappingSp, LatencyValueMatchesEvaluator) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(5, seed);
    gen::PlatformGenOptions options;
    options.processors = 4;
    const auto plat = gen::random_fully_heterogeneous(options, seed * 97);
    const GeneralSolution s = general_mapping_min_latency(pipe, plat);
    EXPECT_TRUE(util::approx_equal(s.latency, mapping::latency(pipe, plat, s.mapping)))
        << "seed " << seed;
  }
}

class GeneralSpSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneralSpSweep, MatchesBruteForceOnFullyHeterogeneous) {
  const std::uint64_t seed = GetParam();
  const auto pipe = gen::random_uniform_pipeline(4, seed);
  gen::PlatformGenOptions options;
  // 6 processors -> 6^4 = 1296 assignments: more than one 1024-candidate
  // chunk, so this independent DP cross-check also exercises the brute
  // enumerator's nonzero-rank odometer seeks at chunk boundaries.
  options.processors = 6;
  const auto plat = gen::random_fully_heterogeneous(options, seed * 191);

  const GeneralSolution fast = general_mapping_min_latency(pipe, plat);
  const GeneralResult brute = exhaustive_general_min_latency(pipe, plat);
  ASSERT_TRUE(brute.has_value());
  EXPECT_TRUE(util::approx_equal(fast.latency, brute->latency))
      << "sp=" << fast.latency << " brute=" << brute->latency;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralSpSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15));

TEST(GeneralMappingSp, CanBeatEveryIntervalMapping) {
  // Construct an instance where reusing a processor non-consecutively wins:
  // stages 0 and 2 are huge and only P0 is fast; stage 1 is tiny and P0's
  // outgoing/incoming links to P1 are fast, while P0 alone would... still be
  // best here. Instead make stage 1's *data* transfers free so bouncing
  // 0 -> 1 -> 0 costs nothing but lets... With a single processor executing
  // everything there is no transfer at all, so a strictly-better
  // non-interval mapping needs heterogeneous speeds: P0 fast on even
  // stages' work, P1 fast on stage 1's (impossible with scalar speeds).
  // What CAN happen: the optimal general mapping has the interval shape. We
  // assert the solver is never *worse* than the best interval mapping.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(4, seed);
    gen::PlatformGenOptions options;
    options.processors = 3;
    const auto plat = gen::random_fully_heterogeneous(options, seed * 41);
    const GeneralSolution s = general_mapping_min_latency(pipe, plat);
    ExhaustiveOptions unreplicated;
    unreplicated.max_replication = 1;
    const auto interval_front = exhaustive_pareto(pipe, plat, unreplicated);
    ASSERT_TRUE(interval_front.has_value());
    double best_interval = interval_front->front.front().latency;
    EXPECT_LE(s.latency, best_interval + 1e-9) << "seed " << seed;
  }
}

TEST(GeneralMappingSp, SingleStagePipeline) {
  const auto pipe = pipeline::Pipeline({6.0}, {2.0, 3.0});
  platform::PlatformBuilder builder;
  builder.add_processor(2.0, 0.1);
  builder.add_processor(3.0, 0.1);
  builder.default_bandwidth(1.0).link_in(0, 2.0).link_out(0, 3.0).link_in(1, 1.0).link_out(1, 1.0);
  const auto plat = builder.build();
  const GeneralSolution s = general_mapping_min_latency(pipe, plat);
  // P0: 2/2 + 6/2 + 3/3 = 5; P1: 2/1 + 6/3 + 3/1 = 7.
  EXPECT_DOUBLE_EQ(s.latency, 5.0);
  EXPECT_EQ(s.mapping.assignment().front(), 0u);
}

}  // namespace
}  // namespace relap::algorithms
