// Tests for algorithms/local_search.hpp: monotone improvement, feasibility
// preservation, and escape from deliberately bad starts.

#include "relap/algorithms/local_search.hpp"

#include <gtest/gtest.h>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/validate.hpp"
#include "relap/util/stats.hpp"

namespace relap::algorithms {
namespace {

Solution start_from(const pipeline::Pipeline& pipe, const platform::Platform& plat,
                    mapping::IntervalMapping m) {
  return evaluate(pipe, plat, std::move(m));
}

TEST(LocalSearch, NeverWorsensTheStart) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(4, seed);
    gen::PlatformGenOptions options;
    options.processors = 5;
    const auto plat = gen::random_comm_hom_het_failures(options, seed * 601);
    const Solution start =
        start_from(pipe, plat, mapping::IntervalMapping::single_interval(4, {0}));
    const double cap = start.latency * 1.2;
    const Solution polished = local_search_min_fp(pipe, plat, start, cap);
    EXPECT_FALSE(better_min_fp(start, polished, cap)) << "seed " << seed;
    EXPECT_TRUE(mapping::validate(pipe, plat, polished.mapping).has_value());
  }
}

TEST(LocalSearch, Fig5SingleIntervalIsALocalOptimum) {
  // From the best single-interval start, every single move worsens FP or
  // breaks the threshold: steepest descent must hold at 0.64 (reaching the
  // two-interval optimum needs the beam or annealing — see their tests).
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  const Solution start = start_from(pipe, plat, gen::fig5_single_interval_mapping());
  const Solution polished =
      local_search_min_fp(pipe, plat, start, gen::fig5_latency_threshold());
  EXPECT_TRUE(within_cap(polished.latency, gen::fig5_latency_threshold()));
  EXPECT_LE(polished.failure_probability, 0.64 + 1e-12);
}

TEST(LocalSearch, Fig5ReplicationLadderClimbsFromTwoIntervalSkeleton) {
  // From the unreplicated two-interval skeleton, add-replica moves are each
  // strictly improving, so descent must reach the paper's full optimum.
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  const Solution start = start_from(
      pipe, plat, mapping::IntervalMapping({{{0, 0}, {0}}, {{1, 1}, {1}}}));
  const Solution polished =
      local_search_min_fp(pipe, plat, start, gen::fig5_latency_threshold());
  EXPECT_TRUE(within_cap(polished.latency, gen::fig5_latency_threshold()));
  EXPECT_LT(polished.failure_probability, 0.2);
}

TEST(LocalSearch, ImprovesLatencyOnFig4) {
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  const Solution start = start_from(pipe, plat, gen::fig4_single_mapping());
  // FP cap generous: latency is the objective.
  const Solution polished = local_search_min_latency(pipe, plat, start, 0.9);
  EXPECT_DOUBLE_EQ(polished.latency, 7.0);  // reaches the split optimum
}

TEST(LocalSearch, RespectsRoundBudget) {
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  const Solution start = start_from(pipe, plat, gen::fig4_single_mapping());
  LocalSearchOptions options;
  options.max_rounds = 0;
  const Solution frozen = local_search_min_latency(pipe, plat, start, 0.9, options);
  EXPECT_DOUBLE_EQ(frozen.latency, start.latency);
}

TEST(LocalSearch, ReachesExhaustiveOptimumOnTinyInstances) {
  // On 2-stage/3-processor instances the neighborhood graph is small enough
  // that steepest descent from the best single-interval start lands on the
  // global optimum in most cases; assert a modest success count to catch
  // regressions in the move set.
  std::size_t optimal_hits = 0;
  constexpr std::uint64_t kTrials = 10;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(2, seed);
    gen::PlatformGenOptions options;
    options.processors = 3;
    const auto plat = gen::random_comm_hom_het_failures(options, seed * 701);
    const auto oracle = exhaustive_pareto(pipe, plat);
    ASSERT_TRUE(oracle.has_value());
    const auto& mid = oracle->front[oracle->front.size() / 2];

    const Solution start =
        start_from(pipe, plat, mapping::IntervalMapping::single_interval(2, {0}));
    const Solution polished = local_search_min_fp(pipe, plat, start, mid.latency);
    if (within_cap(polished.latency, mid.latency) &&
        util::approx_equal(polished.failure_probability, mid.failure_probability)) {
      ++optimal_hits;
    }
  }
  EXPECT_GE(optimal_hits, 6u);
}

}  // namespace
}  // namespace relap::algorithms
