// Tests for algorithms/mono_criterion.hpp — Theorems 1 and 2 as executable
// claims, cross-checked against exhaustive enumeration on small instances.

#include "relap/algorithms/mono_criterion.hpp"

#include <gtest/gtest.h>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/util/stats.hpp"

namespace relap::algorithms {
namespace {

TEST(Theorem1, FullReplicationSingleInterval) {
  const auto pipe = gen::random_uniform_pipeline(3, 1);
  const auto plat = gen::random_comm_hom_het_failures({.processors = 4}, 2);
  const Solution s = minimize_failure_probability(pipe, plat);
  EXPECT_EQ(s.mapping.interval_count(), 1u);
  EXPECT_EQ(s.mapping.processors_used(), 4u);
}

class Theorem1Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Property, MatchesExhaustiveMinimumOnAllClasses) {
  const std::uint64_t seed = GetParam();
  const auto pipe = gen::random_uniform_pipeline(3, seed);
  const std::vector<platform::Platform> platforms = {
      gen::random_fully_homogeneous({.processors = 4}, seed),
      gen::random_comm_hom_het_failures({.processors = 4}, seed),
      gen::random_fully_heterogeneous({.processors = 4}, seed),
  };
  for (const auto& plat : platforms) {
    const Solution claimed = minimize_failure_probability(pipe, plat);
    const auto oracle = exhaustive_pareto(pipe, plat);
    ASSERT_TRUE(oracle.has_value());
    double best_fp = 1.0;
    for (const auto& p : oracle->front) best_fp = std::min(best_fp, p.failure_probability);
    EXPECT_TRUE(util::approx_equal(claimed.failure_probability, best_fp) ||
                claimed.failure_probability <= best_fp)
        << "claimed " << claimed.failure_probability << " oracle " << best_fp;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Property, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Theorem2, FastestProcessorSingleInterval) {
  const auto pipe = gen::random_uniform_pipeline(4, 3);
  const auto plat = gen::random_comm_homogeneous({.processors = 5}, 4);
  const Solution s = minimize_latency_comm_hom(pipe, plat);
  EXPECT_EQ(s.mapping.interval_count(), 1u);
  EXPECT_EQ(s.mapping.processors_used(), 1u);
  EXPECT_EQ(s.mapping.interval(0).processors.front(), plat.fastest_processor());
}

class Theorem2Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem2Property, MatchesExhaustiveMinimumLatency) {
  const std::uint64_t seed = GetParam();
  const auto pipe = gen::random_uniform_pipeline(3, seed);
  const auto plat = gen::random_comm_hom_het_failures({.processors = 4}, seed * 7);
  const Solution claimed = minimize_latency_comm_hom(pipe, plat);
  const auto oracle = exhaustive_pareto(pipe, plat);
  ASSERT_TRUE(oracle.has_value());
  double best_latency = oracle->front.front().latency;  // front sorted by latency
  EXPECT_TRUE(util::approx_equal(claimed.latency, best_latency))
      << "claimed " << claimed.latency << " oracle " << best_latency;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem2Property, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Theorem2, SingleProcessorBeatsSplitsOnCommHom) {
  // The motivating claim: with identical links, splitting only adds
  // transfer costs.
  const auto pipe = gen::comm_heavy_pipeline(4, 5);
  const auto plat = gen::random_comm_homogeneous({.processors = 4}, 6);
  const Solution s = minimize_latency_comm_hom(pipe, plat);
  const double split_latency = mapping::latency(
      pipe, plat, mapping::IntervalMapping({{{0, 1}, {0}}, {{2, 3}, {1}}}));
  EXPECT_LE(s.latency, split_latency + 1e-9);
}

TEST(Theorem2, SplitWinsOnFullyHeterogeneous) {
  // ... but NOT with heterogeneous links: the Figure 3/4 example.
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  const double single = mapping::latency(pipe, plat, gen::fig4_single_mapping());
  const double split = mapping::latency(pipe, plat, gen::fig4_split_mapping());
  EXPECT_DOUBLE_EQ(single, 105.0);
  EXPECT_DOUBLE_EQ(split, 7.0);
}

}  // namespace
}  // namespace relap::algorithms
