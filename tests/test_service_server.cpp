// Tests for service/server.hpp: the line protocol round-trips instances and
// solves through a scripted session, malformed wire input always comes back
// as a structured `err` line (never an assert — the raw-InstanceData
// admission path is the only entry point), wire-level caps bound memory, and
// the loopback TCP transport serves the same protocol end to end.

#include "relap/service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/service/broker.hpp"
#include "relap/util/strings.hpp"

namespace relap::service {
namespace {

/// Feeds one line, returns the response text; fails the test if the session
/// closed (callers that expect closure use feed_expect_closed).
std::string feed(Session& session, const std::string& line) {
  std::string out;
  EXPECT_TRUE(session.handle_line(line, out)) << "session closed on: " << line;
  return out;
}

std::string feed_expect_closed(Session& session, const std::string& line) {
  std::string out;
  EXPECT_FALSE(session.handle_line(line, out));
  return out;
}

/// True iff `response` starts with one `err <seq> <code> ...` line: a
/// numeric sequence number (the session's line ordinal) between the `err`
/// marker and the code. Empty `code` accepts any code.
bool is_err(const std::string& response, std::string_view code = {}) {
  if (response.rfind("err ", 0) != 0) return false;
  std::size_t i = 4;
  std::size_t digits = 0;
  while (i < response.size() && response[i] >= '0' && response[i] <= '9') {
    ++i;
    ++digits;
  }
  if (digits == 0 || i >= response.size() || response[i] != ' ') return false;
  if (code.empty()) return true;
  return response.compare(i + 1, code.size(), code) == 0;
}

/// The `<seq>` of an `err <seq> <code> ...` response (0 if unparseable).
std::uint64_t err_seq(const std::string& response) {
  if (response.rfind("err ", 0) != 0) return 0;
  return std::strtoull(response.c_str() + 4, nullptr, 10);
}

/// The protocol lines registering a generated instance under `name`.
std::vector<std::string> upload_lines(const std::string& name, std::uint64_t seed,
                                      std::size_t stages = 3, std::size_t processors = 3) {
  const auto pipe = gen::random_uniform_pipeline(stages, seed);
  gen::PlatformGenOptions options;
  options.processors = processors;
  const auto plat = gen::random_fully_heterogeneous(options, seed + 1);
  const InstanceData instance = InstanceData::from(pipe, plat);

  std::vector<std::string> lines;
  lines.push_back("instance " + name);
  lines.push_back("input " + util::format_double(instance.input_data));
  for (const LabeledStage& stage : instance.stages) {
    lines.push_back("stage " + std::to_string(stage.position) + ' ' +
                    util::format_double(stage.work) + ' ' +
                    util::format_double(stage.output_data));
  }
  for (const LabeledProcessor& proc : instance.processors) {
    std::string line = "proc " + util::format_double(proc.speed) + ' ' +
                       util::format_double(proc.failure_prob) + ' ' +
                       util::format_double(proc.in_bandwidth) + ' ' +
                       util::format_double(proc.out_bandwidth);
    for (const double b : proc.links) line += ' ' + util::format_double(b);
    lines.push_back(std::move(line));
  }
  lines.push_back("end");
  return lines;
}

void upload(Session& session, const std::string& name, std::uint64_t seed) {
  const std::vector<std::string> lines = upload_lines(name, seed);
  std::string response;
  for (const std::string& line : lines) response = feed(session, line);
  ASSERT_EQ(response.rfind("ok instance " + name, 0), 0U) << response;
}

// --- Scripted sessions. -----------------------------------------------------

TEST(Server, ScriptedSessionEndToEnd) {
  Broker broker;
  Session session(broker);

  EXPECT_EQ(feed(session, "ping"), "ok pong\n");
  EXPECT_EQ(feed(session, ""), "");            // blank lines are ignored
  EXPECT_EQ(feed(session, "# comment"), "");   // so are comments

  upload(session, "job", 5);

  const std::string cold = feed(session, "solve job obj=pareto");
  EXPECT_NE(cold.find("ok solve name=job cache=miss"), std::string::npos) << cold;
  EXPECT_NE(cold.find("trace {\"queue_wait_s\":"), std::string::npos);
  EXPECT_NE(cold.find("point 0 latency="), std::string::npos);
  EXPECT_NE(cold.find("mapping=[0.."), std::string::npos);
  EXPECT_NE(cold.find("done\n"), std::string::npos);

  // The identical request hits warm with the identical front checksum.
  const std::string warm = feed(session, "solve job obj=pareto");
  EXPECT_NE(warm.find("cache=hit"), std::string::npos) << warm;
  const auto front_of = [](const std::string& response) {
    const std::size_t pos = response.find("front=");
    return response.substr(pos, response.find(' ', pos) - pos);
  };
  EXPECT_EQ(front_of(cold), front_of(warm));

  const std::string stats = feed(session, "stats");
  EXPECT_EQ(stats.rfind("ok stats {\"cache\":", 0), 0U) << stats;
  EXPECT_NE(stats.find("\"requests_total\":2"), std::string::npos) << stats;

  EXPECT_EQ(feed(session, "drop job"), "ok drop job\n");
  const std::string gone = feed(session, "solve job");
  EXPECT_TRUE(is_err(gone, "protocol")) << gone;

  EXPECT_EQ(feed_expect_closed(session, "quit"), "ok bye\n");
  EXPECT_FALSE(session.shutdown_requested());
}

TEST(Server, ObjectiveAndMethodKnobs) {
  Broker broker;
  Session session(broker);
  upload(session, "job", 9);

  const std::string minfp = feed(session, "solve job obj=minfp threshold=1e9");
  EXPECT_NE(minfp.find("ok solve"), std::string::npos) << minfp;
  EXPECT_NE(minfp.find("points=1"), std::string::npos) << minfp;

  const std::string heuristic =
      feed(session, "solve job obj=pareto method=heuristic sweep=8 budget=1000");
  EXPECT_NE(heuristic.find("ok solve"), std::string::npos) << heuristic;

  // An infeasible threshold is a structured solver error, not a crash.
  const std::string infeasible = feed(session, "solve job obj=minfp threshold=1e-12");
  EXPECT_TRUE(is_err(infeasible, "infeasible")) << infeasible;
}

TEST(Server, ShutdownPropagates) {
  Broker broker;
  Session session(broker);
  EXPECT_EQ(feed_expect_closed(session, "shutdown"), "ok shutdown\n");
  EXPECT_TRUE(session.shutdown_requested());
}

// --- Hardening: malformed wire input. ---------------------------------------

TEST(Server, MalformedInputAlwaysAnswersErrAndNeverKillsTheSession) {
  Broker broker;
  Session session(broker);
  const std::vector<std::string> garbage = {
      "frobnicate",
      "solve",
      "solve nosuch",
      "instance",
      "instance a b c",
      "end",
      "input 1",
      "proc 1 2 3 4",
      "snapshot",
      "snapshot frobnicate /tmp/x",
      "snapshot save",
      "drop",
      "drop nosuch",
      "solve x obj=",
      "solve x =v",
      "solve x obj=banana",
  };
  for (const std::string& line : garbage) {
    const std::string response = feed(session, line);
    EXPECT_TRUE(is_err(response)) << "line '" << line << "' -> " << response;
    EXPECT_EQ(response.find('\n'), response.size() - 1) << "multi-line error for " << line;
  }

  // Inside a block, bad records error but the block survives...
  EXPECT_EQ(feed(session, "instance x"), "");
  for (const std::string& line :
       {std::string("stage zero 1 2"), std::string("stage 0 1"), std::string("proc fast 1 2 3"),
        std::string("input"), std::string("links"), std::string("solve x")}) {
    const std::string response = feed(session, line);
    EXPECT_TRUE(is_err(response)) << "block line '" << line << "' -> " << response;
  }
  // ...and a structurally nonsensical instance (no stages/procs) is a
  // structured admission error at solve time, not an assert.
  EXPECT_EQ(feed(session, "end").rfind("ok instance x", 0), 0U);
  const std::string empty_solve = feed(session, "solve x");
  EXPECT_TRUE(is_err(empty_solve)) << empty_solve;

  // Nonsense numerics (negative speeds, NaN work...) reject as malformed.
  EXPECT_EQ(feed(session, "instance y"), "");
  EXPECT_EQ(feed(session, "input 1"), "");
  EXPECT_EQ(feed(session, "stage 0 nan 1"), "");
  EXPECT_EQ(feed(session, "proc -1 0.5 1 1 1"), "");
  EXPECT_EQ(feed(session, "end").rfind("ok instance y", 0), 0U);
  const std::string bad_solve = feed(session, "solve y");
  EXPECT_TRUE(is_err(bad_solve, "malformed")) << bad_solve;

  // After all of that the session still serves a real request.
  upload(session, "ok_instance", 5);
  EXPECT_NE(feed(session, "solve ok_instance").find("ok solve"), std::string::npos);
}

TEST(Server, WireCapsBoundMemory) {
  Broker broker;
  SessionOptions options;
  options.max_stage_records = 2;
  options.max_processor_records = 2;
  options.max_instances = 1;
  Session session(broker, options);

  EXPECT_EQ(feed(session, "instance a"), "");
  EXPECT_EQ(feed(session, "stage 0 1 1"), "");
  EXPECT_EQ(feed(session, "stage 1 1 1"), "");
  EXPECT_TRUE(is_err(feed(session, "stage 2 1 1"), "oversized"));
  EXPECT_EQ(feed(session, "proc 1 0 1 1"), "");
  EXPECT_EQ(feed(session, "proc 1 0 1 1"), "");
  EXPECT_TRUE(is_err(feed(session, "proc 1 0 1 1"), "oversized"));
  EXPECT_EQ(feed(session, "end").rfind("ok instance a", 0), 0U);

  // The instance table cap counts names, and re-registering is not growth.
  EXPECT_TRUE(is_err(feed(session, "instance b"), "oversized"));
  EXPECT_EQ(feed(session, "instance a"), "");
  EXPECT_EQ(feed(session, "end").rfind("ok instance a", 0), 0U);
}

TEST(Server, ProcLinkRowLengthValidatedAtEnd) {
  Broker broker;
  Session session(broker);
  EXPECT_EQ(feed(session, "instance x"), "");
  EXPECT_EQ(feed(session, "input 1"), "");
  EXPECT_EQ(feed(session, "stage 0 1 1"), "");
  EXPECT_EQ(feed(session, "proc 1 0 1 1 5 5 5"), "");  // 3 links, but m = 2
  EXPECT_EQ(feed(session, "proc 1 0 1 1"), "");
  const std::string response = feed(session, "end");
  EXPECT_TRUE(is_err(response, "protocol")) << response;
}

TEST(Server, ErrSeqCorrelatesWithSessionLineOrdinals) {
  Broker broker;
  Session session(broker);

  // Lines 1-3 are fine; blanks and comments do not consume ordinals.
  EXPECT_EQ(feed(session, "ping"), "ok pong\n");
  EXPECT_EQ(feed(session, ""), "");
  EXPECT_EQ(feed(session, "# comment"), "");
  EXPECT_EQ(feed(session, "ping"), "ok pong\n");
  EXPECT_EQ(feed(session, "ping"), "ok pong\n");

  // Line 4 and 5 fail: their err lines carry exactly those ordinals, so a
  // pipelining client can attribute each failure to the line that caused it.
  const std::string first = feed(session, "frobnicate");
  ASSERT_TRUE(is_err(first, "protocol")) << first;
  EXPECT_EQ(err_seq(first), 4U) << first;

  EXPECT_EQ(feed(session, "   "), "");  // whitespace-only: still no ordinal

  const std::string second = feed(session, "solve nosuch");
  ASSERT_TRUE(is_err(second, "protocol")) << second;
  EXPECT_EQ(err_seq(second), 5U) << second;

  // A successful line still advances the ordinal for the next failure.
  EXPECT_EQ(feed(session, "ping"), "ok pong\n");
  const std::string third = feed(session, "drop nosuch");
  ASSERT_TRUE(is_err(third)) << third;
  EXPECT_EQ(err_seq(third), 7U) << third;
}

// --- Stream and TCP transports. ---------------------------------------------

TEST(Server, ServeStreamRunsAScript) {
  Broker broker;
  std::istringstream in("ping\nping\nquit\nping\n");  // the trailing ping is never read
  std::ostringstream out;
  EXPECT_FALSE(serve_stream(broker, in, out));
  EXPECT_EQ(out.str(), "ok pong\nok pong\nok bye\n");

  std::istringstream in2("shutdown\n");
  std::ostringstream out2;
  EXPECT_TRUE(serve_stream(broker, in2, out2));
}

/// Minimal blocking loopback client for the TCP test.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  void send_text(const std::string& text) {
    ASSERT_EQ(::send(fd_, text.data(), text.size(), 0),
              static_cast<ssize_t>(text.size()));
  }

  /// Reads until the peer closes the connection.
  std::string read_all() {
    std::string out;
    char buffer[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
      if (n <= 0) break;
      out.append(buffer, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
};

TEST(Server, TcpLoopbackServesSessionsUntilShutdown) {
  Broker broker;
  auto bound = TcpServer::bind_localhost(0);
  ASSERT_TRUE(bound.has_value()) << bound.error().to_string();
  TcpServer server = std::move(bound.value());
  ASSERT_TRUE(server.bound());
  ASSERT_NE(server.port(), 0);

  std::size_t sessions = 0;
  std::thread accept_thread([&] { sessions = server.serve(broker); });

  {
    Client client(server.port());
    ASSERT_TRUE(client.connected());
    std::string script = "ping\r\n";  // CRLF tolerated
    for (const std::string& line : upload_lines("job", 5)) script += line + '\n';
    script += "solve job obj=pareto\nquit\n";
    client.send_text(script);
    const std::string response = client.read_all();
    EXPECT_EQ(response.rfind("ok pong\nok instance job", 0), 0U) << response;
    EXPECT_NE(response.find("ok solve name=job cache=miss"), std::string::npos);
    EXPECT_NE(response.find("done\nok bye\n"), std::string::npos);
  }
  {
    // A second connection shares the broker (and therefore the warm cache).
    Client client(server.port());
    ASSERT_TRUE(client.connected());
    std::string script;
    for (const std::string& line : upload_lines("job", 5)) script += line + '\n';
    script += "solve job obj=pareto\nshutdown\n";
    client.send_text(script);
    const std::string response = client.read_all();
    EXPECT_NE(response.find("cache=hit"), std::string::npos) << response;
    EXPECT_NE(response.find("ok shutdown\n"), std::string::npos);
  }

  accept_thread.join();
  EXPECT_EQ(sessions, 2U);
}

// --- Concurrent serving. ------------------------------------------------------

/// The `front=0x...` checksum field of a solve response — the determinism
/// witness. (Never compare cache=hit/miss across connections: which tenant
/// leads a deduped batch is timing-dependent; the front bits are not.)
std::string front_of(const std::string& response) {
  const std::size_t pos = response.find("front=");
  EXPECT_NE(pos, std::string::npos) << response;
  if (pos == std::string::npos) return {};
  return response.substr(pos, response.find(' ', pos) - pos);
}

/// One whole client session: upload seed `seed` as `name`, solve, quit.
/// Returns the full response text.
std::string run_client_session(std::uint16_t port, const std::string& name,
                               std::uint64_t seed) {
  Client client(port);
  if (!client.connected()) return {};
  std::string script;
  for (const std::string& line : upload_lines(name, seed)) script += line + '\n';
  script += "solve " + name + " obj=pareto\nquit\n";
  client.send_text(script);
  return client.read_all();
}

TEST(Server, TcpConcurrentIdenticalClientsCoalesceOntoOneSolve) {
  Broker broker;
  auto bound = TcpServer::bind_localhost(0);
  ASSERT_TRUE(bound.has_value()) << bound.error().to_string();
  TcpServer server = std::move(bound.value());
  std::thread accept_thread([&] { (void)server.serve(broker, ServerOptions{}); });

  // Two tenants present the identical instance under different names at the
  // same time: the shared batch queue (or the memo cache, if one finishes
  // first) makes sure the broker only ever solves it once.
  std::vector<std::string> responses(2);
  {
    std::thread first([&] { responses[0] = run_client_session(server.port(), "alpha", 5); });
    std::thread second([&] { responses[1] = run_client_session(server.port(), "beta", 5); });
    first.join();
    second.join();
  }
  server.request_stop();
  accept_thread.join();

  for (const std::string& response : responses) {
    EXPECT_NE(response.find("ok solve"), std::string::npos) << response;
  }
  EXPECT_EQ(front_of(responses[0]), front_of(responses[1]));
  EXPECT_EQ(broker.metrics().solves_total.value(), 1U);
  EXPECT_EQ(broker.metrics().requests_total.value(), 2U);
}

TEST(Server, TcpConcurrentServingIsBitIdenticalToSequentialAcrossPoolSizes) {
  constexpr std::uint64_t kSeeds[] = {11, 12, 13, 14};

  // Sequential reference: one scripted session per seed on a fresh
  // single-threaded broker — the canonical answers.
  std::vector<std::string> reference;
  {
    exec::ThreadPool pool(1);
    BrokerOptions options;
    options.pool = &pool;
    Broker broker(options);
    Session session(broker);
    for (const std::uint64_t seed : kSeeds) {
      const std::string name = "job" + std::to_string(seed);
      upload(session, name, seed);
      reference.push_back(front_of(feed(session, "solve " + name + " obj=pareto")));
    }
  }

  for (const std::size_t pool_size : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    exec::ThreadPool pool(pool_size);
    BrokerOptions options;
    options.pool = &pool;
    Broker broker(options);
    auto bound = TcpServer::bind_localhost(0);
    ASSERT_TRUE(bound.has_value()) << bound.error().to_string();
    TcpServer server = std::move(bound.value());
    std::thread accept_thread([&] { (void)server.serve(broker, ServerOptions{}); });

    // All seeds solved concurrently, one connection each.
    std::vector<std::string> responses(std::size(kSeeds));
    {
      std::vector<std::thread> clients;
      for (std::size_t i = 0; i < std::size(kSeeds); ++i) {
        clients.emplace_back([&, i] {
          responses[i] =
              run_client_session(server.port(), "job" + std::to_string(kSeeds[i]), kSeeds[i]);
        });
      }
      for (std::thread& client : clients) client.join();
    }
    server.request_stop();
    accept_thread.join();

    for (std::size_t i = 0; i < std::size(kSeeds); ++i) {
      EXPECT_EQ(front_of(responses[i]), reference[i])
          << "pool=" << pool_size << " seed=" << kSeeds[i];
    }
  }
}

}  // namespace
}  // namespace relap::service
