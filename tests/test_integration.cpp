// Cross-module integration tests: generate -> serialize -> reload -> solve
// -> simulate -> validate, end to end, on every platform class.

#include <gtest/gtest.h>

#include "relap/algorithms/mono_criterion.hpp"
#include "relap/algorithms/solve.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/io/instance_format.hpp"
#include "relap/mapping/validate.hpp"
#include "relap/sim/monte_carlo.hpp"
#include "relap/util/stats.hpp"

namespace relap {
namespace {

struct ClassCase {
  std::uint64_t seed;
  int platform_kind;  // 0 fully hom, 1 comm hom + fail hom, 2 comm het fp, 3 fully het
};

platform::Platform make_platform(const ClassCase& c) {
  gen::PlatformGenOptions options;
  options.processors = 4;
  switch (c.platform_kind) {
    case 0: return gen::random_fully_homogeneous(options, c.seed * 7919);
    case 1: return gen::random_comm_homogeneous(options, c.seed * 7919);
    case 2: return gen::random_comm_hom_het_failures(options, c.seed * 7919);
    default: return gen::random_fully_heterogeneous(options, c.seed * 7919);
  }
}

class EndToEnd : public ::testing::TestWithParam<ClassCase> {};

TEST_P(EndToEnd, GenerateSerializeSolveSimulate) {
  const ClassCase c = GetParam();
  const auto pipe = gen::random_uniform_pipeline(3, c.seed);
  const auto plat = make_platform(c);

  // Serialize and reload: the solver must see an identical instance.
  const io::Instance original{pipe, plat};
  const auto reloaded = io::parse_instance(io::format_instance(original));
  ASSERT_TRUE(reloaded.has_value());

  // Solve a mid-range threshold: halfway between the latency floor and the
  // full-replication latency.
  const auto everything = algorithms::minimize_failure_probability(pipe, plat);
  const double threshold =
      (mapping::latency_lower_bound(pipe, plat) + everything.latency) / 2.0;
  const auto solved = algorithms::solve_min_fp_for_latency(reloaded->pipeline,
                                                           reloaded->platform, threshold);
  if (!solved.has_value()) {
    ASSERT_EQ(solved.error().code, "infeasible");
    return;  // legitimately infeasible threshold on this instance
  }

  // The mapping validates against the *original* instance too.
  ASSERT_TRUE(mapping::validate(pipe, plat, solved->solution.mapping).has_value());
  EXPECT_TRUE(algorithms::within_cap(solved->solution.latency, threshold));

  // The analytic FP is confirmed by direct Monte Carlo.
  sim::MonteCarloOptions mc;
  mc.trials = 50'000;
  mc.seed = c.seed;
  const auto est = sim::estimate_failure_rate(plat, solved->solution.mapping, mc);
  EXPECT_TRUE(est.consistent(0.01))
      << "empirical " << est.empirical << " analytic " << est.analytic;

  // The failure-free simulated latency never exceeds the worst-case bound.
  const auto run = sim::simulate(pipe, plat, solved->solution.mapping,
                                 sim::FailureScenario::none(plat.processor_count()), {});
  ASSERT_TRUE(run.datasets[0].completed);
  EXPECT_LE(run.datasets[0].latency(), solved->solution.latency + 1e-9);

  // The worst-case simulated latency *equals* the claimed latency.
  const auto worst = sim::FailureScenario::worst_case(pipe, plat, solved->solution.mapping);
  sim::SimOptions sim_options;
  sim_options.send_order = sim::SendOrder::WorstCaseLast;
  const auto worst_run = sim::simulate(pipe, plat, solved->solution.mapping, worst, sim_options);
  ASSERT_TRUE(worst_run.datasets[0].completed);
  EXPECT_TRUE(util::approx_equal(worst_run.datasets[0].latency(), solved->solution.latency))
      << "sim " << worst_run.datasets[0].latency() << " claimed " << solved->solution.latency;
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, EndToEnd,
    ::testing::Values(ClassCase{1, 0}, ClassCase{2, 0}, ClassCase{1, 1}, ClassCase{2, 1},
                      ClassCase{1, 2}, ClassCase{2, 2}, ClassCase{3, 2}, ClassCase{1, 3},
                      ClassCase{2, 3}, ClassCase{3, 3}));

TEST(EndToEndPaper, Fig5FullStory) {
  // The complete Figure 5 narrative, executed: exact solve under L = 22,
  // the two-interval structure, FP < 0.2 confirmed by simulation.
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  algorithms::SolveOptions options;
  options.exhaustive.max_evaluations = 100'000'000;
  const auto solved = algorithms::solve_min_fp_for_latency(
      pipe, plat, gen::fig5_latency_threshold(), options);
  ASSERT_TRUE(solved.has_value());
  EXPECT_TRUE(solved->exact);
  EXPECT_EQ(solved->solution.mapping.interval_count(), 2u);
  EXPECT_LT(solved->solution.failure_probability, 0.2);

  sim::MonteCarloOptions mc;
  mc.trials = 200'000;
  const auto est = sim::estimate_failure_rate(plat, solved->solution.mapping, mc);
  EXPECT_TRUE(est.consistent(0.005));

  const auto worst = sim::FailureScenario::worst_case(pipe, plat, solved->solution.mapping);
  sim::SimOptions sim_options;
  sim_options.send_order = sim::SendOrder::WorstCaseLast;
  const auto run = sim::simulate(pipe, plat, solved->solution.mapping, worst, sim_options);
  ASSERT_TRUE(run.datasets[0].completed);
  EXPECT_TRUE(util::approx_equal(run.datasets[0].latency(), 22.0));
}

TEST(EndToEndPaper, JpegPipelineOnWorkstationCluster) {
  // The companion-report scenario [3]: the JPEG-like pipeline on a small
  // heterogeneous workstation cluster; bi-criteria exploration must produce
  // a monotone trade-off.
  const auto pipe = gen::jpeg_like_pipeline();
  const auto plat = gen::random_comm_hom_het_failures({.processors = 8}, 99);
  algorithms::SolveOptions options;
  options.method = algorithms::Method::Heuristic;

  // The heuristic's pre-polish candidate pool is threshold-independent, so
  // its best feasible FP is monotone in the budget; local-search polish can
  // perturb that slightly, hence the 10% slack.
  double previous_fp = 1.1;
  const double floor = mapping::latency_lower_bound(pipe, plat);
  for (const double factor : {1.5, 3.0, 6.0, 12.0}) {
    const auto solved = algorithms::solve_min_fp_for_latency(pipe, plat, floor * factor, options);
    if (!solved.has_value()) continue;
    EXPECT_LE(solved->solution.failure_probability, previous_fp * 1.10 + 1e-12)
        << "FP should not materially increase when the latency budget relaxes";
    previous_fp = std::min(previous_fp, solved->solution.failure_probability);
  }
  EXPECT_LT(previous_fp, 1.0);  // at least one threshold was feasible
}

}  // namespace
}  // namespace relap
