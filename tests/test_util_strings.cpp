// Tests for util/strings.hpp: parsing strictness and formatting round-trips.

#include "relap/util/strings.hpp"

#include <gtest/gtest.h>

namespace relap::util {
namespace {

TEST(Trim, Basics) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a"), "a");
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t x \t"), "x");
}

TEST(SplitWs, SkipsRuns) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
  const auto tokens = split_ws("  a \t b   c ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "b");
  EXPECT_EQ(tokens[2], "c");
}

TEST(Split, KeepsEmptyTokens) {
  const auto tokens = split("a,,b,", ',');
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "");
  EXPECT_EQ(tokens[2], "b");
  EXPECT_EQ(tokens[3], "");
}

TEST(ParseDouble, StrictWholeToken) {
  EXPECT_EQ(parse_double("1.5"), 1.5);
  EXPECT_EQ(parse_double("-2"), -2.0);
  EXPECT_EQ(parse_double("1e3"), 1000.0);
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5 ").has_value());
}

TEST(ParseSize, StrictNonNegativeInteger) {
  EXPECT_EQ(parse_size("0"), 0u);
  EXPECT_EQ(parse_size("42"), 42u);
  EXPECT_FALSE(parse_size("-1").has_value());
  EXPECT_FALSE(parse_size("1.5").has_value());
  EXPECT_FALSE(parse_size("").has_value());
  EXPECT_FALSE(parse_size("4x").has_value());
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(1.0, 3), "1.000");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(FormatDouble, RoundTripsThroughParse) {
  for (const double v : {0.0, 1.0, -1.5, 0.1, 105.0, 1e-9, 123456.789, 0.64}) {
    const auto parsed = parse_double(format_double(v));
    ASSERT_TRUE(parsed.has_value()) << format_double(v);
    EXPECT_DOUBLE_EQ(*parsed, v);
  }
}

TEST(Join, Basics) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

}  // namespace
}  // namespace relap::util
