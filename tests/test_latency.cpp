// Tests for mapping/latency.hpp: hand-computed goldens including both paper
// examples digit for digit, the Eq.(1)/Eq.(2) equivalence on identical-link
// platforms, and the general-mapping path weight.

#include "relap/mapping/latency.hpp"

#include <gtest/gtest.h>

#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/platform/builders.hpp"
#include "relap/util/stats.hpp"

namespace relap::mapping {
namespace {

// --- Paper Figure 3 / Figure 4 (Section 3). -------------------------------

TEST(LatencyPaper, Fig4SingleProcessorIs105) {
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  EXPECT_DOUBLE_EQ(latency_eq2(pipe, plat, gen::fig4_single_mapping()), 105.0);
  // Mapping everything on the other processor is also 105 (paper: "either
  // if we choose P1 or P2").
  EXPECT_DOUBLE_EQ(
      latency_eq2(pipe, plat, IntervalMapping::single_interval(2, {1})), 105.0);
}

TEST(LatencyPaper, Fig4SplitMappingIs7) {
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  EXPECT_DOUBLE_EQ(latency_eq2(pipe, plat, gen::fig4_split_mapping()), 7.0);
}

TEST(LatencyPaper, Fig4DispatchUsesEq2) {
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  EXPECT_DOUBLE_EQ(latency(pipe, plat, gen::fig4_split_mapping()), 7.0);
}

// --- Paper Figure 5 (Section 3). -------------------------------------------

TEST(LatencyPaper, Fig5TwoIntervalMappingIsExactly22) {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  EXPECT_DOUBLE_EQ(latency_eq1(pipe, plat, gen::fig5_two_interval_mapping()), 22.0);
}

TEST(LatencyPaper, Fig5BestSingleIntervalLatency) {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  // Two fast processors: 2 * 10/1 + 101/100 + 0 = 21.01.
  EXPECT_DOUBLE_EQ(latency_eq1(pipe, plat, gen::fig5_single_interval_mapping()), 21.01);
  // Three fast processors exceed the threshold 22 (paper: 3*10 + 101/100 > 22).
  const auto three = IntervalMapping::single_interval(2, {1, 2, 3});
  EXPECT_GT(latency_eq1(pipe, plat, three), 22.0);
  EXPECT_DOUBLE_EQ(latency_eq1(pipe, plat, three), 31.01);
}

// --- Equation (1) structure. -----------------------------------------------

TEST(LatencyEq1, SerializedInputScalesWithReplication) {
  const auto pipe = pipeline::Pipeline({4.0}, {6.0, 3.0});
  const auto plat = platform::make_fully_homogeneous(4, 2.0, 3.0, 0.1);
  // k replicas: k * 6/3 + 4/2 + 3/3 = 2k + 3.
  for (std::size_t k = 1; k <= 4; ++k) {
    std::vector<platform::ProcessorId> group(k);
    for (std::size_t u = 0; u < k; ++u) group[u] = u;
    EXPECT_DOUBLE_EQ(latency_eq1(pipe, plat, IntervalMapping::single_interval(1, group)),
                     2.0 * static_cast<double>(k) + 3.0);
  }
}

TEST(LatencyEq1, SlowestReplicaDeterminesCompute) {
  const auto pipe = pipeline::Pipeline({12.0}, {0.0, 0.0});
  const auto plat = platform::make_comm_homogeneous({6.0, 3.0, 2.0}, 1.0, 0.1);
  EXPECT_DOUBLE_EQ(latency_eq1(pipe, plat, IntervalMapping::single_interval(1, {0})), 2.0);
  EXPECT_DOUBLE_EQ(latency_eq1(pipe, plat, IntervalMapping::single_interval(1, {0, 1})), 4.0);
  EXPECT_DOUBLE_EQ(latency_eq1(pipe, plat, IntervalMapping::single_interval(1, {0, 1, 2})), 6.0);
}

TEST(LatencyEq1, MultiIntervalHandComputed) {
  // Stages: w = [2, 4], delta = [1, 2, 3]; b = 1; speeds all 1.
  const auto pipe = pipeline::Pipeline({2.0, 4.0}, {1.0, 2.0, 3.0});
  const auto plat = platform::make_fully_homogeneous(3, 1.0, 1.0, 0.1);
  // [0..0]->{0}, [1..1]->{1,2}: 1*1 + 2 + 2*2 + 4 + 3 = 14.
  const IntervalMapping m({{{0, 0}, {0}}, {{1, 1}, {1, 2}}});
  EXPECT_DOUBLE_EQ(latency_eq1(pipe, plat, m), 14.0);
}

// --- Equations (1) and (2) agree when links are identical. ------------------

class LatencyEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatencyEquivalence, Eq1EqualsEq2OnIdenticalLinks) {
  const std::uint64_t seed = GetParam();
  const auto pipe = gen::random_uniform_pipeline(5, seed);
  gen::PlatformGenOptions options;
  options.processors = 6;
  const auto plat = gen::random_comm_hom_het_failures(options, seed ^ 0xABCD);

  // A few representative mappings: single interval, two intervals, three.
  const std::vector<IntervalMapping> mappings = {
      IntervalMapping::single_interval(5, {0, 3, 5}),
      IntervalMapping({{{0, 2}, {1, 2}}, {{3, 4}, {0, 4}}}),
      IntervalMapping({{{0, 0}, {5}}, {{1, 3}, {0, 1, 2}}, {{4, 4}, {3}}}),
  };
  for (const IntervalMapping& m : mappings) {
    const double eq1 = latency_eq1(pipe, plat, m);
    const double eq2 = latency_eq2(pipe, plat, m);
    EXPECT_TRUE(util::approx_equal(eq1, eq2))
        << "eq1=" << eq1 << " eq2=" << eq2 << " mapping=" << m.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencyEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

// --- General-mapping latency (Theorem 4 path weight). -----------------------

TEST(LatencyGeneral, NoTransferBetweenSameProcessorStages) {
  const auto pipe = pipeline::Pipeline({1.0, 1.0, 1.0}, {1.0, 5.0, 5.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.1);
  // All on processor 0: 1/1 + 3*1 + 1/1 = 5 (no internal transfers).
  EXPECT_DOUBLE_EQ(latency(pipe, plat, GeneralMapping({0, 0, 0})), 5.0);
  // Alternating: pays both internal deltas: 1 + 1 + 5 + 1 + 5 + 1 + 1 = 15.
  EXPECT_DOUBLE_EQ(latency(pipe, plat, GeneralMapping({0, 1, 0})), 15.0);
}

TEST(LatencyGeneral, NonConsecutiveReuseMatchesHandComputation) {
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  // The split mapping as a general mapping gives the same 7.
  EXPECT_DOUBLE_EQ(latency(pipe, plat, GeneralMapping({0, 1})), 7.0);
  // Both stages on processor 0 equals the single-interval 105.
  EXPECT_DOUBLE_EQ(latency(pipe, plat, GeneralMapping({0, 0})), 105.0);
}

TEST(LatencyGeneral, AgreesWithIntervalEvaluatorOnUnreplicatedIntervalMappings) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(4, seed);
    gen::PlatformGenOptions options;
    options.processors = 4;
    const auto plat = gen::random_fully_heterogeneous(options, seed * 31);
    // Interval mapping [0..1]->{2}, [2..3]->{0} equals general {2,2,0,0}.
    const IntervalMapping interval({{{0, 1}, {2}}, {{2, 3}, {0}}});
    const GeneralMapping general({2, 2, 0, 0});
    EXPECT_TRUE(util::approx_equal(latency(pipe, plat, interval), latency(pipe, plat, general)))
        << "seed " << seed;
  }
}

// --- Lower bound. -----------------------------------------------------------

TEST(LatencyLowerBound, NeverExceedsAnyMapping) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(3, seed);
    gen::PlatformGenOptions options;
    options.processors = 3;
    const auto plat = gen::random_fully_heterogeneous(options, seed * 77);
    const double bound = latency_lower_bound(pipe, plat);
    EXPECT_LE(bound,
              latency(pipe, plat, IntervalMapping::single_interval(3, {0})) + 1e-9);
    EXPECT_LE(bound,
              latency(pipe, plat, IntervalMapping({{{0, 0}, {0}}, {{1, 2}, {1, 2}}})) + 1e-9);
  }
}

TEST(LatencyDeath, MappingMustCoverPipeline) {
  const auto pipe = pipeline::Pipeline({1.0, 1.0}, {1.0, 1.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.1);
  EXPECT_DEATH((void)latency_eq1(pipe, plat, IntervalMapping::single_interval(3, {0})),
               "cover");
  // Eq.(1) on heterogeneous links is a contract violation.
  const auto het = gen::fig4_platform();
  EXPECT_DEATH((void)latency_eq1(gen::fig3_pipeline(), het, gen::fig4_single_mapping()),
               "identical-link");
}

}  // namespace
}  // namespace relap::mapping
