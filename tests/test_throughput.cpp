// Tests for mapping/throughput.hpp (the Section 5 extension): hand-computed
// periods and consistency properties.

#include "relap/mapping/throughput.hpp"

#include <gtest/gtest.h>

#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/platform/builders.hpp"

namespace relap::mapping {
namespace {

TEST(Throughput, SingleProcessorPeriodIsFullCycle) {
  const auto pipe = pipeline::Pipeline({4.0}, {2.0, 6.0});
  const auto plat = platform::make_fully_homogeneous(1, 2.0, 2.0, 0.1);
  // receive 2/2 + compute 4/2 + send 6/2 = 1 + 2 + 3 = 6.
  EXPECT_DOUBLE_EQ(period(pipe, plat, IntervalMapping::single_interval(1, {0})), 6.0);
  EXPECT_DOUBLE_EQ(throughput(pipe, plat, IntervalMapping::single_interval(1, {0})),
                   1.0 / 6.0);
}

TEST(Throughput, SplitReducesPeriod) {
  // Two heavy stages on one processor vs one each: splitting halves the
  // compute per resource and the period drops.
  const auto pipe = pipeline::Pipeline({10.0, 10.0}, {1.0, 1.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.1);
  const double single = period(pipe, plat, IntervalMapping::single_interval(2, {0}));
  const double split = period(pipe, plat, IntervalMapping({{{0, 0}, {0}}, {{1, 1}, {1}}}));
  EXPECT_DOUBLE_EQ(single, 1.0 + 20.0 + 1.0);
  EXPECT_DOUBLE_EQ(split, 1.0 + 10.0 + 1.0);
  EXPECT_LT(split, single);
}

TEST(Throughput, ReplicationCostsOutgoingCopies) {
  const auto pipe = pipeline::Pipeline({2.0, 2.0}, {1.0, 4.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(4, 1.0, 1.0, 0.1);
  // Interval 0 on {0}, interval 1 on {1,2,3}: the sender of interval 0 pays
  // 3 serialized copies of delta_1 = 4.
  const IntervalMapping m({{{0, 0}, {0}}, {{1, 1}, {1, 2, 3}}});
  // Processor 0 cycle: 1 (in) + 2 (compute) + 3*4 (sends) = 15; the interval
  // 1 replicas: 4 (worst receive) + 2 + 1 = 7; P_in: 1.
  EXPECT_DOUBLE_EQ(period(pipe, plat, m), 15.0);
}

TEST(Throughput, InputSerializationBoundsPeriod) {
  // delta_0 large and highly replicated first interval: P_in is the
  // bottleneck.
  const auto pipe = pipeline::Pipeline({0.5}, {10.0, 0.0});
  const auto plat = platform::make_fully_homogeneous(3, 100.0, 1.0, 0.1);
  const IntervalMapping m = IntervalMapping::single_interval(1, {0, 1, 2});
  // P_in: 3 * 10 = 30; each replica: 10 + 0.005 + 0 ~ 10.005.
  EXPECT_DOUBLE_EQ(period(pipe, plat, m), 30.0);
}

TEST(Throughput, PeriodNeverExceedsLatency) {
  // For any mapping, one data set's end-to-end latency is at least the
  // busiest resource's cycle time.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(4, seed);
    gen::PlatformGenOptions options;
    options.processors = 5;
    const auto plat = gen::random_comm_hom_het_failures(options, seed * 13);
    const IntervalMapping m({{{0, 1}, {0, 1}}, {{2, 3}, {2, 3, 4}}});
    EXPECT_LE(period(pipe, plat, m), latency(pipe, plat, m) + 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace relap::mapping
