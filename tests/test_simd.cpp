// Tests for util/simd.hpp — the width-generic lane abstraction under the
// batched kernels. The contract pinned here is *bit-exactness*: every lane
// op applied to lane l must produce exactly the bits the scalar expression
// produces on lane l alone, including the sign of zero, tie/NaN selection
// of min/max, mask semantics of select, and the two-word (sum +
// compensation) state of the masked Kahan accumulator. These hold for the
// generic fallback and the AVX2/NEON fast paths alike; CI compiles both.

#include "relap/util/simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "relap/util/rng.hpp"
#include "relap/util/stats.hpp"

namespace relap::util::simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Exact bit equality, so -0.0 vs +0.0 and NaN payloads are distinguished.
void expect_same_bits(double actual, double expected, const char* op, std::size_t lane) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(actual), std::bit_cast<std::uint64_t>(expected))
      << op << " lane " << lane << ": " << actual << " vs " << expected;
}

template <std::size_t W>
void check_double_binops(std::uint64_t seed) {
  util::Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    DoubleLanes<W> a;
    DoubleLanes<W> b;
    for (std::size_t l = 0; l < W; ++l) {
      // Magnitude-spread operands, occasionally special values.
      a.v[l] = (rng.uniform(-1.0, 1.0)) * std::pow(10.0, rng.uniform(-12.0, 12.0));
      b.v[l] = (rng.uniform(-1.0, 1.0)) * std::pow(10.0, rng.uniform(-12.0, 12.0));
      if (rng.bernoulli(0.05)) a.v[l] = rng.bernoulli(0.5) ? 0.0 : -0.0;
      if (rng.bernoulli(0.05)) b.v[l] = rng.bernoulli(0.5) ? kInf : -kInf;
      if (rng.bernoulli(0.02)) b.v[l] = a.v[l];  // exercise ties
    }
    const DoubleLanes<W> sum = add(a, b);
    const DoubleLanes<W> dif = sub(a, b);
    const DoubleLanes<W> prd = mul(a, b);
    const DoubleLanes<W> quo = div(a, b);
    const DoubleLanes<W> mn = min(a, b);
    const DoubleLanes<W> mx = max(a, b);
    const UintLanes<W> lt = less(a, b);
    for (std::size_t l = 0; l < W; ++l) {
      expect_same_bits(sum.v[l], a.v[l] + b.v[l], "add", l);
      expect_same_bits(dif.v[l], a.v[l] - b.v[l], "sub", l);
      expect_same_bits(prd.v[l], a.v[l] * b.v[l], "mul", l);
      expect_same_bits(quo.v[l], a.v[l] / b.v[l], "div", l);
      expect_same_bits(mn.v[l], a.v[l] < b.v[l] ? a.v[l] : b.v[l], "min", l);
      expect_same_bits(mx.v[l], a.v[l] > b.v[l] ? a.v[l] : b.v[l], "max", l);
      EXPECT_EQ(lt.v[l], a.v[l] < b.v[l] ? ~std::uint64_t{0} : std::uint64_t{0})
          << "less lane " << l;
    }
  }
}

TEST(SimdLanes, DoubleBinopsMatchScalarBitForBit) {
  check_double_binops<1>(11);
  check_double_binops<4>(12);
  check_double_binops<8>(13);
}

TEST(SimdLanes, MinMaxTieAndNaNSemantics) {
  // min/max take the SECOND operand on ties and NaN (MINPD/MAXPD + the C
  // ternary agree) — the kernels rely on this to mirror std::min(acc, x) as
  // min(x, acc) and std::max(acc, x) as max(x, acc).
  DoubleLanes<4> a{{+0.0, -0.0, kNaN, 1.0}};
  DoubleLanes<4> b{{-0.0, +0.0, 1.0, kNaN}};
  const DoubleLanes<4> mn = min(a, b);
  const DoubleLanes<4> mx = max(a, b);
  expect_same_bits(mn.v[0], -0.0, "min(+0,-0)", 0);  // +0 < -0 is false -> b
  expect_same_bits(mn.v[1], +0.0, "min(-0,+0)", 1);
  expect_same_bits(mn.v[2], 1.0, "min(NaN,1)", 2);  // NaN < x is false -> b
  EXPECT_TRUE(std::isnan(mn.v[3])) << "min(1,NaN) must pick b = NaN";
  expect_same_bits(mx.v[0], -0.0, "max(+0,-0)", 0);
  expect_same_bits(mx.v[1], +0.0, "max(-0,+0)", 1);
  expect_same_bits(mx.v[2], 1.0, "max(NaN,1)", 2);
  EXPECT_TRUE(std::isnan(mx.v[3])) << "max(1,NaN) must pick b = NaN";

  // The std::min/std::max operand-order mirror, on ties of distinct bits.
  const double lo = +0.0;
  const double x = -0.0;
  expect_same_bits(min(broadcast<1>(x), broadcast<1>(lo)).v[0], std::min(lo, x), "mirror-min", 0);
  expect_same_bits(max(broadcast<1>(x), broadcast<1>(lo)).v[0], std::max(lo, x), "mirror-max", 0);
}

TEST(SimdLanes, SelectPicksPerLane) {
  DoubleLanes<4> a{{1.0, 2.0, 3.0, 4.0}};
  DoubleLanes<4> b{{-1.0, -2.0, -3.0, -4.0}};
  UintLanes<4> mask{{~std::uint64_t{0}, 0, ~std::uint64_t{0}, 0}};
  const DoubleLanes<4> out = select(mask, a, b);
  expect_same_bits(out.v[0], 1.0, "select", 0);
  expect_same_bits(out.v[1], -2.0, "select", 1);
  expect_same_bits(out.v[2], 3.0, "select", 2);
  expect_same_bits(out.v[3], -4.0, "select", 3);
}

TEST(SimdLanes, UintOpsAndGathersMatchScalar) {
  util::Rng rng(21);
  std::vector<double> table(64);
  for (double& x : table) x = rng.uniform(0.5, 10.0);
  constexpr std::size_t W = 8;
  for (int i = 0; i < 100; ++i) {
    UintLanes<W> a;
    UintLanes<W> b;
    for (std::size_t l = 0; l < W; ++l) {
      a.v[l] = rng();
      b.v[l] = rng.bernoulli(0.1) ? a.v[l] : rng();
    }
    for (std::size_t l = 0; l < W; ++l) {
      EXPECT_EQ(add_u(a, b).v[l], a.v[l] + b.v[l]);
      EXPECT_EQ(mul_u(a, b).v[l], a.v[l] * b.v[l]);
      EXPECT_EQ(xor_u(a, b).v[l], a.v[l] ^ b.v[l]);
      EXPECT_EQ(and_u(a, b).v[l], a.v[l] & b.v[l]);
      EXPECT_EQ(or_u(a, b).v[l], a.v[l] | b.v[l]);
      EXPECT_EQ(shr_u<27>(a).v[l], a.v[l] >> 27);
      EXPECT_EQ(less_u(a, b).v[l], a.v[l] < b.v[l] ? ~std::uint64_t{0} : 0u);
      EXPECT_EQ(equal_u(a, b).v[l], a.v[l] == b.v[l] ? ~std::uint64_t{0} : 0u);
      EXPECT_EQ(not_equal_u(a, b).v[l], a.v[l] != b.v[l] ? ~std::uint64_t{0} : 0u);
      expect_same_bits(to_unit_double_lanes(a).v[l],
                       static_cast<double>(a.v[l] >> 11) * 0x1.0p-53, "to_unit", l);
    }
    UintLanes<W> row;
    UintLanes<W> col;
    for (std::size_t l = 0; l < W; ++l) {
      row.v[l] = a.v[l] % 8;
      col.v[l] = b.v[l] % 8;
    }
    const DoubleLanes<W> g1 = gather(table.data(), row);
    const DoubleLanes<W> g2 = gather2(table.data(), row, col, 8);
    for (std::size_t l = 0; l < W; ++l) {
      expect_same_bits(g1.v[l], table[row.v[l]], "gather", l);
      expect_same_bits(g2.v[l], table[row.v[l] * 8 + col.v[l]], "gather2", l);
    }
  }
}

TEST(SimdLanes, CounterHashLanesMatchScalar) {
  // The Monte-Carlo kernels build counter_hash(seed, c) out of lane ops:
  // mix(seed + (c + 1) * gamma) with the splitmix64 finalizer applied per
  // lane. Reassemble it here from the public ops and pin bit equality.
  const std::uint64_t seed = 0xFEEDFACE12345ULL;
  constexpr std::size_t W = 8;
  for (std::uint64_t base = 0; base < 4096; base += W) {
    UintLanes<W> z;
    for (std::size_t l = 0; l < W; ++l) {
      z.v[l] = seed + (base + l + 1) * util::kSplitMix64Gamma;
    }
    // Finalizer via the generic lane ops, mirroring util::splitmix64_mix.
    z = xor_u(z, shr_u<30>(z));
    z = mul_u(z, broadcast_u<W>(0xBF58476D1CE4E5B9ULL));
    z = xor_u(z, shr_u<27>(z));
    z = mul_u(z, broadcast_u<W>(0x94D049BB133111EBULL));
    z = xor_u(z, shr_u<31>(z));
    const DoubleLanes<W> unit = to_unit_double_lanes(z);
    for (std::size_t l = 0; l < W; ++l) {
      EXPECT_EQ(z.v[l], util::counter_hash(seed, base + l)) << "counter " << base + l;
      expect_same_bits(unit.v[l], util::to_unit_double(util::counter_hash(seed, base + l)),
                       "unit", l);
    }
  }
}

template <std::size_t W>
void check_masked_kahan(std::uint64_t seed) {
  // One scalar KahanSum per lane, fed only the terms whose mask is set,
  // must match KahanLanes::add_masked bit for bit — including the skipped
  // steps, where the lane's compensation must pass through untouched.
  util::Rng rng(seed);
  KahanLanes<W> lanes;
  util::KahanSum scalar[W];
  for (int step = 0; step < 500; ++step) {
    DoubleLanes<W> x;
    UintLanes<W> mask;
    for (std::size_t l = 0; l < W; ++l) {
      x.v[l] = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-9.0, 9.0));
      mask.v[l] = rng.bernoulli(0.6) ? ~std::uint64_t{0} : 0;
      if (mask.v[l] != 0) scalar[l].add(x.v[l]);
    }
    lanes.add_masked(x, mask);
    for (std::size_t l = 0; l < W; ++l) {
      expect_same_bits(lanes.value().v[l], scalar[l].value(), "kahan", l);
    }
  }
}

TEST(SimdLanes, MaskedKahanMatchesScalarSkip) {
  check_masked_kahan<1>(31);
  check_masked_kahan<4>(32);
  check_masked_kahan<8>(33);
}

TEST(SimdLanes, UnmaskedKahanMatchesScalar) {
  util::Rng rng(41);
  KahanLanes<8> lanes;
  util::KahanSum scalar[8];
  for (int step = 0; step < 500; ++step) {
    DoubleLanes<8> x;
    for (std::size_t l = 0; l < 8; ++l) {
      x.v[l] = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-9.0, 9.0));
      scalar[l].add(x.v[l]);
    }
    lanes.add(x);
    for (std::size_t l = 0; l < 8; ++l) {
      expect_same_bits(lanes.value().v[l], scalar[l].value(), "kahan-unmasked", l);
    }
  }
}

TEST(SimdLanes, EffectiveLaneWidthResolvesDefault) {
  EXPECT_EQ(effective_lane_width(0), kDefaultLaneWidth);
  EXPECT_EQ(effective_lane_width(1), 1u);
  EXPECT_EQ(effective_lane_width(4), 4u);
  EXPECT_EQ(effective_lane_width(8), 8u);
}

TEST(SimdLanes, IsaNameIsOneOfTheKnownBackends) {
  const std::string isa = isa_name();
  EXPECT_TRUE(isa == "avx2" || isa == "neon" || isa == "scalar") << isa;
}

}  // namespace
}  // namespace relap::util::simd
