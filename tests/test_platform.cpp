// Tests for platform/platform.hpp and builders.hpp: construction,
// classification along both axes, ordering queries.

#include "relap/platform/builders.hpp"
#include "relap/platform/platform.hpp"

#include <gtest/gtest.h>

namespace relap::platform {
namespace {

TEST(Platform, FullyHomogeneousClassification) {
  const Platform p = make_fully_homogeneous(4, 2.0, 5.0, 0.1);
  EXPECT_EQ(p.processor_count(), 4u);
  EXPECT_EQ(p.comm_class(), CommClass::FullyHomogeneous);
  EXPECT_EQ(p.failure_class(), FailureClass::Homogeneous);
  EXPECT_TRUE(p.is_fully_homogeneous());
  EXPECT_TRUE(p.has_homogeneous_links());
  EXPECT_TRUE(p.is_failure_homogeneous());
  EXPECT_DOUBLE_EQ(p.common_bandwidth(), 5.0);
  EXPECT_DOUBLE_EQ(p.common_failure_prob(), 0.1);
}

TEST(Platform, CommHomogeneousClassification) {
  const Platform p = make_comm_homogeneous({1.0, 2.0, 3.0}, 4.0, 0.2);
  EXPECT_EQ(p.comm_class(), CommClass::CommHomogeneous);
  EXPECT_FALSE(p.is_fully_homogeneous());
  EXPECT_TRUE(p.has_homogeneous_links());
}

TEST(Platform, HeterogeneousFailuresDetected) {
  const Platform p = make_comm_homogeneous({1.0, 2.0}, 4.0, {0.1, 0.2});
  EXPECT_EQ(p.failure_class(), FailureClass::Heterogeneous);
  EXPECT_FALSE(p.is_failure_homogeneous());
}

TEST(Platform, FullyHomSpeedsHetFailures) {
  const Platform p = make_fully_homogeneous_het_failures(2.0, 3.0, {0.1, 0.2, 0.3});
  EXPECT_EQ(p.comm_class(), CommClass::FullyHomogeneous);
  EXPECT_EQ(p.failure_class(), FailureClass::Heterogeneous);
}

TEST(Platform, FullyHeterogeneousClassification) {
  PlatformBuilder builder;
  const ProcessorId a = builder.add_processor(1.0, 0.1);
  const ProcessorId b = builder.add_processor(1.0, 0.1);
  builder.default_bandwidth(1.0).link(a, b, 100.0);
  const Platform p = builder.build();
  EXPECT_EQ(p.comm_class(), CommClass::FullyHeterogeneous);
  EXPECT_FALSE(p.has_homogeneous_links());
}

TEST(Platform, InOutLinkHeterogeneityBreaksCommHomogeneity) {
  PlatformBuilder builder;
  builder.add_processor(1.0, 0.1);
  builder.add_processor(1.0, 0.1);
  builder.default_bandwidth(2.0).link_in(0, 7.0);
  EXPECT_EQ(builder.build().comm_class(), CommClass::FullyHeterogeneous);
}

TEST(Platform, BandwidthAccessors) {
  PlatformBuilder builder;
  const ProcessorId a = builder.add_processor(1.0, 0.0);
  const ProcessorId b = builder.add_processor(2.0, 0.5);
  builder.default_bandwidth(1.0)
      .directed_link(a, b, 10.0)
      .link_in(a, 3.0)
      .link_out(b, 4.0);
  const Platform p = builder.build();
  EXPECT_DOUBLE_EQ(p.bandwidth(a, b), 10.0);
  EXPECT_DOUBLE_EQ(p.bandwidth(b, a), 1.0);  // directed override only
  EXPECT_DOUBLE_EQ(p.bandwidth_in(a), 3.0);
  EXPECT_DOUBLE_EQ(p.bandwidth_in(b), 1.0);
  EXPECT_DOUBLE_EQ(p.bandwidth_out(b), 4.0);
}

TEST(Platform, OrderingQueries) {
  const Platform p = make_comm_homogeneous({3.0, 1.0, 2.0}, 1.0, {0.5, 0.1, 0.3});
  EXPECT_EQ(p.fastest_processor(), 0u);
  EXPECT_EQ(p.by_speed_desc(), (std::vector<ProcessorId>{0, 2, 1}));
  EXPECT_EQ(p.by_reliability(), (std::vector<ProcessorId>{1, 2, 0}));
}

TEST(Platform, OrderingTiesByIdStable) {
  const Platform p = make_fully_homogeneous(3, 1.0, 1.0, 0.1);
  EXPECT_EQ(p.by_speed_desc(), (std::vector<ProcessorId>{0, 1, 2}));
  EXPECT_EQ(p.by_reliability(), (std::vector<ProcessorId>{0, 1, 2}));
}

TEST(Platform, DescribeMentionsClass) {
  const Platform p = make_comm_homogeneous({1.0, 2.0}, 1.0, 0.1);
  EXPECT_NE(p.describe().find("CommHomogeneous"), std::string::npos);
}

TEST(PlatformDeath, RejectsMalformedInputs) {
  EXPECT_DEATH(make_fully_homogeneous(0, 1.0, 1.0, 0.1), "at least one processor");
  EXPECT_DEATH(make_fully_homogeneous(2, -1.0, 1.0, 0.1), "finite");
  EXPECT_DEATH(make_fully_homogeneous(2, 1.0, 0.0, 0.1), "finite");
  EXPECT_DEATH(make_fully_homogeneous(2, 1.0, 1.0, 1.5), "\\[0, 1\\]");
  const Platform p = make_fully_homogeneous(2, 1.0, 1.0, 0.1);
  EXPECT_DEATH((void)p.bandwidth(0, 0), "undefined");
  EXPECT_DEATH((void)p.speed(5), "out of range");
}

}  // namespace
}  // namespace relap::platform
