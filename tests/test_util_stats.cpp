// Tests for util/stats.hpp: Kahan summation, Welford statistics, tolerant
// comparisons.

#include "relap/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

namespace relap::util {
namespace {

TEST(KahanSum, ExactOnSmallInputs) {
  KahanSum sum;
  sum.add(1.0);
  sum.add(2.0);
  sum.add(3.0);
  EXPECT_DOUBLE_EQ(sum.value(), 6.0);
}

TEST(KahanSum, CompensatesCatastrophicCancellation) {
  // 1 + 1e-16 added 1e6 times: naive double addition loses all the 1e-16s
  // (1 + 1e-16 == 1 in double), Kahan keeps them.
  KahanSum sum;
  sum.add(1.0);
  for (int i = 0; i < 1'000'000; ++i) sum.add(1e-16);
  EXPECT_NEAR(sum.value() - 1.0, 1e-10, 1e-12);

  double naive = 1.0;
  for (int i = 0; i < 1'000'000; ++i) naive += 1e-16;
  EXPECT_DOUBLE_EQ(naive, 1.0);  // demonstrates the failure Kahan avoids
}

TEST(KahanSum, SpanHelperMatchesLoop) {
  const std::vector<double> values{0.1, 0.2, 0.3, 0.4};
  KahanSum loop;
  for (const double v : values) loop.add(v);
  EXPECT_DOUBLE_EQ(kahan_sum(values), loop.value());
}

TEST(StreamingStats, EmptyIsSafe) {
  StreamingStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.ci95_half_width(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with Bessel correction: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(StreamingStats, Ci95ShrinksWithSamples) {
  StreamingStats small;
  StreamingStats large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(StreamingStats, MergeMatchesSequentialMoments) {
  StreamingStats sequential;
  StreamingStats left;
  StreamingStats right;
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0, -1.0, 12.5};
  for (std::size_t i = 0; i < values.size(); ++i) {
    sequential.add(values[i]);
    (i < 4 ? left : right).add(values[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_NEAR(left.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), sequential.min());
  EXPECT_DOUBLE_EQ(left.max(), sequential.max());
}

TEST(StreamingStats, MergeWithEmptySides) {
  StreamingStats stats;
  stats.add(3.0);
  stats.add(5.0);
  StreamingStats empty;
  StreamingStats copy = stats;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean(), 4.0);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 4.0);
  EXPECT_DOUBLE_EQ(empty.min(), 3.0);
  EXPECT_DOUBLE_EQ(empty.max(), 5.0);
}

TEST(WilsonInterval, CoversTheEmpiricalRate) {
  const ProportionInterval interval = wilson_interval(30, 100);
  EXPECT_LT(interval.low, 0.3);
  EXPECT_GT(interval.high, 0.3);
  EXPECT_TRUE(interval.contains(0.3));
  EXPECT_FALSE(interval.contains(0.5));
  EXPECT_TRUE(interval.contains(0.5, 0.2));
}

TEST(WilsonInterval, DegenerateEndpointsKeepPositiveWidth) {
  const ProportionInterval none = wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(none.low, 0.0);
  EXPECT_GT(none.high, 0.0);
  EXPECT_LT(none.high, 0.1);
  const ProportionInterval all = wilson_interval(100, 100);
  EXPECT_DOUBLE_EQ(all.high, 1.0);
  EXPECT_LT(all.low, 1.0);
  EXPECT_GT(all.low, 0.9);
  // One trial: maximally wide but still a proper subinterval of [0, 1].
  const ProportionInterval one = wilson_interval(1, 1);
  EXPECT_GT(one.half_width(), 0.2);
  EXPECT_LE(one.high, 1.0);
}

TEST(WilsonInterval, ShrinksWithSampleSize) {
  EXPECT_GT(wilson_interval(5, 10).half_width(), wilson_interval(500, 1000).half_width());
  EXPECT_GT(wilson_interval(0, 10).high, wilson_interval(0, 10'000).high);
}

TEST(RegularizedIncompleteBeta, KnownValues) {
  // I_x(1, 1) is the uniform CDF.
  EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-14);
  // I_x(1, b) = 1 - (1-x)^b.
  EXPECT_NEAR(regularized_incomplete_beta(1.0, 3.0, 0.2), 1.0 - 0.8 * 0.8 * 0.8, 1e-14);
  // I_x(a, 1) = x^a.
  EXPECT_NEAR(regularized_incomplete_beta(4.0, 1.0, 0.5), 0.0625, 1e-14);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(regularized_incomplete_beta(3.5, 2.25, 0.4),
              1.0 - regularized_incomplete_beta(2.25, 3.5, 0.6), 1e-13);
  // Endpoints.
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 5.0, 1.0), 1.0);
}

TEST(ClopperPearsonInterval, DegenerateEndpointsHaveClosedForms) {
  // s = 0: [0, 1 - (alpha/2)^(1/n)];  s = n: [(alpha/2)^(1/n), 1].
  for (const std::size_t n : {1u, 5u, 30u, 200u}) {
    const ProportionInterval none = clopper_pearson_interval(0, n);
    EXPECT_DOUBLE_EQ(none.low, 0.0);
    EXPECT_NEAR(none.high, 1.0 - std::pow(0.025, 1.0 / static_cast<double>(n)), 1e-10)
        << "n=" << n;
    const ProportionInterval all = clopper_pearson_interval(n, n);
    EXPECT_DOUBLE_EQ(all.high, 1.0);
    EXPECT_NEAR(all.low, std::pow(0.025, 1.0 / static_cast<double>(n)), 1e-10) << "n=" << n;
  }
}

TEST(ClopperPearsonInterval, ContainsTheEmpiricalRateAndShrinks) {
  for (const auto& [s, n] : {std::pair<std::size_t, std::size_t>{3, 10},
                            {50, 100},
                            {1, 2},
                            {250, 1000}}) {
    const ProportionInterval interval = clopper_pearson_interval(s, n);
    const double p_hat = static_cast<double>(s) / static_cast<double>(n);
    EXPECT_LE(interval.low, p_hat);
    EXPECT_GE(interval.high, p_hat);
    EXPECT_GE(interval.low, 0.0);
    EXPECT_LE(interval.high, 1.0);
  }
  EXPECT_GT(clopper_pearson_interval(5, 10).half_width(),
            clopper_pearson_interval(500, 1000).half_width());
}

TEST(ClopperPearsonInterval, IsConservativeRelativeToWilsonInTinyTrials) {
  // The exact interval can only be at least as wide as the score interval in
  // the tiny-trial regimes it exists for (this is why the tri-criteria bench
  // wants it); spot-check the regime rather than prove the theorem.
  for (std::size_t n = 2; n <= 12; ++n) {
    for (std::size_t s = 0; s <= n; ++s) {
      const ProportionInterval exact = clopper_pearson_interval(s, n);
      const ProportionInterval score = wilson_interval(s, n);
      EXPECT_GE(exact.half_width() + 1e-12, score.half_width())
          << "s=" << s << " n=" << n;
    }
  }
}

TEST(ClopperPearsonInterval, MatchesExternallyComputedValues) {
  // scipy.stats.beta.ppf reference values for (s=3, n=10, alpha=0.05):
  // low = betainv(0.025; 3, 8), high = betainv(0.975; 4, 7).
  const ProportionInterval interval = clopper_pearson_interval(3, 10);
  EXPECT_NEAR(interval.low, 0.06673951117773447, 1e-10);
  EXPECT_NEAR(interval.high, 0.6524528500599972, 1e-10);
}

TEST(ApproxEqual, Basics) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
  EXPECT_TRUE(approx_equal(1e9, 1e9 * (1.0 + 1e-10)));
}

TEST(DefinitelyLess, ComplementsApproxEqual) {
  EXPECT_TRUE(definitely_less(1.0, 2.0));
  EXPECT_FALSE(definitely_less(2.0, 1.0));
  EXPECT_FALSE(definitely_less(1.0, 1.0 + 1e-13));  // within tolerance
  EXPECT_FALSE(definitely_less(1.0, 1.0));
}

}  // namespace
}  // namespace relap::util
