// Tests for util/enumeration.hpp: visit counts match closed-form counts,
// early-abort contracts, structural invariants of visited objects.

#include "relap/util/enumeration.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

namespace relap::util {
namespace {

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(3, 4), 0u);
  EXPECT_EQ(binomial(64, 32), 1832624140942590534ULL);
}

TEST(Compositions, VisitsCorrectCountAndContent) {
  std::set<std::vector<std::size_t>> seen;
  const bool complete = for_each_composition(4, 4, [&](std::span<const std::size_t> parts) {
    seen.insert(std::vector<std::size_t>(parts.begin(), parts.end()));
    EXPECT_EQ(std::accumulate(parts.begin(), parts.end(), std::size_t{0}), 4u);
    for (const std::size_t p : parts) EXPECT_GE(p, 1u);
    return true;
  });
  EXPECT_TRUE(complete);
  EXPECT_EQ(seen.size(), 8u);  // 2^{n-1} compositions of 4
  EXPECT_EQ(count_compositions(4, 4), 8u);
}

TEST(Compositions, MaxPartsCap) {
  std::size_t visits = 0;
  for_each_composition(5, 2, [&](std::span<const std::size_t> parts) {
    EXPECT_LE(parts.size(), 2u);
    ++visits;
    return true;
  });
  // 1 composition with one part + C(4,1) = 4 with two parts.
  EXPECT_EQ(visits, 5u);
  EXPECT_EQ(count_compositions(5, 2), 5u);
}

TEST(Compositions, EarlyAbort) {
  std::size_t visits = 0;
  const bool complete = for_each_composition(6, 6, [&](std::span<const std::size_t>) {
    return ++visits < 3;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(visits, 3u);
}

TEST(Subsets, CountsAndEmptyHandling) {
  std::size_t with_empty = 0;
  for_each_subset(4, true, [&](const std::vector<std::size_t>&) {
    ++with_empty;
    return true;
  });
  EXPECT_EQ(with_empty, 16u);

  std::size_t without_empty = 0;
  for_each_subset(4, false, [&](const std::vector<std::size_t>& s) {
    EXPECT_FALSE(s.empty());
    ++without_empty;
    return true;
  });
  EXPECT_EQ(without_empty, 15u);
}

TEST(Combinations, LexicographicAndComplete) {
  std::vector<std::vector<std::size_t>> seen;
  for_each_combination(4, 2, [&](std::span<const std::size_t> comb) {
    seen.emplace_back(comb.begin(), comb.end());
    return true;
  });
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.front(), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(seen.back(), (std::vector<std::size_t>{2, 3}));
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
}

TEST(Combinations, EdgeSizes) {
  std::size_t visits = 0;
  for_each_combination(3, 0, [&](std::span<const std::size_t> comb) {
    EXPECT_TRUE(comb.empty());
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 1u);

  visits = 0;
  for_each_combination(3, 3, [&](std::span<const std::size_t> comb) {
    EXPECT_EQ(comb.size(), 3u);
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 1u);
}

TEST(Groupings, VisitCountMatchesClosedForm) {
  for (std::size_t m = 1; m <= 5; ++m) {
    for (std::size_t p = 1; p <= m; ++p) {
      std::size_t visits = 0;
      for_each_grouping(m, p, [&](std::span<const std::size_t> group_of) {
        // Every group non-empty, ids in [0, p].
        std::vector<std::size_t> sizes(p, 0);
        for (const std::size_t g : group_of) {
          EXPECT_LE(g, p);
          if (g < p) ++sizes[g];
        }
        for (const std::size_t s : sizes) EXPECT_GE(s, 1u);
        ++visits;
        return true;
      });
      EXPECT_EQ(visits, count_groupings(m, p)) << "m=" << m << " p=" << p;
    }
  }
}

TEST(Groupings, KnownSmallCounts) {
  // m=2, p=1: {0}, {1}, {0,1} -> 3 ways to pick one non-empty subset.
  EXPECT_EQ(count_groupings(2, 1), 3u);
  // m=2, p=2: ({0},{1}) and ({1},{0}).
  EXPECT_EQ(count_groupings(2, 2), 2u);
  // m=3, p=2: ordered pairs of disjoint non-empty subsets of a 3-set = 12.
  EXPECT_EQ(count_groupings(3, 2), 12u);
}

TEST(Groupings, EarlyAbort) {
  std::size_t visits = 0;
  const bool complete = for_each_grouping(4, 2, [&](std::span<const std::size_t>) {
    return ++visits < 5;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(visits, 5u);
}

TEST(RawGroupingCount, Formula) {
  EXPECT_EQ(count_raw_groupings(3, 2), 27u);  // (p+1)^m = 3^3
  EXPECT_EQ(count_raw_groupings(2, 4), 25u);  // 5^2
}

}  // namespace
}  // namespace relap::util
