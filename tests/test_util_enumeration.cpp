// Tests for util/enumeration.hpp: visit counts match closed-form counts,
// early-abort contracts, structural invariants of visited objects.

#include "relap/util/enumeration.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

namespace relap::util {
namespace {

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(3, 4), 0u);
  EXPECT_EQ(binomial(64, 32), 1832624140942590534ULL);
}

TEST(Compositions, VisitsCorrectCountAndContent) {
  std::set<std::vector<std::size_t>> seen;
  const bool complete = for_each_composition(4, 4, [&](std::span<const std::size_t> parts) {
    seen.insert(std::vector<std::size_t>(parts.begin(), parts.end()));
    EXPECT_EQ(std::accumulate(parts.begin(), parts.end(), std::size_t{0}), 4u);
    for (const std::size_t p : parts) EXPECT_GE(p, 1u);
    return true;
  });
  EXPECT_TRUE(complete);
  EXPECT_EQ(seen.size(), 8u);  // 2^{n-1} compositions of 4
  EXPECT_EQ(count_compositions(4, 4), 8u);
}

TEST(Compositions, MaxPartsCap) {
  std::size_t visits = 0;
  for_each_composition(5, 2, [&](std::span<const std::size_t> parts) {
    EXPECT_LE(parts.size(), 2u);
    ++visits;
    return true;
  });
  // 1 composition with one part + C(4,1) = 4 with two parts.
  EXPECT_EQ(visits, 5u);
  EXPECT_EQ(count_compositions(5, 2), 5u);
}

TEST(Compositions, EarlyAbort) {
  std::size_t visits = 0;
  const bool complete = for_each_composition(6, 6, [&](std::span<const std::size_t>) {
    return ++visits < 3;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(visits, 3u);
}

TEST(Subsets, CountsAndEmptyHandling) {
  std::size_t with_empty = 0;
  for_each_subset(4, true, [&](const std::vector<std::size_t>&) {
    ++with_empty;
    return true;
  });
  EXPECT_EQ(with_empty, 16u);

  std::size_t without_empty = 0;
  for_each_subset(4, false, [&](const std::vector<std::size_t>& s) {
    EXPECT_FALSE(s.empty());
    ++without_empty;
    return true;
  });
  EXPECT_EQ(without_empty, 15u);
}

TEST(Combinations, LexicographicAndComplete) {
  std::vector<std::vector<std::size_t>> seen;
  for_each_combination(4, 2, [&](std::span<const std::size_t> comb) {
    seen.emplace_back(comb.begin(), comb.end());
    return true;
  });
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.front(), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(seen.back(), (std::vector<std::size_t>{2, 3}));
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
}

TEST(Combinations, EdgeSizes) {
  std::size_t visits = 0;
  for_each_combination(3, 0, [&](std::span<const std::size_t> comb) {
    EXPECT_TRUE(comb.empty());
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 1u);

  visits = 0;
  for_each_combination(3, 3, [&](std::span<const std::size_t> comb) {
    EXPECT_EQ(comb.size(), 3u);
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 1u);
}

TEST(Groupings, VisitCountMatchesClosedForm) {
  for (std::size_t m = 1; m <= 5; ++m) {
    for (std::size_t p = 1; p <= m; ++p) {
      std::size_t visits = 0;
      for_each_grouping(m, p, [&](std::span<const std::size_t> group_of) {
        // Every group non-empty, ids in [0, p].
        std::vector<std::size_t> sizes(p, 0);
        for (const std::size_t g : group_of) {
          EXPECT_LE(g, p);
          if (g < p) ++sizes[g];
        }
        for (const std::size_t s : sizes) EXPECT_GE(s, 1u);
        ++visits;
        return true;
      });
      EXPECT_EQ(visits, count_groupings(m, p)) << "m=" << m << " p=" << p;
    }
  }
}

TEST(Groupings, KnownSmallCounts) {
  // m=2, p=1: {0}, {1}, {0,1} -> 3 ways to pick one non-empty subset.
  EXPECT_EQ(count_groupings(2, 1), 3u);
  // m=2, p=2: ({0},{1}) and ({1},{0}).
  EXPECT_EQ(count_groupings(2, 2), 2u);
  // m=3, p=2: ordered pairs of disjoint non-empty subsets of a 3-set = 12.
  EXPECT_EQ(count_groupings(3, 2), 12u);
}

TEST(Groupings, EarlyAbort) {
  std::size_t visits = 0;
  const bool complete = for_each_grouping(4, 2, [&](std::span<const std::size_t>) {
    return ++visits < 5;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(visits, 5u);
}

TEST(RawGroupingCount, Formula) {
  EXPECT_EQ(count_raw_groupings(3, 2), 27u);  // (p+1)^m = 3^3
  EXPECT_EQ(count_raw_groupings(2, 4), 25u);  // 5^2
}

TEST(CompositionIndexer, UnrankWalksEnumerationOrderAndRankInverts) {
  for (std::size_t n = 1; n <= 7; ++n) {
    for (std::size_t p = 1; p <= n; ++p) {
      // Reference order: for_each_composition restricted to exactly p parts.
      std::vector<std::vector<std::size_t>> reference;
      for_each_composition(n, n, [&](std::span<const std::size_t> parts) {
        if (parts.size() == p) reference.emplace_back(parts.begin(), parts.end());
        return true;
      });

      const CompositionIndexer indexer(n, p);
      ASSERT_EQ(indexer.count(), reference.size()) << "n=" << n << " p=" << p;
      std::vector<std::size_t> lengths;
      for (std::uint64_t r = 0; r < indexer.count(); ++r) {
        indexer.unrank(r, lengths);
        EXPECT_EQ(lengths, reference[r]) << "n=" << n << " p=" << p << " rank=" << r;
        EXPECT_EQ(indexer.rank(lengths), r) << "n=" << n << " p=" << p;
      }
    }
  }
}

TEST(GroupingIndexer, CountMatchesClosedForm) {
  for (std::size_t m = 1; m <= 7; ++m) {
    for (std::size_t p = 1; p <= m; ++p) {
      const GroupingIndexer indexer(m, p);
      EXPECT_EQ(indexer.count(), count_groupings(m, p)) << "m=" << m << " p=" << p;
    }
  }
}

TEST(GroupingIndexer, UnrankWalksEnumerationOrderAndRankInverts) {
  for (std::size_t m = 1; m <= 5; ++m) {
    for (std::size_t p = 1; p <= m; ++p) {
      std::vector<std::vector<std::size_t>> reference;
      for_each_grouping(m, p, [&](std::span<const std::size_t> group_of) {
        reference.emplace_back(group_of.begin(), group_of.end());
        return true;
      });

      const GroupingIndexer indexer(m, p);
      ASSERT_EQ(indexer.count(), reference.size()) << "m=" << m << " p=" << p;
      std::vector<std::size_t> group_of(m);
      std::vector<std::size_t> group_sizes(p);
      for (std::uint64_t r = 0; r < indexer.count(); ++r) {
        indexer.unrank(r, group_of, group_sizes);
        EXPECT_EQ(group_of, reference[r]) << "m=" << m << " p=" << p << " rank=" << r;
        EXPECT_EQ(indexer.rank(group_of), r) << "m=" << m << " p=" << p;
        // group_sizes must match the word's occupancy.
        std::vector<std::size_t> expected_sizes(p, 0);
        for (const std::size_t g : group_of) {
          if (g < p) ++expected_sizes[g];
        }
        EXPECT_EQ(std::vector<std::size_t>(group_sizes.begin(), group_sizes.end()),
                  expected_sizes);
      }
    }
  }
}

TEST(GroupingIndexer, NextWalksTheWholeSequence) {
  for (std::size_t m = 1; m <= 5; ++m) {
    for (std::size_t p = 1; p <= m; ++p) {
      const GroupingIndexer indexer(m, p);
      std::vector<std::size_t> group_of(m);
      std::vector<std::size_t> group_sizes(p);
      indexer.unrank(0, group_of, group_sizes);
      std::uint64_t visited = 1;
      std::vector<std::size_t> expected(m);
      std::vector<std::size_t> expected_sizes(p);
      while (indexer.next(group_of, group_sizes)) {
        indexer.unrank(visited, expected, expected_sizes);
        ASSERT_EQ(group_of, expected) << "m=" << m << " p=" << p << " step=" << visited;
        ++visited;
      }
      EXPECT_EQ(visited, indexer.count()) << "m=" << m << " p=" << p;
    }
  }
}

/// Reference enumerations the exhaustive general / one-to-one enumerators'
/// indexers are pinned against: the plain odometer and the DFS over
/// injections, exactly as the pre-parallel serial enumerators walked them.
std::vector<std::vector<std::size_t>> reference_words(std::size_t length, std::size_t symbols) {
  std::vector<std::vector<std::size_t>> words;
  std::vector<std::size_t> word(length, 0);
  while (true) {
    words.push_back(word);
    std::size_t k = 0;
    while (k < length && word[k] + 1 == symbols) {
      word[k] = 0;
      ++k;
    }
    if (k == length) return words;
    ++word[k];
  }
}

std::vector<std::vector<std::size_t>> reference_injections(std::size_t length,
                                                           std::size_t symbols) {
  std::vector<std::vector<std::size_t>> words;
  std::vector<std::size_t> word(length);
  std::vector<bool> used(symbols, false);
  auto dfs = [&](auto&& self, std::size_t k) -> void {
    if (k == length) {
      words.push_back(word);
      return;
    }
    for (std::size_t u = 0; u < symbols; ++u) {
      if (used[u]) continue;
      used[u] = true;
      word[k] = u;
      self(self, k + 1);
      used[u] = false;
    }
  };
  dfs(dfs, 0);
  return words;
}

TEST(AssignmentIndexer, UnrankWalksEnumerationOrderAndRankInverts) {
  for (std::size_t length = 1; length <= 4; ++length) {
    for (std::size_t symbols = 1; symbols <= 4; ++symbols) {
      const AssignmentIndexer indexer(length, symbols);
      const auto reference = reference_words(length, symbols);
      ASSERT_EQ(indexer.count(), reference.size()) << "length=" << length << " sym=" << symbols;
      std::vector<std::size_t> word(length);
      for (std::uint64_t r = 0; r < indexer.count(); ++r) {
        indexer.unrank(r, word);
        ASSERT_EQ(word, reference[r]) << "length=" << length << " sym=" << symbols << " r=" << r;
        EXPECT_EQ(indexer.rank(word), r);
      }
    }
  }
}

TEST(AssignmentIndexer, NextWalksTheWholeSequence) {
  const AssignmentIndexer indexer(3, 4);
  std::vector<std::size_t> word(3);
  indexer.unrank(0, word);
  std::vector<std::size_t> expected(3);
  std::uint64_t visited = 1;
  while (indexer.next(word)) {
    indexer.unrank(visited, expected);
    ASSERT_EQ(word, expected) << "step=" << visited;
    ++visited;
  }
  EXPECT_EQ(visited, indexer.count());
}

TEST(InjectionIndexer, UnrankWalksEnumerationOrderAndRankInverts) {
  for (std::size_t symbols = 1; symbols <= 5; ++symbols) {
    for (std::size_t length = 1; length <= symbols; ++length) {
      const InjectionIndexer indexer(length, symbols);
      const auto reference = reference_injections(length, symbols);
      ASSERT_EQ(indexer.count(), reference.size()) << "length=" << length << " sym=" << symbols;
      std::vector<std::size_t> word(length);
      std::vector<bool> used;
      for (std::uint64_t r = 0; r < indexer.count(); ++r) {
        indexer.unrank(r, word, used);
        ASSERT_EQ(word, reference[r]) << "length=" << length << " sym=" << symbols << " r=" << r;
        EXPECT_EQ(indexer.rank(word), r);
      }
    }
  }
}

TEST(GroupingIndexer, CountSaturatesInsteadOfWrappingOnHugeInstances) {
  // 30 items into 15 non-empty groups: far beyond 2^64 valid groupings. The
  // DP must stick at the kSaturated sentinel instead of wrapping — a wrapped
  // count would silently mis-address the rank space. A saturated count is
  // *not* a size: unrank/rank arithmetic against it is meaningless, so every
  // caller must reject it first (the enumeration drivers do; see the
  // exhaustive budget tests). Addressing such instances at all needs a
  // split-key (composition-block, offset) scheme — not implemented yet; this
  // test documents the limitation.
  const GroupingIndexer indexer(30, 15);
  EXPECT_EQ(indexer.count(), kSaturated);
  EXPECT_EQ(count_groupings(30, 15), kSaturated);
  // A nearby small instance stays exact, so saturation is not over-eager.
  EXPECT_LT(GroupingIndexer(10, 5).count(), kSaturated);
  EXPECT_EQ(GroupingIndexer(10, 5).count(), count_groupings(10, 5));
  // Saturating helpers the counts compose through stick rather than wrap.
  EXPECT_EQ(sat_mul(kSaturated, 2), kSaturated);
  EXPECT_EQ(sat_add(kSaturated, 1), kSaturated);
}

TEST(InjectionIndexer, NextWalksTheWholeSequence) {
  const InjectionIndexer indexer(3, 5);
  std::vector<std::size_t> word(3);
  std::vector<bool> used;
  indexer.unrank(0, word, used);
  std::vector<std::size_t> expected(3);
  std::vector<bool> expected_used;
  std::uint64_t visited = 1;
  while (indexer.next(word, used)) {
    indexer.unrank(visited, expected, expected_used);
    ASSERT_EQ(word, expected) << "step=" << visited;
    ++visited;
  }
  EXPECT_EQ(visited, indexer.count());
}

}  // namespace
}  // namespace relap::util
