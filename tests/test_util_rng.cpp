// Tests for util/rng.hpp: determinism, distribution sanity, bounded sampling.

#include "relap/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace relap::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform(3.0, 5.5);
    ASSERT_GE(x, 3.0);
    ASSERT_LT(x, 5.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(123);
  double sum = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100'000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform_int(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBound, kSamples / kBound * 0.1);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.split();
  // The child must not replay the parent's continuation.
  Rng parent_copy(99);
  (void)parent_copy.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child() == parent()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<std::size_t> values = iota_indices(50);
  rng.shuffle(values);
  std::vector<std::size_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, iota_indices(50));
}

TEST(Rng, ShuffleDeterministicPerSeed) {
  std::vector<std::size_t> a = iota_indices(20);
  std::vector<std::size_t> b = iota_indices(20);
  Rng ra(3);
  Rng rb(3);
  ra.shuffle(a);
  rb.shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(IotaIndices, Basics) {
  EXPECT_TRUE(iota_indices(0).empty());
  EXPECT_EQ(iota_indices(3), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Splitmix, KnownGoldenValues) {
  // First outputs for seed 0, from the reference implementation.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64_next(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64_next(state), 0x06C45D188009454FULL);
}

}  // namespace
}  // namespace relap::util
