// Tests for util/hash.hpp: FNV-1a known-answer vectors and the typed
// add() helpers the cache keys and bench checksums are built from.

#include "relap/util/hash.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

namespace relap::util {
namespace {

// Reference vectors from the FNV specification (Noll's published test suite).
TEST(Fnv1a, KnownAnswers) {
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);  // empty input = offset basis
  EXPECT_EQ(fnv1a("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171F73967E8ULL);
}

TEST(Fnv1a, StreamingMatchesOneShot) {
  Fnv1a hash;
  hash.add(std::string_view("foo"));
  hash.add(std::string_view("bar"));
  EXPECT_EQ(hash.value(), fnv1a("foobar"));
}

TEST(Fnv1a, U64FeedsLittleEndianBytes) {
  // 'a' = 0x61 followed by seven zero bytes.
  Fnv1a via_u64;
  via_u64.add(static_cast<std::uint64_t>(0x61));
  Fnv1a via_bytes;
  via_bytes.add_byte(0x61);
  for (int i = 0; i < 7; ++i) via_bytes.add_byte(0x00);
  EXPECT_EQ(via_u64.value(), via_bytes.value());
}

TEST(Fnv1a, DoubleHashesBitPattern) {
  Fnv1a via_double;
  via_double.add(1.5);
  Fnv1a via_u64;
  via_u64.add(std::bit_cast<std::uint64_t>(1.5));
  EXPECT_EQ(via_double.value(), via_u64.value());

  // +0.0 and -0.0 compare equal but are distinct keys: the hash sees bits.
  Fnv1a pos, neg;
  pos.add(0.0);
  neg.add(-0.0);
  EXPECT_NE(pos.value(), neg.value());
}

TEST(Fnv1a, OrderSensitive) {
  Fnv1a ab, ba;
  ab.add_byte('a');
  ab.add_byte('b');
  ba.add_byte('b');
  ba.add_byte('a');
  EXPECT_NE(ab.value(), ba.value());
}

TEST(Fnv1a, HexFormatting) {
  EXPECT_EQ(Fnv1a().hex(), "0xcbf29ce484222325");
  EXPECT_EQ(Fnv1a(0x1ULL).hex(), "0x0000000000000001");
}

}  // namespace
}  // namespace relap::util
