// Tests for algorithms/exhaustive.hpp — the ground-truth enumerator itself:
// candidate counts match the closed form, budgets abort cleanly, constrained
// answers agree with front lookups, structural caps behave.

#include "relap/algorithms/exhaustive.hpp"

#include <gtest/gtest.h>

#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/validate.hpp"
#include "relap/util/stats.hpp"

namespace relap::algorithms {
namespace {

TEST(Exhaustive, EvaluationCountMatchesClosedForm) {
  for (std::size_t n = 1; n <= 3; ++n) {
    for (std::size_t m = 1; m <= 4; ++m) {
      const auto pipe = gen::random_uniform_pipeline(n, 1);
      gen::PlatformGenOptions options;
      options.processors = m;
      const auto plat = gen::random_comm_hom_het_failures(options, 2);
      const auto outcome = exhaustive_pareto(pipe, plat);
      ASSERT_TRUE(outcome.has_value());
      EXPECT_EQ(outcome->evaluations, interval_mapping_count(n, m)) << "n=" << n << " m=" << m;
    }
  }
}

TEST(Exhaustive, KnownTinyCount) {
  // n=1, m=2: single interval on {0}, {1} or {0,1} -> 3 mappings.
  EXPECT_EQ(interval_mapping_count(1, 2), 3u);
  // n=2, m=2: p=1 gives 3; p=2 gives 2 (each processor one stage) -> 5.
  EXPECT_EQ(interval_mapping_count(2, 2), 5u);
}

TEST(Exhaustive, BudgetAbortsWithError) {
  const auto pipe = gen::random_uniform_pipeline(4, 3);
  gen::PlatformGenOptions options;
  options.processors = 5;
  const auto plat = gen::random_comm_hom_het_failures(options, 4);
  ExhaustiveOptions ex;
  ex.max_evaluations = 10;
  const auto outcome = exhaustive_pareto(pipe, plat, ex);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, "budget");
  ASSERT_FALSE(exhaustive_min_fp_for_latency(pipe, plat, 100.0, ex).has_value());
  ASSERT_FALSE(exhaustive_min_latency_for_fp(pipe, plat, 0.9, ex).has_value());
}

TEST(Exhaustive, SaturatedCandidateSpaceRejectedBeforeRankArithmetic) {
  // 15 stages on 30 processors: the grouping counts saturate at uint64 max
  // (see test_util_enumeration), so the flat candidate index space cannot be
  // addressed — its block offsets would be meaningless. The driver must
  // reject the instance up front, *even with an unlimited budget*, instead
  // of unranking against a saturated count. Until a split-key
  // (composition-block, offset) scheme exists, such instances are simply
  // out of reach for the chunked enumerators.
  const auto pipe = gen::random_uniform_pipeline(15, 7);
  gen::PlatformGenOptions options;
  options.processors = 30;
  const auto plat = gen::random_comm_hom_het_failures(options, 8);
  EXPECT_EQ(interval_mapping_count(15, 30), ~std::uint64_t{0});  // saturated sentinel
  ExhaustiveOptions ex;
  ex.max_evaluations = ~std::uint64_t{0};
  const auto outcome = exhaustive_pareto(pipe, plat, ex);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, "budget");
  ASSERT_FALSE(exhaustive_min_fp_for_latency(pipe, plat, 1e9, ex).has_value());
}

TEST(Exhaustive, FrontIsSortedAndMutuallyNonDominated) {
  const auto pipe = gen::random_uniform_pipeline(3, 5);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = gen::random_comm_hom_het_failures(options, 6);
  const auto outcome = exhaustive_pareto(pipe, plat);
  ASSERT_TRUE(outcome.has_value());
  const auto& front = outcome->front;
  ASSERT_FALSE(front.empty());
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_LT(front[i - 1].latency, front[i].latency);
    EXPECT_GT(front[i - 1].failure_probability, front[i].failure_probability);
  }
  for (const auto& p : front) {
    EXPECT_TRUE(mapping::validate(pipe, plat, p.mapping).has_value());
  }
}

TEST(Exhaustive, ConstrainedAnswersMatchFrontLookups) {
  const auto pipe = gen::random_uniform_pipeline(3, 7);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = gen::random_comm_hom_het_failures(options, 8);
  const auto outcome = exhaustive_pareto(pipe, plat);
  ASSERT_TRUE(outcome.has_value());

  for (const auto& point : outcome->front) {
    const Result min_fp = exhaustive_min_fp_for_latency(pipe, plat, point.latency);
    ASSERT_TRUE(min_fp.has_value());
    EXPECT_TRUE(util::approx_equal(min_fp->failure_probability, point.failure_probability));

    const Result min_lat = exhaustive_min_latency_for_fp(pipe, plat, point.failure_probability);
    ASSERT_TRUE(min_lat.has_value());
    EXPECT_TRUE(util::approx_equal(min_lat->latency, point.latency));
  }
}

TEST(Exhaustive, InfeasibleThresholds) {
  const auto pipe = gen::random_uniform_pipeline(2, 9);
  gen::PlatformGenOptions options;
  options.processors = 3;
  options.fp_min = 0.4;
  options.fp_max = 0.6;
  const auto plat = gen::random_comm_hom_het_failures(options, 10);
  ASSERT_FALSE(exhaustive_min_fp_for_latency(pipe, plat, 1e-6).has_value());
  ASSERT_FALSE(exhaustive_min_latency_for_fp(pipe, plat, 1e-9).has_value());
}

TEST(Exhaustive, MaxIntervalsCapRestrictsShapes) {
  const auto pipe = gen::random_uniform_pipeline(3, 11);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = gen::random_comm_hom_het_failures(options, 12);
  ExhaustiveOptions restricted;
  restricted.max_intervals = 1;
  const auto outcome = exhaustive_pareto(pipe, plat, restricted);
  ASSERT_TRUE(outcome.has_value());
  for (const auto& p : outcome->front) {
    EXPECT_EQ(p.mapping.interval_count(), 1u);
  }
  EXPECT_EQ(outcome->evaluations, interval_mapping_count(1, 4));  // 2^4 - 1 = 15
}

TEST(Exhaustive, MaxReplicationCapRestrictsGroupSizes) {
  const auto pipe = gen::random_uniform_pipeline(2, 13);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = gen::random_comm_hom_het_failures(options, 14);
  ExhaustiveOptions restricted;
  restricted.max_replication = 1;
  const auto outcome = exhaustive_pareto(pipe, plat, restricted);
  ASSERT_TRUE(outcome.has_value());
  for (const auto& p : outcome->front) {
    for (const auto& a : p.mapping.intervals()) {
      EXPECT_EQ(a.processors.size(), 1u);
    }
  }
}

TEST(Exhaustive, TriCriteriaPeriodFilterTightens) {
  // min FP s.t. latency <= L and period <= P: relaxing P can only improve
  // the optimum, and an unbounded P reduces to the bi-criteria answer.
  const auto pipe = gen::random_uniform_pipeline(3, 21);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = gen::random_comm_hom_het_failures(options, 22);
  const double L = 1e9;
  const Result unconstrained = exhaustive_min_fp_for_latency(pipe, plat, L);
  ASSERT_TRUE(unconstrained.has_value());
  const Result loose = exhaustive_min_fp_for_latency_and_period(pipe, plat, L, 1e9);
  ASSERT_TRUE(loose.has_value());
  EXPECT_TRUE(util::approx_equal(loose->failure_probability,
                                 unconstrained->failure_probability));

  double previous = -1.0;
  for (const double period_cap : {2.0, 8.0, 32.0, 128.0, 1e9}) {
    const Result r = exhaustive_min_fp_for_latency_and_period(pipe, plat, L, period_cap);
    if (!r) continue;  // very tight caps may be infeasible
    if (previous >= 0.0) {
      EXPECT_LE(r->failure_probability, previous + 1e-12);
    }
    previous = r->failure_probability;
  }
  ASSERT_GE(previous, 0.0);  // at least one cap was feasible
}

TEST(Exhaustive, TriCriteriaInfeasiblePeriod) {
  const auto pipe = gen::random_uniform_pipeline(2, 23);
  gen::PlatformGenOptions options;
  options.processors = 3;
  const auto plat = gen::random_comm_hom_het_failures(options, 24);
  const Result r = exhaustive_min_fp_for_latency_and_period(pipe, plat, 1e9, 1e-9);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, "infeasible");
}

TEST(Exhaustive, GeneralEnumerationBudget) {
  const auto pipe = gen::random_uniform_pipeline(4, 15);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = gen::random_fully_heterogeneous(options, 16);
  ASSERT_FALSE(exhaustive_general_min_latency(pipe, plat, 10).has_value());
  ASSERT_TRUE(exhaustive_general_min_latency(pipe, plat, 1000).has_value());  // 4^4 = 256
}

TEST(Exhaustive, OneToOneEnumerationRespectsFeasibility) {
  const auto pipe = gen::random_uniform_pipeline(3, 17);
  gen::PlatformGenOptions options;
  options.processors = 2;
  const auto plat = gen::random_fully_heterogeneous(options, 18);
  ASSERT_FALSE(exhaustive_one_to_one_min_latency(pipe, plat).has_value());
}

}  // namespace
}  // namespace relap::algorithms
