// Tests for util/bytes.hpp: the little-endian byte helpers every wire-stable
// byte stream in the repo is built from (instance cache keys, snapshot
// sections), plus the known-answer pin of the instance key-byte layout —
// io::append_instance_key_bytes feeds cache keys, canonical hashes and
// snapshots, so its exact bytes are a compatibility contract.

#include "relap/util/bytes.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "relap/io/instance_format.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/builders.hpp"

namespace relap::util::bytes {
namespace {

std::string hex(std::string_view bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out += digits[b >> 4];
    out += digits[b & 0xF];
  }
  return out;
}

// --- Writers: known-answer byte layouts. -----------------------------------

TEST(Bytes, U32LittleEndianKnownAnswer) {
  std::string out;
  append_u32_le(out, 0x01020304U);
  EXPECT_EQ(hex(out), "04030201");
  append_u32_le(out, 0);
  EXPECT_EQ(hex(out), "0403020100000000");
}

TEST(Bytes, U64LittleEndianKnownAnswer) {
  std::string out;
  append_u64_le(out, 0x0102030405060708ULL);
  EXPECT_EQ(hex(out), "0807060504030201");
}

TEST(Bytes, DoubleSerializesIeeeBitsLittleEndian) {
  // 1.0 = 0x3FF0000000000000; least-significant byte first on the wire.
  std::string out;
  append_double_le(out, 1.0);
  EXPECT_EQ(hex(out), "000000000000f03f");

  // -0.0 differs from +0.0 on the wire: the stream carries bits, not values.
  std::string pos, neg;
  append_double_le(pos, 0.0);
  append_double_le(neg, -0.0);
  EXPECT_EQ(hex(pos), "0000000000000000");
  EXPECT_EQ(hex(neg), "0000000000000080");
}

TEST(Bytes, DoublesSpanMatchesElementwise) {
  const double values[] = {1.0, 2.5, -3.0};
  std::string spanwise, elementwise;
  append_doubles_le(spanwise, values);
  for (const double v : values) append_double_le(elementwise, v);
  EXPECT_EQ(spanwise, elementwise);
}

TEST(Bytes, LengthPrefixedBytesKnownAnswer) {
  std::string out;
  append_bytes(out, "ab");
  EXPECT_EQ(hex(out), "02000000000000006162");
}

// --- ByteReader: round trips and truncation safety. ------------------------

TEST(ByteReader, RoundTripsEveryWriter) {
  std::string out;
  append_u32_le(out, 0xDEADBEEFU);
  append_u64_le(out, 0x123456789ABCDEF0ULL);
  append_double_le(out, -1.5);
  append_bytes(out, "payload");

  ByteReader reader(out);
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  double d = 0.0;
  std::string_view payload;
  ASSERT_TRUE(reader.read_u32_le(u32));
  ASSERT_TRUE(reader.read_u64_le(u64));
  ASSERT_TRUE(reader.read_double_le(d));
  ASSERT_TRUE(reader.read_bytes(payload));
  EXPECT_EQ(u32, 0xDEADBEEFU);
  EXPECT_EQ(u64, 0x123456789ABCDEF0ULL);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(d), std::bit_cast<std::uint64_t>(-1.5));
  EXPECT_EQ(payload, "payload");
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(reader.remaining(), 0U);
}

TEST(ByteReader, TruncatedReadsFailWithoutAdvancing) {
  std::string out;
  append_u64_le(out, 42);
  // Every strict prefix fails the read and leaves the cursor untouched.
  for (std::size_t len = 0; len < out.size(); ++len) {
    ByteReader reader(std::string_view(out).substr(0, len));
    std::uint64_t value = 0;
    EXPECT_FALSE(reader.read_u64_le(value));
    EXPECT_EQ(reader.cursor(), 0U);
    EXPECT_EQ(reader.remaining(), len);
  }
}

TEST(ByteReader, TruncatedLengthPrefixedPayloadRestoresCursor) {
  std::string out;
  append_bytes(out, "abcdef");
  // Cut inside the payload: the length parses but the body is short — the
  // reader must rewind past the consumed length prefix.
  ByteReader reader(std::string_view(out).substr(0, out.size() - 1));
  std::string_view payload;
  EXPECT_FALSE(reader.read_bytes(payload));
  EXPECT_EQ(reader.cursor(), 0U);
}

TEST(ByteReader, OversizedLengthPrefixRejected) {
  // A length prefix claiming more bytes than exist must fail, not read OOB.
  std::string out;
  append_u64_le(out, 1ULL << 60);
  out += "xy";
  ByteReader reader(out);
  std::string_view payload;
  EXPECT_FALSE(reader.read_bytes(payload));
}

// --- The instance key-byte layout contract. --------------------------------

TEST(InstanceKeyBytes, KnownAnswerLayout) {
  // 1 stage (w=1, delta_0=1, delta_1=1), 1 processor (s=1, fp=0, b=1): the
  // smallest instance exercises every column in the documented order —
  // n, m, work, data, speeds, fps, in-bw, out-bw (no off-diagonal links).
  const pipeline::Pipeline pipe({1.0}, {1.0, 1.0});
  const platform::Platform plat = platform::make_fully_homogeneous(1, 1.0, 1.0, 0.0);
  std::string key;
  io::append_instance_key_bytes(pipe, plat, key);

  const std::string one_u64 = "0100000000000000";
  const std::string one_f64 = "000000000000f03f";  // 1.0
  const std::string zero_f64 = "0000000000000000";
  EXPECT_EQ(hex(key), one_u64 + one_u64 +        // n=1, m=1
                          one_f64 +              // work
                          one_f64 + one_f64 +    // data delta_0, delta_1
                          one_f64 +              // speed
                          zero_f64 +             // failure prob
                          one_f64 + one_f64);    // in/out bandwidth
}

TEST(InstanceKeyBytes, LinkMatrixSkipsDiagonalRowMajor) {
  // 2 processors with b(0,1) = b(1,0) = 2.0: exactly two off-diagonal
  // doubles follow the bandwidth columns, row-major.
  const pipeline::Pipeline pipe({1.0}, {1.0, 1.0});
  const platform::Platform plat = platform::make_fully_homogeneous(2, 1.0, 2.0, 0.0);
  std::string key;
  io::append_instance_key_bytes(pipe, plat, key);

  const std::string two_f64 = "0000000000000040";  // 2.0
  ASSERT_GE(key.size(), 16U);
  EXPECT_EQ(hex(key).substr(hex(key).size() - 32), two_f64 + two_f64);
  // Total size: 2 u64 counts + (1 work + 2 data + 4*m columns + m*(m-1)
  // off-diagonal links) doubles.
  EXPECT_EQ(key.size(), 8 * (2 + 1 + 2 + 4 * 2 + 2));
}

}  // namespace
}  // namespace relap::util::bytes
