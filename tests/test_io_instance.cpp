// Tests for io/instance_format.hpp: parse/format round-trips on every
// platform class, error reporting with line numbers, mapping syntax.

#include "relap/io/instance_format.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"

namespace relap::io {
namespace {

void expect_instances_equal(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.pipeline, b.pipeline);
  const auto& pa = a.platform;
  const auto& pb = b.platform;
  ASSERT_EQ(pa.processor_count(), pb.processor_count());
  EXPECT_EQ(pa.comm_class(), pb.comm_class());
  EXPECT_EQ(pa.failure_class(), pb.failure_class());
  for (platform::ProcessorId u = 0; u < pa.processor_count(); ++u) {
    EXPECT_DOUBLE_EQ(pa.speed(u), pb.speed(u));
    EXPECT_DOUBLE_EQ(pa.failure_prob(u), pb.failure_prob(u));
    EXPECT_DOUBLE_EQ(pa.bandwidth_in(u), pb.bandwidth_in(u));
    EXPECT_DOUBLE_EQ(pa.bandwidth_out(u), pb.bandwidth_out(u));
    for (platform::ProcessorId v = 0; v < pa.processor_count(); ++v) {
      if (u != v) {
        EXPECT_DOUBLE_EQ(pa.bandwidth(u, v), pb.bandwidth(u, v));
      }
    }
  }
}

TEST(InstanceFormat, ParsesUniformLinksDocument) {
  const auto parsed = parse_instance(
      "relap-instance v1\n"
      "# a comment line\n"
      "pipeline 2\n"
      "work 1 2\n"
      "data 3 4 5\n"
      "platform 2\n"
      "speeds 1 2\n"
      "failures 0.1 0.2\n"
      "links uniform 5\n");
  ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
  EXPECT_EQ(parsed->pipeline.stage_count(), 2u);
  EXPECT_DOUBLE_EQ(parsed->platform.common_bandwidth(), 5.0);
  EXPECT_EQ(parsed->platform.comm_class(), platform::CommClass::CommHomogeneous);
}

TEST(InstanceFormat, RoundTripsEveryPlatformClass) {
  gen::PlatformGenOptions options;
  options.processors = 4;
  const std::vector<Instance> instances = {
      {gen::random_uniform_pipeline(3, 1), gen::random_fully_homogeneous(options, 2)},
      {gen::comm_heavy_pipeline(4, 3), gen::random_comm_hom_het_failures(options, 4)},
      {gen::compute_heavy_pipeline(2, 5), gen::random_fully_heterogeneous(options, 6)},
      {gen::fig5_pipeline(), gen::fig5_platform()},
      {gen::fig3_pipeline(), gen::fig4_platform()},
  };
  for (const Instance& original : instances) {
    const std::string text = format_instance(original);
    const auto reparsed = parse_instance(text);
    ASSERT_TRUE(reparsed.has_value()) << reparsed.error().to_string() << "\n" << text;
    expect_instances_equal(original, *reparsed);
  }
}

TEST(InstanceFormat, SaveAndLoad) {
  const Instance original{gen::fig5_pipeline(), gen::fig5_platform()};
  const std::string path = ::testing::TempDir() + "/relap_instance_roundtrip.txt";
  ASSERT_TRUE(save_instance(original, path).has_value());
  const auto loaded = load_instance(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().to_string();
  expect_instances_equal(original, *loaded);
  std::remove(path.c_str());
}

TEST(InstanceFormat, LoadMissingFileIsIoError) {
  const auto r = load_instance("/nonexistent/path/to/instance.txt");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, "io");
}

TEST(InstanceFormat, ErrorsCarryContext) {
  const auto missing_header = parse_instance("pipeline 2\n");
  ASSERT_FALSE(missing_header.has_value());
  EXPECT_EQ(missing_header.error().code, "parse");

  const auto bad_number = parse_instance(
      "relap-instance v1\npipeline 1\nwork abc\ndata 1 1\n");
  ASSERT_FALSE(bad_number.has_value());
  EXPECT_NE(bad_number.error().message.find("abc"), std::string::npos);

  const auto wrong_count = parse_instance(
      "relap-instance v1\npipeline 2\nwork 1\ndata 1 1 1\n");
  ASSERT_FALSE(wrong_count.has_value());
  EXPECT_NE(wrong_count.error().message.find("expected 2"), std::string::npos);

  const auto bad_fp = parse_instance(
      "relap-instance v1\npipeline 1\nwork 1\ndata 1 1\nplatform 1\nspeeds 1\n"
      "failures 1.5\nlinks uniform 1\n");
  ASSERT_FALSE(bad_fp.has_value());
  EXPECT_NE(bad_fp.error().message.find("[0,1]"), std::string::npos);

  const auto trailing = parse_instance(
      "relap-instance v1\npipeline 1\nwork 1\ndata 1 1\nplatform 1\nspeeds 1\n"
      "failures 0.1\nlinks uniform 1\nextra stuff\n");
  ASSERT_FALSE(trailing.has_value());
  EXPECT_NE(trailing.error().message.find("trailing"), std::string::npos);
}

TEST(MappingFormat, RoundTrip) {
  const mapping::IntervalMapping original({{{0, 1}, {0, 2}}, {{2, 4}, {1}}});
  const auto reparsed = parse_mapping(format_mapping(original));
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().to_string();
  EXPECT_EQ(*reparsed, original);
}

TEST(MappingFormat, ParsesHandwrittenForms) {
  const auto m = parse_mapping("[0..0]->{3} [1..2]->{0,1,2}");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->interval_count(), 2u);
  EXPECT_EQ(m->interval(1).processors,
            (std::vector<platform::ProcessorId>{0, 1, 2}));
}

TEST(MappingFormat, RejectsMalformedTokens) {
  EXPECT_FALSE(parse_mapping("").has_value());
  EXPECT_FALSE(parse_mapping("garbage").has_value());
  EXPECT_FALSE(parse_mapping("[0..1]->{}").has_value());
  EXPECT_FALSE(parse_mapping("[1..2]->{0}").has_value());            // not starting at 0
  EXPECT_FALSE(parse_mapping("[0..1]->{0} [3..4]->{1}").has_value());  // gap
  EXPECT_FALSE(parse_mapping("[0..0]->{0} [1..1]->{0}").has_value());  // overlap
  EXPECT_FALSE(parse_mapping("[2..0]->{0}").has_value());            // inverted bounds
}

}  // namespace
}  // namespace relap::io
