// Tests for the gen module: determinism, parameter ranges, platform-class
// guarantees, and the paper instances' exact numbers.

#include <gtest/gtest.h>

#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"

namespace relap::gen {
namespace {

TEST(GenPipelines, DeterministicPerSeed) {
  EXPECT_EQ(random_uniform_pipeline(6, 42), random_uniform_pipeline(6, 42));
  EXPECT_NE(random_uniform_pipeline(6, 42), random_uniform_pipeline(6, 43));
}

TEST(GenPipelines, RangesRespected) {
  const auto compute = compute_heavy_pipeline(20, 7);
  for (std::size_t k = 0; k < 20; ++k) {
    EXPECT_GE(compute.work(k), 50.0);
    EXPECT_LE(compute.work(k), 100.0);
    EXPECT_LE(compute.data(k), 5.0);
  }
  const auto comm = comm_heavy_pipeline(20, 7);
  for (std::size_t k = 0; k < 20; ++k) {
    EXPECT_LE(comm.work(k), 5.0);
    EXPECT_GE(comm.data(k), 50.0);
  }
}

TEST(GenPipelines, BimodalHasBothModes) {
  const auto p = bimodal_pipeline(40, 11);
  bool light = false;
  bool heavy = false;
  for (std::size_t k = 0; k < p.stage_count(); ++k) {
    if (p.work(k) <= 5.0) light = true;
    if (p.work(k) >= 80.0) heavy = true;
  }
  EXPECT_TRUE(light);
  EXPECT_TRUE(heavy);
}

TEST(GenPipelines, JpegPresetShape) {
  const auto p = jpeg_like_pipeline();
  EXPECT_EQ(p.stage_count(), 7u);
  // Entropy-coded output is the smallest boundary.
  for (std::size_t k = 0; k < 7; ++k) EXPECT_GE(p.data(k), p.data(7));
}

TEST(GenPlatforms, ClassGuarantees) {
  PlatformGenOptions options;
  options.processors = 6;
  EXPECT_EQ(random_fully_homogeneous(options, 1).comm_class(),
            platform::CommClass::FullyHomogeneous);
  EXPECT_EQ(random_fully_homogeneous(options, 1).failure_class(),
            platform::FailureClass::Homogeneous);
  EXPECT_EQ(random_fully_hom_het_failures(options, 2).comm_class(),
            platform::CommClass::FullyHomogeneous);
  EXPECT_EQ(random_fully_hom_het_failures(options, 2).failure_class(),
            platform::FailureClass::Heterogeneous);
  EXPECT_EQ(random_comm_homogeneous(options, 3).comm_class(),
            platform::CommClass::CommHomogeneous);
  EXPECT_EQ(random_comm_homogeneous(options, 3).failure_class(),
            platform::FailureClass::Homogeneous);
  EXPECT_EQ(random_comm_hom_het_failures(options, 4).comm_class(),
            platform::CommClass::CommHomogeneous);
  EXPECT_EQ(random_fully_heterogeneous(options, 5).comm_class(),
            platform::CommClass::FullyHeterogeneous);
}

TEST(GenPlatforms, DeterministicPerSeed) {
  PlatformGenOptions options;
  options.processors = 4;
  const auto a = random_fully_heterogeneous(options, 9);
  const auto b = random_fully_heterogeneous(options, 9);
  for (platform::ProcessorId u = 0; u < 4; ++u) {
    EXPECT_DOUBLE_EQ(a.speed(u), b.speed(u));
    EXPECT_DOUBLE_EQ(a.failure_prob(u), b.failure_prob(u));
    EXPECT_DOUBLE_EQ(a.bandwidth_in(u), b.bandwidth_in(u));
    for (platform::ProcessorId v = 0; v < 4; ++v) {
      if (u != v) {
        EXPECT_DOUBLE_EQ(a.bandwidth(u, v), b.bandwidth(u, v));
      }
    }
  }
}

TEST(GenPlatforms, ReliableUnreliableMixShape) {
  const auto p = random_reliable_unreliable_mix(2, 5, 13);
  EXPECT_EQ(p.processor_count(), 7u);
  EXPECT_TRUE(p.has_homogeneous_links());
  for (platform::ProcessorId u = 0; u < 2; ++u) {
    EXPECT_LE(p.speed(u), 2.0);
    EXPECT_LE(p.failure_prob(u), 0.15);
  }
  for (platform::ProcessorId u = 2; u < 7; ++u) {
    EXPECT_GE(p.speed(u), 50.0);
    EXPECT_GE(p.failure_prob(u), 0.6);
  }
}

TEST(PaperInstances, Fig3Fig4ExactNumbers) {
  const auto pipe = fig3_pipeline();
  EXPECT_EQ(pipe.stage_count(), 2u);
  EXPECT_DOUBLE_EQ(pipe.work(0), 2.0);
  EXPECT_DOUBLE_EQ(pipe.data(0), 100.0);

  const auto plat = fig4_platform();
  EXPECT_EQ(plat.processor_count(), 2u);
  EXPECT_DOUBLE_EQ(plat.bandwidth_in(0), 100.0);
  EXPECT_DOUBLE_EQ(plat.bandwidth_in(1), 1.0);
  EXPECT_DOUBLE_EQ(plat.bandwidth_out(0), 1.0);
  EXPECT_DOUBLE_EQ(plat.bandwidth_out(1), 100.0);
  EXPECT_DOUBLE_EQ(plat.bandwidth(0, 1), 100.0);
  EXPECT_EQ(plat.comm_class(), platform::CommClass::FullyHeterogeneous);
}

TEST(PaperInstances, Fig5ExactNumbers) {
  const auto pipe = fig5_pipeline();
  EXPECT_DOUBLE_EQ(pipe.work(0), 1.0);
  EXPECT_DOUBLE_EQ(pipe.work(1), 100.0);
  EXPECT_DOUBLE_EQ(pipe.data(0), 10.0);
  EXPECT_DOUBLE_EQ(pipe.data(1), 1.0);
  EXPECT_DOUBLE_EQ(pipe.data(2), 0.0);

  const auto plat = fig5_platform();
  EXPECT_EQ(plat.processor_count(), 11u);
  EXPECT_DOUBLE_EQ(plat.speed(0), 1.0);
  EXPECT_DOUBLE_EQ(plat.failure_prob(0), 0.1);
  for (platform::ProcessorId u = 1; u <= 10; ++u) {
    EXPECT_DOUBLE_EQ(plat.speed(u), 100.0);
    EXPECT_DOUBLE_EQ(plat.failure_prob(u), 0.8);
  }
  EXPECT_EQ(plat.comm_class(), platform::CommClass::CommHomogeneous);
  EXPECT_EQ(plat.failure_class(), platform::FailureClass::Heterogeneous);
}

}  // namespace
}  // namespace relap::gen
