// Tests for exec/thread_pool.hpp and exec/parallel.hpp: every task runs
// exactly once, exceptions propagate, nesting cannot deadlock, and the
// chunked primitives are bit-deterministic across thread counts.

#include "relap/exec/parallel.hpp"
#include "relap/exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "relap/util/rng.hpp"

namespace relap::exec {
namespace {

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& hit : hits) {
      ASSERT_EQ(hit.load(), 1) << "threads=" << threads;
    }
  }
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.run(16,
                          [](std::size_t i) {
                            if (i == 7) throw std::runtime_error("task 7 failed");
                          }),
                 std::runtime_error)
        << "threads=" << threads;
    // The pool must still be usable afterwards.
    std::atomic<int> count{0};
    pool.run(8, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 8);
  }
}

TEST(ThreadPool, NestedRunsComplete) {
  // The inner run()'s caller drains its own task space even when every pool
  // thread is busy, so nesting terminates regardless of pool size.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(4 * 8);
  pool.run(4, [&](std::size_t outer) {
    pool.run(8, [&](std::size_t inner) { ++hits[outer * 8 + inner]; });
  });
  for (const auto& hit : hits) ASSERT_EQ(hit.load(), 1);
}

TEST(ChunkGrid, PartitionsTheIndexSpace) {
  const ChunkGrid grid = chunk_grid(10, 3);
  EXPECT_EQ(grid.chunks, 4u);
  EXPECT_EQ(grid.begin(0), 0u);
  EXPECT_EQ(grid.end(0), 3u);
  EXPECT_EQ(grid.begin(3), 9u);
  EXPECT_EQ(grid.end(3), 10u);
  EXPECT_EQ(chunk_grid(0, 5).chunks, 0u);
  EXPECT_EQ(chunk_grid(5, 5).chunks, 1u);
  EXPECT_EQ(chunk_grid(6, 5).chunks, 2u);
}

TEST(ParallelFor, CoversEveryIndexOnceAtAnyThreadCount) {
  for (const std::size_t threads : {1u, 3u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(777);
    parallel_for(hits.size(), 10, [&](std::size_t i) { ++hits[i]; }, &pool);
    for (const auto& hit : hits) {
      ASSERT_EQ(hit.load(), 1) << "threads=" << threads;
    }
  }
}

TEST(ParallelReduce, MergesChunksInIndexOrder) {
  // The reduction concatenates chunk indices; index-order merging must
  // reproduce 0, 1, ..., chunks-1 exactly, at any thread count.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const auto order = parallel_reduce(
        100, 7, [] { return std::vector<std::size_t>{}; },
        [](std::vector<std::size_t>& acc, std::size_t, std::size_t, std::size_t chunk) {
          acc.push_back(chunk);
        },
        [](std::vector<std::size_t>& acc, std::vector<std::size_t>&& part) {
          acc.insert(acc.end(), part.begin(), part.end());
        },
        &pool);
    const ChunkGrid grid = chunk_grid(100, 7);
    ASSERT_EQ(order.size(), grid.chunks) << "threads=" << threads;
    for (std::size_t c = 0; c < order.size(); ++c) {
      ASSERT_EQ(order[c], c) << "threads=" << threads;
    }
  }
}

TEST(ParallelReduce, FloatingPointSumBitIdenticalAcrossThreadCounts) {
  // Floating-point addition is not associative; bit-equality across thread
  // counts holds only because the chunk grid and merge order are fixed.
  std::vector<double> values(10'000);
  util::Rng rng(2026);
  for (double& v : values) v = rng.uniform(-1.0, 1.0);

  auto sum_with = [&](std::size_t threads) {
    ThreadPool pool(threads);
    return parallel_reduce(
        values.size(), 128, [] { return 0.0; },
        [&](double& acc, std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t i = begin; i < end; ++i) acc += values[i];
        },
        [](double& acc, double part) { acc += part; }, &pool);
  };

  const double serial = sum_with(1);
  EXPECT_EQ(serial, sum_with(2));
  EXPECT_EQ(serial, sum_with(5));
  EXPECT_EQ(serial, sum_with(8));
}

TEST(Rng, SplitNMatchesSequentialSplits) {
  util::Rng a(123);
  util::Rng b(123);
  std::vector<util::Rng> children = a.split_n(5);
  ASSERT_EQ(children.size(), 5u);
  for (util::Rng& child : children) {
    util::Rng expected = b.split();
    for (int i = 0; i < 10; ++i) {
      ASSERT_EQ(child(), expected());
    }
  }
}

}  // namespace
}  // namespace relap::exec
