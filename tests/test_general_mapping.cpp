// Tests for mapping/general_mapping.hpp.

#include "relap/mapping/general_mapping.hpp"

#include <gtest/gtest.h>

namespace relap::mapping {
namespace {

TEST(GeneralMapping, Accessors) {
  const GeneralMapping m({2, 0, 2});
  EXPECT_EQ(m.stage_count(), 3u);
  EXPECT_EQ(m.processor_of(0), 2u);
  EXPECT_EQ(m.processor_of(1), 0u);
  EXPECT_EQ(m.assignment(), (std::vector<platform::ProcessorId>{2, 0, 2}));
}

TEST(GeneralMapping, OneToOneDetection) {
  EXPECT_TRUE(GeneralMapping({0, 1, 2}).is_one_to_one());
  EXPECT_FALSE(GeneralMapping({0, 1, 0}).is_one_to_one());
  EXPECT_TRUE(GeneralMapping({5}).is_one_to_one());
}

TEST(GeneralMapping, IntervalBasedDetection) {
  EXPECT_TRUE(GeneralMapping({0, 0, 1, 1, 2}).is_interval_based());
  EXPECT_TRUE(GeneralMapping({3}).is_interval_based());
  EXPECT_TRUE(GeneralMapping({1, 1, 1}).is_interval_based());
  // Processor 0 reappears after processor 1 took over: not interval-based.
  EXPECT_FALSE(GeneralMapping({0, 1, 0}).is_interval_based());
  EXPECT_FALSE(GeneralMapping({0, 1, 2, 1}).is_interval_based());
}

TEST(GeneralMapping, Describe) {
  EXPECT_EQ(GeneralMapping({1, 0}).describe(), "S0->P1 S1->P0");
}

TEST(GeneralMappingDeath, RejectsEmpty) {
  EXPECT_DEATH(GeneralMapping(std::vector<platform::ProcessorId>{}), "at least one stage");
  EXPECT_DEATH((void)GeneralMapping({0}).processor_of(1), "out of range");
}

}  // namespace
}  // namespace relap::mapping
