// Tests for service/snapshot.hpp: cache snapshots round-trip bit-exactly
// (including under LRU eviction pressure), warm-from-snapshot replies are
// bit-identical to same-process warm replies, and truncated / corrupted /
// version-mismatched snapshot files are rejected with structured errors —
// never an assert, because a snapshot is runtime input.

#include "relap/service/snapshot.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/service/broker.hpp"
#include "relap/util/bytes.hpp"

namespace relap::service {
namespace {

InstanceData small_instance(std::uint64_t seed, std::size_t stages = 4,
                            std::size_t processors = 4) {
  const auto pipe = gen::random_uniform_pipeline(stages, seed);
  gen::PlatformGenOptions options;
  options.processors = processors;
  const auto plat = gen::random_fully_heterogeneous(options, seed + 1);
  return InstanceData::from(pipe, plat);
}

SolveRequest pareto_request(std::uint64_t seed) {
  SolveRequest request;
  request.instance = small_instance(seed);
  request.objective = Objective::ParetoFront;
  return request;
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_same_front(const Reply& a, const Reply& b) {
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_TRUE(bits_equal(a.front[i].latency, b.front[i].latency));
    EXPECT_TRUE(bits_equal(a.front[i].failure_probability, b.front[i].failure_probability));
    EXPECT_EQ(a.front[i].mapping.describe(), b.front[i].mapping.describe());
  }
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_EQ(a.canonical_hash, b.canonical_hash);
}

std::string temp_path(const char* tag) {
  return std::string(::testing::TempDir()) + "relap_snapshot_" + tag + ".bin";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- Codec round trips. -----------------------------------------------------

TEST(Snapshot, EncodeDecodeRoundTripsEntriesBitExactly) {
  Broker broker;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ASSERT_TRUE(broker.solve(pareto_request(seed)).has_value());
  }
  const std::string path = temp_path("roundtrip");
  const auto saved = broker.save_snapshot(path);
  ASSERT_TRUE(saved.has_value());
  EXPECT_EQ(saved->entries, 3U);

  const std::string bytes = read_file(path);
  EXPECT_EQ(bytes.size(), saved->bytes);
  const auto decoded = decode_snapshot(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 3U);
  // Decoded fronts carry the exact bit patterns and provenance.
  for (const FrontCache::ExportedEntry& entry : *decoded) {
    ASSERT_NE(entry.value, nullptr);
    EXPECT_FALSE(entry.value->front.empty());
    EXPECT_FALSE(entry.value->algorithm.empty());
  }
  // Re-encoding the decoded entries reproduces the file byte for byte.
  EXPECT_EQ(encode_snapshot(*decoded), bytes);
  std::remove(path.c_str());
}

TEST(Snapshot, RoundTripUnderEvictionPressure) {
  // A cache smaller than the workload: save/load must reproduce exactly the
  // surviving entries and their recency, not the full history.
  BrokerOptions options;
  options.cache.capacity = 4;
  options.cache.shards = 1;
  Broker broker(options);
  constexpr std::uint64_t kSeeds = 9;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ASSERT_TRUE(broker.solve(pareto_request(seed)).has_value());
  }
  const CacheStats before = broker.cache_stats();
  EXPECT_GT(before.evictions, 0U);
  EXPECT_LE(before.entries, 4U);

  const std::string path = temp_path("eviction");
  const auto saved = broker.save_snapshot(path);
  ASSERT_TRUE(saved.has_value());
  EXPECT_EQ(saved->entries, before.entries);

  Broker restored(options);
  const auto loaded = restored.load_snapshot(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->entries, before.entries);

  // The most recent `capacity` requests hit warm in the restored broker...
  for (std::uint64_t seed = kSeeds - 3; seed <= kSeeds; ++seed) {
    const auto warm = restored.solve(pareto_request(seed));
    ASSERT_TRUE(warm.has_value());
    EXPECT_TRUE(warm->cache_hit) << "seed " << seed;
  }
  // ...and recency survived the round trip: saving the restored cache
  // reproduces the original snapshot bytes exactly.
  const std::string path2 = temp_path("eviction2");
  ASSERT_TRUE(restored.save_snapshot(path2).has_value());
  EXPECT_EQ(read_file(path2), read_file(path));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

// --- Warm-from-snapshot bit-identity. ---------------------------------------

TEST(Snapshot, WarmFromSnapshotMatchesSameProcessWarm) {
  Broker cold;
  std::vector<Reply> warm_replies;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ASSERT_TRUE(cold.solve(pareto_request(seed)).has_value());
    auto warm = cold.solve(pareto_request(seed));
    ASSERT_TRUE(warm.has_value());
    ASSERT_TRUE(warm->cache_hit);
    warm_replies.push_back(std::move(warm.value()));
  }
  const std::string path = temp_path("bitident");
  ASSERT_TRUE(cold.save_snapshot(path).has_value());

  Broker restarted;
  ASSERT_TRUE(restarted.load_snapshot(path).has_value());
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto reply = restarted.solve(pareto_request(seed));
    ASSERT_TRUE(reply.has_value());
    EXPECT_TRUE(reply->cache_hit);
    expect_same_front(*reply, warm_replies[seed - 1]);
  }
  std::remove(path.c_str());
}

// --- Rejection rules. -------------------------------------------------------

class SnapshotRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    Broker broker;
    ASSERT_TRUE(broker.solve(pareto_request(7)).has_value());
    path_ = temp_path("reject");
    ASSERT_TRUE(broker.save_snapshot(path_).has_value());
    bytes_ = read_file(path_);
    ASSERT_FALSE(bytes_.empty());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Writes `bytes` to the snapshot path and loads it into a fresh broker,
  /// expecting the given error code and an untouched cache.
  void expect_rejected(const std::string& bytes, const std::string& code) {
    write_file(path_, bytes);
    Broker broker;
    const auto loaded = broker.load_snapshot(path_);
    ASSERT_FALSE(loaded.has_value()) << "unexpectedly accepted";
    EXPECT_EQ(loaded.error().code, code) << loaded.error().to_string();
    EXPECT_EQ(broker.cache_stats().entries, 0U);
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotRejection, MissingFileIsIoError) {
  Broker broker;
  const auto loaded = broker.load_snapshot(path_ + ".nope");
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, "io");
}

TEST_F(SnapshotRejection, WrongMagic) {
  std::string bytes = bytes_;
  bytes[0] ^= 0x5A;
  expect_rejected(bytes, "snapshot-version");
}

TEST_F(SnapshotRejection, WrongFormatVersion) {
  std::string bytes = bytes_;
  bytes[8] ^= 0x01;  // u32 version follows the 8-byte magic
  expect_rejected(bytes, "snapshot-version");
}

TEST_F(SnapshotRejection, WrongBuildStamp) {
  std::string bytes = bytes_;
  bytes[12] ^= 0x01;  // u64 build-stamp hash follows the version
  expect_rejected(bytes, "snapshot-version");
}

TEST_F(SnapshotRejection, EveryTruncationRejected) {
  // Every strict prefix must be rejected (header truncations read as
  // version errors, body truncations as corruption) — and never crash.
  for (std::size_t len = 0; len < bytes_.size(); len += 7) {
    write_file(path_, bytes_.substr(0, len));
    Broker broker;
    const auto loaded = broker.load_snapshot(path_);
    ASSERT_FALSE(loaded.has_value()) << "accepted a " << len << "-byte prefix";
    EXPECT_TRUE(loaded.error().code == "snapshot-corrupt" ||
                loaded.error().code == "snapshot-version")
        << loaded.error().to_string();
    EXPECT_EQ(broker.cache_stats().entries, 0U);
  }
}

TEST_F(SnapshotRejection, PayloadBitFlipFailsChecksum) {
  // Flip one bit in every section-payload region; the section checksum (or
  // a structural validation behind it) must catch each one.
  for (std::size_t pos = 24; pos < bytes_.size(); pos += 31) {
    std::string bytes = bytes_;
    bytes[pos] ^= 0x10;
    write_file(path_, bytes);
    Broker broker;
    const auto loaded = broker.load_snapshot(path_);
    if (loaded.has_value()) {
      // The flip landed in a section *header* length/checksum field that
      // still validated? Not possible: any header change breaks either the
      // checksum comparison or the framing. Reaching here means the flip
      // was silently absorbed — fail loudly.
      FAIL() << "bit flip at offset " << pos << " was accepted";
    }
    EXPECT_TRUE(loaded.error().code == "snapshot-corrupt" ||
                loaded.error().code == "snapshot-version")
        << "offset " << pos << ": " << loaded.error().to_string();
  }
}

TEST_F(SnapshotRejection, TrailingGarbageRejected) {
  expect_rejected(bytes_ + "extra", "snapshot-corrupt");
}

TEST_F(SnapshotRejection, EmptySnapshotOfNoEntriesStillLoads) {
  // Contrast case: a legitimate empty snapshot is fine.
  Broker empty;
  ASSERT_TRUE(empty.save_snapshot(path_).has_value());
  Broker broker;
  const auto loaded = broker.load_snapshot(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->entries, 0U);
}

}  // namespace
}  // namespace relap::service
