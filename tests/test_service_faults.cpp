// Fault-injection suite for the serving stack (service/faultpoint.hpp):
// every hardened failure path actually executes under test. Torn snapshot
// writes leave the committed snapshot intact, stalled solves are cancelled
// at their deadline (or degraded to a heuristic answer), skewed clocks
// expire budgets deterministically, short socket writes are retried, EOF
// mid-line still serves the final line, idle connections are reaped, and
// overloaded servers refuse connections — all as structured errors, never
// an assert, hang or torn state.

#include "relap/service/faultpoint.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/service/broker.hpp"
#include "relap/service/server.hpp"

namespace relap::service {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint64_t kSticky = std::numeric_limits<std::uint64_t>::max();

/// Every test starts and ends with a disarmed registry — a leaked armed
/// point would poison unrelated tests.
class Faults : public ::testing::Test {
 protected:
  void SetUp() override { faultpoint::clear(); }
  void TearDown() override { faultpoint::clear(); }
};

InstanceData small_instance(std::uint64_t seed) {
  const auto pipe = gen::random_uniform_pipeline(4, seed);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = gen::random_fully_heterogeneous(options, seed + 1);
  return InstanceData::from(pipe, plat);
}

SolveRequest pareto_request(std::uint64_t seed) {
  SolveRequest request;
  request.instance = small_instance(seed);
  request.objective = Objective::ParetoFront;
  return request;
}

std::string temp_path(const char* tag) {
  return std::string(::testing::TempDir()) + "relap_faults_" + tag + ".bin";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// --- The fault-point registry itself. ---------------------------------------

TEST_F(Faults, RegistrySkipTimesValueAndHitAccounting) {
  // Unarmed points never fire but (once anything is armed) count hits.
  faultpoint::arm("other.point");
  EXPECT_FALSE(faultpoint::should_fail("fp.test"));
  EXPECT_EQ(faultpoint::hits("fp.test"), 1U);

  // skip=1 times=2: one clean hit, two failures, then exhausted.
  faultpoint::ArmOptions options;
  options.skip = 1;
  options.times = 2;
  faultpoint::arm("fp.test", options);
  EXPECT_FALSE(faultpoint::should_fail("fp.test"));
  EXPECT_TRUE(faultpoint::should_fail("fp.test"));
  EXPECT_TRUE(faultpoint::should_fail("fp.test"));
  EXPECT_FALSE(faultpoint::should_fail("fp.test"));
  EXPECT_EQ(faultpoint::hits("fp.test"), 5U);

  // fire_value yields the armed payload exactly when the point fires.
  faultpoint::ArmOptions valued;
  valued.value = 2.5;
  faultpoint::arm("fp.value", valued);
  EXPECT_EQ(faultpoint::fire_value("fp.value"), std::optional<double>(2.5));
  EXPECT_EQ(faultpoint::fire_value("fp.value"), std::nullopt);

  // clear() disarms and zeroes counters.
  faultpoint::clear();
  EXPECT_EQ(faultpoint::hits("fp.test"), 0U);
  EXPECT_FALSE(faultpoint::should_fail("fp.value"));
  // With nothing armed, hits are not even counted (zero-cost fast path).
  EXPECT_EQ(faultpoint::hits("fp.value"), 0U);
}

// --- Torn snapshot writes. --------------------------------------------------

TEST_F(Faults, SnapshotWriteFailuresNeverTearTheCommittedSnapshot) {
  const std::string path = temp_path("torn");
  Broker broker;
  ASSERT_TRUE(broker.solve(pareto_request(1)).has_value());
  ASSERT_TRUE(broker.save_snapshot(path).has_value());
  const std::string committed = read_file(path);
  ASSERT_FALSE(committed.empty());

  // Grow the cache so a successful re-save WOULD change the file.
  ASSERT_TRUE(broker.solve(pareto_request(2)).has_value());

  for (const char* point :
       {"snapshot.open", "snapshot.write", "snapshot.fsync", "snapshot.rename"}) {
    faultpoint::arm(point);
    const auto saved = broker.save_snapshot(path);
    ASSERT_FALSE(saved.has_value()) << point;
    EXPECT_EQ(saved.error().code, "io") << point;
    EXPECT_GE(faultpoint::hits(point), 1U) << point;
    // The committed snapshot is untouched and the temp file is cleaned up.
    EXPECT_EQ(read_file(path), committed) << point;
    EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0) << point;
    // A fresh broker can still load the committed snapshot.
    Broker restored;
    const auto loaded = restored.load_snapshot(path);
    ASSERT_TRUE(loaded.has_value()) << point;
    EXPECT_EQ(loaded->entries, 1U) << point;
  }

  // With the faults cleared the save goes through and the file changes.
  faultpoint::clear();
  ASSERT_TRUE(broker.save_snapshot(path).has_value());
  EXPECT_NE(read_file(path), committed);
  std::remove(path.c_str());
}

// --- Deadline cancellation mid-solve (stalled solver). ----------------------

TEST_F(Faults, StalledSolveIsCancelledAtItsDeadline) {
  faultpoint::ArmOptions stall;
  stall.value = 0.4;  // seconds; comfortably past the 50 ms budget below
  faultpoint::arm("broker.solve_stall", stall);

  Broker broker;
  SolveRequest request = pareto_request(3);
  request.deadline = 0.05;
  const auto reply = broker.solve(request);
  ASSERT_FALSE(reply.has_value());
  EXPECT_EQ(reply.error().code, "deadline-exceeded");
  EXPECT_EQ(broker.metrics().cancelled_total.value(), 1U);
  EXPECT_EQ(broker.metrics().deadline_exceeded_total.value(), 1U);
  // The cancelled partial work was discarded, not cached.
  EXPECT_EQ(broker.cache_stats().entries, 0U);

  // The same request with no deadline solves fine afterwards.
  request.deadline = kInf;
  ASSERT_TRUE(broker.solve(request).has_value());
}

TEST_F(Faults, DegradeModeAnswersCancelledSolvesHeuristically) {
  faultpoint::ArmOptions stall;
  stall.value = 0.4;
  faultpoint::arm("broker.solve_stall", stall);

  BrokerOptions options;
  options.degrade_on_deadline = true;
  Broker broker(options);
  SolveRequest request = pareto_request(4);
  request.deadline = 0.05;
  const auto reply = broker.solve(request);
  ASSERT_TRUE(reply.has_value()) << reply.error().to_string();
  EXPECT_TRUE(reply->degraded);
  EXPECT_FALSE(reply->exact);
  EXPECT_FALSE(reply->front.empty());
  EXPECT_EQ(broker.metrics().degraded_total.value(), 1U);
  EXPECT_EQ(broker.metrics().cancelled_total.value(), 1U);
  // Degraded fronts are never cached: the next solve is a fresh miss that
  // produces the undegraded (exact-capable) answer.
  EXPECT_EQ(broker.cache_stats().entries, 0U);
  request.deadline = kInf;
  const auto exact = broker.solve(request);
  ASSERT_TRUE(exact.has_value());
  EXPECT_FALSE(exact->cache_hit);
  EXPECT_FALSE(exact->degraded);
}

// --- Clock skew. ------------------------------------------------------------

TEST_F(Faults, SkewedClockExpiresBudgetsDeterministically) {
  faultpoint::ArmOptions skew;
  skew.times = kSticky;
  skew.value = 3600.0;  // the broker believes an hour has passed
  faultpoint::arm("broker.clock_skew", skew);

  Broker broker;
  SolveRequest request = pareto_request(5);
  request.deadline = 60.0;
  const auto reply = broker.solve(request);
  ASSERT_FALSE(reply.has_value());
  EXPECT_EQ(reply.error().code, "deadline-exceeded");
  EXPECT_EQ(broker.metrics().solves_total.value(), 0U);  // rejected at dequeue

  // An unbounded request is immune to the skew.
  request.deadline = kInf;
  ASSERT_TRUE(broker.solve(request).has_value());
}

// --- Wire-level faults over TCP. --------------------------------------------

/// Minimal blocking loopback client; can half-close to simulate EOF mid-line.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  void send_text(const std::string& text) {
    ASSERT_EQ(::send(fd_, text.data(), text.size(), 0), static_cast<ssize_t>(text.size()));
  }

  /// Half-close: the server sees EOF but can still respond.
  void finish_writing() { ::shutdown(fd_, SHUT_WR); }

  /// Reads until the peer closes the connection.
  std::string read_all() {
    std::string out;
    char buffer[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
      if (n <= 0) break;
      out.append(buffer, static_cast<std::size_t>(n));
    }
    return out;
  }

  /// Reads until `out` contains `token` (bounded by the peer closing).
  std::string read_until(const std::string& token) {
    std::string out;
    char buffer[4096];
    while (out.find(token) == std::string::npos) {
      const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
      if (n <= 0) break;
      out.append(buffer, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
};

/// Binds an ephemeral server and runs its accept loop on a thread.
class ServerFixture {
 public:
  explicit ServerFixture(Broker& broker, ServerOptions options = {}) : options_(options) {
    auto bound = TcpServer::bind_localhost(0);
    if (!bound.has_value()) return;
    server_ = std::move(bound.value());
    thread_ = std::thread([this, &broker] { served_ = server_.serve(broker, options_); });
  }
  ~ServerFixture() {
    server_.request_stop();
    if (thread_.joinable()) thread_.join();
  }
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] bool running() const { return thread_.joinable(); }

 private:
  ServerOptions options_;
  TcpServer server_;
  std::thread thread_;
  std::size_t served_ = 0;
};

TEST_F(Faults, ShortSocketWritesAreRetriedToCompletion) {
  faultpoint::ArmOptions short_writes;
  short_writes.times = kSticky;  // every send is truncated to one byte
  faultpoint::arm("server.short_write", short_writes);

  Broker broker;
  ServerFixture server(broker);
  ASSERT_TRUE(server.running());
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  client.send_text("ping\nquit\n");
  EXPECT_EQ(client.read_all(), "ok pong\nok bye\n");
  // The retry loop really did go byte-by-byte.
  EXPECT_GE(faultpoint::hits("server.short_write"), 15U);
}

TEST_F(Faults, EofMidLineStillServesTheFinalLine) {
  Broker broker;
  ServerFixture server(broker);
  ASSERT_TRUE(server.running());
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  client.send_text("ping\nping");  // second line has no terminator
  client.finish_writing();
  EXPECT_EQ(client.read_all(), "ok pong\nok pong\n");
}

TEST_F(Faults, IdleConnectionsAreReapedWithATimeoutError) {
  Broker broker;
  ServerOptions options;
  options.read_timeout_ms = 100;
  ServerFixture server(broker, options);
  ASSERT_TRUE(server.running());
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  // Send nothing: the reaper closes us with one structured error line.
  const std::string response = client.read_all();
  EXPECT_EQ(response.rfind("err 0 timeout", 0), 0U) << response;
}

TEST_F(Faults, ConnectionsPastTheCapAreRefusedAsOverloaded) {
  Broker broker;
  ServerOptions options;
  options.max_connections = 1;
  ServerFixture server(broker, options);
  ASSERT_TRUE(server.running());

  Client occupant(server.port());
  ASSERT_TRUE(occupant.connected());
  occupant.send_text("ping\n");
  // Wait for the response: the occupant's connection is then registered.
  EXPECT_EQ(occupant.read_until("ok pong\n"), "ok pong\n");

  Client refused(server.port());
  ASSERT_TRUE(refused.connected());
  const std::string response = refused.read_all();
  EXPECT_EQ(response.rfind("err 0 overloaded", 0), 0U) << response;

  // The occupant is unaffected and can finish its session.
  occupant.send_text("quit\n");
  EXPECT_EQ(occupant.read_all(), "ok bye\n");
}

TEST_F(Faults, LateLinesAfterShutdownGetShuttingDown) {
  Broker broker;
  ServerFixture server(broker);
  ASSERT_TRUE(server.running());

  Client lingerer(server.port());
  ASSERT_TRUE(lingerer.connected());
  lingerer.send_text("ping\n");
  EXPECT_EQ(lingerer.read_until("ok pong\n"), "ok pong\n");

  Client controller(server.port());
  ASSERT_TRUE(controller.connected());
  controller.send_text("shutdown\n");
  EXPECT_EQ(controller.read_all(), "ok shutdown\n");

  // The lingering connection winds down with the one structured drain line
  // (a line racing ahead of the stop flag may still be served first), or a
  // bare close if the wind-down won the whole race.
  lingerer.send_text("ping\n");
  const std::string late = lingerer.read_all();
  const std::string drain_line = "err 0 shutting-down server is draining\n";
  EXPECT_TRUE(late.empty() ||
              (late.size() >= drain_line.size() &&
               late.compare(late.size() - drain_line.size(), drain_line.size(), drain_line) == 0))
      << late;
  // And the broker itself now refuses work.
  EXPECT_TRUE(broker.shutting_down());
  const auto refused = broker.solve(pareto_request(6));
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(refused.error().code, "shutting-down");
}

}  // namespace
}  // namespace relap::service
