// Tests for algorithms/comm_hom.hpp — Theorem 6's Algorithms 3 and 4
// (Communication Homogeneous + Failure Homogeneous), cross-checked against
// exhaustive enumeration.

#include "relap/algorithms/comm_hom.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/platform/builders.hpp"
#include "relap/util/stats.hpp"

namespace relap::algorithms {
namespace {

TEST(Algorithm3, UsesFastestProcessorsAndScalesK) {
  const auto pipe = pipeline::Pipeline({12.0}, {1.0, 1.0});
  const auto plat = platform::make_comm_homogeneous({6.0, 4.0, 3.0, 1.0}, 1.0, 0.5);
  // k fastest: T(1) = 1 + 2 + 1 = 4; T(2) = 2 + 3 + 1 = 6; T(3) = 3 + 4 + 1 = 8;
  // T(4) = 4 + 12 + 1 = 17.
  const Result r8 = comm_hom_min_fp_for_latency(pipe, plat, 8.0);
  ASSERT_TRUE(r8.has_value());
  EXPECT_EQ(r8->mapping.processors_used(), 3u);
  EXPECT_EQ(r8->mapping.interval(0).processors,
            (std::vector<platform::ProcessorId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(r8->latency, 8.0);
  EXPECT_DOUBLE_EQ(r8->failure_probability, 0.125);

  const Result r6 = comm_hom_min_fp_for_latency(pipe, plat, 7.9);
  ASSERT_TRUE(r6.has_value());
  EXPECT_EQ(r6->mapping.processors_used(), 2u);
}

TEST(Algorithm3, Infeasible) {
  const auto pipe = pipeline::Pipeline({12.0}, {1.0, 1.0});
  const auto plat = platform::make_comm_homogeneous({6.0, 4.0}, 1.0, 0.5);
  const Result r = comm_hom_min_fp_for_latency(pipe, plat, 3.0);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, "infeasible");
}

TEST(Algorithm4, MinimalKThenFastest) {
  const auto pipe = pipeline::Pipeline({12.0}, {1.0, 1.0});
  const auto plat = platform::make_comm_homogeneous({6.0, 4.0, 3.0, 1.0}, 1.0, 0.5);
  // fp^k <= 0.3 needs k = 2; the two fastest are {0, 1}: T = 2 + 3 + 1 = 6.
  const Result r = comm_hom_min_latency_for_fp(pipe, plat, 0.3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->mapping.interval(0).processors, (std::vector<platform::ProcessorId>{0, 1}));
  EXPECT_DOUBLE_EQ(r->latency, 6.0);
}

TEST(Algorithm4, Infeasible) {
  const auto pipe = pipeline::Pipeline({1.0}, {1.0, 1.0});
  const auto plat = platform::make_comm_homogeneous({1.0, 1.0}, 1.0, 0.9);
  ASSERT_FALSE(comm_hom_min_latency_for_fp(pipe, plat, 0.5).has_value());
}

// --- Property sweep against the exhaustive oracle. --------------------------

class CommHomSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    const std::uint64_t seed = GetParam();
    pipe_.emplace(gen::random_uniform_pipeline(3, seed));
    gen::PlatformGenOptions options;
    options.processors = 4;
    plat_.emplace(gen::random_comm_homogeneous(options, seed * 313));
  }

  std::optional<pipeline::Pipeline> pipe_;
  std::optional<platform::Platform> plat_;
};

TEST_P(CommHomSweep, Algorithm3MatchesExhaustive) {
  const auto oracle_front = exhaustive_pareto(*pipe_, *plat_);
  ASSERT_TRUE(oracle_front.has_value());
  for (const auto& point : oracle_front->front) {
    const Result fast = comm_hom_min_fp_for_latency(*pipe_, *plat_, point.latency);
    ASSERT_TRUE(fast.has_value());
    EXPECT_TRUE(util::approx_equal(fast->failure_probability, point.failure_probability) ||
                fast->failure_probability < point.failure_probability)
        << "L=" << point.latency << " alg=" << fast->failure_probability
        << " oracle=" << point.failure_probability;
  }
}

TEST_P(CommHomSweep, Algorithm4MatchesExhaustive) {
  const auto oracle_front = exhaustive_pareto(*pipe_, *plat_);
  ASSERT_TRUE(oracle_front.has_value());
  for (const auto& point : oracle_front->front) {
    const Result fast = comm_hom_min_latency_for_fp(*pipe_, *plat_, point.failure_probability);
    ASSERT_TRUE(fast.has_value());
    EXPECT_TRUE(util::approx_equal(fast->latency, point.latency) ||
                fast->latency < point.latency)
        << "FP=" << point.failure_probability << " alg=" << fast->latency
        << " oracle=" << point.latency;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommHomSweep, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(AlgorithmsDeath, RequireFailureHomogeneous) {
  const auto pipe = pipeline::Pipeline({1.0}, {1.0, 1.0});
  const auto het = platform::make_comm_homogeneous({1.0, 2.0}, 1.0, {0.1, 0.2});
  EXPECT_DEATH((void)comm_hom_min_fp_for_latency(pipe, het, 10.0), "homogeneous failure");
  EXPECT_DEATH((void)comm_hom_min_latency_for_fp(pipe, het, 0.5), "homogeneous failure");
}

}  // namespace
}  // namespace relap::algorithms
