// Tests for algorithms/single_interval.hpp — the exact single-interval
// solver on identical-link platforms with heterogeneous speeds AND failure
// probabilities, cross-checked against exhaustive enumeration restricted to
// one interval.

#include "relap/algorithms/single_interval.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/platform/builders.hpp"
#include "relap/util/stats.hpp"

namespace relap::algorithms {
namespace {

TEST(SingleInterval, Fig5ReproducesPaperValue) {
  // Under L = 22 the best single interval on the Figure 5 platform is two
  // fast processors with FP = 0.64 (paper Section 3).
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  const Result r =
      single_interval_min_fp_for_latency(pipe, plat, gen::fig5_latency_threshold());
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->failure_probability, 0.64, 1e-12);
  EXPECT_EQ(r->mapping.processors_used(), 2u);
  EXPECT_EQ(r->mapping.interval_count(), 1u);
}

TEST(SingleInterval, MixedSpeedReliabilityTradeoff) {
  // Fast-but-unreliable vs slow-but-reliable: with a loose budget the slow
  // reliable processor joins; with a tight one it cannot.
  const auto pipe = pipeline::Pipeline({10.0}, {1.0, 1.0});
  const auto plat =
      platform::make_comm_homogeneous({10.0, 10.0, 1.0}, 1.0, {0.5, 0.5, 0.01});
  // Tight: L = 4. k=2 fast: 2 + 1 + 1 = 4, FP = 0.25. Slow proc needs W/s = 10.
  const Result tight = single_interval_min_fp_for_latency(pipe, plat, 4.0);
  ASSERT_TRUE(tight.has_value());
  EXPECT_NEAR(tight->failure_probability, 0.25, 1e-15);
  // Loose: L = 14 admits {0,1,2}: 3 + 10 + 1 = 14, FP = 0.0025.
  const Result loose = single_interval_min_fp_for_latency(pipe, plat, 14.0);
  ASSERT_TRUE(loose.has_value());
  EXPECT_NEAR(loose->failure_probability, 0.0025, 1e-15);
  EXPECT_EQ(loose->mapping.processors_used(), 3u);
}

TEST(SingleInterval, MinLatencyHandComputed) {
  const auto pipe = pipeline::Pipeline({10.0}, {1.0, 1.0});
  const auto plat =
      platform::make_comm_homogeneous({10.0, 10.0, 1.0}, 1.0, {0.5, 0.5, 0.01});
  // FP <= 0.3: {0,1} gives 0.25 at latency 4; {2} gives 0.01 at 1+10+1 = 12.
  const Result r = single_interval_min_latency_for_fp(pipe, plat, 0.3);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->latency, 4.0);
  // FP <= 0.2 excludes the fast pair (0.25): must fall back to slower sets.
  const Result strict = single_interval_min_latency_for_fp(pipe, plat, 0.2);
  ASSERT_TRUE(strict.has_value());
  EXPECT_TRUE(within_cap(strict->failure_probability, 0.2));
  EXPECT_GT(strict->latency, 4.0);
}

TEST(SingleInterval, InfeasibleCases) {
  const auto pipe = pipeline::Pipeline({10.0}, {1.0, 1.0});
  const auto plat = platform::make_comm_homogeneous({1.0}, 1.0, {0.5});
  ASSERT_FALSE(single_interval_min_fp_for_latency(pipe, plat, 2.0).has_value());
  ASSERT_FALSE(single_interval_min_latency_for_fp(pipe, plat, 0.1).has_value());
}

// --- Exactness property: equals exhaustive restricted to one interval. ------

class SingleIntervalSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    const std::uint64_t seed = GetParam();
    pipe_.emplace(gen::random_uniform_pipeline(3, seed));
    gen::PlatformGenOptions options;
    options.processors = 5;
    plat_.emplace(gen::random_comm_hom_het_failures(options, seed * 733));
    ExhaustiveOptions ex;
    ex.max_intervals = 1;
    oracle_ = exhaustive_pareto(*pipe_, *plat_, ex);
  }

  std::optional<pipeline::Pipeline> pipe_;
  std::optional<platform::Platform> plat_;
  std::optional<util::Expected<ParetoOutcome>> oracle_;
};

TEST_P(SingleIntervalSweep, MinFpMatchesRestrictedExhaustive) {
  ASSERT_TRUE(oracle_->has_value());
  for (const auto& point : (*oracle_)->front) {
    const Result fast = single_interval_min_fp_for_latency(*pipe_, *plat_, point.latency);
    ASSERT_TRUE(fast.has_value());
    EXPECT_TRUE(util::approx_equal(fast->failure_probability, point.failure_probability) ||
                fast->failure_probability < point.failure_probability)
        << "L=" << point.latency;
  }
}

TEST_P(SingleIntervalSweep, MinLatencyMatchesRestrictedExhaustive) {
  ASSERT_TRUE(oracle_->has_value());
  for (const auto& point : (*oracle_)->front) {
    const Result fast =
        single_interval_min_latency_for_fp(*pipe_, *plat_, point.failure_probability);
    ASSERT_TRUE(fast.has_value());
    EXPECT_TRUE(util::approx_equal(fast->latency, point.latency) ||
                fast->latency < point.latency)
        << "FP=" << point.failure_probability;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleIntervalSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace relap::algorithms
