// Determinism regression tests for the parallel solver hot paths: one seed
// must yield bit-identical results at 1, 2 and 8 threads, on paper-scale
// instances. These tests pin the exec subsystem's core contract — fixed
// chunk grids, per-chunk split RNG streams, index-order reductions.

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "relap/algorithms/annealing.hpp"
#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/heuristics.hpp"
#include "relap/algorithms/local_search.hpp"
#include "relap/algorithms/pareto_driver.hpp"
#include "relap/exec/thread_pool.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/service/broker.hpp"
#include "relap/sim/monte_carlo.hpp"

namespace relap {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

void expect_same_estimate(const sim::FailureRateEstimate& a, const sim::FailureRateEstimate& b,
                          std::size_t threads) {
  EXPECT_EQ(a.empirical, b.empirical) << "threads=" << threads;
  EXPECT_EQ(a.analytic, b.analytic) << "threads=" << threads;
  EXPECT_EQ(a.ci95.low, b.ci95.low) << "threads=" << threads;
  EXPECT_EQ(a.ci95.high, b.ci95.high) << "threads=" << threads;
  EXPECT_EQ(a.trials, b.trials) << "threads=" << threads;
}

TEST(Determinism, FailureRateEstimateAcrossThreadCounts) {
  const auto plat = gen::fig5_platform();
  const auto mapping = gen::fig5_two_interval_mapping();

  exec::ThreadPool serial(1);
  sim::MonteCarloOptions options;
  options.trials = 50'000;
  options.pool = &serial;
  const sim::FailureRateEstimate reference = sim::estimate_failure_rate(plat, mapping, options);

  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    options.pool = &pool;
    expect_same_estimate(sim::estimate_failure_rate(plat, mapping, options), reference, threads);
  }
}

TEST(Determinism, EngineTrialStatsAcrossThreadCounts) {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  const auto mapping = gen::fig5_two_interval_mapping();

  exec::ThreadPool serial(1);
  sim::TrialOptions options;
  options.trials = 600;
  options.pool = &serial;
  const sim::TrialStats reference = sim::run_trials(pipe, plat, mapping, options);

  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    options.pool = &pool;
    const sim::TrialStats stats = sim::run_trials(pipe, plat, mapping, options);
    expect_same_estimate(stats.failure, reference.failure, threads);
    EXPECT_EQ(stats.failure_free_latency, reference.failure_free_latency) << "threads=" << threads;
    EXPECT_EQ(stats.latency.count(), reference.latency.count()) << "threads=" << threads;
    EXPECT_EQ(stats.latency.mean(), reference.latency.mean()) << "threads=" << threads;
    EXPECT_EQ(stats.latency.variance(), reference.latency.variance()) << "threads=" << threads;
    EXPECT_EQ(stats.latency.min(), reference.latency.min()) << "threads=" << threads;
    EXPECT_EQ(stats.latency.max(), reference.latency.max()) << "threads=" << threads;
  }
}

void expect_same_front(const std::vector<algorithms::ParetoSolution>& a,
                       const std::vector<algorithms::ParetoSolution>& b, std::size_t threads) {
  ASSERT_EQ(a.size(), b.size()) << "threads=" << threads;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].latency, b[i].latency) << "threads=" << threads << " point " << i;
    EXPECT_EQ(a[i].failure_probability, b[i].failure_probability)
        << "threads=" << threads << " point " << i;
    EXPECT_EQ(a[i].mapping, b[i].mapping) << "threads=" << threads << " point " << i;
  }
}

TEST(Determinism, ExhaustiveParetoAcrossThreadCounts) {
  // Figure 5 at paper scale: 2 stages on 11 processors — ~175k candidates.
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();

  exec::ThreadPool serial(1);
  algorithms::ExhaustiveOptions options;
  options.pool = &serial;
  const auto reference = algorithms::exhaustive_pareto(pipe, plat, options);
  ASSERT_TRUE(reference.has_value());

  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    options.pool = &pool;
    const auto outcome = algorithms::exhaustive_pareto(pipe, plat, options);
    ASSERT_TRUE(outcome.has_value()) << "threads=" << threads;
    EXPECT_EQ(outcome->evaluations, reference->evaluations) << "threads=" << threads;
    expect_same_front(outcome->front, reference->front, threads);
  }
}

TEST(Determinism, ExhaustiveParetoFewCompositionsAcrossThreadCounts) {
  // 2 stages on 8 processors: only 2 compositions, so the old per-composition
  // split degenerated to two giant tasks. The flat rank/unrank chunking must
  // stay bit-identical while cutting this space into uniform chunks.
  const auto pipe = gen::random_uniform_pipeline(2, 101);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 8;
  const auto plat = gen::random_comm_hom_het_failures(gen_options, 102);

  exec::ThreadPool serial(1);
  algorithms::ExhaustiveOptions options;
  options.pool = &serial;
  const auto reference = algorithms::exhaustive_pareto(pipe, plat, options);
  ASSERT_TRUE(reference.has_value());

  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    options.pool = &pool;
    const auto outcome = algorithms::exhaustive_pareto(pipe, plat, options);
    ASSERT_TRUE(outcome.has_value()) << "threads=" << threads;
    EXPECT_EQ(outcome->evaluations, reference->evaluations) << "threads=" << threads;
    expect_same_front(outcome->front, reference->front, threads);
  }
}

TEST(Determinism, GeneralEnumerationAcrossThreadCounts) {
  const auto pipe = gen::random_uniform_pipeline(5, 111);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 5;
  const auto plat = gen::random_fully_heterogeneous(gen_options, 112);

  exec::ThreadPool serial(1);
  const auto reference =
      algorithms::exhaustive_general_min_latency(pipe, plat, 20'000'000, &serial);
  ASSERT_TRUE(reference.has_value());

  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    const auto outcome =
        algorithms::exhaustive_general_min_latency(pipe, plat, 20'000'000, &pool);
    ASSERT_TRUE(outcome.has_value()) << "threads=" << threads;
    EXPECT_EQ(outcome->mapping, reference->mapping) << "threads=" << threads;
    EXPECT_EQ(outcome->latency, reference->latency) << "threads=" << threads;
  }
}

TEST(Determinism, OneToOneEnumerationAcrossThreadCounts) {
  // 4 stages on 8 processors: 1680 injections — more than one 1024-candidate
  // chunk, so the nonzero-rank unrank_injection seek at chunk boundaries is
  // actually exercised (840 at m=7 would collapse to a single chunk).
  const auto pipe = gen::random_uniform_pipeline(4, 121);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 8;
  const auto plat = gen::random_fully_heterogeneous(gen_options, 122);

  exec::ThreadPool serial(1);
  const auto reference =
      algorithms::exhaustive_one_to_one_min_latency(pipe, plat, 20'000'000, &serial);
  ASSERT_TRUE(reference.has_value());

  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    const auto outcome =
        algorithms::exhaustive_one_to_one_min_latency(pipe, plat, 20'000'000, &pool);
    ASSERT_TRUE(outcome.has_value()) << "threads=" << threads;
    EXPECT_EQ(outcome->mapping, reference->mapping) << "threads=" << threads;
    EXPECT_EQ(outcome->latency, reference->latency) << "threads=" << threads;
  }
}

TEST(Determinism, HeuristicParetoFrontAcrossThreadCounts) {
  const auto pipe = gen::random_uniform_pipeline(6, 77);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 8;
  const auto plat = gen::random_comm_hom_het_failures(gen_options, 78);

  exec::ThreadPool serial(1);
  algorithms::ParetoDriverOptions options;
  options.pool = &serial;
  const auto reference = algorithms::heuristic_pareto_front(pipe, plat, options);

  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    options.pool = &pool;
    expect_same_front(algorithms::heuristic_pareto_front(pipe, plat, options), reference, threads);
  }
}

// --- SIMD lane-width invariance: the lane kernels at W = 4 / 8 must be
// bit-identical to the W = 1 scalar walk, the same contract thread-count
// determinism pins for the exec subsystem. -------------------------------

constexpr std::size_t kLaneWidths[] = {1, 4, 8};

TEST(Determinism, ExhaustiveParetoAcrossLaneWidths) {
  const auto pipe = gen::random_uniform_pipeline(3, 131);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 6;
  const auto plat = gen::random_fully_heterogeneous(gen_options, 132);

  algorithms::ExhaustiveOptions options;
  options.lane_width = 1;
  const auto reference = algorithms::exhaustive_pareto(pipe, plat, options);
  ASSERT_TRUE(reference.has_value());

  for (const std::size_t width : kLaneWidths) {
    options.lane_width = width;
    const auto outcome = algorithms::exhaustive_pareto(pipe, plat, options);
    ASSERT_TRUE(outcome.has_value()) << "lane_width=" << width;
    EXPECT_EQ(outcome->evaluations, reference->evaluations) << "lane_width=" << width;
    expect_same_front(outcome->front, reference->front, width);
  }
}

TEST(Determinism, GeneralEnumerationAcrossLaneWidths) {
  const auto pipe = gen::random_uniform_pipeline(5, 141);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 5;
  const auto plat = gen::random_fully_heterogeneous(gen_options, 142);

  const auto reference =
      algorithms::exhaustive_general_min_latency(pipe, plat, 20'000'000, nullptr, 1);
  ASSERT_TRUE(reference.has_value());

  for (const std::size_t width : kLaneWidths) {
    const auto outcome =
        algorithms::exhaustive_general_min_latency(pipe, plat, 20'000'000, nullptr, width);
    ASSERT_TRUE(outcome.has_value()) << "lane_width=" << width;
    EXPECT_EQ(outcome->mapping, reference->mapping) << "lane_width=" << width;
    EXPECT_EQ(outcome->latency, reference->latency) << "lane_width=" << width;
  }
}

TEST(Determinism, OneToOneEnumerationAcrossLaneWidths) {
  const auto pipe = gen::random_uniform_pipeline(4, 151);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 8;
  const auto plat = gen::random_fully_heterogeneous(gen_options, 152);

  const auto reference =
      algorithms::exhaustive_one_to_one_min_latency(pipe, plat, 20'000'000, nullptr, 1);
  ASSERT_TRUE(reference.has_value());

  for (const std::size_t width : kLaneWidths) {
    const auto outcome =
        algorithms::exhaustive_one_to_one_min_latency(pipe, plat, 20'000'000, nullptr, width);
    ASSERT_TRUE(outcome.has_value()) << "lane_width=" << width;
    EXPECT_EQ(outcome->mapping, reference->mapping) << "lane_width=" << width;
    EXPECT_EQ(outcome->latency, reference->latency) << "lane_width=" << width;
  }
}

TEST(Determinism, FailureRateEstimateAcrossLaneWidths) {
  const auto plat = gen::fig5_platform();
  const auto mapping = gen::fig5_two_interval_mapping();

  sim::MonteCarloOptions options;
  options.trials = 50'000;
  options.lane_width = 1;
  const sim::FailureRateEstimate reference = sim::estimate_failure_rate(plat, mapping, options);

  for (const std::size_t width : kLaneWidths) {
    options.lane_width = width;
    expect_same_estimate(sim::estimate_failure_rate(plat, mapping, options), reference, width);
  }
}

TEST(Determinism, BeamCandidatesAcrossLaneWidths) {
  const auto pipe = gen::random_uniform_pipeline(6, 161);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 8;
  const auto plat = gen::random_comm_hom_het_failures(gen_options, 162);

  const auto collect = [&](std::size_t width) {
    algorithms::HeuristicOptions options;
    options.lane_width = width;
    std::vector<algorithms::Solution> out;
    algorithms::enumerate_beam_candidates(pipe, plat, options,
                                          [&](algorithms::Solution s) { out.push_back(std::move(s)); });
    return out;
  };

  const std::vector<algorithms::Solution> reference = collect(1);
  ASSERT_FALSE(reference.empty());
  for (const std::size_t width : kLaneWidths) {
    const std::vector<algorithms::Solution> out = collect(width);
    ASSERT_EQ(out.size(), reference.size()) << "lane_width=" << width;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].latency, reference[i].latency) << "lane_width=" << width << " i=" << i;
      EXPECT_EQ(out[i].failure_probability, reference[i].failure_probability)
          << "lane_width=" << width << " i=" << i;
      EXPECT_EQ(out[i].mapping, reference[i].mapping) << "lane_width=" << width << " i=" << i;
    }
  }
}

TEST(Determinism, BrokerWarmRepliesEqualColdAcrossThreadCounts) {
  // The service contract on top of the exec contract: at every thread count,
  // a warm-cache reply is bit-identical to the cold solve that filled the
  // cache, and the cold fronts themselves agree across thread counts.
  const auto pipe = gen::random_uniform_pipeline(4, 171);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 5;
  const auto plat = gen::random_fully_heterogeneous(gen_options, 172);

  service::SolveRequest request;
  request.instance = service::InstanceData::from(pipe, plat);
  request.objective = service::Objective::ParetoFront;

  std::vector<algorithms::ParetoSolution> reference;
  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    service::BrokerOptions broker_options;
    broker_options.pool = &pool;
    service::Broker broker(broker_options);  // fresh cache per thread count

    const auto cold = broker.solve(request);
    ASSERT_TRUE(cold.has_value()) << "threads=" << threads;
    EXPECT_FALSE(cold->cache_hit) << "threads=" << threads;
    const auto warm = broker.solve(request);
    ASSERT_TRUE(warm.has_value()) << "threads=" << threads;
    EXPECT_TRUE(warm->cache_hit) << "threads=" << threads;
    expect_same_front(warm->front, cold->front, threads);
    EXPECT_EQ(service::front_checksum(warm->front), service::front_checksum(cold->front))
        << "threads=" << threads;

    if (reference.empty()) {
      reference = cold->front;
    } else {
      expect_same_front(cold->front, reference, threads);
    }
  }
}

TEST(Determinism, BrokerWarmFromSnapshotEqualsColdAcrossThreadCounts) {
  // The persistence extension of the contract above: a broker restarted from
  // a snapshot serves replies bit-identical to the cold solve that produced
  // the snapshot — at every thread count, and regardless of which thread
  // count wrote the snapshot (entries store solved canonical fronts, which
  // are thread-count-invariant by the exec contract).
  const auto pipe = gen::random_uniform_pipeline(4, 171);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 5;
  const auto plat = gen::random_fully_heterogeneous(gen_options, 172);

  service::SolveRequest request;
  request.instance = service::InstanceData::from(pipe, plat);
  request.objective = service::Objective::ParetoFront;

  // One cold solve (single-threaded) writes the snapshot.
  const std::string path = std::string(::testing::TempDir()) + "relap_determinism_warm.snap";
  std::vector<algorithms::ParetoSolution> reference;
  {
    exec::ThreadPool pool(1);
    service::BrokerOptions broker_options;
    broker_options.pool = &pool;
    service::Broker broker(broker_options);
    const auto cold = broker.solve(request);
    ASSERT_TRUE(cold.has_value());
    reference = cold->front;
    const auto saved = broker.save_snapshot(path);
    ASSERT_TRUE(saved.has_value());
    ASSERT_EQ(saved->entries, 1U);
  }

  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    service::BrokerOptions broker_options;
    broker_options.pool = &pool;
    service::Broker broker(broker_options);
    ASSERT_TRUE(broker.load_snapshot(path).has_value()) << "threads=" << threads;

    const auto warm = broker.solve(request);
    ASSERT_TRUE(warm.has_value()) << "threads=" << threads;
    EXPECT_TRUE(warm->cache_hit) << "threads=" << threads;
    expect_same_front(warm->front, reference, threads);
    EXPECT_EQ(service::front_checksum(warm->front), service::front_checksum(reference))
        << "threads=" << threads;
  }
  std::remove(path.c_str());
}

TEST(Determinism, BrokerConcurrentBatchedCallersEqualColdAcrossThreadCounts) {
  // The concurrent-serving extension of the contract: callers racing through
  // the shared batch queue (`solve_batched`, the path every TCP connection
  // takes) receive fronts bit-identical to a single-threaded direct cold
  // solve — at every pool size, regardless of which caller becomes the
  // queue's drainer.
  const auto pipe = gen::random_uniform_pipeline(4, 171);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 5;
  const auto plat = gen::random_fully_heterogeneous(gen_options, 172);

  service::SolveRequest request;
  request.instance = service::InstanceData::from(pipe, plat);
  request.objective = service::Objective::ParetoFront;

  std::vector<algorithms::ParetoSolution> reference;
  {
    exec::ThreadPool pool(1);
    service::BrokerOptions broker_options;
    broker_options.pool = &pool;
    service::Broker broker(broker_options);
    const auto cold = broker.solve(request);
    ASSERT_TRUE(cold.has_value());
    reference = cold->front;
  }

  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    service::BrokerOptions broker_options;
    broker_options.pool = &pool;
    service::Broker broker(broker_options);  // fresh cache per thread count

    constexpr std::size_t kCallers = 4;
    std::vector<std::optional<util::Expected<service::Reply>>> replies(kCallers);
    {
      std::vector<std::thread> callers;
      for (std::size_t c = 0; c < kCallers; ++c) {
        callers.emplace_back([&, c] { replies[c] = broker.solve_batched(request); });
      }
      for (std::thread& caller : callers) caller.join();
    }
    for (std::size_t c = 0; c < kCallers; ++c) {
      ASSERT_TRUE(replies[c].has_value() && replies[c]->has_value())
          << "threads=" << threads << " caller=" << c;
      expect_same_front((*replies[c])->front, reference, threads);
      EXPECT_EQ(service::front_checksum((*replies[c])->front), service::front_checksum(reference))
          << "threads=" << threads << " caller=" << c;
    }
    // Identical concurrent presentations coalesce onto one actual solve.
    EXPECT_EQ(broker.metrics().solves_total.value(), 1U) << "threads=" << threads;
  }
}

TEST(Determinism, MultiStartAnnealingAcrossThreadCounts) {
  const auto pipe = gen::random_uniform_pipeline(5, 41);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 6;
  const auto plat = gen::random_comm_hom_het_failures(gen_options, 42);
  const algorithms::Solution start =
      algorithms::evaluate(pipe, plat, mapping::IntervalMapping::single_interval(5, {0}));
  const double cap = start.latency * 1.2;

  exec::ThreadPool serial(1);
  algorithms::AnnealingOptions options;
  options.iterations = 2'000;
  options.restarts = 4;
  options.pool = &serial;
  const algorithms::Solution reference =
      algorithms::anneal_min_fp(pipe, plat, start, cap, options);

  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    options.pool = &pool;
    const algorithms::Solution out = algorithms::anneal_min_fp(pipe, plat, start, cap, options);
    EXPECT_EQ(out.mapping, reference.mapping) << "threads=" << threads;
    EXPECT_EQ(out.latency, reference.latency) << "threads=" << threads;
    EXPECT_EQ(out.failure_probability, reference.failure_probability) << "threads=" << threads;
  }
}

TEST(Determinism, MultiStartLocalSearchAcrossThreadCounts) {
  const auto pipe = gen::random_uniform_pipeline(5, 51);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 6;
  const auto plat = gen::random_comm_hom_het_failures(gen_options, 52);

  std::vector<algorithms::Solution> starts;
  starts.push_back(
      algorithms::evaluate(pipe, plat, mapping::IntervalMapping::single_interval(5, {0})));
  starts.push_back(
      algorithms::evaluate(pipe, plat, mapping::IntervalMapping::single_interval(5, {1, 2})));
  starts.push_back(
      algorithms::evaluate(pipe, plat, mapping::IntervalMapping::single_interval(5, {3})));
  const double cap = starts[0].latency * 1.5;

  exec::ThreadPool serial(1);
  algorithms::LocalSearchOptions options;
  options.pool = &serial;
  const algorithms::Solution reference =
      algorithms::multi_start_local_search_min_fp(pipe, plat, starts, cap, options);

  // The winner is never worse than any start under the comparator.
  for (const algorithms::Solution& start : starts) {
    EXPECT_FALSE(algorithms::better_min_fp(start, reference, cap));
  }

  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    options.pool = &pool;
    const algorithms::Solution out =
        algorithms::multi_start_local_search_min_fp(pipe, plat, starts, cap, options);
    EXPECT_EQ(out.mapping, reference.mapping) << "threads=" << threads;
    EXPECT_EQ(out.latency, reference.latency) << "threads=" << threads;
    EXPECT_EQ(out.failure_probability, reference.failure_probability) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace relap
