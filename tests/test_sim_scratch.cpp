// Tests for the simulation arena (sim/engine.hpp SimScratch + simulate_into)
// and the batched Monte-Carlo drivers. Three guarantees are pinned here:
//  1. bit-identity: simulate_into on a reused scratch matches simulate() bit
//     for bit across random scenarios, send orders and dataset counts, and
//     scratch reuse is pure (running other scenarios in between changes
//     nothing);
//  2. zero allocation: the steady-state trial loop (draw_into +
//     simulate_into, optionally traced) performs no heap allocation, counted
//     by replacing the global allocator in this TU;
//  3. determinism: run_trials / estimate_failure_rate with the batched
//     drivers are bit-identical at 1, 2 and 8 threads.

#include "relap/sim/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "relap/exec/thread_pool.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/platform/builders.hpp"
#include "relap/sim/monte_carlo.hpp"
#include "relap/util/rng.hpp"

namespace {

std::atomic<std::size_t> g_allocation_count{0};

std::size_t allocation_count() { return g_allocation_count.load(std::memory_order_relaxed); }

void* counted_allocate(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_allocate_aligned(std::size_t size, std::size_t alignment) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*) : alignment,
                     size == 0 ? alignment : size) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

// Replaceable global allocation functions: every operator new in this test
// binary routes through the counter. The zero-allocation test below measures
// the counter across the engine's steady-state trial loop.
void* operator new(std::size_t size) { return counted_allocate(size); }
void* operator new[](std::size_t size) { return counted_allocate(size); }
void* operator new(std::size_t size, std::align_val_t alignment) {
  return counted_allocate_aligned(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return counted_allocate_aligned(size, static_cast<std::size_t>(alignment));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace relap::sim {
namespace {

void expect_same_result(const SimResult& a, const SimResult& b, const char* context) {
  ASSERT_EQ(a.datasets.size(), b.datasets.size()) << context;
  EXPECT_EQ(a.application_failed, b.application_failed) << context;
  EXPECT_EQ(a.makespan, b.makespan) << context;
  for (std::size_t d = 0; d < a.datasets.size(); ++d) {
    EXPECT_EQ(a.datasets[d].completed, b.datasets[d].completed) << context << " dataset " << d;
    EXPECT_EQ(a.datasets[d].injection_time, b.datasets[d].injection_time)
        << context << " dataset " << d;
    EXPECT_EQ(a.datasets[d].completion_time, b.datasets[d].completion_time)
        << context << " dataset " << d;
  }
}

TEST(SimScratch, SimulateIntoMatchesSimulateBitForBit) {
  const auto pipe = gen::random_uniform_pipeline(6, 901);
  gen::PlatformGenOptions options;
  options.processors = 9;
  options.fp_min = 0.2;
  options.fp_max = 0.8;
  const auto plat = gen::random_fully_heterogeneous(options, 902);
  const mapping::IntervalMapping m(
      {{{0, 1}, {0, 3}}, {{2, 3}, {1, 4, 5}}, {{4, 5}, {2, 6, 7}}});
  util::Rng rng(903);

  for (const SendOrder send_order : {SendOrder::ById, SendOrder::WorstCaseLast}) {
    for (const std::size_t datasets : {std::size_t{1}, std::size_t{3}}) {
      SimOptions sim_options;
      sim_options.send_order = send_order;
      sim_options.dataset_count = datasets;

      SimScratch scratch(plat.processor_count(), m.interval_count());
      scratch.bind(pipe, plat, m, send_order);
      SimResult reused;
      for (int i = 0; i < 200; ++i) {
        FailureScenario::draw_into(scratch.scenario(), plat, 50.0, rng);
        // Copy: simulate() must see the identical scenario after
        // simulate_into ran on (and possibly mutated nothing of) the buffer.
        const FailureScenario scenario = scratch.scenario();
        simulate_into(scratch, scratch.scenario(), sim_options, reused);
        const SimResult fresh = simulate(pipe, plat, m, scenario, sim_options);
        expect_same_result(reused, fresh, "iteration");
      }
    }
  }
}

TEST(SimScratch, ReuseIsPureAcrossScenarios) {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  const auto m = gen::fig5_two_interval_mapping();

  SimScratch scratch;
  scratch.bind(pipe, plat, m, SendOrder::ById);
  SimOptions sim_options;
  sim_options.dataset_count = 2;

  util::Rng rng(905);
  SimResult first;
  const FailureScenario a = FailureScenario::draw(plat, 30.0, rng);
  simulate_into(scratch, a, sim_options, first);

  // Interleave other scenarios (including adversarial fail-after-receive
  // markers) on the same scratch, then re-run A: identical bits.
  for (int i = 0; i < 50; ++i) {
    SimResult other;
    const FailureScenario b = FailureScenario::draw(plat, 30.0, rng);
    simulate_into(scratch, b, sim_options, other);
  }
  SimResult worst;
  simulate_into(scratch, FailureScenario::worst_case(pipe, plat, m), sim_options,
                worst);

  SimResult again;
  simulate_into(scratch, a, sim_options, again);
  expect_same_result(first, again, "re-run of scenario A");
}

TEST(SimScratch, RebindSwitchesInstances) {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  const auto single = gen::fig5_single_interval_mapping();
  const auto two = gen::fig5_two_interval_mapping();

  SimScratch scratch;
  SimResult out;
  const FailureScenario none = FailureScenario::none(plat.processor_count());

  scratch.bind(pipe, plat, single, SendOrder::ById);
  simulate_into(scratch, none, {}, out);
  const SimResult single_fresh = simulate(pipe, plat, single, none, {});
  expect_same_result(out, single_fresh, "single-interval after first bind");

  scratch.bind(pipe, plat, two, SendOrder::ById);
  simulate_into(scratch, none, {}, out);
  const SimResult two_fresh = simulate(pipe, plat, two, none, {});
  expect_same_result(out, two_fresh, "two-interval after rebind");
}

TEST(SimScratch, TracedRunsComposeWithScratchReuse) {
  const auto pipe = pipeline::Pipeline({4.0}, {2.0, 6.0});
  const auto plat = platform::make_fully_homogeneous(1, 2.0, 2.0, 0.0);
  const auto m = mapping::IntervalMapping::single_interval(1, {0});

  SimScratch scratch;
  scratch.bind(pipe, plat, m, SendOrder::ById);
  Trace trace;
  SimOptions options;
  options.trace = &trace;
  SimResult out;

  simulate_into(scratch, FailureScenario::none(1), options, out);
  ASSERT_EQ(trace.size(), 3u);
  // Appending a second run extends the same flat buffer…
  simulate_into(scratch, FailureScenario::none(1), options, out);
  EXPECT_EQ(trace.size(), 6u);
  // …and clear() + re-record reuses it.
  trace.clear();
  simulate_into(scratch, FailureScenario::none(1), options, out);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.ops()[2].end, 6.0);
}

TEST(SimScratchAllocation, SteadyStateTrialLoopIsAllocationFree) {
  const auto pipe = gen::random_uniform_pipeline(6, 911);
  gen::PlatformGenOptions options;
  options.processors = 9;
  options.fp_min = 0.2;
  options.fp_max = 0.7;
  const auto plat = gen::random_comm_hom_het_failures(options, 912);
  const mapping::IntervalMapping m(
      {{{0, 1}, {0, 3}}, {{2, 3}, {1, 4, 5}}, {{4, 5}, {2, 6, 7}}});
  SimOptions sim_options;
  sim_options.dataset_count = 2;

  util::Rng rng(913);
  SimScratch scratch;
  scratch.bind(pipe, plat, m, sim_options.send_order);
  SimResult run;

  // Warm up: sizes the scenario, state and result buffers. The failure-free
  // run bounds the operation count of every failure scenario on this
  // instance, so one traced failure-free run also sizes the trace buffer.
  Trace trace;
  SimOptions traced = sim_options;
  traced.trace = &trace;
  FailureScenario::draw_into(scratch.scenario(), plat, 40.0, rng);
  simulate_into(scratch, scratch.scenario(), sim_options, run);
  trace.clear();
  simulate_into(scratch, FailureScenario::none(plat.processor_count()), traced,
                run);

  double sink = 0.0;
  const std::size_t before = allocation_count();
  for (int t = 0; t < 2000; ++t) {
    util::Rng trial_rng = rng.split();
    FailureScenario::draw_into(scratch.scenario(), plat, 40.0, trial_rng);
    trace.clear();
    simulate_into(scratch, scratch.scenario(), traced, run);
    sink += run.makespan + static_cast<double>(trace.size());
  }
  const std::size_t after = allocation_count();
  EXPECT_EQ(after, before) << "steady-state trial loop allocated " << (after - before)
                           << " times over 2000 trials";
  EXPECT_GT(sink, 0.0);  // keep the loop observable
}

void expect_same_estimate(const FailureRateEstimate& a, const FailureRateEstimate& b,
                          std::size_t threads) {
  EXPECT_EQ(a.empirical, b.empirical) << "threads=" << threads;
  EXPECT_EQ(a.analytic, b.analytic) << "threads=" << threads;
  EXPECT_EQ(a.ci95.low, b.ci95.low) << "threads=" << threads;
  EXPECT_EQ(a.ci95.high, b.ci95.high) << "threads=" << threads;
}

TEST(SimScratchDeterminism, BatchedDriversAreBitIdenticalAcrossThreadCounts) {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  const auto m = gen::fig5_two_interval_mapping();

  exec::ThreadPool serial(1);
  TrialOptions trial_options;
  trial_options.trials = 500;
  trial_options.dataset_count = 2;
  trial_options.pool = &serial;
  const TrialStats trial_reference = run_trials(pipe, plat, m, trial_options);

  MonteCarloOptions mc_options;
  mc_options.trials = 20'000;
  mc_options.pool = &serial;
  const FailureRateEstimate mc_reference = estimate_failure_rate(plat, m, mc_options);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    exec::ThreadPool pool(threads);
    trial_options.pool = &pool;
    const TrialStats stats = run_trials(pipe, plat, m, trial_options);
    expect_same_estimate(stats.failure, trial_reference.failure, threads);
    EXPECT_EQ(stats.failure_free_latency, trial_reference.failure_free_latency)
        << "threads=" << threads;
    EXPECT_EQ(stats.latency.count(), trial_reference.latency.count()) << "threads=" << threads;
    EXPECT_EQ(stats.latency.mean(), trial_reference.latency.mean()) << "threads=" << threads;
    EXPECT_EQ(stats.latency.variance(), trial_reference.latency.variance())
        << "threads=" << threads;
    EXPECT_EQ(stats.latency.min(), trial_reference.latency.min()) << "threads=" << threads;
    EXPECT_EQ(stats.latency.max(), trial_reference.latency.max()) << "threads=" << threads;

    mc_options.pool = &pool;
    expect_same_estimate(estimate_failure_rate(plat, m, mc_options), mc_reference, threads);
  }
}

TEST(SimScratchLanes, DrawIndexedMatchesTheScalarCounterWalk) {
  // The counter scheme pinned down: trial t uses counters t*2m + 2u
  // (breakdown Bernoulli) and t*2m + 2u + 1 (death time) for processor u.
  // Re-derive the scenario with scalar counter_hash calls and demand bit
  // equality — and draws must be independent of call order (re-drawing an
  // earlier trial reproduces it exactly).
  gen::PlatformGenOptions options;
  options.processors = 9;
  options.fp_min = 0.1;
  options.fp_max = 0.9;
  const auto plat = gen::random_fully_heterogeneous(options, 921);
  const std::size_t m = plat.processor_count();
  const double horizon = 37.5;
  const std::uint64_t seed = 0xABCDEF0123ULL;

  FailureScenario scenario;
  FailureScenario replay;
  for (const std::uint64_t t : {std::uint64_t{0}, std::uint64_t{7}, std::uint64_t{123456}}) {
    FailureScenario::draw_indexed(scenario, plat, horizon, seed, t);
    for (platform::ProcessorId u = 0; u < m; ++u) {
      const std::uint64_t c = t * 2 * m + 2 * u;
      const bool dies = util::to_unit_double(util::counter_hash(seed, c)) < plat.failure_prob(u);
      if (dies) {
        const double expected = horizon * util::to_unit_double(util::counter_hash(seed, c + 1));
        EXPECT_EQ(scenario.failure_time[u], expected) << "trial " << t << " proc " << u;
      } else {
        EXPECT_EQ(scenario.failure_time[u], std::numeric_limits<double>::infinity())
            << "trial " << t << " proc " << u;
      }
      EXPECT_FALSE(scenario.fail_after_first_receive[u]);
    }
    // Out-of-order replay of the same trial index is bit-identical.
    FailureScenario::draw_indexed(replay, plat, horizon, seed, 999);
    FailureScenario::draw_indexed(replay, plat, horizon, seed, t);
    EXPECT_EQ(replay.failure_time, scenario.failure_time) << "trial " << t;
  }
}

TEST(SimScratchLanes, EstimateFailureRateIsLaneWidthInvariant) {
  // W=1 runs the scalar counter walk; 4 and 8 run the lane kernel. All
  // three must agree bit for bit, on every platform class.
  exec::ThreadPool serial(1);
  const auto check = [&](const platform::Platform& plat, const mapping::IntervalMapping& m) {
    MonteCarloOptions mc;
    mc.trials = 30'000;
    mc.pool = &serial;
    mc.lane_width = 1;
    const FailureRateEstimate reference = estimate_failure_rate(plat, m, mc);
    for (const std::size_t width : {std::size_t{4}, std::size_t{8}}) {
      mc.lane_width = width;
      expect_same_estimate(estimate_failure_rate(plat, m, mc), reference, width);
    }
  };

  check(gen::fig5_platform(), gen::fig5_two_interval_mapping());
  {
    gen::PlatformGenOptions options;
    options.processors = 7;
    options.fp_min = 0.05;
    options.fp_max = 0.6;
    check(gen::random_comm_hom_het_failures(options, 931),
          mapping::IntervalMapping({{{0, 1}, {0, 3}}, {{2, 3}, {1, 4, 6}}}));
    check(gen::random_fully_heterogeneous(options, 932),
          mapping::IntervalMapping({{{0, 2}, {2, 5}}, {{3, 3}, {0, 1, 6}}}));
    check(gen::random_fully_homogeneous(options, 933),
          mapping::IntervalMapping({{{0, 3}, {0, 1, 2, 3, 4, 5, 6}}}));
  }
}

TEST(SimScratchAllocation, IndexedTrialLoopIsAllocationFree) {
  // The run_trials steady state: counter-addressed scenario draws into a
  // bound scratch + simulate_into, zero heap traffic per trial.
  const auto pipe = gen::random_uniform_pipeline(6, 941);
  gen::PlatformGenOptions options;
  options.processors = 9;
  options.fp_min = 0.2;
  options.fp_max = 0.7;
  const auto plat = gen::random_comm_hom_het_failures(options, 942);
  const mapping::IntervalMapping m(
      {{{0, 1}, {0, 3}}, {{2, 3}, {1, 4, 5}}, {{4, 5}, {2, 6, 7}}});
  SimOptions sim_options;
  sim_options.dataset_count = 2;

  SimScratch scratch;
  scratch.bind(pipe, plat, m, sim_options.send_order);
  SimResult run;
  FailureScenario::draw_indexed(scratch.scenario(), plat, 40.0, 17, 0);  // sizes the buffers
  simulate_into(scratch, scratch.scenario(), sim_options, run);

  double sink = 0.0;
  const std::size_t before = allocation_count();
  for (std::uint64_t t = 1; t <= 2000; ++t) {
    FailureScenario::draw_indexed(scratch.scenario(), plat, 40.0, 17, t);
    simulate_into(scratch, scratch.scenario(), sim_options, run);
    sink += run.makespan;
  }
  const std::size_t after = allocation_count();
  EXPECT_EQ(after, before) << "indexed trial loop allocated " << (after - before)
                           << " times over 2000 trials";
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace relap::sim
