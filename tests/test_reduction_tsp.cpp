// Tests for reductions/tsp.hpp — Theorem 3's reduction, exercised in both
// directions: Hamiltonian-path cost maps exactly to mapping latency, and the
// exact solvers on both sides agree through the reduction.

#include "relap/reductions/tsp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relap/algorithms/one_to_one_exact.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/util/rng.hpp"
#include "relap/util/stats.hpp"

namespace relap::reductions {
namespace {

TspInstance random_instance(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  TspInstance instance;
  instance.cost.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) instance.cost[i][j] = std::floor(rng.uniform(1.0, 20.0));
    }
  }
  instance.source = 0;
  instance.tail = n - 1;
  instance.bound = 0.0;  // set by each test
  return instance;
}

TEST(TspReduction, InstanceShapeMatchesTheorem3) {
  TspInstance tsp = random_instance(4, 1);
  tsp.bound = 30.0;
  const TspReduction reduced = tsp_to_one_to_one(tsp);
  EXPECT_EQ(reduced.pipeline.stage_count(), 4u);
  EXPECT_EQ(reduced.platform.processor_count(), 4u);
  EXPECT_DOUBLE_EQ(reduced.latency_threshold, 30.0 + 4.0 + 2.0);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(reduced.pipeline.work(k), 1.0);
    EXPECT_DOUBLE_EQ(reduced.platform.speed(k), 1.0);
  }
  // P_in reaches only the source at bandwidth 1; others are "very slow".
  EXPECT_DOUBLE_EQ(reduced.platform.bandwidth_in(0), 1.0);
  EXPECT_LT(reduced.platform.bandwidth_in(1), 1.0 / (tsp.bound + 4.0 + 3.0));
  EXPECT_DOUBLE_EQ(reduced.platform.bandwidth_out(3), 1.0);
}

TEST(TspReduction, PathCostMapsExactlyToLatency) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    TspInstance tsp = random_instance(5, seed);
    tsp.bound = 100.0;
    const TspReduction reduced = tsp_to_one_to_one(tsp);

    // Any Hamiltonian s->t path: its mapping latency is cost + n + 2.
    std::vector<std::size_t> path{0, 1, 2, 3, 4};
    const double cost = path_cost(tsp, path);
    const mapping::GeneralMapping as_mapping{
        std::vector<platform::ProcessorId>(path.begin(), path.end())};
    const double lat = mapping::latency(reduced.pipeline, reduced.platform, as_mapping);
    EXPECT_TRUE(util::approx_equal(lat, expected_latency_for_path_cost(tsp, cost)))
        << "seed " << seed << ": latency " << lat << " vs cost-derived "
        << expected_latency_for_path_cost(tsp, cost);
  }
}

TEST(HeldKarp, TinyTriangle) {
  TspInstance tsp;
  tsp.cost = {{0, 1, 10}, {1, 0, 2}, {10, 2, 0}};
  tsp.source = 0;
  tsp.tail = 2;
  const auto path = held_karp_path(tsp);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(path_cost(tsp, *path), 3.0);
}

TEST(HeldKarp, BudgetRefusal) {
  TspInstance tsp = random_instance(21, 3);
  const auto r = held_karp_path(tsp);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, "budget");
}

class TspRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TspRoundTrip, SolversAgreeThroughTheReduction) {
  const std::uint64_t seed = GetParam();
  TspInstance tsp = random_instance(5, seed);
  tsp.bound = 1000.0;  // generous: decision always "yes"
  const TspReduction reduced = tsp_to_one_to_one(tsp);

  const auto best_path = held_karp_path(tsp);
  ASSERT_TRUE(best_path.has_value());
  const double best_cost = path_cost(tsp, *best_path);

  const auto best_mapping =
      algorithms::one_to_one_min_latency(reduced.pipeline, reduced.platform);
  ASSERT_TRUE(best_mapping.has_value());

  // The optimal mapping's latency equals the optimal path cost + n + 2...
  EXPECT_TRUE(util::approx_equal(best_mapping->latency,
                                 expected_latency_for_path_cost(tsp, best_cost)))
      << "mapping " << best_mapping->latency << " path-cost " << best_cost;
  // ... and the mapping itself traverses a Hamiltonian source->tail path of
  // that exact cost.
  const std::vector<std::size_t> recovered = mapping_to_path(best_mapping->mapping);
  EXPECT_EQ(recovered.front(), tsp.source);
  EXPECT_EQ(recovered.back(), tsp.tail);
  EXPECT_TRUE(util::approx_equal(path_cost(tsp, recovered), best_cost));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TspRoundTrip, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(TspReduction, DecisionThresholdSeparatesYesFromNo) {
  // A 4-vertex instance with known optimal path cost: bound just below the
  // optimum makes the latency threshold unreachable, bound at the optimum
  // makes it reachable exactly.
  TspInstance tsp;
  tsp.cost = {{0, 2, 9, 9}, {2, 0, 3, 9}, {9, 3, 0, 4}, {9, 9, 4, 0}};
  tsp.source = 0;
  tsp.tail = 3;
  const auto best = held_karp_path(tsp);
  ASSERT_TRUE(best.has_value());
  const double optimal_cost = path_cost(tsp, *best);  // 2 + 3 + 4 = 9

  tsp.bound = optimal_cost;
  const TspReduction yes = tsp_to_one_to_one(tsp);
  const auto yes_mapping = algorithms::one_to_one_min_latency(yes.pipeline, yes.platform);
  ASSERT_TRUE(yes_mapping.has_value());
  EXPECT_LE(yes_mapping->latency, yes.latency_threshold + 1e-9);

  tsp.bound = optimal_cost - 1.0;
  const TspReduction no = tsp_to_one_to_one(tsp);
  const auto no_mapping = algorithms::one_to_one_min_latency(no.pipeline, no.platform);
  ASSERT_TRUE(no_mapping.has_value());
  EXPECT_GT(no_mapping->latency, no.latency_threshold + 1e-9);
}

TEST(TspReductionDeath, MalformedInstances) {
  TspInstance bad;
  bad.cost = {{0.0}};
  bad.source = 0;
  bad.tail = 0;
  EXPECT_DEATH((void)tsp_to_one_to_one(bad), "two vertices");
}

}  // namespace
}  // namespace relap::reductions
