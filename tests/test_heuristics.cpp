// Tests for algorithms/heuristics.hpp: every generator emits valid mappings,
// the suite solves the paper's Figure 5 instance optimally, and across random
// instances of the open/NP-hard classes the heuristic answer stays within a
// bounded factor of the exhaustive optimum (and never below it).

#include "relap/algorithms/heuristics.hpp"

#include <gtest/gtest.h>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/platform/builders.hpp"
#include "relap/mapping/validate.hpp"
#include "relap/util/stats.hpp"

namespace relap::algorithms {
namespace {

TEST(HeuristicGenerators, AllEmitValidEvaluatedCandidates) {
  const auto pipe = gen::random_uniform_pipeline(4, 21);
  gen::PlatformGenOptions options;
  options.processors = 6;
  const auto plat = gen::random_comm_hom_het_failures(options, 22);
  const HeuristicOptions h;

  std::size_t count = 0;
  const CandidateSink check = [&](Solution s) {
    ++count;
    ASSERT_TRUE(mapping::validate(pipe, plat, s.mapping).has_value());
    EXPECT_TRUE(util::approx_equal(s.latency, mapping::latency(pipe, plat, s.mapping)));
    EXPECT_TRUE(util::approx_equal(s.failure_probability,
                                   mapping::failure_probability(plat, s.mapping)));
  };
  enumerate_single_interval_candidates(pipe, plat, h, check);
  const std::size_t after_single = count;
  enumerate_greedy_split_candidates(pipe, plat, h, check);
  const std::size_t after_greedy = count;
  enumerate_beam_candidates(pipe, plat, h, check);
  EXPECT_GT(after_single, 0u);
  EXPECT_GT(after_greedy, after_single);
  EXPECT_GT(count, after_greedy);
}

TEST(HeuristicSuite, SolvesFig5Optimally) {
  // The suite must discover the two-interval replication trick the paper
  // uses to motivate the open problem.
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  const Result r =
      heuristic_min_fp_for_latency(pipe, plat, gen::fig5_latency_threshold());
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(within_cap(r->latency, gen::fig5_latency_threshold()));
  EXPECT_LT(r->failure_probability, 0.2);  // the paper's two-interval bound
  EXPECT_EQ(r->mapping.interval_count(), 2u);
}

TEST(HeuristicSuite, Fig3SplitDiscovered) {
  // On the Figure 3/4 platform the latency-7 split must be found (greedy
  // split descends to it).
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  const Result r = heuristic_min_fp_for_latency(pipe, plat, 7.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(util::approx_equal(r->latency, 7.0));
}

TEST(HeuristicSuite, InfeasibleThresholdReported) {
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  const Result r = heuristic_min_fp_for_latency(pipe, plat, 1.0);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, "infeasible");
}

struct GapCase {
  std::uint64_t seed;
  bool fully_het;
};

class HeuristicGap : public ::testing::TestWithParam<GapCase> {};

TEST_P(HeuristicGap, WithinFactorOfExhaustiveAndNeverBetter) {
  const auto& param = GetParam();
  const auto pipe = gen::random_uniform_pipeline(3, param.seed);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = param.fully_het
                        ? gen::random_fully_heterogeneous(options, param.seed * 307)
                        : gen::random_comm_hom_het_failures(options, param.seed * 307);

  const auto oracle = exhaustive_pareto(pipe, plat);
  ASSERT_TRUE(oracle.has_value());

  // Probe three thresholds along the oracle front.
  for (std::size_t pick = 0; pick < oracle->front.size();
       pick += std::max<std::size_t>(1, oracle->front.size() / 3)) {
    const auto& point = oracle->front[pick];
    const Result h = heuristic_min_fp_for_latency(pipe, plat, point.latency);
    ASSERT_TRUE(h.has_value()) << "threshold " << point.latency;
    EXPECT_TRUE(within_cap(h->latency, point.latency));
    // Never better than the exhaustive optimum (sanity: oracle is exact)...
    EXPECT_GE(h->failure_probability, point.failure_probability - 1e-9);
    // ... and on these tiny instances the suite should be near-exact: allow
    // a 1.5x FP ratio slack before declaring regression.
    EXPECT_LE(h->failure_probability, std::max(point.failure_probability * 1.5, 1e-12))
        << "L=" << point.latency << " heuristic=" << h->failure_probability
        << " oracle=" << point.failure_probability;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, HeuristicGap,
    ::testing::Values(GapCase{1, false}, GapCase{2, false}, GapCase{3, false},
                      GapCase{4, false}, GapCase{5, false}, GapCase{1, true}, GapCase{2, true},
                      GapCase{3, true}, GapCase{4, true}, GapCase{5, true}));

class HeuristicMinLatencyGap : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeuristicMinLatencyGap, MinLatencyDirectionFeasibleAndTight) {
  const std::uint64_t seed = GetParam();
  const auto pipe = gen::random_uniform_pipeline(3, seed);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = gen::random_comm_hom_het_failures(options, seed * 509);
  const auto oracle = exhaustive_pareto(pipe, plat);
  ASSERT_TRUE(oracle.has_value());

  const auto& mid = oracle->front[oracle->front.size() / 2];
  const Result h = heuristic_min_latency_for_fp(pipe, plat, mid.failure_probability);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(within_cap(h->failure_probability, mid.failure_probability));
  EXPECT_GE(h->latency, mid.latency - 1e-9);
  EXPECT_LE(h->latency, mid.latency * 1.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicMinLatencyGap, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(HeuristicSuite, BeamSkipsPlatformsBeyondMaskWidth) {
  // > 64 processors: the beam generator must bow out silently (no emission),
  // the other generators still cover the instance.
  const auto pipe = gen::random_uniform_pipeline(2, 1);
  std::vector<double> speeds(70, 1.0);
  const auto plat = platform::make_comm_homogeneous(std::move(speeds), 1.0, 0.3);
  std::size_t beam_count = 0;
  enumerate_beam_candidates(pipe, plat, HeuristicOptions{},
                            [&](Solution) { ++beam_count; });
  EXPECT_EQ(beam_count, 0u);
  const Result r = heuristic_min_fp_for_latency(pipe, plat, 1e9);
  ASSERT_TRUE(r.has_value());
}

}  // namespace
}  // namespace relap::algorithms
