// Tests for algorithms/solve.hpp: the facade dispatches the right algorithm
// per platform class and reports exactness honestly.

#include "relap/algorithms/solve.hpp"

#include <gtest/gtest.h>

#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/util/stats.hpp"

namespace relap::algorithms {
namespace {

TEST(Solve, FullyHomogeneousUsesAlgorithm1) {
  const auto pipe = gen::random_uniform_pipeline(3, 61);
  const auto plat = gen::random_fully_homogeneous({.processors = 4}, 62);
  const auto r = solve_min_fp_for_latency(pipe, plat, 1e9);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->exact);
  EXPECT_NE(r->algorithm.find("algorithm-1"), std::string::npos);
}

TEST(Solve, FullyHomHetFailuresStillPolynomial) {
  // The paper's remark: Algorithms 1/2 stay optimal with heterogeneous fps.
  const auto pipe = gen::random_uniform_pipeline(3, 63);
  const auto plat = gen::random_fully_hom_het_failures({.processors = 4}, 64);
  const auto r = solve_min_latency_for_fp(pipe, plat, 0.9);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->exact);
  EXPECT_NE(r->algorithm.find("algorithm-2"), std::string::npos);
}

TEST(Solve, CommHomFailureHomUsesAlgorithm3And4) {
  const auto pipe = gen::random_uniform_pipeline(3, 65);
  const auto plat = gen::random_comm_homogeneous({.processors = 4}, 66);
  const auto min_fp = solve_min_fp_for_latency(pipe, plat, 1e9);
  ASSERT_TRUE(min_fp.has_value());
  EXPECT_NE(min_fp->algorithm.find("algorithm-3"), std::string::npos);
  const auto min_lat = solve_min_latency_for_fp(pipe, plat, 0.9);
  ASSERT_TRUE(min_lat.has_value());
  EXPECT_NE(min_lat->algorithm.find("algorithm-4"), std::string::npos);
}

TEST(Solve, OpenClassSmallInstanceGoesExhaustive) {
  const auto pipe = gen::random_uniform_pipeline(3, 67);
  const auto plat = gen::random_comm_hom_het_failures({.processors = 4}, 68);
  const auto r = solve_min_fp_for_latency(pipe, plat, 1e9);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->exact);
  EXPECT_EQ(r->algorithm, "exhaustive");
}

TEST(Solve, OpenClassLargeInstanceFallsBackToHeuristics) {
  const auto pipe = gen::random_uniform_pipeline(10, 69);
  const auto plat = gen::random_comm_hom_het_failures({.processors = 12}, 70);
  const auto r = solve_min_fp_for_latency(pipe, plat, 1e9);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->exact);
  EXPECT_NE(r->algorithm.find("heuristic"), std::string::npos);
}

TEST(Solve, MethodOverrides) {
  const auto pipe = gen::random_uniform_pipeline(3, 71);
  const auto plat = gen::random_comm_hom_het_failures({.processors = 4}, 72);

  SolveOptions heuristic_only;
  heuristic_only.method = Method::Heuristic;
  const auto h = solve_min_fp_for_latency(pipe, plat, 1e9, heuristic_only);
  ASSERT_TRUE(h.has_value());
  EXPECT_FALSE(h->exact);

  SolveOptions exhaustive_only;
  exhaustive_only.method = Method::Exhaustive;
  const auto e = solve_min_fp_for_latency(pipe, plat, 1e9, exhaustive_only);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->exact);

  // On this open-class platform, Method::Exact routes to exhaustive.
  SolveOptions exact_only;
  exact_only.method = Method::Exact;
  const auto x = solve_min_fp_for_latency(pipe, plat, 1e9, exact_only);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(x->algorithm, "exhaustive");
}

TEST(Solve, ExhaustiveAndHeuristicAgreeOnFig5) {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  SolveOptions options;
  options.exhaustive.max_evaluations = 100'000'000;
  const auto r = solve_min_fp_for_latency(pipe, plat, gen::fig5_latency_threshold(), options);
  ASSERT_TRUE(r.has_value());
  EXPECT_LT(r->solution.failure_probability, 0.2);
}

TEST(Solve, InfeasiblePropagates) {
  const auto pipe = gen::random_uniform_pipeline(3, 73);
  const auto plat = gen::random_fully_homogeneous({.processors = 3}, 74);
  const auto r = solve_min_fp_for_latency(pipe, plat, 1e-9);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, "infeasible");
}

}  // namespace
}  // namespace relap::algorithms
