// Tests for algorithms/one_to_one_exact.hpp — the Held-Karp solver for the
// NP-hard one-to-one latency problem (Theorem 3), cross-checked against
// brute-force injection enumeration.

#include "relap/algorithms/one_to_one_exact.hpp"

#include <gtest/gtest.h>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/platform/builders.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/mapping/validate.hpp"
#include "relap/util/stats.hpp"

namespace relap::algorithms {
namespace {

TEST(OneToOne, Fig4SplitIsTheOptimum) {
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  const GeneralResult r = one_to_one_min_latency(pipe, plat);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->latency, 7.0);
  EXPECT_EQ(r->mapping.assignment(), (std::vector<platform::ProcessorId>{0, 1}));
}

TEST(OneToOne, InfeasibleWhenMoreStagesThanProcessors) {
  const auto pipe = pipeline::Pipeline({1.0, 1.0, 1.0}, {1.0, 1.0, 1.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.1);
  const GeneralResult r = one_to_one_min_latency(pipe, plat);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, "infeasible");
}

TEST(OneToOne, BudgetRefusal) {
  const auto pipe = pipeline::Pipeline({1.0}, {1.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(8, 1.0, 1.0, 0.1);
  OneToOneOptions options;
  options.max_processors = 4;
  const GeneralResult r = one_to_one_min_latency(pipe, plat, options);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, "budget");
}

TEST(OneToOne, ResultIsAlwaysValidOneToOne) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(4, seed);
    gen::PlatformGenOptions options;
    options.processors = 6;
    const auto plat = gen::random_fully_heterogeneous(options, seed * 59);
    const GeneralResult r = one_to_one_min_latency(pipe, plat);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(mapping::validate_one_to_one(pipe, plat, r->mapping).has_value());
    EXPECT_TRUE(util::approx_equal(r->latency, mapping::latency(pipe, plat, r->mapping)));
  }
}

class HeldKarpSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeldKarpSweep, MatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const auto pipe = gen::random_uniform_pipeline(4, seed);
  gen::PlatformGenOptions options;
  // 8 processors -> 1680 injections: more than one 1024-candidate chunk, so
  // this independent DP cross-check also exercises the brute enumerator's
  // nonzero-rank unrank_injection seeks at chunk boundaries.
  options.processors = 8;
  const auto plat = gen::random_fully_heterogeneous(options, seed * 67);

  const GeneralResult fast = one_to_one_min_latency(pipe, plat);
  const GeneralResult brute = exhaustive_one_to_one_min_latency(pipe, plat);
  ASSERT_TRUE(fast.has_value());
  ASSERT_TRUE(brute.has_value());
  EXPECT_TRUE(util::approx_equal(fast->latency, brute->latency))
      << "held-karp=" << fast->latency << " brute=" << brute->latency;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeldKarpSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

TEST(OneToOne, NeverBeatsGeneralMappings) {
  // One-to-one is a restriction of general mappings, so its optimum is no
  // better than the Theorem 4 shortest path.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(3, seed);
    gen::PlatformGenOptions options;
    options.processors = 5;
    const auto plat = gen::random_fully_heterogeneous(options, seed * 83);
    const GeneralResult o2o = one_to_one_min_latency(pipe, plat);
    const GeneralResult general = exhaustive_general_min_latency(pipe, plat);
    ASSERT_TRUE(o2o.has_value());
    ASSERT_TRUE(general.has_value());
    EXPECT_GE(o2o->latency, general->latency - 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace relap::algorithms
