// Tests for mapping/validate.hpp: instance-compatibility checks.

#include "relap/mapping/validate.hpp"

#include <gtest/gtest.h>

#include "relap/platform/builders.hpp"

namespace relap::mapping {
namespace {

pipeline::Pipeline three_stages() {
  return pipeline::Pipeline({1.0, 1.0, 1.0}, {1.0, 1.0, 1.0, 1.0});
}

TEST(Validate, AcceptsWellFormedIntervalMapping) {
  const auto plat = platform::make_fully_homogeneous(3, 1.0, 1.0, 0.1);
  const IntervalMapping m({{{0, 1}, {0, 2}}, {{2, 2}, {1}}});
  EXPECT_TRUE(validate(three_stages(), plat, m).has_value());
}

TEST(Validate, RejectsStageCountMismatch) {
  const auto plat = platform::make_fully_homogeneous(3, 1.0, 1.0, 0.1);
  const auto r = validate(three_stages(), plat, IntervalMapping::single_interval(2, {0}));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, "mismatch");
}

TEST(Validate, RejectsUnknownProcessor) {
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.1);
  const auto r = validate(three_stages(), plat, IntervalMapping::single_interval(3, {0, 5}));
  ASSERT_FALSE(r.has_value());
  EXPECT_NE(r.error().message.find("processor 5"), std::string::npos);
}

TEST(Validate, GeneralMappingChecks) {
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.1);
  EXPECT_TRUE(validate(three_stages(), plat, GeneralMapping({0, 1, 0})).has_value());
  EXPECT_FALSE(validate(three_stages(), plat, GeneralMapping({0, 1})).has_value());
  EXPECT_FALSE(validate(three_stages(), plat, GeneralMapping({0, 1, 7})).has_value());
}

TEST(ValidateOneToOne, RequiresDistinctProcessors) {
  const auto plat = platform::make_fully_homogeneous(4, 1.0, 1.0, 0.1);
  EXPECT_TRUE(validate_one_to_one(three_stages(), plat, GeneralMapping({0, 1, 3})).has_value());
  const auto dup = validate_one_to_one(three_stages(), plat, GeneralMapping({0, 1, 0}));
  ASSERT_FALSE(dup.has_value());
  EXPECT_NE(dup.error().message.find("same processor"), std::string::npos);
}

TEST(ValidateOneToOne, RequiresEnoughProcessors) {
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.1);
  // Structurally a valid general mapping, but n > m forbids one-to-one.
  const auto r = validate_one_to_one(three_stages(), plat, GeneralMapping({0, 1, 0}));
  ASSERT_FALSE(r.has_value());
}

}  // namespace
}  // namespace relap::mapping
