// Tests for mapping/interval_mapping.hpp: structural invariants and helpers.

#include "relap/mapping/interval_mapping.hpp"

#include <gtest/gtest.h>

namespace relap::mapping {
namespace {

TEST(IntervalMapping, SingleInterval) {
  const IntervalMapping m = IntervalMapping::single_interval(5, {2, 0});
  EXPECT_EQ(m.interval_count(), 1u);
  EXPECT_EQ(m.stage_count(), 5u);
  EXPECT_EQ(m.interval(0).stages.first, 0u);
  EXPECT_EQ(m.interval(0).stages.last, 4u);
  // Groups are canonically sorted.
  EXPECT_EQ(m.interval(0).processors, (std::vector<platform::ProcessorId>{0, 2}));
  EXPECT_EQ(m.processors_used(), 2u);
  EXPECT_EQ(m.replication(0), 2u);
}

TEST(IntervalMapping, MultiInterval) {
  const IntervalMapping m({{{0, 1}, {3}}, {{2, 2}, {1, 0}}, {{3, 5}, {2}}});
  EXPECT_EQ(m.interval_count(), 3u);
  EXPECT_EQ(m.stage_count(), 6u);
  EXPECT_EQ(m.processors_used(), 4u);
  EXPECT_EQ(m.interval(1).processors, (std::vector<platform::ProcessorId>{0, 1}));
}

TEST(IntervalMapping, FromComposition) {
  const std::vector<std::size_t> lengths{2, 1, 3};
  const IntervalMapping m =
      IntervalMapping::from_composition(lengths, {{0}, {1, 2}, {3}});
  EXPECT_EQ(m.interval_count(), 3u);
  EXPECT_EQ(m.interval(0).stages, (Interval{0, 1}));
  EXPECT_EQ(m.interval(1).stages, (Interval{2, 2}));
  EXPECT_EQ(m.interval(2).stages, (Interval{3, 5}));
}

TEST(IntervalMapping, IntervalLength) {
  EXPECT_EQ((Interval{0, 0}).length(), 1u);
  EXPECT_EQ((Interval{2, 5}).length(), 4u);
}

TEST(IntervalMapping, DescribeFormat) {
  const IntervalMapping m({{{0, 1}, {0, 2}}, {{2, 2}, {1}}});
  EXPECT_EQ(m.describe(), "[0..1]->{0,2} [2..2]->{1}");
}

TEST(IntervalMapping, EqualityIsCanonical) {
  const IntervalMapping a = IntervalMapping::single_interval(3, {1, 2});
  const IntervalMapping b = IntervalMapping::single_interval(3, {2, 1});
  EXPECT_EQ(a, b);  // groups sorted on construction
}

TEST(IntervalMappingDeath, StructuralViolations) {
  using Assignments = std::vector<IntervalAssignment>;
  EXPECT_DEATH(IntervalMapping(Assignments{}), "at least one interval");
  EXPECT_DEATH(IntervalMapping(Assignments{{{1, 2}, {0}}}), "start at stage 0");
  EXPECT_DEATH(IntervalMapping({{{0, 1}, {0}}, {{3, 4}, {1}}}), "consecutive");
  EXPECT_DEATH(IntervalMapping(Assignments{{{0, 1}, {}}}), "non-empty");
  EXPECT_DEATH(IntervalMapping(Assignments{{{0, 1}, {0, 0}}}), "duplicate");
  EXPECT_DEATH(IntervalMapping({{{0, 0}, {0}}, {{1, 1}, {0}}}), "disjoint");
  // first > last inside an interval.
  EXPECT_DEATH(IntervalMapping({{{0, 0}, {0}}, {{1, 0}, {1}}}), "");
}

}  // namespace
}  // namespace relap::mapping
