// Tests for sim/engine.hpp: hand-traced schedules, one-port serialization,
// failure semantics, and the headline property — under the worst-case
// failure scenario the simulated latency reproduces Equations (1)/(2)
// exactly.

#include "relap/sim/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/platform/builders.hpp"
#include "relap/util/stats.hpp"

namespace relap::sim {
namespace {

TEST(SimEngine, SingleProcessorFailureFreeTrace) {
  const auto pipe = pipeline::Pipeline({4.0}, {2.0, 6.0});
  const auto plat = platform::make_fully_homogeneous(1, 2.0, 2.0, 0.0);
  const auto m = mapping::IntervalMapping::single_interval(1, {0});

  Trace trace;
  SimOptions options;
  options.trace = &trace;
  const SimResult r = simulate(pipe, plat, m, FailureScenario::none(1), options);

  ASSERT_EQ(r.datasets.size(), 1u);
  EXPECT_TRUE(r.datasets[0].completed);
  // receive [0,1], compute [1,3], send [3,6].
  EXPECT_DOUBLE_EQ(r.datasets[0].completion_time, 6.0);
  EXPECT_DOUBLE_EQ(r.datasets[0].latency(), 6.0);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.ops()[0].kind, OpKind::Transfer);
  EXPECT_DOUBLE_EQ(trace.ops()[0].end, 1.0);
  EXPECT_EQ(trace.ops()[1].kind, OpKind::Compute);
  EXPECT_DOUBLE_EQ(trace.ops()[1].end, 3.0);
  EXPECT_DOUBLE_EQ(trace.ops()[2].start, 3.0);
  EXPECT_DOUBLE_EQ(trace.ops()[2].end, 6.0);
}

TEST(SimEngine, ReplicatedReceivesAreSerialized) {
  const auto pipe = pipeline::Pipeline({1.0}, {3.0, 0.0});
  const auto plat = platform::make_fully_homogeneous(3, 1.0, 1.0, 0.0);
  const auto m = mapping::IntervalMapping::single_interval(1, {0, 1, 2});

  Trace trace;
  SimOptions options;
  options.trace = &trace;
  const SimResult r = simulate(pipe, plat, m, FailureScenario::none(3), options);
  EXPECT_TRUE(r.datasets[0].completed);
  // P_in sends 3 serialized copies of size 3: [0,3], [3,6], [6,9].
  ASSERT_GE(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.ops()[0].end, 3.0);
  EXPECT_DOUBLE_EQ(trace.ops()[1].start, 3.0);
  EXPECT_DOUBLE_EQ(trace.ops()[1].end, 6.0);
  EXPECT_DOUBLE_EQ(trace.ops()[2].start, 6.0);
  EXPECT_DOUBLE_EQ(trace.ops()[2].end, 9.0);
  // Failure-free: the earliest-receiving replica finishes first and sends.
  // Replica 0 computes [3, 4]; output is size 0 so completion is 4.
  EXPECT_DOUBLE_EQ(r.datasets[0].completion_time, 4.0);
}

TEST(SimEngine, DeadReplicaSkippedForFree) {
  const auto pipe = pipeline::Pipeline({1.0}, {3.0, 0.0});
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.5);
  const auto m = mapping::IntervalMapping::single_interval(1, {0, 1});
  // Processor 0 dead from the start: consensus skips it; only one transfer.
  FailureScenario scenario = FailureScenario::none(2);
  scenario.failure_time[0] = 0.0;

  Trace trace;
  SimOptions options;
  options.trace = &trace;
  const SimResult r = simulate(pipe, plat, m, scenario, options);
  EXPECT_TRUE(r.datasets[0].completed);
  ASSERT_EQ(trace.size(), 3u);  // one receive, one compute, one final send
  EXPECT_DOUBLE_EQ(r.datasets[0].completion_time, 4.0);
}

TEST(SimEngine, AllReplicasDeadFailsTheDataset) {
  const auto pipe = pipeline::Pipeline({1.0}, {1.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.5);
  const auto m = mapping::IntervalMapping::single_interval(1, {0, 1});
  FailureScenario scenario = FailureScenario::none(2);
  scenario.failure_time[0] = 0.0;
  scenario.failure_time[1] = 0.0;
  const SimResult r = simulate(pipe, plat, m, scenario, {});
  EXPECT_FALSE(r.datasets[0].completed);
  EXPECT_TRUE(r.application_failed);
  EXPECT_TRUE(std::isinf(r.datasets[0].completion_time));
}

TEST(SimEngine, FailAfterReceivePaysTheTransferButNotTheCompute) {
  const auto pipe = pipeline::Pipeline({10.0}, {3.0, 0.0});
  const auto plat = platform::make_comm_homogeneous({1.0, 2.0}, 1.0, 0.5);
  const auto m = mapping::IntervalMapping::single_interval(1, {0, 1});
  // Replica 0 (slow) receives first and dies right after: replica 1 must
  // still wait behind 0's serialized transfer.
  FailureScenario scenario = FailureScenario::none(2);
  scenario.fail_after_first_receive[0] = true;

  Trace trace;
  SimOptions options;
  options.trace = &trace;
  const SimResult r = simulate(pipe, plat, m, scenario, options);
  EXPECT_TRUE(r.datasets[0].completed);
  // Transfers [0,3] to dead-to-be 0 and [3,6] to 1; compute on 1: [6, 11].
  EXPECT_DOUBLE_EQ(r.datasets[0].completion_time, 11.0);
  // Replica 0's compute must be recorded as failed or not at all.
  for (const TraceOp& op : trace.ops()) {
    if (op.kind == OpKind::Compute && op.subject == 0) {
      EXPECT_FALSE(op.completed);
    }
  }
}

TEST(SimEngine, MidComputeDeathLosesTheResult) {
  const auto pipe = pipeline::Pipeline({10.0}, {1.0, 0.0});
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.5);
  const auto m = mapping::IntervalMapping::single_interval(1, {0, 1});
  FailureScenario scenario = FailureScenario::none(2);
  scenario.failure_time[0] = 5.0;  // dies mid-compute (compute is [1, 11])
  const SimResult r = simulate(pipe, plat, m, scenario, {});
  EXPECT_TRUE(r.datasets[0].completed);
  // Replica 1 received at [1,2], computes [2,12], sends nothing (size 0).
  EXPECT_DOUBLE_EQ(r.datasets[0].completion_time, 12.0);
}

// --- The headline validation: worst case reproduces the equations. ----------

class WorstCaseMatchesEq1 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorstCaseMatchesEq1, OnCommHomogeneousPlatforms) {
  const std::uint64_t seed = GetParam();
  const auto pipe = gen::random_uniform_pipeline(4, seed);
  gen::PlatformGenOptions options;
  options.processors = 6;
  const auto plat = gen::random_comm_hom_het_failures(options, seed * 1009);
  const mapping::IntervalMapping m({{{0, 1}, {0, 3}}, {{2, 3}, {1, 2, 4}}});

  const FailureScenario scenario = FailureScenario::worst_case(pipe, plat, m);
  SimOptions sim_options;
  sim_options.send_order = SendOrder::WorstCaseLast;
  const SimResult r = simulate(pipe, plat, m, scenario, sim_options);
  ASSERT_TRUE(r.datasets[0].completed);
  EXPECT_TRUE(util::approx_equal(r.datasets[0].latency(),
                                 mapping::latency_eq1(pipe, plat, m)))
      << "sim " << r.datasets[0].latency() << " eq1 " << mapping::latency_eq1(pipe, plat, m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorstCaseMatchesEq1,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

class WorstCaseMatchesEq2 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorstCaseMatchesEq2, OnFullyHeterogeneousPlatforms) {
  const std::uint64_t seed = GetParam();
  const auto pipe = gen::random_uniform_pipeline(4, seed);
  gen::PlatformGenOptions options;
  options.processors = 6;
  const auto plat = gen::random_fully_heterogeneous(options, seed * 2003);
  const mapping::IntervalMapping m({{{0, 1}, {0, 3}}, {{2, 3}, {1, 2, 4}}});

  const FailureScenario scenario = FailureScenario::worst_case(pipe, plat, m);
  SimOptions sim_options;
  sim_options.send_order = SendOrder::WorstCaseLast;
  const SimResult r = simulate(pipe, plat, m, scenario, sim_options);
  ASSERT_TRUE(r.datasets[0].completed);
  const double eq2 = mapping::latency_eq2(pipe, plat, m);
  EXPECT_TRUE(util::approx_equal(r.datasets[0].latency(), eq2))
      << "sim " << r.datasets[0].latency() << " eq2 " << eq2;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorstCaseMatchesEq2,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(SimEngine, FailureFreeLatencyNeverExceedsWorstCase) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(3, seed);
    gen::PlatformGenOptions options;
    options.processors = 5;
    const auto plat = gen::random_fully_heterogeneous(options, seed * 3001);
    const mapping::IntervalMapping m({{{0, 0}, {0, 1}}, {{1, 2}, {2, 3}}});
    const SimResult free_run = simulate(pipe, plat, m, FailureScenario::none(5), {});
    ASSERT_TRUE(free_run.datasets[0].completed);
    EXPECT_LE(free_run.datasets[0].latency(),
              mapping::latency_eq2(pipe, plat, m) + 1e-9)
        << "seed " << seed;
  }
}

TEST(SimEngine, PipelinedDatasetsReuseResources) {
  const auto pipe = pipeline::Pipeline({2.0}, {1.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(1, 1.0, 1.0, 0.0);
  const auto m = mapping::IntervalMapping::single_interval(1, {0});
  SimOptions options;
  options.dataset_count = 3;
  const SimResult r = simulate(pipe, plat, m, FailureScenario::none(1), options);
  ASSERT_EQ(r.datasets.size(), 3u);
  // Single processor, cycle = 1 (receive) + 2 (compute) + 1 (send) = 4 with
  // no overlap within one processor; dataset d completes at 4(d+1).
  EXPECT_DOUBLE_EQ(r.datasets[0].completion_time, 4.0);
  EXPECT_DOUBLE_EQ(r.datasets[1].completion_time, 8.0);
  EXPECT_DOUBLE_EQ(r.datasets[2].completion_time, 12.0);
  EXPECT_DOUBLE_EQ(r.makespan, 12.0);
}

TEST(SimEngine, WorstLatencyHelper) {
  const auto pipe = pipeline::Pipeline({1.0}, {1.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(1, 1.0, 1.0, 0.0);
  const auto m = mapping::IntervalMapping::single_interval(1, {0});
  SimOptions options;
  options.dataset_count = 2;
  const SimResult r = simulate(pipe, plat, m, FailureScenario::none(1), options);
  EXPECT_EQ(r.completed_count(), 2u);
  EXPECT_GT(r.worst_latency(), 0.0);
}

}  // namespace
}  // namespace relap::sim
