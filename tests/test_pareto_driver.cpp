// Tests for algorithms/pareto_driver.hpp: threshold sweeps produce sane
// fronts and the front-comparison metric behaves.

#include "relap/algorithms/pareto_driver.hpp"

#include <gtest/gtest.h>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/single_interval.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/util/stats.hpp"

namespace relap::algorithms {
namespace {

TEST(ParetoDriver, SweepProducesSortedNonDominatedFront) {
  const auto pipe = gen::random_uniform_pipeline(3, 41);
  gen::PlatformGenOptions options;
  options.processors = 5;
  const auto plat = gen::random_comm_hom_het_failures(options, 42);

  const auto front = sweep_latency_thresholds(
      pipe, plat,
      [&](double cap) { return single_interval_min_fp_for_latency(pipe, plat, cap); });
  ASSERT_FALSE(front.empty());
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_LT(front[i - 1].latency, front[i].latency);
    EXPECT_GT(front[i - 1].failure_probability, front[i].failure_probability);
  }
}

TEST(ParetoDriver, HeuristicFrontCoversFig5Optimum) {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  const auto front = heuristic_pareto_front(pipe, plat);
  ASSERT_FALSE(front.empty());
  // Some front point must reach the paper's two-interval quality at L <= 22.
  bool found = false;
  for (const auto& p : front) {
    if (p.latency <= 22.0 + 1e-9 && p.failure_probability < 0.2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ParetoDriver, HeuristicFrontNearExhaustiveOnSmallInstances) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(3, seed);
    gen::PlatformGenOptions options;
    options.processors = 4;
    const auto plat = gen::random_comm_hom_het_failures(options, seed * 907);
    const auto heuristic = heuristic_pareto_front(pipe, plat);
    const auto oracle = exhaustive_pareto(pipe, plat);
    ASSERT_TRUE(oracle.has_value());
    const double ratio = front_fp_ratio(heuristic, oracle->front);
    EXPECT_GE(ratio, 1.0 - 1e-9);
    EXPECT_LE(ratio, 1.6) << "seed " << seed;
  }
}

TEST(FrontFpRatio, PerfectMatchIsOne) {
  const auto pipe = gen::random_uniform_pipeline(2, 51);
  gen::PlatformGenOptions options;
  options.processors = 3;
  const auto plat = gen::random_comm_hom_het_failures(options, 52);
  const auto oracle = exhaustive_pareto(pipe, plat);
  ASSERT_TRUE(oracle.has_value());
  EXPECT_NEAR(front_fp_ratio(oracle->front, oracle->front), 1.0, 1e-9);
}

TEST(FrontFpRatio, MissPenaltyAppliesWhenLatencyUnreachable) {
  std::vector<ParetoSolution> reference;
  reference.push_back(
      {1.0, 0.5, mapping::IntervalMapping::single_interval(1, {0})});
  std::vector<ParetoSolution> achieved;
  achieved.push_back(
      {2.0, 0.25, mapping::IntervalMapping::single_interval(1, {0})});  // too slow
  EXPECT_DOUBLE_EQ(front_fp_ratio(achieved, reference, 10.0), 10.0);
}

TEST(FrontFpRatio, RatioAveragesAcrossPoints) {
  using mapping::IntervalMapping;
  std::vector<ParetoSolution> reference;
  reference.push_back({1.0, 0.1, IntervalMapping::single_interval(1, {0})});
  reference.push_back({2.0, 0.05, IntervalMapping::single_interval(1, {0})});
  std::vector<ParetoSolution> achieved;
  achieved.push_back({1.0, 0.2, IntervalMapping::single_interval(1, {0})});   // 2x worse
  achieved.push_back({2.0, 0.05, IntervalMapping::single_interval(1, {0})});  // exact
  EXPECT_NEAR(front_fp_ratio(achieved, reference), 1.5, 1e-12);
}

}  // namespace
}  // namespace relap::algorithms
