// Tests for mapping/reliability.hpp: the FP product formula, including the
// paper's Figure 5 values, and the log-domain evaluator.

#include "relap/mapping/reliability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relap/gen/paper_instances.hpp"
#include "relap/platform/builders.hpp"

namespace relap::mapping {
namespace {

TEST(Reliability, SingleProcessor) {
  const auto plat = platform::make_fully_homogeneous(3, 1.0, 1.0, 0.25);
  EXPECT_DOUBLE_EQ(failure_probability(plat, IntervalMapping::single_interval(2, {0})), 0.25);
}

TEST(Reliability, ReplicationMultipliesGroupFailures) {
  const auto plat = platform::make_fully_homogeneous(3, 1.0, 1.0, 0.5);
  // Group of 3: FP = 0.5^3.
  EXPECT_DOUBLE_EQ(
      failure_probability(plat, IntervalMapping::single_interval(2, {0, 1, 2})), 0.125);
}

TEST(Reliability, IntervalsCompoundSurvival) {
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.5);
  // Two intervals on single processors: FP = 1 - (1-0.5)^2 = 0.75.
  const IntervalMapping m({{{0, 0}, {0}}, {{1, 1}, {1}}});
  EXPECT_DOUBLE_EQ(failure_probability(plat, m), 0.75);
}

TEST(ReliabilityPaper, Fig5SingleIntervalIs064) {
  const auto plat = gen::fig5_platform();
  EXPECT_DOUBLE_EQ(failure_probability(plat, gen::fig5_single_interval_mapping()),
                   0.64000000000000012);  // 0.8^2 in binary doubles
  EXPECT_NEAR(failure_probability(plat, gen::fig5_single_interval_mapping()), 0.64, 1e-12);
}

TEST(ReliabilityPaper, Fig5TwoIntervalBeatsPoint2) {
  const auto plat = gen::fig5_platform();
  const double fp = failure_probability(plat, gen::fig5_two_interval_mapping());
  // Paper: 1 - (1-0.1)(1 - 0.8^10) < 0.2.
  const double expected = 1.0 - (1.0 - 0.1) * (1.0 - std::pow(0.8, 10));
  EXPECT_DOUBLE_EQ(fp, expected);
  EXPECT_LT(fp, 0.2);
}

TEST(Reliability, GroupFailureProbability) {
  const auto plat = platform::make_comm_homogeneous({1.0, 1.0, 1.0}, 1.0, {0.1, 0.2, 0.5});
  EXPECT_DOUBLE_EQ(group_failure_probability(plat, {0}), 0.1);
  EXPECT_DOUBLE_EQ(group_failure_probability(plat, {0, 2}), 0.05);
  EXPECT_DOUBLE_EQ(group_failure_probability(plat, {0, 1, 2}), 0.01);
}

TEST(Reliability, PerfectProcessorsGiveZeroFp) {
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(failure_probability(plat, IntervalMapping::single_interval(1, {0})), 0.0);
  EXPECT_DOUBLE_EQ(log_survival_probability(plat, IntervalMapping::single_interval(1, {0})),
                   0.0);
}

TEST(Reliability, CertainFailureGivesMinusInfLogSurvival) {
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 1.0);
  const auto m = IntervalMapping::single_interval(1, {0});
  EXPECT_DOUBLE_EQ(failure_probability(plat, m), 1.0);
  EXPECT_TRUE(std::isinf(log_survival_probability(plat, m)));
  EXPECT_LT(log_survival_probability(plat, m), 0.0);
}

TEST(Reliability, LogSurvivalMatchesLinearDomain) {
  const auto plat = platform::make_comm_homogeneous({1.0, 1.0, 1.0}, 1.0, {0.3, 0.4, 0.6});
  const IntervalMapping m({{{0, 0}, {0, 1}}, {{1, 1}, {2}}});
  const double fp = failure_probability(plat, m);
  EXPECT_NEAR(std::exp(log_survival_probability(plat, m)), 1.0 - fp, 1e-12);
}

TEST(Reliability, LogSurvivalResolvesTinyDifferences) {
  // Two mappings with FP ~ 1e-30: the linear domain sees both as ~0 relative
  // to 1, the log domain still ranks them.
  const auto plat =
      platform::make_comm_homogeneous({1.0, 1.0, 1.0, 1.0}, 1.0, {1e-15, 1e-15, 1e-16, 1e-16});
  const auto strong = IntervalMapping::single_interval(1, {2, 3});  // 1e-32
  const auto weak = IntervalMapping::single_interval(1, {0, 1});    // 1e-30
  EXPECT_GT(log_survival_probability(plat, strong), log_survival_probability(plat, weak));
}

TEST(Reliability, MinAchievableIsFullReplication) {
  const auto plat = platform::make_comm_homogeneous({1.0, 1.0, 1.0}, 1.0, {0.5, 0.5, 0.2});
  EXPECT_DOUBLE_EQ(min_achievable_failure_probability(plat), 0.05);
}

}  // namespace
}  // namespace relap::mapping
