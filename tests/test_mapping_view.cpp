// Tests for mapping/mapping_view.hpp — the zero-allocation batched
// evaluation kernel. Two guarantees are pinned here:
//  1. bit-identity: evaluate_view / period_view match the scalar evaluators
//     bit for bit on randomized mappings across platform classes (the
//     determinism suite builds on this);
//  2. zero allocation: the steady-state candidate loop (set_grouping +
//     evaluate_view + period_view + indexer successor) performs no heap
//     allocation, counted by replacing the global allocator in this TU.

#include "relap/mapping/mapping_view.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "relap/algorithms/types.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/mapping/mapping_lanes.hpp"
#include "relap/mapping/reliability.hpp"
#include "relap/mapping/throughput.hpp"
#include "relap/util/enumeration.hpp"
#include "relap/util/rng.hpp"

namespace {

std::atomic<std::size_t> g_allocation_count{0};

std::size_t allocation_count() { return g_allocation_count.load(std::memory_order_relaxed); }

void* counted_allocate(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_allocate_aligned(std::size_t size, std::size_t alignment) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*) : alignment,
                     size == 0 ? alignment : size) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

// Replaceable global allocation functions: every operator new in this test
// binary routes through the counter. The zero-allocation test below measures
// the counter across the kernel's steady-state loop.
void* operator new(std::size_t size) { return counted_allocate(size); }
void* operator new[](std::size_t size) { return counted_allocate(size); }
void* operator new(std::size_t size, std::align_val_t alignment) {
  return counted_allocate_aligned(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return counted_allocate_aligned(size, static_cast<std::size_t>(alignment));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace relap {
namespace {

/// Draws a uniform random interval mapping (composition + grouping) via the
/// indexers' unrank, and cross-checks every kernel evaluator against its
/// scalar counterpart, demanding exact bit equality.
void cross_check_random_mappings(const pipeline::Pipeline& pipe,
                                 const platform::Platform& plat, std::uint64_t seed,
                                 int iterations) {
  const std::size_t n = pipe.stage_count();
  const std::size_t m = plat.processor_count();
  util::Rng rng(seed);
  mapping::EvalScratch scratch(n, m);
  mapping::EvalScratch interval_scratch(n, m);
  std::vector<std::size_t> lengths;
  std::vector<std::size_t> group_of(m);
  std::vector<std::size_t> group_sizes;

  for (int i = 0; i < iterations; ++i) {
    const std::size_t p = 1 + static_cast<std::size_t>(rng.uniform_int(std::min(n, m)));
    const util::CompositionIndexer compositions(n, p);
    const util::GroupingIndexer groupings(m, p);
    compositions.unrank(rng.uniform_int(compositions.count()), lengths);
    group_sizes.resize(p);
    groupings.unrank(rng.uniform_int(groupings.count()), group_of, group_sizes);

    std::vector<std::vector<platform::ProcessorId>> groups(p);
    for (platform::ProcessorId u = 0; u < m; ++u) {
      if (group_of[u] < p) groups[group_of[u]].push_back(u);
    }
    const mapping::IntervalMapping mapping =
        mapping::IntervalMapping::from_composition(lengths, groups);
    const algorithms::Solution scalar = algorithms::evaluate(pipe, plat, mapping);
    const double scalar_period = mapping::period(pipe, plat, mapping);

    // Enumeration path: composition + grouping word.
    scratch.set_composition(pipe, lengths);
    scratch.set_grouping(group_of, group_sizes);
    const mapping::ViewEval eval =
        mapping::evaluate_view(plat, scratch.view(), scratch.cache());
    EXPECT_EQ(eval.latency, scalar.latency) << "iteration " << i;
    EXPECT_EQ(eval.failure_probability, scalar.failure_probability) << "iteration " << i;
    EXPECT_EQ(mapping::period_view(plat, scratch.view(), scratch.cache()), scalar_period)
        << "iteration " << i;
    EXPECT_EQ(mapping::materialize(scratch.view()), mapping) << "iteration " << i;

    // Heuristics path: explicit interval assignments.
    interval_scratch.set_intervals(pipe, mapping.intervals());
    const mapping::ViewEval interval_eval =
        mapping::evaluate_view(plat, interval_scratch.view(), interval_scratch.cache());
    EXPECT_EQ(interval_eval.latency, scalar.latency) << "iteration " << i;
    EXPECT_EQ(interval_eval.failure_probability, scalar.failure_probability)
        << "iteration " << i;
  }
}

TEST(MappingView, MatchesScalarEvaluatorsOnCommHomogeneousPlatforms) {
  const auto pipe = gen::random_uniform_pipeline(6, 301);
  gen::PlatformGenOptions options;
  options.processors = 7;
  const auto plat = gen::random_comm_hom_het_failures(options, 302);
  ASSERT_TRUE(plat.has_homogeneous_links());  // exercises the eq-(1) kernel
  cross_check_random_mappings(pipe, plat, 303, 400);
}

TEST(MappingView, MatchesScalarEvaluatorsOnFullyHeterogeneousPlatforms) {
  const auto pipe = gen::random_uniform_pipeline(5, 311);
  gen::PlatformGenOptions options;
  options.processors = 6;
  const auto plat = gen::random_fully_heterogeneous(options, 312);
  ASSERT_FALSE(plat.has_homogeneous_links());  // exercises the eq-(2) kernel
  cross_check_random_mappings(pipe, plat, 313, 400);
}

TEST(MappingView, MatchesScalarEvaluatorsOnFullyHomogeneousPlatforms) {
  const auto pipe = gen::random_uniform_pipeline(4, 321);
  gen::PlatformGenOptions options;
  options.processors = 5;
  const auto plat = gen::random_fully_homogeneous(options, 322);
  cross_check_random_mappings(pipe, plat, 323, 200);
}

/// Draws random mappings and streams them through a `LaneEvalBatch<W>` in
/// enumeration form (set_composition before every push, so compositions
/// change mid-batch), flushing full and final partial batches; every lane's
/// result must match the scalar `evaluate_view` oracle bit for bit, and the
/// lane views must materialize/period exactly like the scalar path.
template <std::size_t W>
void lane_cross_check_random_mappings(const pipeline::Pipeline& pipe,
                                      const platform::Platform& plat, std::uint64_t seed,
                                      int iterations, bool interval_mode) {
  const std::size_t n = pipe.stage_count();
  const std::size_t m = plat.processor_count();
  util::Rng rng(seed);
  mapping::EvalScratch scratch(n, m);
  mapping::LaneEvalBatch<W> batch(n, m);
  std::array<mapping::ViewEval, W> evals;
  std::vector<std::size_t> lengths;
  std::vector<std::size_t> group_of(m);
  std::vector<std::size_t> group_sizes;
  std::vector<mapping::IntervalMapping> staged;

  const auto flush = [&] {
    batch.evaluate(plat, evals);
    for (std::size_t l = 0; l < batch.size(); ++l) {
      scratch.set_intervals(pipe, staged[l].intervals());
      const mapping::ViewEval oracle =
          mapping::evaluate_view(plat, scratch.view(), scratch.cache());
      EXPECT_EQ(evals[l].latency, oracle.latency) << "W=" << W << " lane " << l;
      EXPECT_EQ(evals[l].failure_probability, oracle.failure_probability)
          << "W=" << W << " lane " << l;
      EXPECT_EQ(mapping::materialize(batch.view(l)), staged[l]) << "W=" << W << " lane " << l;
      EXPECT_EQ(mapping::period_view(plat, batch.view(l), batch.cache(l)),
                mapping::period(pipe, plat, staged[l]))
          << "W=" << W << " lane " << l;
    }
    batch.clear();
    staged.clear();
  };

  for (int i = 0; i < iterations; ++i) {
    const std::size_t p = 1 + static_cast<std::size_t>(rng.uniform_int(std::min(n, m)));
    const util::CompositionIndexer compositions(n, p);
    const util::GroupingIndexer groupings(m, p);
    compositions.unrank(rng.uniform_int(compositions.count()), lengths);
    group_sizes.resize(p);
    groupings.unrank(rng.uniform_int(groupings.count()), group_of, group_sizes);

    std::vector<std::vector<platform::ProcessorId>> groups(p);
    for (platform::ProcessorId u = 0; u < m; ++u) {
      if (group_of[u] < p) groups[group_of[u]].push_back(u);
    }
    staged.push_back(mapping::IntervalMapping::from_composition(lengths, groups));
    if (interval_mode) {
      batch.push_intervals(pipe, staged.back().intervals());
    } else {
      batch.set_composition(pipe, lengths);
      batch.push_grouping(group_of, group_sizes);
    }
    if (batch.full()) flush();
  }
  if (!batch.empty()) flush();  // also exercises partial batches when W > 1
}

TEST(MappingLanes, MatchesScalarOracleOnCommHomogeneousPlatforms) {
  const auto pipe = gen::random_uniform_pipeline(6, 401);
  gen::PlatformGenOptions options;
  options.processors = 7;
  const auto plat = gen::random_comm_hom_het_failures(options, 402);
  ASSERT_TRUE(plat.has_homogeneous_links());  // exercises the eq-(1) lane kernel
  lane_cross_check_random_mappings<1>(pipe, plat, 403, 150, false);
  lane_cross_check_random_mappings<4>(pipe, plat, 404, 150, false);
  lane_cross_check_random_mappings<8>(pipe, plat, 405, 150, false);
}

TEST(MappingLanes, MatchesScalarOracleOnFullyHeterogeneousPlatforms) {
  const auto pipe = gen::random_uniform_pipeline(5, 411);
  gen::PlatformGenOptions options;
  options.processors = 6;
  const auto plat = gen::random_fully_heterogeneous(options, 412);
  ASSERT_FALSE(plat.has_homogeneous_links());  // exercises the eq-(2) lane kernel
  lane_cross_check_random_mappings<1>(pipe, plat, 413, 150, false);
  lane_cross_check_random_mappings<4>(pipe, plat, 414, 150, false);
  lane_cross_check_random_mappings<8>(pipe, plat, 415, 150, false);
}

TEST(MappingLanes, MatchesScalarOracleOnFullyHomogeneousPlatforms) {
  const auto pipe = gen::random_uniform_pipeline(4, 421);
  gen::PlatformGenOptions options;
  options.processors = 5;
  const auto plat = gen::random_fully_homogeneous(options, 422);
  lane_cross_check_random_mappings<1>(pipe, plat, 423, 100, false);
  lane_cross_check_random_mappings<4>(pipe, plat, 424, 100, false);
  lane_cross_check_random_mappings<8>(pipe, plat, 425, 100, false);
}

TEST(MappingLanes, IntervalPushMatchesScalarOracle) {
  // The heuristics staging mode: explicit interval assignments with ragged
  // per-lane compositions and interval counts inside one batch.
  const auto pipe = gen::random_uniform_pipeline(6, 431);
  gen::PlatformGenOptions options;
  options.processors = 7;
  const auto het = gen::random_fully_heterogeneous(options, 432);
  const auto hom = gen::random_comm_hom_het_failures(options, 433);
  lane_cross_check_random_mappings<4>(pipe, het, 434, 150, true);
  lane_cross_check_random_mappings<8>(pipe, het, 435, 150, true);
  lane_cross_check_random_mappings<8>(pipe, hom, 436, 150, true);
}

TEST(MappingView, ViewAccessorsDescribeTheMapping) {
  const auto pipe = gen::random_uniform_pipeline(5, 331);
  mapping::EvalScratch scratch(5, 4);
  const std::vector<std::size_t> lengths{2, 3};
  scratch.set_composition(pipe, lengths);
  const std::vector<std::size_t> group_of{0, 1, 2, 1};  // processor 2 unused
  const std::vector<std::size_t> group_sizes{1, 2};
  scratch.set_grouping(group_of, group_sizes);
  const mapping::MappingView view = scratch.view();
  EXPECT_EQ(view.interval_count(), 2u);
  EXPECT_EQ(view.stage_count(), 5u);
  EXPECT_EQ(view.first_stage(0), 0u);
  EXPECT_EQ(view.last_stage(0), 1u);
  EXPECT_EQ(view.first_stage(1), 2u);
  EXPECT_EQ(view.last_stage(1), 4u);
  EXPECT_EQ(view.processors_used(), 3u);
  ASSERT_EQ(view.group(0).size(), 1u);
  EXPECT_EQ(view.group(0)[0], 0u);
  ASSERT_EQ(view.group(1).size(), 2u);
  EXPECT_EQ(view.group(1)[0], 1u);
  EXPECT_EQ(view.group(1)[1], 3u);
}

TEST(MappingViewAllocation, SteadyStateInnerLoopIsAllocationFree) {
  const auto pipe = gen::random_uniform_pipeline(6, 341);
  gen::PlatformGenOptions options;
  options.processors = 7;
  const auto plat = gen::random_fully_heterogeneous(options, 342);
  const std::size_t n = 6;
  const std::size_t m = 7;
  const std::size_t p = 3;

  const util::GroupingIndexer groupings(m, p);
  const util::CompositionIndexer compositions(n, p);
  std::vector<std::size_t> lengths;
  std::vector<std::size_t> group_of(m);
  std::vector<std::size_t> group_sizes(p);
  mapping::EvalScratch scratch(n, m);

  // Warm up: first contact sizes every buffer to its steady-state capacity.
  std::uint64_t composition_rank = 0;
  compositions.unrank(composition_rank, lengths);
  scratch.set_composition(pipe, lengths);
  groupings.unrank(0, group_of, group_sizes);
  scratch.set_grouping(group_of, group_sizes);
  (void)mapping::evaluate_view(plat, scratch.view(), scratch.cache());

  double sink = 0.0;
  const std::size_t before = allocation_count();
  for (int i = 0; i < 2000; ++i) {
    scratch.set_grouping(group_of, group_sizes);
    const mapping::ViewEval eval =
        mapping::evaluate_view(plat, scratch.view(), scratch.cache());
    sink += eval.latency + eval.failure_probability;
    sink += mapping::period_view(plat, scratch.view(), scratch.cache());
    if (!groupings.next(group_of, group_sizes)) {
      // Composition wrap, as in the real enumerator: still allocation-free.
      composition_rank = (composition_rank + 1) % compositions.count();
      compositions.unrank(composition_rank, lengths);
      scratch.set_composition(pipe, lengths);
      groupings.unrank(0, group_of, group_sizes);
    }
  }
  const std::size_t after = allocation_count();
  EXPECT_EQ(after, before) << "steady-state inner loop allocated " << (after - before)
                           << " times over 2000 candidates";
  EXPECT_GT(sink, 0.0);  // keep the loop observable
}

TEST(MappingViewAllocation, LaneBatchSteadyStateIsAllocationFree) {
  const auto pipe = gen::random_uniform_pipeline(6, 441);
  gen::PlatformGenOptions options;
  options.processors = 7;
  const auto plat = gen::random_fully_heterogeneous(options, 442);
  const std::size_t n = 6;
  const std::size_t m = 7;
  const std::size_t p = 3;

  const util::GroupingIndexer groupings(m, p);
  const util::CompositionIndexer compositions(n, p);
  std::vector<std::size_t> lengths;
  std::vector<std::size_t> group_of(m);
  std::vector<std::size_t> group_sizes(p);
  constexpr std::size_t W = 8;
  mapping::LaneEvalBatch<W> batch(n, m);
  std::array<mapping::ViewEval, W> evals;

  // Warm up one full cycle; the batch preallocates in its constructor, so
  // nothing below may touch the heap.
  std::uint64_t composition_rank = 0;
  compositions.unrank(composition_rank, lengths);
  batch.set_composition(pipe, lengths);
  groupings.unrank(0, group_of, group_sizes);

  double sink = 0.0;
  const std::size_t before = allocation_count();
  for (int i = 0; i < 2000; ++i) {
    batch.push_grouping(group_of, group_sizes);
    if (batch.full()) {
      batch.evaluate(plat, evals);
      for (std::size_t l = 0; l < batch.size(); ++l) {
        sink += evals[l].latency + evals[l].failure_probability;
        sink += mapping::period_view(plat, batch.view(l), batch.cache(l));
      }
      batch.clear();
    }
    if (!groupings.next(group_of, group_sizes)) {
      // Composition wrap mid-batch, as in the real enumerator: the pushed
      // lanes keep their copied columns and nothing allocates.
      composition_rank = (composition_rank + 1) % compositions.count();
      compositions.unrank(composition_rank, lengths);
      batch.set_composition(pipe, lengths);
      groupings.unrank(0, group_of, group_sizes);
    }
  }
  if (!batch.empty()) {
    batch.evaluate(plat, evals);
    batch.clear();
  }
  const std::size_t after = allocation_count();
  EXPECT_EQ(after, before) << "lane-batch steady state allocated " << (after - before)
                           << " times over 2000 candidates";
  EXPECT_GT(sink, 0.0);  // keep the loop observable
}

}  // namespace
}  // namespace relap
