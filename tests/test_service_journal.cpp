// The crash-recovery harness for service/journal.hpp: a deterministic
// kill-point sweep proving that for EVERY byte offset a crash can truncate
// the write-ahead journal at, recovery reproduces the never-crashed cache
// bit-identically (entries, LRU recency, and the reply bit patterns served
// from them); plus the group-commit loss bound, compaction idempotence,
// wedging under injected fsync failures, and a seeded corruption fuzzer —
// a journal is runtime input, so damage must never assert or lose records
// that were fully written before the first damaged byte.

#include "relap/service/journal.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/service/broker.hpp"
#include "relap/service/faultpoint.hpp"
#include "relap/service/snapshot.hpp"
#include "relap/util/bytes.hpp"
#include "relap/util/hash.hpp"

namespace relap::service {
namespace {

class Journals : public ::testing::Test {
 protected:
  void SetUp() override { faultpoint::clear(); }
  void TearDown() override { faultpoint::clear(); }
};

InstanceData small_instance(std::uint64_t seed) {
  const auto pipe = gen::random_uniform_pipeline(4, seed);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = gen::random_fully_heterogeneous(options, seed + 1);
  return InstanceData::from(pipe, plat);
}

SolveRequest pareto_request(std::uint64_t seed) {
  SolveRequest request;
  request.instance = small_instance(seed);
  request.objective = Objective::ParetoFront;
  return request;
}

std::string temp_path(const char* tag) {
  return std::string(::testing::TempDir()) + "relap_journal_" + tag + ".bin";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The byte offset where each journal record ends (cumulative, after the
/// header), parsed straight from the length-prefixed framing.
std::vector<std::size_t> record_boundaries(const std::string& bytes) {
  std::vector<std::size_t> ends;
  std::size_t offset = kJournalHeaderBytes;
  while (offset + kJournalRecordFrameBytes <= bytes.size()) {
    std::uint64_t size = 0;
    for (int b = 7; b >= 0; --b) {
      size = (size << 8) | static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(b)]);
    }
    offset += kJournalRecordFrameBytes + static_cast<std::size_t>(size);
    if (offset > bytes.size()) break;
    ends.push_back(offset);
  }
  return ends;
}

/// The bit-identity witness: a cache state serialized by the snapshot codec.
/// Two caches with byte-equal images have identical entries (keys, hashes,
/// front bit patterns) in identical per-shard LRU order.
std::string cache_image(const FrontCache& cache) {
  return encode_snapshot(cache.export_entries());
}

/// A broker's cache image, via a throwaway snapshot file (the broker does
/// not expose its cache directly).
std::string broker_image(Broker& broker, const char* tag) {
  const std::string path = temp_path(tag);
  const auto saved = broker.save_snapshot(path);
  EXPECT_TRUE(saved.has_value()) << saved.error().to_string();
  std::string bytes = read_file(path);
  std::remove(path.c_str());
  return bytes;
}

void expect_bits_equal(const Reply& a, const Reply& b) {
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.front[i].latency),
              std::bit_cast<std::uint64_t>(b.front[i].latency));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.front[i].failure_probability),
              std::bit_cast<std::uint64_t>(b.front[i].failure_probability));
    EXPECT_EQ(a.front[i].mapping.describe(), b.front[i].mapping.describe());
  }
  EXPECT_EQ(a.canonical_hash, b.canonical_hash);
}

/// Builds a journal by solving `seeds` through a journal-attached broker,
/// then returns the on-disk journal bytes (the broker is destroyed so the
/// file is complete and closed).
std::string journal_bytes_for(const std::vector<std::uint64_t>& seeds, const char* tag) {
  const std::string path = temp_path(tag);
  std::remove(path.c_str());
  {
    Broker broker;
    const auto recovered = broker.recover("", path);
    EXPECT_TRUE(recovered.has_value()) << recovered.error().to_string();
    EXPECT_TRUE(broker.journal_enabled());
    for (const std::uint64_t seed : seeds) {
      const auto reply = broker.solve(pareto_request(seed));
      EXPECT_TRUE(reply.has_value()) << reply.error().to_string();
    }
    EXPECT_EQ(broker.journal_stats().records_appended, seeds.size());
  }
  std::string bytes = read_file(path);
  std::remove(path.c_str());
  return bytes;
}

// --- Codec round trips. -----------------------------------------------------

TEST_F(Journals, HeaderAndRecordCodecRoundTrip) {
  const std::string header = encode_journal_header();
  ASSERT_EQ(header.size(), kJournalHeaderBytes);
  const auto empty = decode_journal(header);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->entries.empty());
  EXPECT_EQ(empty->torn_records, 0U);
  EXPECT_EQ(empty->valid_bytes, kJournalHeaderBytes);

  // Frame real cache entries and decode them back bit-exactly.
  Broker broker;
  ASSERT_TRUE(broker.solve(pareto_request(1)).has_value());
  ASSERT_TRUE(broker.solve(pareto_request(2)).has_value());
  const std::string snap = temp_path("codec_snap");
  ASSERT_TRUE(broker.save_snapshot(snap).has_value());
  const auto entries = decode_snapshot(read_file(snap));
  std::remove(snap.c_str());
  ASSERT_TRUE(entries.has_value());
  ASSERT_EQ(entries->size(), 2U);

  std::string bytes = header;
  for (const FrontCache::ExportedEntry& entry : *entries) {
    bytes += encode_journal_record(entry);
  }
  const auto decoded = decode_journal(bytes);
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  ASSERT_EQ(decoded->entries.size(), 2U);
  EXPECT_EQ(decoded->torn_records, 0U);
  EXPECT_EQ(decoded->valid_bytes, bytes.size());
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(encode_journal_record(decoded->entries[i]),
              encode_journal_record((*entries)[i]));
  }
}

TEST_F(Journals, OpenCreatesAppendsAndReplays) {
  const std::string path = temp_path("open");
  std::remove(path.c_str());

  Broker broker;
  ASSERT_TRUE(broker.solve(pareto_request(7)).has_value());
  const std::string snap = temp_path("open_snap");
  ASSERT_TRUE(broker.save_snapshot(snap).has_value());
  const auto entries = decode_snapshot(read_file(snap));
  std::remove(snap.c_str());
  ASSERT_TRUE(entries.has_value());
  ASSERT_EQ(entries->size(), 1U);

  {
    auto opened = Journal::open(path);
    ASSERT_TRUE(opened.has_value()) << opened.error().to_string();
    EXPECT_TRUE(opened.value().replayed.entries.empty());
    Journal& journal = *opened.value().journal;
    EXPECT_EQ(journal.stats().file_bytes, kJournalHeaderBytes);

    const auto appended = journal.append((*entries)[0]);
    ASSERT_TRUE(appended.has_value()) << appended.error().to_string();
    EXPECT_EQ(appended->records_appended, 1U);
    // fsync_every defaults to 1: the append is durable before it returns.
    EXPECT_EQ(appended->fsyncs, 1U);
    EXPECT_EQ(appended->synced_bytes, appended->file_bytes);
    EXPECT_FALSE(journal.wedged());
  }
  {
    auto reopened = Journal::open(path);
    ASSERT_TRUE(reopened.has_value()) << reopened.error().to_string();
    ASSERT_EQ(reopened.value().replayed.entries.size(), 1U);
    EXPECT_EQ(reopened.value().replayed.torn_records, 0U);
    EXPECT_EQ(encode_journal_record(reopened.value().replayed.entries[0]),
              encode_journal_record((*entries)[0]));
  }
  std::remove(path.c_str());
}

// --- The kill-point sweep (the crash-recovery harness). ----------------------

TEST_F(Journals, KillPointSweepEveryBytePrefixRecoversTheReferenceCache) {
  const std::vector<std::uint64_t> seeds = {11, 12, 13};
  const std::string bytes = journal_bytes_for(seeds, "sweep_src");
  const std::vector<std::size_t> ends = record_boundaries(bytes);
  ASSERT_EQ(ends.size(), seeds.size());
  ASSERT_EQ(ends.back(), bytes.size());

  const auto full = decode_journal(bytes);
  ASSERT_TRUE(full.has_value());
  ASSERT_EQ(full->entries.size(), seeds.size());

  // Never-crashed references: the cache image after the first k inserts.
  std::vector<std::string> reference;
  {
    FrontCache cache;
    reference.push_back(cache_image(cache));
    for (const FrontCache::ExportedEntry& entry : full->entries) {
      cache.insert(entry.hash, entry.key, entry.value);
      reference.push_back(cache_image(cache));
    }
  }

  // A crash can truncate the journal at ANY byte. At every single offset,
  // replay must recover exactly the records fully written before the kill
  // point — no error, no lost earlier record, no partial record surviving.
  for (std::size_t t = 0; t <= bytes.size(); ++t) {
    const std::string_view prefix(bytes.data(), t);
    const auto image = decode_journal(prefix);
    ASSERT_TRUE(image.has_value()) << "offset " << t << ": " << image.error().to_string();

    std::size_t complete = 0;
    while (complete < ends.size() && ends[complete] <= t) ++complete;
    ASSERT_EQ(image->entries.size(), complete) << "offset " << t;
    const std::size_t valid = complete == 0 ? (t >= kJournalHeaderBytes ? kJournalHeaderBytes : 0)
                                            : ends[complete - 1];
    EXPECT_EQ(image->valid_bytes, valid) << "offset " << t;
    // A torn header is a torn *creation*, not a torn record; only bytes
    // past a complete header can form the discarded-tail record.
    EXPECT_EQ(image->torn_records, t >= kJournalHeaderBytes && t > valid ? 1U : 0U)
        << "offset " << t;

    FrontCache cache;
    for (const FrontCache::ExportedEntry& entry : image->entries) {
      cache.insert(entry.hash, entry.key, entry.value);
    }
    ASSERT_EQ(cache_image(cache), reference[complete]) << "offset " << t;
  }
}

TEST_F(Journals, RecoverySweepAtRecordBoundariesServesBitIdenticalWarmReplies) {
  const std::vector<std::uint64_t> seeds = {21, 22, 23};
  const std::string bytes = journal_bytes_for(seeds, "boundary_src");
  const std::vector<std::size_t> ends = record_boundaries(bytes);
  ASSERT_EQ(ends.size(), seeds.size());

  // Reference replies from a never-crashed broker.
  std::vector<Reply> reference;
  {
    Broker broker;
    for (const std::uint64_t seed : seeds) {
      auto reply = broker.solve(pareto_request(seed));
      ASSERT_TRUE(reply.has_value());
      reference.push_back(std::move(reply).take());
    }
  }

  const std::string path = temp_path("boundary");
  for (std::size_t k = 0; k <= seeds.size(); ++k) {
    const std::size_t cut = k == 0 ? kJournalHeaderBytes : ends[k - 1];
    // Also kill a few bytes into the NEXT record: the torn tail must be
    // discarded without dragging down the k complete records before it.
    for (const std::size_t extra : {std::size_t{0}, std::size_t{1}, std::size_t{9}}) {
      const std::size_t t = std::min(cut + extra, bytes.size());
      write_file(path, std::string_view(bytes).substr(0, t));

      Broker broker;
      const auto recovered = broker.recover("", path);
      ASSERT_TRUE(recovered.has_value()) << recovered.error().to_string();
      EXPECT_EQ(recovered->journal_records, k);
      EXPECT_EQ(recovered->torn_records, t > cut && k < seeds.size() ? 1U : 0U);
      EXPECT_FALSE(recovered->snapshot_loaded);
      EXPECT_EQ(broker.metrics().journal_records_replayed.value(), k);
      EXPECT_GE(broker.metrics().recovery_seconds.value(), 0.0);

      // Replayed seeds hit warm with the reference bit patterns; the first
      // lost seed is a fresh miss (and re-solves to the same bits anyway).
      for (std::size_t i = 0; i < seeds.size(); ++i) {
        const auto reply = broker.solve(pareto_request(seeds[i]));
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(reply->cache_hit, i < k) << "k=" << k << " seed " << seeds[i];
        expect_bits_equal(*reply, reference[i]);
      }
    }
  }
  std::remove(path.c_str());
}

TEST_F(Journals, FaultInjectedTornAppendsRecoverEndToEnd) {
  // End-to-end variant of the sweep: the journal.append fault point tears
  // the FINAL append at a chosen byte count, mimicking a kill -9 mid-write
  // inside a real serving broker rather than a hand-truncated file.
  const std::vector<std::uint64_t> seeds = {31, 32, 33};

  std::string reference_image;
  {
    Broker broker;
    for (std::size_t i = 0; i + 1 < seeds.size(); ++i) {
      ASSERT_TRUE(broker.solve(pareto_request(seeds[i])).has_value());
    }
    reference_image = broker_image(broker, "torn_ref");
  }

  const std::string whole = journal_bytes_for(seeds, "torn_src");
  const std::vector<std::size_t> ends = record_boundaries(whole);
  const std::size_t last_record = ends.back() - ends[ends.size() - 2];

  for (const std::size_t torn : {std::size_t{0}, std::size_t{1},
                                 kJournalRecordFrameBytes - 1, kJournalRecordFrameBytes,
                                 kJournalRecordFrameBytes + 1, last_record - 1}) {
    const std::string path = temp_path("torn");
    std::remove(path.c_str());
    {
      Broker broker;
      ASSERT_TRUE(broker.recover("", path).has_value());
      for (std::size_t i = 0; i + 1 < seeds.size(); ++i) {
        ASSERT_TRUE(broker.solve(pareto_request(seeds[i])).has_value());
      }
      faultpoint::ArmOptions options;
      options.value = static_cast<double>(torn);
      faultpoint::arm("journal.append", options);
      // The solve itself still succeeds: durability failures never cost the
      // caller its reply, they surface through the stats.
      ASSERT_TRUE(broker.solve(pareto_request(seeds.back())).has_value());
      faultpoint::clear();
      EXPECT_GE(broker.journal_stats().append_errors, 1U);
    }

    Broker restored;
    const auto recovered = restored.recover("", path);
    ASSERT_TRUE(recovered.has_value()) << "torn=" << torn << ": "
                                       << recovered.error().to_string();
    EXPECT_EQ(recovered->journal_records, seeds.size() - 1) << "torn=" << torn;
    EXPECT_EQ(recovered->torn_records, torn > 0 ? 1U : 0U) << "torn=" << torn;
    EXPECT_EQ(broker_image(restored, "torn_got"), reference_image) << "torn=" << torn;
    std::remove(path.c_str());
  }
}

// --- Group commit. -----------------------------------------------------------

TEST_F(Journals, GroupCommitBoundsCrashLossToFsyncEveryMinusOne) {
  const std::vector<std::uint64_t> seeds = {41, 42, 43, 44, 45, 46};
  const std::string path = temp_path("group");
  std::remove(path.c_str());

  JournalOptions options;
  options.fsync_every = 4;
  JournalStats stats;
  {
    Broker broker;
    ASSERT_TRUE(broker.recover("", path, options).has_value());
    for (const std::uint64_t seed : seeds) {
      ASSERT_TRUE(broker.solve(pareto_request(seed)).has_value());
    }
    stats = broker.journal_stats();
    EXPECT_EQ(stats.records_appended, seeds.size());
    EXPECT_EQ(stats.fsyncs, 1U);  // one group of 4 committed; 2 records pending
    EXPECT_LT(stats.synced_bytes, stats.file_bytes);

    // Model the worst crash group commit allows: everything past the last
    // completed fsync is lost. Capture the journal as of that fsync.
    const std::string bytes = read_file(path);
    write_file(path + ".crashed", std::string_view(bytes).substr(
                                      0, static_cast<std::size_t>(stats.synced_bytes)));

    // An explicit sync drains the pending group (clean-shutdown durability).
    const auto synced = broker.sync_journal();
    ASSERT_TRUE(synced.has_value());
    EXPECT_EQ(synced->fsyncs, 2U);
    EXPECT_EQ(synced->synced_bytes, synced->file_bytes);
  }

  Broker restored;
  const auto recovered = restored.recover("", path + ".crashed", options);
  ASSERT_TRUE(recovered.has_value()) << recovered.error().to_string();
  // The loss bound: at most fsync_every - 1 of the most recent solves gone,
  // and the survivors are exactly the oldest prefix.
  ASSERT_GE(recovered->journal_records, seeds.size() - (options.fsync_every - 1));
  EXPECT_EQ(recovered->journal_records, 4U);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const auto reply = restored.solve(pareto_request(seeds[i]));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->cache_hit, i < 4) << "seed " << seeds[i];
  }
  std::remove(path.c_str());
  std::remove((path + ".crashed").c_str());
}

// --- Compaction. -------------------------------------------------------------

TEST_F(Journals, SnapshotSaveCompactsTheJournal) {
  const std::string snap = temp_path("compact_snap");
  const std::string wal = temp_path("compact_wal");
  std::remove(snap.c_str());
  std::remove(wal.c_str());

  std::string reference_image;
  {
    Broker broker;
    ASSERT_TRUE(broker.recover(snap, wal).has_value());
    ASSERT_TRUE(broker.solve(pareto_request(51)).has_value());
    ASSERT_TRUE(broker.solve(pareto_request(52)).has_value());
    EXPECT_GT(broker.journal_stats().file_bytes, kJournalHeaderBytes);

    const auto saved = broker.save_snapshot(snap);
    ASSERT_TRUE(saved.has_value()) << saved.error().to_string();
    EXPECT_EQ(saved->entries, 2U);
    const JournalStats stats = broker.journal_stats();
    EXPECT_EQ(stats.rotations, 1U);
    EXPECT_EQ(stats.file_bytes, kJournalHeaderBytes);
    reference_image = read_file(snap);
  }
  // The on-disk journal is a bare header again: its records live in the
  // snapshot now, so recovery replays nothing.
  EXPECT_EQ(read_file(wal), encode_journal_header());

  Broker restored;
  const auto recovered = restored.recover(snap, wal);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(recovered->snapshot_loaded);
  EXPECT_EQ(recovered->snapshot_entries, 2U);
  EXPECT_EQ(recovered->journal_records, 0U);
  EXPECT_EQ(broker_image(restored, "compact_got"), reference_image);
  std::remove(snap.c_str());
  std::remove(wal.c_str());
}

TEST_F(Journals, FailedRotationLeavesAnIdempotentStaleJournal) {
  const std::string snap = temp_path("rotfail_snap");
  const std::string wal = temp_path("rotfail_wal");
  std::remove(snap.c_str());
  std::remove(wal.c_str());

  std::string reference_image;
  {
    Broker broker;
    ASSERT_TRUE(broker.recover(snap, wal).has_value());
    ASSERT_TRUE(broker.solve(pareto_request(61)).has_value());

    faultpoint::arm("journal.rotate");
    const auto saved = broker.save_snapshot(snap);
    faultpoint::clear();
    // The snapshot committed; only the rotation failed. That is reported —
    // but nothing is lost, because replaying the stale journal over the
    // snapshot re-inserts records the snapshot already holds.
    ASSERT_FALSE(saved.has_value());
    EXPECT_EQ(saved.error().code, "io");
    EXPECT_EQ(broker.journal_stats().rotations, 0U);
    reference_image = read_file(snap);
    ASSERT_FALSE(reference_image.empty());

    // The journal did not wedge: later solves still append durably.
    ASSERT_TRUE(broker.solve(pareto_request(62)).has_value());
    EXPECT_EQ(broker.journal_stats().records_appended, 2U);
  }

  Broker restored;
  const auto recovered = restored.recover(snap, wal);
  ASSERT_TRUE(recovered.has_value()) << recovered.error().to_string();
  EXPECT_EQ(recovered->snapshot_entries, 1U);
  EXPECT_EQ(recovered->journal_records, 2U);  // seed 61 replays idempotently
  EXPECT_EQ(restored.cache_stats().entries, 2U);
  for (const std::uint64_t seed : {61U, 62U}) {
    const auto reply = restored.solve(pareto_request(seed));
    ASSERT_TRUE(reply.has_value());
    EXPECT_TRUE(reply->cache_hit) << "seed " << seed;
  }
  std::remove(snap.c_str());
  std::remove(wal.c_str());
}

// --- Wedging. ----------------------------------------------------------------

TEST_F(Journals, FsyncFailureWedgesTheJournalButServingContinues) {
  const std::string path = temp_path("wedge");
  std::remove(path.c_str());
  {
    Broker broker;
    ASSERT_TRUE(broker.recover("", path).has_value());

    faultpoint::arm("journal.fsync");
    // The solve succeeds even though its durability commit failed...
    ASSERT_TRUE(broker.solve(pareto_request(71)).has_value());
    faultpoint::clear();
    EXPECT_GE(broker.journal_stats().append_errors, 1U);

    // ...and the wedged journal refuses further appends without failing
    // the solves that trigger them.
    ASSERT_TRUE(broker.solve(pareto_request(72)).has_value());
    EXPECT_GE(broker.journal_stats().append_errors, 2U);
    EXPECT_EQ(broker.journal_stats().records_appended, 1U);

    const auto synced = broker.sync_journal();
    EXPECT_FALSE(synced.has_value());
    EXPECT_EQ(synced.error().code, "io");

    EXPECT_NE(broker.metrics_json().find("\"append_errors\":"), std::string::npos);
  }

  // What reached the file before the wedge replays normally.
  Broker restored;
  const auto recovered = restored.recover("", path);
  ASSERT_TRUE(recovered.has_value()) << recovered.error().to_string();
  EXPECT_EQ(recovered->journal_records, 1U);
  std::remove(path.c_str());
}

// --- LRU interaction. --------------------------------------------------------

TEST_F(Journals, ReplayPreservesLruOrderUnderEvictionPressure) {
  // More journaled inserts than the recovered cache can hold: replay order
  // decides who survives, so it must match the never-crashed eviction order.
  const std::vector<std::uint64_t> seeds = {81, 82, 83, 84, 85, 86};
  BrokerOptions small;
  small.cache.capacity = 4;
  small.cache.shards = 1;

  // Never-crashed reference: a journal-free broker running the same
  // workload (saving the journaled broker's snapshot would *compact* the
  // journal away — exactly the rotation the crash is supposed to preempt).
  std::string reference_image;
  {
    Broker reference(small);
    for (const std::uint64_t seed : seeds) {
      ASSERT_TRUE(reference.solve(pareto_request(seed)).has_value());
    }
    reference_image = broker_image(reference, "lru_ref");
  }

  const std::string path = temp_path("lru");
  std::remove(path.c_str());
  {
    Broker broker(small);
    ASSERT_TRUE(broker.recover("", path).has_value());
    for (const std::uint64_t seed : seeds) {
      ASSERT_TRUE(broker.solve(pareto_request(seed)).has_value());
    }
    EXPECT_GT(broker.cache_stats().evictions, 0U);
    // The journal keeps all six records; the cache only the last four.
    EXPECT_EQ(broker.journal_stats().records_appended, seeds.size());
  }

  Broker restored(small);
  const auto recovered = restored.recover("", path);
  ASSERT_TRUE(recovered.has_value()) << recovered.error().to_string();
  EXPECT_EQ(recovered->journal_records, seeds.size());
  EXPECT_EQ(restored.cache_stats().entries, 4U);
  EXPECT_EQ(broker_image(restored, "lru_got"), reference_image);
  std::remove(path.c_str());
}

// --- Rejection rules and the corruption fuzzer. -------------------------------

TEST_F(Journals, VersionAndStampMismatchesReject) {
  const std::string bytes = journal_bytes_for({91}, "version_src");

  std::string bad_magic = bytes;
  bad_magic[0] ^= 0x01;
  auto decoded = decode_journal(bad_magic);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error().code, "journal-version");

  std::string bad_version = bytes;
  bad_version[8] ^= 0x01;  // the u32 format version follows the magic
  decoded = decode_journal(bad_version);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error().code, "journal-version");

  std::string bad_stamp = bytes;
  bad_stamp[12] ^= 0x01;  // first byte of the build-stamp hash
  decoded = decode_journal(bad_stamp);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error().code, "journal-version");

  // A broker refuses to recover from it and attaches no journal.
  const std::string path = temp_path("version");
  write_file(path, bad_stamp);
  Broker broker;
  const auto recovered = broker.recover("", path);
  ASSERT_FALSE(recovered.has_value());
  EXPECT_EQ(recovered.error().code, "journal-version");
  EXPECT_FALSE(broker.journal_enabled());
  std::remove(path.c_str());
}

TEST_F(Journals, MidFileDamageIsCorruptionNotATornTail) {
  const std::string bytes = journal_bytes_for({95, 96}, "corrupt_src");
  const std::vector<std::size_t> ends = record_boundaries(bytes);
  ASSERT_EQ(ends.size(), 2U);

  // A flipped payload byte in the FIRST record, with the second intact
  // after it: the damaged write completed, so this is not a crash artifact.
  std::string mid_flip = bytes;
  mid_flip[kJournalHeaderBytes + kJournalRecordFrameBytes + 3] ^= 0x40;
  auto decoded = decode_journal(mid_flip);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error().code, "journal-corrupt");

  // The same flip in the LAST record is a torn tail: discarded, the intact
  // prefix survives.
  std::string tail_flip = bytes;
  tail_flip[ends[0] + kJournalRecordFrameBytes + 3] ^= 0x40;
  decoded = decode_journal(tail_flip);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->entries.size(), 1U);
  EXPECT_EQ(decoded->torn_records, 1U);

  // Checksum-valid but structurally damaged payloads are corruption even at
  // the tail: rebuild the final record with a trailing garbage byte and a
  // fixed-up frame.
  const auto full = decode_journal(bytes);
  ASSERT_TRUE(full.has_value());
  std::string payload;
  encode_cache_entry(payload, full->entries[1]);
  payload.push_back('\x5a');
  std::string trailing(bytes.substr(0, ends[0]));
  util::bytes::append_u64_le(trailing, payload.size());
  util::bytes::append_u64_le(trailing, util::fnv1a(payload));
  trailing += payload;
  decoded = decode_journal(trailing);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error().code, "journal-corrupt");
}

TEST_F(Journals, SeededCorruptionFuzzNeverCrashesAndNeverLosesThePreDamagePrefix) {
  const std::vector<std::uint64_t> seeds = {101, 102, 103};
  const std::string bytes = journal_bytes_for(seeds, "fuzz_src");
  const std::vector<std::size_t> ends = record_boundaries(bytes);
  ASSERT_EQ(ends.size(), seeds.size());

  const auto full = decode_journal(bytes);
  ASSERT_TRUE(full.has_value());
  std::vector<std::string> record_encoding;
  for (const FrontCache::ExportedEntry& entry : full->entries) {
    record_encoding.push_back(encode_journal_record(entry));
  }

  std::mt19937_64 rng(0xf005ba11);
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::string mutated = bytes;
    std::size_t first_damage = bytes.size();
    switch (iteration % 5) {
      case 0: {  // truncation at a random offset (the crash shape)
        first_damage = rng() % (bytes.size() + 1);
        mutated.resize(first_damage);
        break;
      }
      case 1: {  // single bit flip anywhere
        first_damage = rng() % bytes.size();
        mutated[first_damage] ^= static_cast<char>(1U << (rng() % 8));
        break;
      }
      case 2: {  // duplicated tail record
        mutated += record_encoding.back();
        break;
      }
      case 3: {  // reordered tail: swap the last two records
        mutated = bytes.substr(0, ends[0]);
        mutated += record_encoding[2];
        mutated += record_encoding[1];
        first_damage = ends[0];  // damage starts where the order diverges
        break;
      }
      case 4: {  // appended garbage
        const std::size_t count = 1 + rng() % 64;
        for (std::size_t i = 0; i < count; ++i) {
          mutated.push_back(static_cast<char>(rng() & 0xff));
        }
        break;
      }
    }

    const auto decoded = decode_journal(mutated);
    if (!decoded.has_value()) {
      EXPECT_TRUE(decoded.error().code == "journal-corrupt" ||
                  decoded.error().code == "journal-version")
          << "iteration " << iteration << ": " << decoded.error().to_string();
      continue;
    }
    // Every record that lies fully before the first damaged byte must
    // survive replay, in order, bit-exactly.
    std::size_t intact = 0;
    while (intact < ends.size() && ends[intact] <= first_damage) ++intact;
    ASSERT_GE(decoded->entries.size(), intact) << "iteration " << iteration;
    for (std::size_t i = 0; i < intact; ++i) {
      EXPECT_EQ(encode_journal_record(decoded->entries[i]), record_encoding[i])
          << "iteration " << iteration << " record " << i;
    }
  }
}

}  // namespace
}  // namespace relap::service
