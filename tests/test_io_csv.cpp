// Tests for io/csv.hpp.

#include "relap/io/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace relap::io {
namespace {

TEST(Csv, HeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_numeric_row({3.5, 4.0});
  EXPECT_EQ(csv.row_count(), 2u);
  EXPECT_EQ(csv.str(), "a,b\n1,2\n3.5,4\n");
}

TEST(Csv, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("with\nnewline"), "\"with\nnewline\"");

  CsvWriter csv({"name"});
  csv.add_row({"hello, world"});
  EXPECT_EQ(csv.str(), "name\n\"hello, world\"\n");
}

TEST(Csv, SaveWritesFile) {
  CsvWriter csv({"x"});
  csv.add_numeric_row({1.25});
  const std::string path = ::testing::TempDir() + "/relap_csv_test.csv";
  ASSERT_TRUE(csv.save(path));
  std::ifstream file(path);
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), "x\n1.25\n");
  std::remove(path.c_str());
}

TEST(Csv, SaveFailsOnBadPath) {
  CsvWriter csv({"x"});
  EXPECT_FALSE(csv.save("/nonexistent/dir/file.csv"));
}

TEST(CsvDeath, RowWidthMismatch) {
  CsvWriter csv({"a", "b"});
  EXPECT_DEATH(csv.add_row({"only-one"}), "width");
}

}  // namespace
}  // namespace relap::io
