// Tests for algorithms/fully_hom.hpp — Theorem 5's Algorithms 1 and 2,
// cross-checked against exhaustive enumeration (property sweep over seeds),
// including the paper's closing remark that they stay optimal under
// heterogeneous failure probabilities.

#include "relap/algorithms/fully_hom.hpp"

#include <gtest/gtest.h>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/platform/builders.hpp"
#include "relap/util/stats.hpp"

namespace relap::algorithms {
namespace {

TEST(Algorithm1, HandComputedReplicationCount) {
  // T(k) = k*delta0/b + W/s + deltan/b = 2k + 5 + 1 with the numbers below.
  const auto pipe = pipeline::Pipeline({10.0}, {2.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(6, 2.0, 1.0, 0.3);
  // L = 12 admits k = 3 (2*3 + 6 = 12); k = 4 gives 14 > 12.
  const Result r = fully_hom_min_fp_for_latency(pipe, plat, 12.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->mapping.processors_used(), 3u);
  EXPECT_DOUBLE_EQ(r->latency, 12.0);
  EXPECT_NEAR(r->failure_probability, 0.3 * 0.3 * 0.3, 1e-15);
}

TEST(Algorithm1, InfeasibleThreshold) {
  const auto pipe = pipeline::Pipeline({10.0}, {2.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(3, 2.0, 1.0, 0.3);
  const Result r = fully_hom_min_fp_for_latency(pipe, plat, 1.0);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, "infeasible");
}

TEST(Algorithm1, ExactThresholdAccepted) {
  // The optimum sits exactly on the threshold: must not be rejected by
  // floating-point fuzz.
  const auto pipe = pipeline::Pipeline({3.0}, {1.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(4, 1.0, 1.0, 0.5);
  // T(k) = k + 3 + 1; L = 8 admits exactly k = 4.
  const Result r = fully_hom_min_fp_for_latency(pipe, plat, 8.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->mapping.processors_used(), 4u);
}

TEST(Algorithm1, PicksMostReliableUnderHeterogeneousFailures) {
  const auto pipe = pipeline::Pipeline({2.0}, {1.0, 1.0});
  const auto plat =
      platform::make_fully_homogeneous_het_failures(1.0, 1.0, {0.9, 0.1, 0.5, 0.2});
  // T(k) = k + 3; L = 5 admits k = 2: must pick processors 1 and 3.
  const Result r = fully_hom_min_fp_for_latency(pipe, plat, 5.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->mapping.interval(0).processors, (std::vector<platform::ProcessorId>{1, 3}));
  EXPECT_NEAR(r->failure_probability, 0.1 * 0.2, 1e-15);
}

TEST(Algorithm2, HandComputedMinimalReplication) {
  const auto pipe = pipeline::Pipeline({10.0}, {2.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(6, 2.0, 1.0, 0.5);
  // fp^k <= 0.2 needs k = 3 (0.125).
  const Result r = fully_hom_min_latency_for_fp(pipe, plat, 0.2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->mapping.processors_used(), 3u);
  EXPECT_DOUBLE_EQ(r->latency, 2.0 * 3.0 + 5.0 + 1.0);
}

TEST(Algorithm2, InfeasibleWhenAllProcessorsNotEnough) {
  const auto pipe = pipeline::Pipeline({1.0}, {1.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.9);
  const Result r = fully_hom_min_latency_for_fp(pipe, plat, 0.5);  // 0.81 > 0.5
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, "infeasible");
}

TEST(Algorithm2, ZeroFailureProcessorsNeedOneReplica) {
  const auto pipe = pipeline::Pipeline({1.0}, {1.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(4, 1.0, 1.0, 0.0);
  const Result r = fully_hom_min_latency_for_fp(pipe, plat, 0.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->mapping.processors_used(), 1u);
}

// --- Property sweep: optimal vs exhaustive on random instances. -------------

struct SweepCase {
  std::uint64_t seed;
  bool het_failures;
};

class FullyHomSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    const auto& param = GetParam();
    pipe_.emplace(gen::random_uniform_pipeline(3, param.seed));
    gen::PlatformGenOptions options;
    options.processors = 4;
    plat_.emplace(param.het_failures
                      ? gen::random_fully_hom_het_failures(options, param.seed * 101)
                      : gen::random_fully_homogeneous(options, param.seed * 101));
  }

  std::optional<pipeline::Pipeline> pipe_;
  std::optional<platform::Platform> plat_;
};

TEST_P(FullyHomSweep, Algorithm1MatchesExhaustive) {
  const auto oracle_front = exhaustive_pareto(*pipe_, *plat_);
  ASSERT_TRUE(oracle_front.has_value());
  // Use each oracle front point's latency as a threshold: Algorithm 1 must
  // reproduce the oracle's FP there.
  for (const auto& point : oracle_front->front) {
    const Result fast = fully_hom_min_fp_for_latency(*pipe_, *plat_, point.latency);
    ASSERT_TRUE(fast.has_value()) << "threshold " << point.latency;
    EXPECT_TRUE(util::approx_equal(fast->failure_probability, point.failure_probability) ||
                fast->failure_probability < point.failure_probability)
        << "L=" << point.latency << " alg=" << fast->failure_probability
        << " oracle=" << point.failure_probability;
  }
}

TEST_P(FullyHomSweep, Algorithm2MatchesExhaustive) {
  const auto oracle_front = exhaustive_pareto(*pipe_, *plat_);
  ASSERT_TRUE(oracle_front.has_value());
  for (const auto& point : oracle_front->front) {
    const Result fast = fully_hom_min_latency_for_fp(*pipe_, *plat_, point.failure_probability);
    ASSERT_TRUE(fast.has_value()) << "threshold " << point.failure_probability;
    EXPECT_TRUE(util::approx_equal(fast->latency, point.latency) ||
                fast->latency < point.latency)
        << "FP=" << point.failure_probability << " alg=" << fast->latency
        << " oracle=" << point.latency;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FullyHomSweep,
    ::testing::Values(SweepCase{1, false}, SweepCase{2, false}, SweepCase{3, false},
                      SweepCase{4, false}, SweepCase{1, true}, SweepCase{2, true},
                      SweepCase{3, true}, SweepCase{4, true}, SweepCase{5, true},
                      SweepCase{6, true}));

TEST(AlgorithmsDeath, RequireFullyHomogeneousPlatform) {
  const auto pipe = pipeline::Pipeline({1.0}, {1.0, 1.0});
  const auto het = platform::make_comm_homogeneous({1.0, 2.0}, 1.0, 0.1);
  EXPECT_DEATH((void)fully_hom_min_fp_for_latency(pipe, het, 10.0), "Fully Homogeneous");
  EXPECT_DEATH((void)fully_hom_min_latency_for_fp(pipe, het, 0.5), "Fully Homogeneous");
}

}  // namespace
}  // namespace relap::algorithms
