// Tests for the solver service (service/{request,canonical,cache,broker}):
// canonicalization quotients relabelings and power-of-two rescalings, cache
// hits are bit-identical to cold solves, malformed requests come back as
// structured errors, and the memo cache obeys its LRU/counter contract.

#include "relap/service/broker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/service/canonical.hpp"
#include "relap/util/rng.hpp"

namespace relap::service {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

InstanceData small_instance(std::uint64_t seed, std::size_t stages = 4,
                            std::size_t processors = 4) {
  const auto pipe = gen::random_uniform_pipeline(stages, seed);
  gen::PlatformGenOptions options;
  options.processors = processors;
  const auto plat = gen::random_fully_heterogeneous(options, seed + 1);
  return InstanceData::from(pipe, plat);
}

InstanceData shuffled(const InstanceData& instance, std::uint64_t seed,
                      std::vector<std::size_t>* processor_order_out = nullptr) {
  util::Rng rng(seed);
  std::vector<std::size_t> stage_order = util::iota_indices(instance.stages.size());
  std::vector<std::size_t> processor_order = util::iota_indices(instance.processors.size());
  rng.shuffle(stage_order);
  rng.shuffle(processor_order);
  if (processor_order_out != nullptr) *processor_order_out = processor_order;
  return instance.relabeled(stage_order, processor_order);
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// Group sets of `reply` translated into the base labeling: processor id j of
// the relabeled presentation is base record processor_order[j].
std::vector<std::vector<std::size_t>> groups_in_base_labels(
    const Reply& reply, std::size_t point, const std::vector<std::size_t>& processor_order) {
  std::vector<std::vector<std::size_t>> groups;
  for (const auto& assignment : reply.front[point].mapping.intervals()) {
    std::vector<std::size_t> group;
    for (const auto id : assignment.processors) group.push_back(processor_order[id]);
    std::sort(group.begin(), group.end());
    groups.push_back(std::move(group));
  }
  return groups;
}

// --- Canonicalization properties. ------------------------------------------

TEST(Canonical, RelabelingsAndPow2ScalingsShareOneHash) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const InstanceData base = small_instance(seed);
    const auto canonical = canonicalize(base);
    ASSERT_TRUE(canonical.has_value());

    const auto relabeled = canonicalize(shuffled(base, seed * 101));
    ASSERT_TRUE(relabeled.has_value());
    EXPECT_EQ(canonical->key_bytes, relabeled->key_bytes);
    EXPECT_EQ(canonical->key_hash, relabeled->key_hash);

    const auto scaled = canonicalize(base.scaled(0.25, 8.0, 2.0));
    ASSERT_TRUE(scaled.has_value());
    EXPECT_EQ(canonical->key_bytes, scaled->key_bytes);

    const auto both = canonicalize(shuffled(base, seed * 103).scaled(4.0, 0.5, 0.125));
    ASSERT_TRUE(both.has_value());
    EXPECT_EQ(canonical->key_bytes, both->key_bytes);
  }
}

TEST(Canonical, HoldsOnEveryPlatformClass) {
  const auto pipe = gen::random_uniform_pipeline(5, 7);
  gen::PlatformGenOptions options;
  options.processors = 5;
  const platform::Platform platforms[] = {
      gen::random_fully_homogeneous(options, 11),
      gen::random_comm_hom_het_failures(options, 12),
      gen::random_fully_heterogeneous(options, 13),
  };
  for (const auto& plat : platforms) {
    const InstanceData base = InstanceData::from(pipe, plat);
    const auto canonical = canonicalize(base);
    ASSERT_TRUE(canonical.has_value());
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto relabeled = canonicalize(shuffled(base, seed * 31 + 5));
      ASSERT_TRUE(relabeled.has_value());
      EXPECT_EQ(canonical->key_bytes, relabeled->key_bytes);
    }
  }
}

TEST(Canonical, DistinctInstancesGetDistinctHashes) {
  const auto a = canonicalize(small_instance(1));
  const auto b = canonicalize(small_instance(2));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->key_hash, b->key_hash);
}

TEST(Canonical, TimeScaleIsAPowerOfTwo) {
  const auto canonical = canonicalize(small_instance(3));
  ASSERT_TRUE(canonical.has_value());
  int exponent = 0;
  EXPECT_EQ(std::frexp(canonical->time_scale, &exponent), 0.5);
}

// --- Broker replies across presentations. ----------------------------------

TEST(Broker, RelabeledDuplicateHitsCacheWithBitIdenticalFront) {
  Broker broker;
  SolveRequest request;
  request.instance = small_instance(21);
  request.objective = Objective::ParetoFront;

  const auto cold = broker.solve(request);
  ASSERT_TRUE(cold.has_value());
  EXPECT_FALSE(cold->cache_hit);

  std::vector<std::size_t> processor_order;
  SolveRequest dup = request;
  dup.instance = shuffled(request.instance, 77, &processor_order);
  const auto warm = broker.solve(dup);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->canonical_hash, cold->canonical_hash);

  ASSERT_EQ(warm->front.size(), cold->front.size());
  for (std::size_t p = 0; p < cold->front.size(); ++p) {
    EXPECT_TRUE(bits_equal(warm->front[p].latency, cold->front[p].latency));
    EXPECT_TRUE(
        bits_equal(warm->front[p].failure_probability, cold->front[p].failure_probability));
    // Same replica groups once both are expressed in the base labeling.
    std::vector<std::vector<std::size_t>> cold_groups;
    for (const auto& assignment : cold->front[p].mapping.intervals()) {
      std::vector<std::size_t> group(assignment.processors.begin(), assignment.processors.end());
      cold_groups.push_back(std::move(group));
    }
    EXPECT_EQ(groups_in_base_labels(*warm, p, processor_order), cold_groups);
  }
  // The label-independent checksum agrees without any translation.
  EXPECT_EQ(front_checksum(warm->front), front_checksum(cold->front));
}

TEST(Broker, Pow2RescaledDuplicateHitsCacheWithExactLatencyRelation) {
  Broker broker;
  SolveRequest request;
  request.instance = small_instance(22);
  request.objective = Objective::MinFpForLatency;
  request.threshold = kInf;

  const auto cold = broker.solve(request);
  ASSERT_TRUE(cold.has_value());

  const double time_factor = 8.0;
  SolveRequest dup = request;
  dup.instance = request.instance.scaled(2.0, 0.5, time_factor);
  // The latency cap is in caller units; rescale it with the instance.
  // (infinity stays infinity.)
  const auto warm = broker.solve(dup);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->cache_hit);
  // Rescaled clock: latencies divide by time_factor, exactly.
  EXPECT_TRUE(bits_equal(warm->best().latency, cold->best().latency / time_factor));
  EXPECT_TRUE(bits_equal(warm->best().failure_probability, cold->best().failure_probability));
  EXPECT_EQ(warm->best().mapping, cold->best().mapping);
}

TEST(Broker, WarmReplyIsBitIdenticalToCold) {
  for (const Objective objective :
       {Objective::MinFpForLatency, Objective::MinLatencyForFp, Objective::ParetoFront}) {
    Broker broker;
    SolveRequest request;
    request.instance = small_instance(23);
    request.objective = objective;
    request.threshold = objective == Objective::MinLatencyForFp ? 1.0 : kInf;

    const auto cold = broker.solve(request);
    ASSERT_TRUE(cold.has_value());
    EXPECT_FALSE(cold->cache_hit);
    const auto warm = broker.solve(request);
    ASSERT_TRUE(warm.has_value());
    EXPECT_TRUE(warm->cache_hit);

    EXPECT_EQ(warm->algorithm, cold->algorithm);
    EXPECT_EQ(warm->exact, cold->exact);
    ASSERT_EQ(warm->front.size(), cold->front.size());
    for (std::size_t p = 0; p < cold->front.size(); ++p) {
      EXPECT_TRUE(bits_equal(warm->front[p].latency, cold->front[p].latency));
      EXPECT_TRUE(
          bits_equal(warm->front[p].failure_probability, cold->front[p].failure_probability));
      EXPECT_EQ(warm->front[p].mapping, cold->front[p].mapping);
    }
    EXPECT_EQ(front_checksum(warm->front), front_checksum(cold->front));
  }
}

TEST(Broker, SingleObjectiveRepliesCarryOnePoint) {
  Broker broker;
  SolveRequest request;
  request.instance = small_instance(24);
  request.objective = Objective::MinLatencyForFp;
  request.threshold = 1.0;
  const auto reply = broker.solve(request);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->front.size(), 1U);
  EXPECT_TRUE(reply->exact);  // 4 stages x 4 processors fits the auto budget
  EXPECT_GT(reply->best().latency, 0.0);
}

// --- Batch dedup + ticket queue. -------------------------------------------

TEST(Broker, BatchDedupesEqualRequestsOntoOneSolve) {
  Broker broker;
  const InstanceData base = small_instance(25);
  std::vector<SolveRequest> batch;
  for (std::uint64_t r = 0; r < 6; ++r) {
    SolveRequest request;
    request.instance = r == 0 ? base : shuffled(base, 900 + r);
    request.objective = Objective::ParetoFront;
    request.priority = static_cast<int>(r % 2);
    batch.push_back(std::move(request));
  }
  const auto replies = broker.solve_batch(batch);
  ASSERT_EQ(replies.size(), batch.size());
  std::size_t hits = 0;
  for (const auto& reply : replies) {
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->canonical_hash, replies.front()->canonical_hash);
    EXPECT_EQ(front_checksum(reply->front), front_checksum(replies.front()->front));
    hits += reply->cache_hit ? 1 : 0;
  }
  EXPECT_EQ(hits, batch.size() - 1);  // one cold lead, everyone else warm
  const CacheStats stats = broker.cache_stats();
  EXPECT_EQ(stats.misses, 1U);
  EXPECT_EQ(stats.hits, batch.size() - 1);
  EXPECT_EQ(stats.entries, 1U);
}

TEST(Broker, SubmitDrainPreservesOrderAndTickets) {
  Broker broker;
  SolveRequest request;
  request.instance = small_instance(26);
  request.objective = Objective::MinFpForLatency;
  request.threshold = kInf;
  const std::uint64_t first = broker.submit(request);
  request.priority = 5;
  const std::uint64_t second = broker.submit(request);
  EXPECT_EQ(broker.pending(), 2U);
  const auto drained = broker.drain();
  EXPECT_EQ(broker.pending(), 0U);
  ASSERT_EQ(drained.size(), 2U);
  EXPECT_EQ(drained[0].id, first);
  EXPECT_EQ(drained[1].id, second);
  ASSERT_TRUE(drained[0].reply.has_value());
  ASSERT_TRUE(drained[1].reply.has_value());
  EXPECT_TRUE(drained.back().reply->cache_hit);  // same instance+knobs = one key
  EXPECT_TRUE(broker.drain().empty());
}

// --- Malformed-request hardening. ------------------------------------------

SolveRequest valid_request() {
  SolveRequest request;
  request.instance = small_instance(27, 3, 3);
  request.objective = Objective::MinFpForLatency;
  request.threshold = kInf;
  return request;
}

void expect_error(Broker& broker, const SolveRequest& request, const std::string& code) {
  const auto reply = broker.solve(request);
  ASSERT_FALSE(reply.has_value());
  EXPECT_EQ(reply.error().code, code);
}

TEST(Broker, MalformedRequestsYieldStructuredErrors) {
  Broker broker;

  SolveRequest request = valid_request();
  request.instance.stages.clear();
  expect_error(broker, request, "malformed");

  request = valid_request();
  request.instance.processors.clear();
  expect_error(broker, request, "malformed");

  request = valid_request();
  request.instance.stages[1].position = request.instance.stages[0].position;
  expect_error(broker, request, "malformed");

  request = valid_request();
  request.instance.stages[2].position = 99;
  expect_error(broker, request, "malformed");

  request = valid_request();
  request.instance.stages[0].work = std::nan("");
  expect_error(broker, request, "malformed");

  request = valid_request();
  request.instance.stages[0].work = -1.0;
  expect_error(broker, request, "malformed");

  request = valid_request();
  request.instance.processors[1].failure_prob = 1.5;
  expect_error(broker, request, "malformed");

  request = valid_request();
  request.instance.processors[0].speed = 0.0;
  expect_error(broker, request, "malformed");

  request = valid_request();
  request.instance.processors[2].links.pop_back();
  expect_error(broker, request, "malformed");

  request = valid_request();
  request.threshold = std::nan("");
  expect_error(broker, request, "malformed");

  request = valid_request();
  request.max_evaluations = 0;
  expect_error(broker, request, "malformed");

  request = valid_request();
  request.objective = Objective::ParetoFront;
  request.pareto_thresholds = 1;
  expect_error(broker, request, "malformed");
}

TEST(Broker, InfeasibleAndOversizedRequestsRejectGracefully) {
  BrokerOptions options;
  options.max_stages = 4;
  options.max_processors = 4;
  Broker broker(options);

  SolveRequest request = valid_request();
  request.threshold = -1.0;
  expect_error(broker, request, "infeasible");

  // An FP cap of 0 on a platform whose processors all fail sometimes.
  request = valid_request();
  request.objective = Objective::MinLatencyForFp;
  request.threshold = 0.0;
  expect_error(broker, request, "infeasible");

  request = valid_request();
  request.instance = small_instance(28, 6, 3);
  expect_error(broker, request, "oversized");

  request = valid_request();
  request.instance = small_instance(29, 3, 6);
  expect_error(broker, request, "oversized");

  // Forced exhaustive with a budget of 1 candidate: fails fast, not cached.
  request = valid_request();
  request.method = algorithms::Method::Exhaustive;
  request.max_evaluations = 1;
  expect_error(broker, request, "budget");
  EXPECT_EQ(broker.cache_stats().entries, 0U);
}

// --- FrontCache unit behavior. ---------------------------------------------

std::shared_ptr<const algorithms::FrontReport> dummy_report(const std::string& tag) {
  auto report = std::make_shared<algorithms::FrontReport>();
  report->algorithm = tag;
  return report;
}

TEST(FrontCache, LruEvictionAndCounters) {
  FrontCache::Options options;
  options.capacity = 2;
  options.shards = 1;
  FrontCache cache(options);

  cache.insert(1, "a", dummy_report("a"));
  cache.insert(2, "b", dummy_report("b"));
  ASSERT_NE(cache.find(1, "a"), nullptr);  // touch "a": "b" becomes LRU
  cache.insert(3, "c", dummy_report("c"));

  EXPECT_EQ(cache.find(2, "b"), nullptr);  // evicted
  ASSERT_NE(cache.find(1, "a"), nullptr);
  ASSERT_NE(cache.find(3, "c"), nullptr);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1U);
  EXPECT_EQ(stats.hits, 3U);
  EXPECT_EQ(stats.misses, 1U);
  EXPECT_EQ(stats.entries, 2U);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.75);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0U);
  EXPECT_EQ(cache.stats().evictions, 1U);  // counters describe traffic
}

TEST(FrontCache, HashCollisionsResolveByFullKey) {
  FrontCache cache;
  cache.insert(42, "left", dummy_report("left"));
  cache.insert(42, "right", dummy_report("right"));
  const auto left = cache.find(42, "left");
  const auto right = cache.find(42, "right");
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  EXPECT_EQ(left->algorithm, "left");
  EXPECT_EQ(right->algorithm, "right");
  EXPECT_EQ(cache.find(42, "missing"), nullptr);
}

// --- Overload hardening: deadlines, shedding, graceful drain. ---------------

TEST(Broker, DeadlineSemanticsPinned) {
  Broker broker;

  // Deadlines are seconds of wall-clock budget. NaN and negative values are
  // malformed — rejected at admission, never "expired".
  SolveRequest request = valid_request();
  request.deadline = std::numeric_limits<double>::quiet_NaN();
  expect_error(broker, request, "malformed");
  request.deadline = -1.0;
  expect_error(broker, request, "malformed");
  EXPECT_EQ(broker.metrics().deadline_exceeded_total.value(), 0U);

  // A zero budget is deterministically spent at dispatch: rejected before
  // any solving happens.
  request = valid_request();
  request.deadline = 0.0;
  expect_error(broker, request, "deadline-exceeded");
  EXPECT_EQ(broker.metrics().deadline_exceeded_total.value(), 1U);
  EXPECT_EQ(broker.metrics().solves_total.value(), 0U);

  // The default (+inf) never expires.
  request.deadline = kInf;
  const auto reply = broker.solve(request);
  ASSERT_TRUE(reply.has_value());
}

TEST(Broker, QueuedDeadlineEnforcedAtDequeue) {
  Broker broker;
  SolveRequest request = valid_request();
  request.deadline = 0.0;
  const std::uint64_t expired = broker.submit(request);
  request.deadline = 3600.0;  // queue waits are microseconds here
  const std::uint64_t alive = broker.submit(request);
  const auto drained = broker.drain();
  ASSERT_EQ(drained.size(), 2U);
  EXPECT_EQ(drained[0].id, expired);
  ASSERT_FALSE(drained[0].reply.has_value());
  EXPECT_EQ(drained[0].reply.error().code, "deadline-exceeded");
  EXPECT_EQ(drained[1].id, alive);
  EXPECT_TRUE(drained[1].reply.has_value());
}

TEST(Broker, WatermarkSheddingDropsLowestPriorityFirst) {
  BrokerOptions options;
  options.queue_high_watermark = 4;
  options.queue_low_watermark = 2;
  Broker broker(options);

  std::vector<std::uint64_t> ids;
  for (int p = 0; p < 5; ++p) {
    SolveRequest request = valid_request();
    request.priority = p;  // later submissions are *more* important
    ids.push_back(broker.submit(request));
  }
  // The fifth submit crossed the high watermark: shed down to the low one,
  // lowest priorities first, so the two most important tickets survive.
  EXPECT_EQ(broker.pending(), 2U);
  EXPECT_EQ(broker.metrics().shed_total.value(), 3U);

  const auto drained = broker.drain();
  ASSERT_EQ(drained.size(), 5U);
  for (std::size_t i = 0; i < drained.size(); ++i) EXPECT_EQ(drained[i].id, ids[i]);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_FALSE(drained[i].reply.has_value()) << "priority " << i << " should be shed";
    EXPECT_EQ(drained[i].reply.error().code, "overloaded");
  }
  for (std::size_t i = 3; i < 5; ++i) {
    EXPECT_TRUE(drained[i].reply.has_value()) << "priority " << i << " should survive";
  }
}

TEST(Broker, GracefulShutdownRefusesNewWorkButDrainsQueued) {
  Broker broker;
  SolveRequest request = valid_request();
  const std::uint64_t queued = broker.submit(request);

  broker.begin_shutdown();
  EXPECT_TRUE(broker.shutting_down());

  // New work refuses with "shutting-down" on every entry point...
  expect_error(broker, request, "shutting-down");
  ASSERT_FALSE(broker.solve_batched(request).has_value());
  EXPECT_EQ(broker.solve_batched(request).error().code, "shutting-down");
  const std::uint64_t late = broker.submit(request);

  // ...while the pre-shutdown ticket still drains to a real reply.
  const auto drained = broker.drain();
  ASSERT_EQ(drained.size(), 2U);
  EXPECT_EQ(drained[0].id, queued);
  EXPECT_TRUE(drained[0].reply.has_value());
  EXPECT_EQ(drained[1].id, late);
  ASSERT_FALSE(drained[1].reply.has_value());
  EXPECT_EQ(drained[1].reply.error().code, "shutting-down");
}

// --- solve_batched: the concurrent sessions' entry point. -------------------

TEST(Broker, SolveBatchedMatchesDirectSolveBitIdentically) {
  Broker direct_broker;
  Broker batched_broker;
  SolveRequest request = valid_request();
  request.objective = Objective::ParetoFront;
  const auto direct = direct_broker.solve(request);
  const auto batched = batched_broker.solve_batched(request);
  ASSERT_TRUE(direct.has_value());
  ASSERT_TRUE(batched.has_value());
  ASSERT_EQ(direct->front.size(), batched->front.size());
  for (std::size_t i = 0; i < direct->front.size(); ++i) {
    EXPECT_TRUE(bits_equal(direct->front[i].latency, batched->front[i].latency));
    EXPECT_TRUE(
        bits_equal(direct->front[i].failure_probability, batched->front[i].failure_probability));
  }
  EXPECT_EQ(batched_broker.pending(), 0U);
  EXPECT_TRUE(batched_broker.drain().empty());
}

TEST(Broker, ConcurrentSolveBatchedCoalescesOntoOneSolve) {
  Broker broker;
  const InstanceData base = small_instance(31);
  constexpr std::size_t kSessions = 8;
  std::vector<std::optional<util::Expected<Reply>>> replies(kSessions);
  {
    std::vector<std::thread> sessions;
    sessions.reserve(kSessions);
    for (std::size_t s = 0; s < kSessions; ++s) {
      sessions.emplace_back([&, s] {
        SolveRequest request;
        // Different presentations of one instance: they canonicalize onto
        // one key, so whichever session drains first solves for everyone.
        request.instance = s == 0 ? base : shuffled(base, 4000 + s);
        request.objective = Objective::ParetoFront;
        replies[s].emplace(broker.solve_batched(request));
      });
    }
    for (std::thread& session : sessions) session.join();
  }
  ASSERT_TRUE(replies[0]->has_value()) << replies[0]->error().to_string();
  const std::uint64_t checksum = front_checksum(replies[0]->value().front);
  for (std::size_t s = 1; s < kSessions; ++s) {
    ASSERT_TRUE(replies[s]->has_value()) << replies[s]->error().to_string();
    EXPECT_EQ(front_checksum(replies[s]->value().front), checksum);
  }
  // Dedup/caching collapse all eight sessions onto exactly one solve.
  EXPECT_EQ(broker.metrics().solves_total.value(), 1U);
  EXPECT_EQ(broker.metrics().requests_total.value(), kSessions);
}

TEST(FrontCache, ReinsertRefreshesRecencyKeepsFirstValue) {
  FrontCache::Options options;
  options.capacity = 2;
  options.shards = 1;
  FrontCache cache(options);
  cache.insert(1, "a", dummy_report("first"));
  cache.insert(2, "b", dummy_report("b"));
  cache.insert(1, "a", dummy_report("second"));  // refresh, value kept
  cache.insert(3, "c", dummy_report("c"));       // evicts "b", not "a"
  ASSERT_NE(cache.find(1, "a"), nullptr);
  EXPECT_EQ(cache.find(1, "a")->algorithm, "first");
  EXPECT_EQ(cache.find(2, "b"), nullptr);
}

}  // namespace
}  // namespace relap::service
