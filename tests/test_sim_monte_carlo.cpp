// Tests for sim/monte_carlo.hpp: the empirical failure frequency matches the
// analytic FP formula within confidence bounds, across mapping shapes.

#include "relap/sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/platform/builders.hpp"
#include "relap/mapping/latency.hpp"

namespace relap::sim {
namespace {

TEST(MonteCarlo, SingleProcessorMatchesItsFp) {
  const auto plat = platform::make_fully_homogeneous(1, 1.0, 1.0, 0.3);
  const auto m = mapping::IntervalMapping::single_interval(1, {0});
  MonteCarloOptions options;
  options.trials = 200'000;
  const FailureRateEstimate est = estimate_failure_rate(plat, m, options);
  EXPECT_NEAR(est.analytic, 0.3, 1e-12);
  EXPECT_TRUE(est.consistent(0.005)) << est.empirical << " vs " << est.analytic;
}

TEST(MonteCarlo, ReplicationShrinkFailureRate) {
  const auto plat = platform::make_fully_homogeneous(3, 1.0, 1.0, 0.5);
  MonteCarloOptions options;
  options.trials = 200'000;
  const auto single = estimate_failure_rate(
      plat, mapping::IntervalMapping::single_interval(2, {0}), options);
  const auto replicated = estimate_failure_rate(
      plat, mapping::IntervalMapping::single_interval(2, {0, 1, 2}), options);
  EXPECT_TRUE(single.consistent(0.005));
  EXPECT_TRUE(replicated.consistent(0.005));
  EXPECT_LT(replicated.empirical, single.empirical);
  EXPECT_NEAR(replicated.analytic, 0.125, 1e-12);
}

class MonteCarloSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonteCarloSweep, EmpiricalMatchesAnalyticAcrossShapes) {
  const std::uint64_t seed = GetParam();
  gen::PlatformGenOptions options;
  options.processors = 6;
  options.fp_min = 0.1;
  options.fp_max = 0.7;
  const auto plat = gen::random_comm_hom_het_failures(options, seed * 4001);
  const mapping::IntervalMapping m({{{0, 1}, {0, 3}}, {{2, 2}, {1, 4}}, {{3, 3}, {2, 5}}});
  MonteCarloOptions mc;
  mc.trials = 100'000;
  mc.seed = seed;
  const FailureRateEstimate est = estimate_failure_rate(plat, m, mc);
  EXPECT_TRUE(est.consistent(0.01))
      << "seed " << seed << ": empirical " << est.empirical << " analytic " << est.analytic;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonteCarloSweep, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(MonteCarlo, PaperFig5MappingValidated) {
  const auto plat = gen::fig5_platform();
  MonteCarloOptions options;
  options.trials = 300'000;
  const auto est = estimate_failure_rate(plat, gen::fig5_two_interval_mapping(), options);
  EXPECT_LT(est.analytic, 0.2);
  EXPECT_TRUE(est.consistent(0.005));
}

TEST(MonteCarloEngine, FailureFreeLatencyAndRatesReported) {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  const auto m = gen::fig5_two_interval_mapping();
  TrialOptions options;
  options.trials = 300;
  const TrialStats stats = run_trials(pipe, plat, m, options);
  // The failure-free run's latency is at most the Eq. (1) worst case.
  EXPECT_LE(stats.failure_free_latency, mapping::latency(pipe, plat, m) + 1e-9);
  EXPECT_GT(stats.failure_free_latency, 0.0);
  // Execution-level failures are at least as frequent as the analytic FP
  // (mid-run sender deaths add failure modes the closed form does not count)
  // but must stay in the same ballpark.
  EXPECT_GE(stats.failure.empirical + 0.05 + stats.failure.ci95_half_width,
            stats.failure.analytic);
  EXPECT_EQ(static_cast<std::size_t>(stats.latency.count()) +
                static_cast<std::size_t>(stats.failure.empirical *
                                         static_cast<double>(options.trials) +
                                         0.5),
            options.trials);
}

TEST(MonteCarloEngine, ZeroFailureProcessorsAlwaysSucceed) {
  const auto pipe = gen::random_uniform_pipeline(3, 5);
  const auto plat = platform::make_fully_homogeneous(3, 1.0, 1.0, 0.0);
  const auto m = mapping::IntervalMapping::single_interval(3, {0, 1});
  TrialOptions options;
  options.trials = 100;
  const TrialStats stats = run_trials(pipe, plat, m, options);
  EXPECT_DOUBLE_EQ(stats.failure.empirical, 0.0);
  EXPECT_DOUBLE_EQ(stats.failure.analytic, 0.0);
  EXPECT_EQ(stats.latency.count(), 100u);
}

TEST(MonteCarlo, DegenerateZeroRateKeepsPositiveCiWidth) {
  // All-zero failure probabilities: the empirical rate is exactly 0. The old
  // normal-approximation CI collapsed to width 0 here, which made
  // consistent() an exact-equality check; the Wilson interval keeps a
  // positive upper bound of about z^2 / (n + z^2).
  const auto plat = platform::make_fully_homogeneous(2, 1.0, 1.0, 0.0);
  const auto m = mapping::IntervalMapping::single_interval(2, {0, 1});
  MonteCarloOptions options;
  options.trials = 50;
  const FailureRateEstimate est = estimate_failure_rate(plat, m, options);
  EXPECT_DOUBLE_EQ(est.empirical, 0.0);
  EXPECT_DOUBLE_EQ(est.analytic, 0.0);
  EXPECT_GT(est.ci95_half_width, 0.0);
  EXPECT_GT(est.ci95.high, 0.0);
  EXPECT_DOUBLE_EQ(est.ci95.low, 0.0);
  EXPECT_TRUE(est.consistent());
  // A tiny-but-nonzero analytic FP within the interval must also be accepted
  // even with slack 0 — the degenerate case the normal CI got wrong.
  FailureRateEstimate tiny = est;
  tiny.analytic = 1e-3;
  EXPECT_TRUE(tiny.consistent());
}

TEST(MonteCarlo, DegenerateCertainFailureKeepsPositiveCiWidth) {
  const auto plat = platform::make_fully_homogeneous(1, 1.0, 1.0, 1.0);
  const auto m = mapping::IntervalMapping::single_interval(1, {0});
  MonteCarloOptions options;
  options.trials = 50;
  const FailureRateEstimate est = estimate_failure_rate(plat, m, options);
  EXPECT_DOUBLE_EQ(est.empirical, 1.0);
  EXPECT_DOUBLE_EQ(est.analytic, 1.0);
  EXPECT_GT(est.ci95_half_width, 0.0);
  EXPECT_LT(est.ci95.low, 1.0);
  EXPECT_DOUBLE_EQ(est.ci95.high, 1.0);
  EXPECT_TRUE(est.consistent());
  FailureRateEstimate near_one = est;
  near_one.analytic = 1.0 - 1e-3;
  EXPECT_TRUE(near_one.consistent());
}

TEST(MonteCarlo, ConsistentRejectsFarOffAnalyticValues) {
  const auto plat = platform::make_fully_homogeneous(1, 1.0, 1.0, 0.3);
  const auto m = mapping::IntervalMapping::single_interval(1, {0});
  MonteCarloOptions options;
  options.trials = 100'000;
  FailureRateEstimate est = estimate_failure_rate(plat, m, options);
  est.analytic = 0.5;  // far outside the ~0.3 +- 0.003 interval
  EXPECT_FALSE(est.consistent());
  EXPECT_TRUE(est.consistent(0.25));  // slack widens the acceptance band
}

TEST(MonteCarlo, DeterministicPerSeed) {
  const auto plat = gen::fig5_platform();
  const auto m = gen::fig5_two_interval_mapping();
  MonteCarloOptions options;
  options.trials = 10'000;
  const auto a = estimate_failure_rate(plat, m, options);
  const auto b = estimate_failure_rate(plat, m, options);
  EXPECT_DOUBLE_EQ(a.empirical, b.empirical);
}

}  // namespace
}  // namespace relap::sim
