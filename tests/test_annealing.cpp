// Tests for algorithms/annealing.hpp: determinism per seed, feasibility
// tracking, and crossing the gap steepest descent cannot.

#include "relap/algorithms/annealing.hpp"

#include <gtest/gtest.h>

#include "relap/algorithms/types.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/validate.hpp"
#include "relap/util/stats.hpp"

namespace relap::algorithms {
namespace {

Solution start_from(const pipeline::Pipeline& pipe, const platform::Platform& plat,
                    mapping::IntervalMapping m) {
  return evaluate(pipe, plat, std::move(m));
}

TEST(Annealing, DeterministicPerSeed) {
  const auto pipe = gen::random_uniform_pipeline(4, 31);
  gen::PlatformGenOptions options;
  options.processors = 5;
  const auto plat = gen::random_comm_hom_het_failures(options, 32);
  const Solution start =
      start_from(pipe, plat, mapping::IntervalMapping::single_interval(4, {0}));
  AnnealingOptions a;
  a.iterations = 2'000;
  const Solution r1 = anneal_min_fp(pipe, plat, start, start.latency * 1.5, a);
  const Solution r2 = anneal_min_fp(pipe, plat, start, start.latency * 1.5, a);
  EXPECT_EQ(r1.mapping, r2.mapping);
  EXPECT_DOUBLE_EQ(r1.failure_probability, r2.failure_probability);
}

TEST(Annealing, DifferentSeedsMayDiverge) {
  const auto pipe = gen::random_uniform_pipeline(4, 31);
  gen::PlatformGenOptions options;
  options.processors = 5;
  const auto plat = gen::random_comm_hom_het_failures(options, 32);
  const Solution start =
      start_from(pipe, plat, mapping::IntervalMapping::single_interval(4, {0}));
  AnnealingOptions a1;
  a1.iterations = 500;
  AnnealingOptions a2 = a1;
  a2.seed = a1.seed ^ 0x1234567;
  // Both must remain valid solutions regardless of the paths taken.
  const Solution r1 = anneal_min_fp(pipe, plat, start, start.latency * 1.5, a1);
  const Solution r2 = anneal_min_fp(pipe, plat, start, start.latency * 1.5, a2);
  EXPECT_TRUE(mapping::validate(pipe, plat, r1.mapping).has_value());
  EXPECT_TRUE(mapping::validate(pipe, plat, r2.mapping).has_value());
}

TEST(Annealing, NeverWorseThanStartUnderComparator) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(3, seed);
    gen::PlatformGenOptions options;
    options.processors = 4;
    const auto plat = gen::random_comm_hom_het_failures(options, seed * 811);
    const Solution start =
        start_from(pipe, plat, mapping::IntervalMapping::single_interval(3, {0, 1}));
    const double cap = start.latency;
    AnnealingOptions a;
    a.iterations = 3'000;
    a.seed = seed;
    const Solution out = anneal_min_fp(pipe, plat, start, cap, a);
    EXPECT_FALSE(better_min_fp(start, out, cap)) << "seed " << seed;
  }
}

TEST(Annealing, SolvesFig5FromBadStart) {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  // Start from the slow processor alone: latency 10 + 101 + 0 = 111, far
  // over the threshold; annealing must tunnel to a feasible mapping.
  const Solution start =
      start_from(pipe, plat, mapping::IntervalMapping::single_interval(2, {0}));
  AnnealingOptions a;
  a.iterations = 30'000;
  const Solution out = anneal_min_fp(pipe, plat, start, gen::fig5_latency_threshold(), a);
  EXPECT_TRUE(within_cap(out.latency, gen::fig5_latency_threshold()));
  EXPECT_LT(out.failure_probability, 0.64);  // beats the best single interval
}

TEST(Annealing, MinLatencyDirection) {
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  const Solution start = start_from(pipe, plat, gen::fig4_single_mapping());
  AnnealingOptions a;
  a.iterations = 10'000;
  const Solution out = anneal_min_latency(pipe, plat, start, 0.9, a);
  EXPECT_TRUE(util::approx_equal(out.latency, 7.0));
}

}  // namespace
}  // namespace relap::algorithms
