// Tests for reductions/partition.hpp — Theorem 7's reduction from
// 2-PARTITION, both directions, plus the pseudo-polynomial source solver.

#include "relap/reductions/partition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/types.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/mapping/reliability.hpp"
#include "relap/util/stats.hpp"

namespace relap::reductions {
namespace {

TEST(SubsetSum, KnownInstances) {
  EXPECT_TRUE(has_equal_partition({{1, 1}}));
  EXPECT_TRUE(has_equal_partition({{3, 1, 1, 2, 2, 1}}));  // sum 10, half 5
  EXPECT_FALSE(has_equal_partition({{1, 2}}));             // odd sum
  EXPECT_FALSE(has_equal_partition({{2}}));
  EXPECT_FALSE(has_equal_partition({{1, 1, 1, 1, 6}}));  // half=5 unreachable
  EXPECT_TRUE(has_equal_partition({{4, 5, 6, 7, 8}}));   // 15 = 7+8 = 4+5+6
}

TEST(SubsetSum, WitnessSumsToHalf) {
  const PartitionInstance instance{{3, 1, 1, 2, 2, 1}};
  const auto witness = equal_partition_witness(instance);
  ASSERT_FALSE(witness.empty());
  std::uint64_t sum = 0;
  for (const std::size_t i : witness) sum += instance.values[i];
  EXPECT_EQ(sum, instance.sum() / 2);
  // Indices are distinct.
  for (std::size_t i = 1; i < witness.size(); ++i) EXPECT_NE(witness[i - 1], witness[i]);
}

TEST(PartitionReduction, InstanceShapeMatchesTheorem7) {
  const PartitionInstance instance{{1, 2, 3}};
  const PartitionReduction reduced = partition_to_bicriteria(instance);
  EXPECT_EQ(reduced.pipeline.stage_count(), 1u);
  EXPECT_DOUBLE_EQ(reduced.pipeline.work(0), 1.0);
  EXPECT_EQ(reduced.platform.processor_count(), 3u);
  EXPECT_DOUBLE_EQ(reduced.latency_threshold, 3.0 + 2.0);
  EXPECT_DOUBLE_EQ(reduced.fp_threshold, std::exp(-3.0));
  EXPECT_DOUBLE_EQ(reduced.platform.failure_prob(2), std::exp(-3.0));
  EXPECT_DOUBLE_EQ(reduced.platform.bandwidth_in(1), 0.5);
  EXPECT_DOUBLE_EQ(reduced.platform.bandwidth_out(1), 1.0);
}

TEST(PartitionReduction, SubsetLatencyAndFpAreTheSums) {
  // For any replication set I: latency = sum a_i + 2, FP = exp(-sum a_i).
  const PartitionInstance instance{{2, 3, 5, 7}};
  const PartitionReduction reduced = partition_to_bicriteria(instance);
  const mapping::IntervalMapping on_subset =
      mapping::IntervalMapping::single_interval(1, {0, 2});  // a = 2 + 5
  EXPECT_TRUE(util::approx_equal(
      mapping::latency(reduced.pipeline, reduced.platform, on_subset), 7.0 + 2.0));
  EXPECT_TRUE(util::approx_equal(
      mapping::failure_probability(reduced.platform, on_subset), std::exp(-7.0)));
}

class PartitionRoundTrip : public ::testing::TestWithParam<std::vector<std::uint64_t>> {};

TEST_P(PartitionRoundTrip, FeasibleIffPartitionExists) {
  const PartitionInstance instance{GetParam()};
  const PartitionReduction reduced = partition_to_bicriteria(instance);
  const bool partition_exists = has_equal_partition(instance);

  // Decision: is there a mapping with latency <= L and FP <= F? Search the
  // exact Pareto front for a point satisfying both.
  const auto outcome = algorithms::exhaustive_pareto(reduced.pipeline, reduced.platform);
  ASSERT_TRUE(outcome.has_value());
  bool feasible = false;
  for (const auto& p : outcome->front) {
    if (algorithms::within_cap(p.latency, reduced.latency_threshold) &&
        algorithms::within_cap(p.failure_probability, reduced.fp_threshold)) {
      feasible = true;
    }
  }
  EXPECT_EQ(feasible, partition_exists);
}

INSTANTIATE_TEST_SUITE_P(
    Instances, PartitionRoundTrip,
    ::testing::Values(std::vector<std::uint64_t>{1, 1},                   // yes
                      std::vector<std::uint64_t>{1, 2},                   // no (odd)
                      std::vector<std::uint64_t>{3, 1, 1, 2, 2, 1},       // yes
                      std::vector<std::uint64_t>{1, 1, 1, 1, 6},          // no
                      std::vector<std::uint64_t>{4, 5, 6, 7},             // yes: 4+7=5+6
                      std::vector<std::uint64_t>{2, 2, 2, 2, 2, 2},       // yes
                      std::vector<std::uint64_t>{10, 1, 1, 1},            // no
                      std::vector<std::uint64_t>{8, 7, 6, 5, 4, 3, 2, 1}  // yes (sum 36)
                      ));

TEST(PartitionRoundTrip, WitnessMapsToFeasibleMapping) {
  const PartitionInstance instance{{3, 1, 1, 2, 2, 1}};
  const auto witness = equal_partition_witness(instance);
  ASSERT_FALSE(witness.empty());
  const PartitionReduction reduced = partition_to_bicriteria(instance);
  const mapping::IntervalMapping mapped = mapping::IntervalMapping::single_interval(
      1, std::vector<platform::ProcessorId>(witness.begin(), witness.end()));
  EXPECT_TRUE(algorithms::within_cap(
      mapping::latency(reduced.pipeline, reduced.platform, mapped), reduced.latency_threshold));
  EXPECT_TRUE(algorithms::within_cap(
      mapping::failure_probability(reduced.platform, mapped), reduced.fp_threshold));
  // And back: the subset recovered from the mapping sums to S/2.
  const auto subset = mapping_to_subset(mapped);
  std::uint64_t sum = 0;
  for (const std::size_t i : subset) sum += instance.values[i];
  EXPECT_EQ(sum, instance.sum() / 2);
}

}  // namespace
}  // namespace relap::reductions
