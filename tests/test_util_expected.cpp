// Tests for util/expected.hpp: value/error duality and factory helpers.

#include "relap/util/expected.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace relap::util {
namespace {

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.has_value());
  ASSERT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(*e, 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e(make_error("code", "message"));
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().code, "code");
  EXPECT_EQ(e.error().message, "message");
  EXPECT_EQ(e.error().to_string(), "code: message");
}

TEST(Expected, TakeMovesValueOut) {
  Expected<std::vector<int>> e(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(e).take();
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
}

TEST(Expected, ArrowOperator) {
  Expected<std::string> e(std::string("hello"));
  EXPECT_EQ(e->size(), 5u);
}

TEST(ErrorFactories, Codes) {
  EXPECT_EQ(infeasible("x").code, "infeasible");
  EXPECT_EQ(budget_exceeded("x").code, "budget");
  const Error p = parse_error(7, "bad token");
  EXPECT_EQ(p.code, "parse");
  EXPECT_NE(p.message.find("7"), std::string::npos);
  EXPECT_NE(p.message.find("bad token"), std::string::npos);
}

TEST(Expected, MutableAccess) {
  Expected<int> e(1);
  e.value() = 5;
  EXPECT_EQ(e.value(), 5);
}

}  // namespace
}  // namespace relap::util
