// Tests for util/pareto.hpp: domination logic and front maintenance.

#include "relap/util/pareto.hpp"

#include <gtest/gtest.h>

namespace relap::util {
namespace {

TEST(Dominates, StrictAndEqualCases) {
  EXPECT_TRUE(dominates({1.0, 1.0, 0}, {2.0, 2.0, 0}));
  EXPECT_TRUE(dominates({1.0, 2.0, 0}, {2.0, 2.0, 0}));  // tie on y, better x
  EXPECT_FALSE(dominates({1.0, 1.0, 0}, {1.0, 1.0, 0}));  // equal: no strict gain
  EXPECT_FALSE(dominates({1.0, 3.0, 0}, {2.0, 2.0, 0}));  // incomparable
  EXPECT_FALSE(dominates({2.0, 2.0, 0}, {1.0, 1.0, 0}));
}

TEST(ParetoFront, InsertKeepsNonDominatedSorted) {
  ParetoFront front;
  EXPECT_TRUE(front.insert({2.0, 2.0, 0}));
  EXPECT_TRUE(front.insert({1.0, 3.0, 1}));
  EXPECT_TRUE(front.insert({3.0, 1.0, 2}));
  EXPECT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front.points()[0].x, 1.0);
  EXPECT_DOUBLE_EQ(front.points()[1].x, 2.0);
  EXPECT_DOUBLE_EQ(front.points()[2].x, 3.0);
}

TEST(ParetoFront, RejectsDominatedAndDuplicates) {
  ParetoFront front;
  EXPECT_TRUE(front.insert({1.0, 1.0, 0}));
  EXPECT_FALSE(front.insert({2.0, 2.0, 1}));  // dominated
  EXPECT_FALSE(front.insert({1.0, 1.0, 2}));  // duplicate
  EXPECT_FALSE(front.insert({1.0 + 1e-13, 1.0, 3}));  // duplicate within tolerance
  EXPECT_EQ(front.size(), 1u);
}

TEST(ParetoFront, EvictsNewlyDominated) {
  ParetoFront front;
  EXPECT_TRUE(front.insert({2.0, 2.0, 0}));
  EXPECT_TRUE(front.insert({3.0, 1.5, 1}));
  EXPECT_TRUE(front.insert({1.0, 1.0, 2}));  // dominates both
  EXPECT_EQ(front.size(), 1u);
  EXPECT_EQ(front.points()[0].payload, 2u);
}

TEST(ParetoFront, BestWithinCaps) {
  ParetoFront front;
  front.insert({1.0, 5.0, 0});
  front.insert({2.0, 3.0, 1});
  front.insert({4.0, 1.0, 2});

  const ParetoPoint* by_x = front.best_y_within_x(2.5);
  ASSERT_NE(by_x, nullptr);
  EXPECT_EQ(by_x->payload, 1u);

  const ParetoPoint* at_boundary = front.best_y_within_x(2.0);
  ASSERT_NE(at_boundary, nullptr);
  EXPECT_EQ(at_boundary->payload, 1u);  // boundary counts as feasible

  EXPECT_EQ(front.best_y_within_x(0.5), nullptr);

  const ParetoPoint* by_y = front.best_x_within_y(3.5);
  ASSERT_NE(by_y, nullptr);
  EXPECT_EQ(by_y->payload, 1u);
  EXPECT_EQ(front.best_x_within_y(0.5), nullptr);
}

TEST(ParetoFront, CoversReflexiveAndDominating) {
  ParetoFront a;
  a.insert({1.0, 2.0, 0});
  a.insert({2.0, 1.0, 1});
  EXPECT_TRUE(a.covers(a));

  ParetoFront worse;
  worse.insert({1.5, 2.5, 0});
  EXPECT_TRUE(a.covers(worse));
  EXPECT_FALSE(worse.covers(a));
}

TEST(ParetoFront, CoversFailsOnMissingRegion) {
  ParetoFront a;
  a.insert({2.0, 1.0, 0});
  ParetoFront b;
  b.insert({1.0, 2.0, 0});  // region a does not reach
  EXPECT_FALSE(a.covers(b));
}

}  // namespace
}  // namespace relap::util
