// Tests for pipeline/pipeline.hpp: the application model.

#include "relap/pipeline/pipeline.hpp"

#include <gtest/gtest.h>

namespace relap::pipeline {
namespace {

TEST(Pipeline, BasicAccessors) {
  const Pipeline p({1.0, 2.0, 3.0}, {10.0, 20.0, 30.0, 40.0});
  EXPECT_EQ(p.stage_count(), 3u);
  EXPECT_DOUBLE_EQ(p.work(0), 1.0);
  EXPECT_DOUBLE_EQ(p.work(2), 3.0);
  EXPECT_DOUBLE_EQ(p.data(0), 10.0);
  EXPECT_DOUBLE_EQ(p.data(3), 40.0);
  EXPECT_DOUBLE_EQ(p.input_size(1), 20.0);
  EXPECT_DOUBLE_EQ(p.output_size(1), 30.0);
}

TEST(Pipeline, WorkSumsViaPrefix) {
  const Pipeline p({1.0, 2.0, 3.0, 4.0}, {0.0, 0.0, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(p.work_sum(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.work_sum(0, 3), 10.0);
  EXPECT_DOUBLE_EQ(p.work_sum(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(p.work_sum(3, 3), 4.0);
  EXPECT_DOUBLE_EQ(p.total_work(), 10.0);
}

TEST(Pipeline, UniformFactory) {
  const Pipeline p = Pipeline::uniform(5, 2.0, 7.0);
  EXPECT_EQ(p.stage_count(), 5u);
  for (std::size_t k = 0; k < 5; ++k) EXPECT_DOUBLE_EQ(p.work(k), 2.0);
  for (std::size_t k = 0; k <= 5; ++k) EXPECT_DOUBLE_EQ(p.data(k), 7.0);
}

TEST(Pipeline, SingleStage) {
  const Pipeline p({4.0}, {1.0, 2.0});
  EXPECT_EQ(p.stage_count(), 1u);
  EXPECT_DOUBLE_EQ(p.total_work(), 4.0);
  EXPECT_DOUBLE_EQ(p.input_size(0), 1.0);
  EXPECT_DOUBLE_EQ(p.output_size(0), 2.0);
}

TEST(Pipeline, ZeroSizesAllowed) {
  // Figure 5 uses delta_2 = 0; zero work/data must be representable.
  const Pipeline p({0.0, 100.0}, {10.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(p.work(0), 0.0);
  EXPECT_DOUBLE_EQ(p.data(2), 0.0);
}

TEST(Pipeline, EqualityAndDescribe) {
  const Pipeline a({1.0}, {2.0, 3.0});
  const Pipeline b({1.0}, {2.0, 3.0});
  const Pipeline c({1.5}, {2.0, 3.0});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a.describe().find("n=1"), std::string::npos);
}

TEST(PipelineDeath, RejectsMalformedInputs) {
  EXPECT_DEATH((Pipeline{{}, {1.0}}), "at least one stage");
  EXPECT_DEATH((Pipeline{{1.0}, {1.0}}), "n\\+1 data sizes");
  EXPECT_DEATH((Pipeline{{-1.0}, {1.0, 1.0}}), "finite");
  EXPECT_DEATH((void)Pipeline({1.0}, {1.0, 1.0}).work(5), "out of range");
}

}  // namespace
}  // namespace relap::pipeline
