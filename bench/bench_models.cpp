// Experiment FIG1/FIG2 (paper Section 2, Figures 1-2): the application and
// platform models plus the two latency evaluators and the FP formula.
//
// Reproduction: canonical-instance sanity table (both paper examples) and
// the Eq.(1)/Eq.(2) agreement check on identical-link platforms; timings
// measure evaluator throughput as instance sizes grow.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/mapping/reliability.hpp"
#include "relap/mapping/throughput.hpp"

namespace {

using namespace relap;

mapping::IntervalMapping half_split(std::size_t stages, std::size_t processors) {
  // Two intervals, processors split evenly between them.
  std::vector<platform::ProcessorId> first;
  std::vector<platform::ProcessorId> second;
  for (platform::ProcessorId u = 0; u < processors; ++u) {
    (u < processors / 2 ? first : second).push_back(u);
  }
  return mapping::IntervalMapping(
      {{{0, stages / 2}, first}, {{stages / 2 + 1, stages - 1}, second}});
}

void print_tables() {
  benchutil::header("FIG1/FIG2: model sanity on the paper's canonical instances");
  std::printf("%-34s %-12s %-12s %-12s\n", "instance/mapping", "latency", "FP", "period");
  {
    const auto pipe = gen::fig3_pipeline();
    const auto plat = gen::fig4_platform();
    const auto single = gen::fig4_single_mapping();
    const auto split = gen::fig4_split_mapping();
    std::printf("%-34s %-12.2f %-12.4f %-12.2f\n", "fig3/4 single {P1}",
                mapping::latency(pipe, plat, single),
                mapping::failure_probability(plat, single), mapping::period(pipe, plat, single));
    std::printf("%-34s %-12.2f %-12.4f %-12.2f\n", "fig3/4 split",
                mapping::latency(pipe, plat, split), mapping::failure_probability(plat, split),
                mapping::period(pipe, plat, split));
  }
  {
    const auto pipe = gen::fig5_pipeline();
    const auto plat = gen::fig5_platform();
    const auto single = gen::fig5_single_interval_mapping();
    const auto both = gen::fig5_two_interval_mapping();
    std::printf("%-34s %-12.2f %-12.4f %-12.2f\n", "fig5 single {2 fast}",
                mapping::latency(pipe, plat, single),
                mapping::failure_probability(plat, single), mapping::period(pipe, plat, single));
    std::printf("%-34s %-12.2f %-12.4f %-12.2f\n", "fig5 two-interval",
                mapping::latency(pipe, plat, both), mapping::failure_probability(plat, both),
                mapping::period(pipe, plat, both));
  }

  benchutil::header("Eq.(1) == Eq.(2) on identical-link platforms (16 random instances)");
  double max_rel_err = 0.0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(6, seed);
    gen::PlatformGenOptions options;
    options.processors = 8;
    const auto plat = gen::random_comm_hom_het_failures(options, seed * 131);
    const auto m = half_split(6, 8);
    const double eq1 = mapping::latency_eq1(pipe, plat, m);
    const double eq2 = mapping::latency_eq2(pipe, plat, m);
    max_rel_err = std::max(max_rel_err, std::abs(eq1 - eq2) / eq1);
  }
  std::printf("max relative difference: %.3e (expected ~1e-16: same formula, two "
              "attributions)\n",
              max_rel_err);
}

void bm_latency_eq1(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(n, 7);
  gen::PlatformGenOptions options;
  options.processors = n;
  const auto plat = gen::random_comm_hom_het_failures(options, 8);
  const auto m = half_split(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::latency_eq1(pipe, plat, m));
  }
}
BENCHMARK(bm_latency_eq1)->Arg(8)->Arg(32)->Arg(128);

void bm_latency_eq2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(n, 7);
  gen::PlatformGenOptions options;
  options.processors = n;
  const auto plat = gen::random_fully_heterogeneous(options, 8);
  const auto m = half_split(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::latency_eq2(pipe, plat, m));
  }
}
BENCHMARK(bm_latency_eq2)->Arg(8)->Arg(32)->Arg(128);

void bm_failure_probability(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  gen::PlatformGenOptions options;
  options.processors = n;
  const auto plat = gen::random_comm_hom_het_failures(options, 9);
  const auto m = half_split(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::failure_probability(plat, m));
  }
}
BENCHMARK(bm_failure_probability)->Arg(8)->Arg(32)->Arg(128);

void bm_platform_construction(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  gen::PlatformGenOptions options;
  options.processors = m;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::random_fully_heterogeneous(options, 11));
  }
}
BENCHMARK(bm_platform_construction)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
