#!/usr/bin/env python3
"""Compare BENCH_<name>.json artifacts against checked-in baselines.

Throughput keys (anything ending in ``_per_sec``) must stay within a
relative tolerance of the baseline: a current value below
``baseline * (1 - tolerance)`` is a regression and fails the run. Values
above baseline never fail (faster is fine; use --update to ratchet).

Checksum keys (anything ending in ``_checksum``) pin bit-exact result
fronts. They are compared too, but a mismatch only warns by default:
checksums legitimately change when an algorithm's result stream changes
(e.g. an RNG scheme migration), and the determinism tests — not this
script — are the authority on reproducibility. Pass --strict-checksums to
turn mismatches into failures (useful on a fixed CI image where any drift
is suspicious).

Metadata keys (``meta_*``) are informational: a mismatch (different
compiler, ISA, build type...) prints a warning because throughput numbers
from different configurations are not comparable, but does not fail.

An artifact with no checked-in baseline is reported as "new bench, no
baseline" and skipped with exit 0 — baselines are only ever written under
an explicit --update, never as a side effect of a comparison run.

Usage:
  python3 bench/compare_bench.py [--baseline-dir bench/baselines]
      [--tolerance 0.15] [--strict-checksums] [--update] BENCH_foo.json ...

Exit status: 0 = all within tolerance, 1 = at least one regression (or
checksum mismatch under --strict-checksums), 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def compare_one(current_path: str, baseline_dir: str, tolerance: float,
                strict_checksums: bool, update: bool) -> int:
    """Returns the number of failures for one artifact."""
    current = load(current_path)
    name = current.get("bench", os.path.basename(current_path))
    baseline_path = os.path.join(baseline_dir, os.path.basename(current_path))

    if update:
        action = "updated" if os.path.exists(baseline_path) else "created"
        os.makedirs(baseline_dir, exist_ok=True)
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump(current, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"[{name}] baseline {action}: {baseline_path}")
        return 0

    if not os.path.exists(baseline_path):
        # A bench with no checked-in baseline is new, not regressed: a CI
        # run on a branch that adds a bench must not invent a machine-local
        # baseline (or fail). Record one explicitly with --update.
        print(f"[{name}] warn: new bench, no baseline at {baseline_path} — "
              f"skipping (run with --update to record one)")
        return 0

    baseline = load(baseline_path)
    failures = 0

    for key in sorted(set(baseline) | set(current)):
        base_v = baseline.get(key)
        cur_v = current.get(key)
        if key.endswith("_per_sec"):
            if base_v is None or cur_v is None:
                print(f"[{name}] WARN {key}: missing on "
                      f"{'baseline' if base_v is None else 'current'} side")
                continue
            # Per-thread-count sweeps store lists; gate each entry against
            # its positional counterpart.
            base_list = base_v if isinstance(base_v, list) else [base_v]
            cur_list = cur_v if isinstance(cur_v, list) else [cur_v]
            if len(base_list) != len(cur_list):
                print(f"[{name}] WARN {key}: length changed "
                      f"({len(cur_list)} vs baseline {len(base_list)}) — skipping")
                continue
            for idx, (base_e, cur_e) in enumerate(zip(base_list, cur_list)):
                label = key if len(base_list) == 1 else f"{key}[{idx}]"
                floor = base_e * (1.0 - tolerance)
                ratio = cur_e / base_e if base_e > 0 else float("inf")
                verdict = "ok" if cur_e >= floor else "REGRESSION"
                print(f"[{name}] {verdict:>10} {label}: {cur_e:,.0f} vs baseline "
                      f"{base_e:,.0f} ({ratio:.2f}x, floor {floor:,.0f})")
                if cur_e < floor:
                    failures += 1
        elif key.endswith("_checksum"):
            if base_v != cur_v:
                tag = "CHECKSUM MISMATCH" if strict_checksums else "warn: checksum changed"
                print(f"[{name}] {tag} {key}: {cur_v} vs baseline {base_v}")
                if strict_checksums:
                    failures += 1
        elif key.startswith("meta_"):
            if base_v != cur_v:
                print(f"[{name}] warn: {key} differs (current {cur_v!r}, "
                      f"baseline {base_v!r}) — throughputs may not be comparable")
    return failures


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="+", help="BENCH_<name>.json files to check")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative throughput drop (default 0.15)")
    parser.add_argument("--strict-checksums", action="store_true",
                        help="fail (not warn) on checksum mismatches")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from the current artifacts")
    args = parser.parse_args(argv)

    if not 0.0 <= args.tolerance < 1.0:
        print(f"tolerance must be in [0, 1), got {args.tolerance}", file=sys.stderr)
        return 2

    failures = 0
    for path in args.artifacts:
        try:
            failures += compare_one(path, args.baseline_dir, args.tolerance,
                                    args.strict_checksums, args.update)
        except (OSError, json.JSONDecodeError) as err:
            print(f"error reading {path}: {err}", file=sys.stderr)
            return 2
    if failures:
        print(f"{failures} throughput regression(s) beyond "
              f"{args.tolerance:.0%} tolerance", file=sys.stderr)
        return 1
    print("all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
