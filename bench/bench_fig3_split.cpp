// Experiment FIG3/FIG4 (paper Section 3, Figures 3-4): on a Fully
// Heterogeneous platform, splitting a 2-stage pipeline across two processors
// yields latency 7 while any single-processor mapping yields 105.
//
// Reproduction: the two headline numbers, then a sweep of the
// inter-processor bandwidth showing where the split stops paying off
// (crossover), then evaluator timings.

#include <cstdio>

#include "bench_util.hpp"
#include "relap/algorithms/general_mapping_sp.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/platform/builders.hpp"

namespace {

using namespace relap;

platform::Platform fig4_with_link(double inter_bandwidth) {
  platform::PlatformBuilder builder;
  const platform::ProcessorId p1 = builder.add_processor(1.0, 0.1);
  const platform::ProcessorId p2 = builder.add_processor(1.0, 0.1);
  builder.default_bandwidth(1.0)
      .link(p1, p2, inter_bandwidth)
      .link_in(p1, 100.0)
      .link_in(p2, 1.0)
      .link_out(p1, 1.0)
      .link_out(p2, 100.0);
  return builder.build();
}

void print_tables() {
  benchutil::header("FIG3/FIG4: split vs single interval (paper Section 3)");
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  const double single0 =
      mapping::latency(pipe, plat, mapping::IntervalMapping::single_interval(2, {0}));
  const double single1 =
      mapping::latency(pipe, plat, mapping::IntervalMapping::single_interval(2, {1}));
  const double split = mapping::latency(pipe, plat, gen::fig4_split_mapping());
  std::printf("%-28s %-10s %-10s\n", "mapping", "latency", "paper");
  std::printf("%-28s %-10.2f %-10s\n", "[0..1]->{P1} (single)", single0, "105");
  std::printf("%-28s %-10.2f %-10s\n", "[0..1]->{P2} (single)", single1, "105");
  std::printf("%-28s %-10.2f %-10s\n", "[0..0]->{P1} [1..1]->{P2}", split, "7");

  benchutil::header("crossover sweep: inter-processor bandwidth b(P1,P2)");
  benchutil::note("the split pays 2 * 100/b extra transfers; it beats the single");
  benchutil::note("mapping while 100/b stays cheap relative to the saved 100/1 output");
  std::printf("%-12s %-12s %-12s %-8s\n", "b(P1,P2)", "split", "single", "winner");
  for (const double b : {100.0, 50.0, 20.0, 10.0, 5.0, 2.0, 1.5, 1.2, 1.0, 0.8, 0.5}) {
    const auto swept = fig4_with_link(b);
    const double split_lat = mapping::latency(pipe, swept, gen::fig4_split_mapping());
    const double single_lat =
        mapping::latency(pipe, swept, mapping::IntervalMapping::single_interval(2, {0}));
    std::printf("%-12.2f %-12.2f %-12.2f %-8s\n", b, split_lat, single_lat,
                split_lat < single_lat ? "split" : "single");
  }

  benchutil::header("optimal general mapping (Theorem 4 solver) on the swept platforms");
  std::printf("%-12s %-12s %-24s\n", "b(P1,P2)", "optimal", "assignment");
  for (const double b : {100.0, 10.0, 1.0, 0.5}) {
    const auto swept = fig4_with_link(b);
    const auto best = algorithms::general_mapping_min_latency(pipe, swept);
    std::printf("%-12.2f %-12.2f %-24s\n", b, best.latency, best.mapping.describe().c_str());
  }
}

void bm_eval_eq2_split(benchmark::State& state) {
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  const auto m = gen::fig4_split_mapping();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::latency_eq2(pipe, plat, m));
  }
}
BENCHMARK(bm_eval_eq2_split);

void bm_general_sp_fig4(benchmark::State& state) {
  const auto pipe = gen::fig3_pipeline();
  const auto plat = gen::fig4_platform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::general_mapping_min_latency(pipe, plat));
  }
}
BENCHMARK(bm_general_sp_fig4);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
