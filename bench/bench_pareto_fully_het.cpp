// Experiment: latency/FP Pareto fronts on Fully Heterogeneous platforms
// (the class Theorem 7 proves NP-hard) — exhaustive ground truth vs the
// heuristic suite's front, with front-quality ratios, plus timings showing
// the exhaustive wall.

#include <cstdio>

#include "bench_util.hpp"
#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/pareto_driver.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/util/stats.hpp"

namespace {

using namespace relap;

void print_tables() {
  benchutil::header("Pareto fronts on Fully Heterogeneous instances: heuristic vs exact");
  std::printf("%-6s %-12s %-12s %-14s\n", "seed", "exact pts", "suite pts", "FP ratio");
  util::StreamingStats ratios;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(3, seed);
    gen::PlatformGenOptions options;
    options.processors = 4;
    const auto plat = gen::random_fully_heterogeneous(options, seed * 89);
    const auto exact = algorithms::exhaustive_pareto(pipe, plat);
    if (!exact) continue;
    const auto suite = algorithms::heuristic_pareto_front(pipe, plat);
    const double ratio = algorithms::front_fp_ratio(suite, exact->front);
    ratios.add(ratio);
    std::printf("%-6llu %-12zu %-12zu %-14.4f\n", static_cast<unsigned long long>(seed),
                exact->front.size(), suite.size(), ratio);
  }
  std::printf("mean FP ratio over the exact front: %.4f (1.0 = matches everywhere)\n",
              ratios.mean());

  benchutil::header("one full front, printed (seed 1)");
  const auto pipe = gen::random_uniform_pipeline(3, 1);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = gen::random_fully_heterogeneous(options, 89);
  const auto exact = algorithms::exhaustive_pareto(pipe, plat);
  if (exact) {
    std::printf("%-12s %-14s %-10s %-36s\n", "latency", "FP", "intervals", "mapping");
    for (const auto& p : exact->front) {
      std::printf("%-12.4f %-14.8f %-10zu %-36s\n", p.latency, p.failure_probability,
                  p.mapping.interval_count(), p.mapping.describe().c_str());
    }
  }
}

void bm_exhaustive_front(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(3, 1);
  gen::PlatformGenOptions options;
  options.processors = m;
  const auto plat = gen::random_fully_heterogeneous(options, 89);
  algorithms::ExhaustiveOptions ex;
  ex.max_evaluations = 50'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::exhaustive_pareto(pipe, plat, ex));
  }
}
BENCHMARK(bm_exhaustive_front)->DenseRange(3, 7, 1)->Unit(benchmark::kMillisecond);

void bm_heuristic_front(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(3, 1);
  gen::PlatformGenOptions options;
  options.processors = m;
  const auto plat = gen::random_fully_heterogeneous(options, 89);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::heuristic_pareto_front(pipe, plat));
  }
}
BENCHMARK(bm_heuristic_front)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
