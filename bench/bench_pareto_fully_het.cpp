// Experiment: latency/FP Pareto fronts on Fully Heterogeneous platforms
// (the class Theorem 7 proves NP-hard) — exhaustive ground truth vs the
// heuristic suite's front, with front-quality ratios, plus timings showing
// the exhaustive wall.

#include <chrono>
#include <cstdio>
#include <limits>
#include <thread>

#include "bench_util.hpp"
#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/pareto_driver.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/util/stats.hpp"

namespace {

using namespace relap;

void print_tables() {
  benchutil::header("Pareto fronts on Fully Heterogeneous instances: heuristic vs exact");
  std::printf("%-6s %-12s %-12s %-14s\n", "seed", "exact pts", "suite pts", "FP ratio");
  util::StreamingStats ratios;
  benchutil::Checksum checksum;
  std::vector<std::uint64_t> exact_points;
  std::vector<std::uint64_t> suite_points;
  std::uint64_t evaluations = 0;
  const auto start = std::chrono::steady_clock::now();

  // Quality pass (untimed): exact-vs-heuristic front comparison, tables and
  // the result checksum. Doubles as warm-up for the timed passes below.
  std::vector<pipeline::Pipeline> pipes;
  std::vector<platform::Platform> plats;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    pipes.push_back(gen::random_uniform_pipeline(3, seed));
    gen::PlatformGenOptions options;
    options.processors = 4;
    plats.push_back(gen::random_fully_heterogeneous(options, seed * 89));
    const auto exact = algorithms::exhaustive_pareto(pipes.back(), plats.back());
    if (!exact) continue;
    const auto suite = algorithms::heuristic_pareto_front(pipes.back(), plats.back());
    const double ratio = algorithms::front_fp_ratio(suite, exact->front);
    ratios.add(ratio);
    std::printf("%-6llu %-12zu %-12zu %-14.4f\n", static_cast<unsigned long long>(seed),
                exact->front.size(), suite.size(), ratio);
    exact_points.push_back(exact->front.size());
    suite_points.push_back(suite.size());
    for (const auto& p : exact->front) {
      checksum.add(p.latency);
      checksum.add(p.failure_probability);
      checksum.add(p.mapping.describe());
    }
  }

  // candidates_per_sec must mean kernel throughput: time only the
  // exhaustive_pareto calls, not generation / heuristics / printing. The
  // timed sweep adds m = 5..7 instances on top of the table's m = 4 ones:
  // the small instances finish in microseconds of mostly per-call setup,
  // while m >= 6 is where the enumeration kernel is the wall (the
  // bm_exhaustive_front scaling section below shows the same), so a
  // throughput number meant to track the kernel must be dominated by them.
  // One pass is still only a few milliseconds — and on a shared machine any
  // single pass can absorb a preemption — so repeat the sweep and report
  // the fastest pass, the standard interference-robust estimator.
  for (std::size_t m = 5; m <= 7; ++m) {
    pipes.push_back(gen::random_uniform_pipeline(3, 1));
    gen::PlatformGenOptions options;
    options.processors = m;
    plats.push_back(gen::random_fully_heterogeneous(options, 89));
  }
  constexpr int kTimedReps = 30;
  double exhaustive_seconds = std::numeric_limits<double>::infinity();
  std::uint64_t sweep_evaluations = 0;
  for (int rep = 0; rep < kTimedReps; ++rep) {
    std::uint64_t evals = 0;
    const auto sweep_start = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < pipes.size(); ++s) {
      const auto exact = algorithms::exhaustive_pareto(pipes[s], plats[s]);
      if (exact) evals += exact->evaluations;
    }
    const double sweep_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start).count();
    if (sweep_seconds < exhaustive_seconds) exhaustive_seconds = sweep_seconds;
    sweep_evaluations = evals;
  }
  evaluations = sweep_evaluations;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  std::printf("mean FP ratio over the exact front: %.4f (1.0 = matches everywhere)\n",
              ratios.mean());

  benchutil::JsonReport report("pareto_fully_het");
  report.field("hardware_concurrency",
               static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .field("seeds", std::uint64_t{8})
      .field("timed_reps", std::uint64_t{kTimedReps})
      .field("wall_time_s", elapsed)
      .field("exhaustive_time_s", exhaustive_seconds)
      .field("exhaustive_candidates", evaluations)
      .field("candidates_per_sec",
             exhaustive_seconds > 0.0 ? static_cast<double>(evaluations) / exhaustive_seconds
                                      : 0.0)
      .field("mean_fp_ratio", ratios.mean())
      .field("exact_front_points", std::span<const std::uint64_t>(exact_points))
      .field("suite_front_points", std::span<const std::uint64_t>(suite_points))
      .field("front_checksum", checksum.hex());
  report.write();

  benchutil::header("one full front, printed (seed 1)");
  const auto pipe = gen::random_uniform_pipeline(3, 1);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = gen::random_fully_heterogeneous(options, 89);
  const auto exact = algorithms::exhaustive_pareto(pipe, plat);
  if (exact) {
    std::printf("%-12s %-14s %-10s %-36s\n", "latency", "FP", "intervals", "mapping");
    for (const auto& p : exact->front) {
      std::printf("%-12.4f %-14.8f %-10zu %-36s\n", p.latency, p.failure_probability,
                  p.mapping.interval_count(), p.mapping.describe().c_str());
    }
  }
}

void bm_exhaustive_front(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(3, 1);
  gen::PlatformGenOptions options;
  options.processors = m;
  const auto plat = gen::random_fully_heterogeneous(options, 89);
  algorithms::ExhaustiveOptions ex;
  ex.max_evaluations = 50'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::exhaustive_pareto(pipe, plat, ex));
  }
}
BENCHMARK(bm_exhaustive_front)->DenseRange(3, 7, 1)->Unit(benchmark::kMillisecond);

void bm_heuristic_front(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(3, 1);
  gen::PlatformGenOptions options;
  options.processors = m;
  const auto plat = gen::random_fully_heterogeneous(options, 89);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::heuristic_pareto_front(pipe, plat));
  }
}
BENCHMARK(bm_heuristic_front)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
