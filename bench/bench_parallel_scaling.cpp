// Serial-vs-parallel scaling of the solver hot paths on paper-scale
// instances, with bit-identical-result verification at every thread count.
//
// Two tables: direct Bernoulli Monte-Carlo trials (sim/monte_carlo.hpp) and
// exhaustive interval enumeration (algorithms/exhaustive.hpp). Each runs the
// same seeded workload at 1, 2, 4 and 8 threads, reports the speedup over
// the 1-thread run, and hard-asserts that every result is bit-identical to
// the serial one — the exec subsystem's determinism contract. Speedups only
// materialize when the machine actually has the cores; the table reports
// `hardware_concurrency` so a 3x-at-8-threads expectation can be judged in
// context.

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "relap/algorithms/exhaustive.hpp"
#include "relap/exec/thread_pool.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/sim/monte_carlo.hpp"
#include "relap/util/assert.hpp"

namespace relap {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

using benchutil::seconds_since;

void print_scaling_row(std::size_t threads, double seconds, double serial_seconds) {
  std::printf("%7zu  %9.3f  %7.2fx  identical\n", threads, seconds,
              seconds > 0.0 ? serial_seconds / seconds : 0.0);
}

void monte_carlo_scaling(benchutil::JsonReport& report) {
  benchutil::header("Monte-Carlo trial scaling (fig5 two-interval mapping, 2M trials)");
  const auto plat = gen::fig5_platform();
  const auto mapping = gen::fig5_two_interval_mapping();

  sim::MonteCarloOptions options;
  options.trials = 2'000'000;

  double serial_seconds = 0.0;
  sim::FailureRateEstimate reference;
  std::vector<double> times;
  std::vector<double> trials_per_sec;
  std::printf("threads    time(s)   speedup  result\n");
  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    options.pool = &pool;
    const auto start = std::chrono::steady_clock::now();
    const sim::FailureRateEstimate estimate = sim::estimate_failure_rate(plat, mapping, options);
    const double elapsed = seconds_since(start);
    if (threads == 1) {
      serial_seconds = elapsed;
      reference = estimate;
    }
    RELAP_ASSERT(estimate.empirical == reference.empirical &&
                     estimate.ci95.low == reference.ci95.low &&
                     estimate.ci95.high == reference.ci95.high,
                 "parallel Monte-Carlo result differs from the serial run");
    print_scaling_row(threads, elapsed, serial_seconds);
    times.push_back(elapsed);
    trials_per_sec.push_back(elapsed > 0.0 ? static_cast<double>(options.trials) / elapsed : 0.0);
  }
  std::printf("empirical FP %.6f vs analytic %.6f (consistent: %s)\n", reference.empirical,
              reference.analytic, reference.consistent(0.005) ? "yes" : "NO");

  benchutil::Checksum checksum;
  checksum.add(reference.empirical);
  checksum.add(reference.ci95.low);
  checksum.add(reference.ci95.high);
  report.field("mc_trials", static_cast<std::uint64_t>(options.trials))
      .field("mc_time_s", std::span<const double>(times))
      .field("mc_trials_per_sec", std::span<const double>(trials_per_sec))
      .field("mc_checksum", checksum.hex());
}

void engine_trials_scaling() {
  benchutil::header("Full-engine trial scaling (fig5, 4000 simulated runs)");
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  const auto mapping = gen::fig5_two_interval_mapping();

  sim::TrialOptions options;
  options.trials = 4'000;

  double serial_seconds = 0.0;
  sim::TrialStats reference;
  std::printf("threads    time(s)   speedup  result\n");
  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    options.pool = &pool;
    const auto start = std::chrono::steady_clock::now();
    const sim::TrialStats stats = sim::run_trials(pipe, plat, mapping, options);
    const double elapsed = seconds_since(start);
    if (threads == 1) {
      serial_seconds = elapsed;
      reference = stats;
    }
    RELAP_ASSERT(stats.failure.empirical == reference.failure.empirical &&
                     stats.latency.count() == reference.latency.count() &&
                     stats.latency.mean() == reference.latency.mean() &&
                     stats.latency.variance() == reference.latency.variance(),
                 "parallel engine trials differ from the serial run");
    print_scaling_row(threads, elapsed, serial_seconds);
  }
}

void exhaustive_scaling(benchutil::JsonReport& report) {
  // 6 stages on 7 comm-homogeneous processors: 543,607 interval mappings.
  benchutil::header("Exhaustive enumeration scaling (n=6 stages, m=7 processors)");
  const auto pipe = gen::random_uniform_pipeline(6, 2008);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 7;
  const auto plat = gen::random_comm_hom_het_failures(gen_options, 2009);

  const std::uint64_t candidates = algorithms::interval_mapping_count(6, 7);
  std::printf("search space: %llu interval mappings\n",
              static_cast<unsigned long long>(candidates));

  algorithms::ExhaustiveOptions options;
  double serial_seconds = 0.0;
  std::vector<algorithms::ParetoSolution> reference;
  std::vector<double> times;
  std::vector<double> candidates_per_sec;
  std::printf("threads    time(s)   speedup  result\n");
  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    options.pool = &pool;
    const auto start = std::chrono::steady_clock::now();
    const auto outcome = algorithms::exhaustive_pareto(pipe, plat, options);
    const double elapsed = seconds_since(start);
    RELAP_ASSERT(outcome.has_value(), "enumeration must fit the default budget");
    if (threads == 1) {
      serial_seconds = elapsed;
      reference = outcome->front;
    }
    RELAP_ASSERT(outcome->front.size() == reference.size(),
                 "parallel exhaustive front size differs from the serial run");
    for (std::size_t i = 0; i < reference.size(); ++i) {
      RELAP_ASSERT(outcome->front[i].latency == reference[i].latency &&
                       outcome->front[i].failure_probability ==
                           reference[i].failure_probability &&
                       outcome->front[i].mapping == reference[i].mapping,
                   "parallel exhaustive front differs from the serial run");
    }
    print_scaling_row(threads, elapsed, serial_seconds);
    times.push_back(elapsed);
    candidates_per_sec.push_back(elapsed > 0.0 ? static_cast<double>(candidates) / elapsed : 0.0);
  }
  std::printf("Pareto front: %zu points\n", reference.size());

  benchutil::Checksum checksum;
  for (const algorithms::ParetoSolution& point : reference) {
    checksum.add(point.latency);
    checksum.add(point.failure_probability);
    checksum.add(point.mapping.describe());
  }
  report.field("exhaustive_candidates", candidates)
      .field("exhaustive_time_s", std::span<const double>(times))
      .field("exhaustive_candidates_per_sec", std::span<const double>(candidates_per_sec))
      .field("exhaustive_front_points", static_cast<std::uint64_t>(reference.size()))
      .field("exhaustive_front_checksum", checksum.hex());
}

void print_tables() {
  std::printf("hardware_concurrency: %u (speedups need the physical cores; "
              "results are identical regardless)\n",
              std::thread::hardware_concurrency());
  benchutil::JsonReport report("parallel_scaling");
  const std::vector<std::uint64_t> threads(std::begin(kThreadCounts), std::end(kThreadCounts));
  report.field("hardware_concurrency",
               static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  report.field("threads", std::span<const std::uint64_t>(threads));
  monte_carlo_scaling(report);
  engine_trials_scaling();
  exhaustive_scaling(report);
  report.write();
}

void BM_EstimateFailureRate(benchmark::State& state) {
  const auto plat = gen::fig5_platform();
  const auto mapping = gen::fig5_two_interval_mapping();
  exec::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  sim::MonteCarloOptions options;
  options.trials = 200'000;
  options.pool = &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::estimate_failure_rate(plat, mapping, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(options.trials));
}
BENCHMARK(BM_EstimateFailureRate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ExhaustiveMinFp(benchmark::State& state) {
  const auto pipe = gen::random_uniform_pipeline(5, 2010);
  gen::PlatformGenOptions gen_options;
  gen_options.processors = 6;
  const auto plat = gen::random_comm_hom_het_failures(gen_options, 2011);
  exec::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  algorithms::ExhaustiveOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::exhaustive_min_fp_for_latency(pipe, plat, 1e6, options));
  }
}
BENCHMARK(BM_ExhaustiveMinFp)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace relap

RELAP_BENCH_MAIN(relap::print_tables)
