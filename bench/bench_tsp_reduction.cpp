// Experiment T3 (paper Theorem 3): minimizing latency over one-to-one
// mappings on Fully Heterogeneous platforms is NP-hard (reduction from TSP).
//
// Reproduction: the reduction round-trip (Hamiltonian-path cost == mapping
// latency - (n+2)) on random instances, the yes/no decision behaviour at the
// threshold, and the exponential runtime growth of the exact solvers that
// the hardness predicts.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "relap/algorithms/one_to_one_exact.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/reductions/tsp.hpp"
#include "relap/util/rng.hpp"
#include "relap/util/stats.hpp"

namespace {

using namespace relap;

reductions::TspInstance random_tsp(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  reductions::TspInstance instance;
  instance.cost.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) instance.cost[i][j] = std::floor(rng.uniform(1.0, 30.0));
    }
  }
  instance.source = 0;
  instance.tail = n - 1;
  instance.bound = 1e6;
  return instance;
}

void print_tables() {
  benchutil::header("T3: reduction round-trip (mapping latency == path cost + n + 2)");
  std::printf("%-6s %-6s %-16s %-16s %-16s %-8s\n", "seed", "n", "held-karp cost",
              "mapping latency", "cost + n + 2", "match");
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto tsp = random_tsp(6, seed);
    const auto reduced = reductions::tsp_to_one_to_one(tsp);
    const auto path = reductions::held_karp_path(tsp);
    const auto mapped =
        algorithms::one_to_one_min_latency(reduced.pipeline, reduced.platform);
    if (!path || !mapped) continue;
    const double cost = reductions::path_cost(tsp, *path);
    const double expected = reductions::expected_latency_for_path_cost(tsp, cost);
    std::printf("%-6llu %-6zu %-16.1f %-16.6f %-16.1f %-8s\n",
                static_cast<unsigned long long>(seed), tsp.vertex_count(), cost,
                mapped->latency, expected,
                util::approx_equal(mapped->latency, expected) ? "yes" : "NO");
  }

  benchutil::header("decision behaviour at the threshold K' = K + n + 2");
  {
    auto tsp = random_tsp(6, 99);
    const auto path = reductions::held_karp_path(tsp);
    const double optimal = reductions::path_cost(tsp, *path);
    std::printf("%-10s %-12s %-12s %-10s\n", "bound K", "threshold", "opt latency",
                "decision");
    for (const double delta : {-2.0, -1.0, 0.0, 1.0, 5.0}) {
      tsp.bound = optimal + delta;
      const auto reduced = reductions::tsp_to_one_to_one(tsp);
      const auto mapped =
          algorithms::one_to_one_min_latency(reduced.pipeline, reduced.platform);
      const bool yes = mapped->latency <= reduced.latency_threshold + 1e-9;
      std::printf("%-10.1f %-12.1f %-12.4f %-10s\n", tsp.bound, reduced.latency_threshold,
                  mapped->latency, yes ? "yes" : "no");
    }
    benchutil::note("(decision flips exactly when K crosses the optimal path cost)");
  }
}

void bm_held_karp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tsp = random_tsp(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reductions::held_karp_path(tsp));
  }
}
BENCHMARK(bm_held_karp)->DenseRange(6, 16, 2)->Unit(benchmark::kMicrosecond);

void bm_one_to_one_on_reduced_instance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tsp = random_tsp(n, 7);
  const auto reduced = reductions::tsp_to_one_to_one(tsp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algorithms::one_to_one_min_latency(reduced.pipeline, reduced.platform));
  }
}
BENCHMARK(bm_one_to_one_on_reduced_instance)
    ->DenseRange(6, 16, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
