#pragma once

/// \file bench_util.hpp
/// Shared scaffolding for the bench binaries: every bench prints its
/// paper-shaped table(s) first (the reproduction artifact EXPERIMENTS.md
/// records), then runs its google-benchmark timings.

#include <benchmark/benchmark.h>

#include <cstdio>

/// Declares main(): print the reproduction tables, then run the registered
/// google-benchmark timings.
#define RELAP_BENCH_MAIN(print_fn)                                        \
  int main(int argc, char** argv) {                                      \
    print_fn();                                                           \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    ::benchmark::Shutdown();                                              \
    return 0;                                                             \
  }

namespace relap::benchutil {

inline void header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void note(const char* text) { std::printf("%s\n", text); }

}  // namespace relap::benchutil
