#pragma once

/// \file bench_util.hpp
/// Shared scaffolding for the bench binaries: every bench prints its
/// paper-shaped table(s) first (the reproduction artifact EXPERIMENTS.md
/// records), then runs its google-benchmark timings.
///
/// Benches also emit a machine-readable `BENCH_<name>.json` artifact via
/// `JsonReport` — flat key/value plus numeric arrays, enough for a CI
/// trajectory to track candidates/sec, wall times, thread counts and result
/// checksums without parsing the human tables.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "relap/util/hash.hpp"
#include "relap/util/simd.hpp"

// Build provenance macros, set per bench target by CMake; empty when a bench
// is compiled outside the CMake build.
#ifndef RELAP_BENCH_BUILD_TYPE
#define RELAP_BENCH_BUILD_TYPE ""
#endif
#ifndef RELAP_BENCH_FLAGS
#define RELAP_BENCH_FLAGS ""
#endif

/// Declares main(): print the reproduction tables, then run the registered
/// google-benchmark timings.
#define RELAP_BENCH_MAIN(print_fn)                                        \
  int main(int argc, char** argv) {                                      \
    print_fn();                                                           \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    ::benchmark::Shutdown();                                              \
    return 0;                                                             \
  }

namespace relap::benchutil {

inline void header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void note(const char* text) { std::printf("%s\n", text); }

/// Wall-clock seconds elapsed since `start` — the table timings' clock.
inline double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// FNV-1a 64-bit fingerprint over double bit patterns, integers and strings.
/// Used to pin a bench's result front in its JSON artifact: two runs agree
/// on the checksum iff they produced bit-identical results in the same
/// order, which is exactly the determinism contract CI exercises. The
/// implementation lives in util/hash.hpp so the service cache keys and the
/// determinism tests share it (known-answer tested there).
using Checksum = relap::util::Fnv1a;

/// Compiler name + version for the artifact metadata block.
inline std::string compiler_version() {
#if defined(__clang_version__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// Minimal JSON object writer for the `BENCH_<name>.json` artifacts.
/// Supports the flat shapes the benches need: scalar fields and numeric
/// arrays. Doubles print with %.17g so the artifact round-trips exactly.
///
/// Every artifact opens with a `meta_*` provenance block — compiler, build
/// type and flags, SIMD ISA, default lane width, hardware concurrency — so
/// `bench/compare_bench.py` can tell when two artifacts came from different
/// configurations instead of silently comparing their throughputs.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {
    body_ += "{\n  \"bench\": \"" + name_ + '"';
    field("meta_compiler", compiler_version());
    field("meta_build_type", std::string(RELAP_BENCH_BUILD_TYPE));
    field("meta_flags", std::string(RELAP_BENCH_FLAGS));
    field("meta_isa", std::string(relap::util::simd::isa_name()));
    field("meta_lane_width",
          static_cast<std::uint64_t>(relap::util::simd::kDefaultLaneWidth));
    field("meta_hardware_concurrency",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  }

  JsonReport& field(const char* key, double value) {
    begin_field(key);
    body_ += number(value);
    return *this;
  }

  JsonReport& field(const char* key, std::uint64_t value) {
    begin_field(key);
    body_ += std::to_string(value);
    return *this;
  }

  JsonReport& field(const char* key, const std::string& value) {
    begin_field(key);
    body_ += '"';
    for (const char c : value) {
      if (c == '"' || c == '\\') body_ += '\\';
      body_ += c;
    }
    body_ += '"';
    return *this;
  }

  JsonReport& field(const char* key, std::span<const double> values) {
    begin_field(key);
    body_ += '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) body_ += ", ";
      body_ += number(values[i]);
    }
    body_ += ']';
    return *this;
  }

  JsonReport& field(const char* key, std::span<const std::uint64_t> values) {
    begin_field(key);
    body_ += '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) body_ += ", ";
      body_ += std::to_string(values[i]);
    }
    body_ += ']';
    return *this;
  }

  /// Writes `BENCH_<name>.json` into the working directory and reports the
  /// path on stdout so bench logs point at their artifacts.
  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fputs(body_.c_str(), out);
    std::fputs("\n}\n", out);
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  void begin_field(const char* key) {
    body_ += ",\n  \"";
    body_ += key;
    body_ += "\": ";
  }

  static std::string number(double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
  }

  std::string name_;
  std::string body_;
};

}  // namespace relap::benchutil
