// Experiment T1/T2 (paper Theorems 1-2): the mono-criterion polynomial
// cases.
//
// Reproduction: Theorem 1's optimum (full replication, one interval) and
// Theorem 2's optimum (fastest processor, one interval) against exhaustive
// enumeration, plus the latency penalty replication costs (why replication
// is never used in the mono-criterion latency problem) and runtime scaling.

#include <cstdio>

#include "bench_util.hpp"
#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/mono_criterion.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/platform/builders.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/util/stats.hpp"

namespace {

using namespace relap;

void print_tables() {
  benchutil::header("T1: minimum FP = replicate everything on everyone (audit)");
  std::printf("%-6s %-16s %-16s %-8s\n", "seed", "claimed FP", "exhaustive FP", "match");
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(3, seed);
    gen::PlatformGenOptions options;
    options.processors = 4;
    const auto plat = gen::random_comm_hom_het_failures(options, seed * 61);
    const auto claimed = algorithms::minimize_failure_probability(pipe, plat);
    const auto oracle = algorithms::exhaustive_pareto(pipe, plat);
    double best = 1.0;
    if (oracle) {
      for (const auto& p : oracle->front) best = std::min(best, p.failure_probability);
    }
    std::printf("%-6llu %-16.10f %-16.10f %-8s\n",
                static_cast<unsigned long long>(seed), claimed.failure_probability, best,
                util::approx_equal(claimed.failure_probability, best) ? "yes" : "NO");
  }

  benchutil::header("T2: minimum latency = fastest processor, single interval (audit)");
  std::printf("%-6s %-16s %-16s %-8s\n", "seed", "claimed", "exhaustive", "match");
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(3, seed);
    gen::PlatformGenOptions options;
    options.processors = 4;
    const auto plat = gen::random_comm_hom_het_failures(options, seed * 67);
    const auto claimed = algorithms::minimize_latency_comm_hom(pipe, plat);
    const auto oracle = algorithms::exhaustive_pareto(pipe, plat);
    const double best = oracle ? oracle->front.front().latency : -1.0;
    std::printf("%-6llu %-16.6f %-16.6f %-8s\n", static_cast<unsigned long long>(seed),
                claimed.latency, best,
                util::approx_equal(claimed.latency, best) ? "yes" : "NO");
  }

  benchutil::header("replication only hurts latency (Theorem 2's premise)");
  const auto pipe = pipeline::Pipeline({12.0}, {4.0, 2.0});
  const auto plat = platform::make_comm_homogeneous({6.0, 5.0, 4.0, 3.0}, 2.0, 0.2);
  std::printf("%-4s %-12s\n", "k", "latency(k)");
  for (std::size_t k = 1; k <= 4; ++k) {
    std::vector<platform::ProcessorId> group(k);
    for (std::size_t u = 0; u < k; ++u) group[u] = u;
    std::printf("%-4zu %-12.3f\n", k,
                mapping::latency(pipe, plat,
                                 mapping::IntervalMapping::single_interval(1, group)));
  }
}

void bm_theorem1(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(8, 3);
  gen::PlatformGenOptions options;
  options.processors = m;
  const auto plat = gen::random_comm_hom_het_failures(options, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::minimize_failure_probability(pipe, plat));
  }
}
BENCHMARK(bm_theorem1)->Arg(8)->Arg(64)->Arg(512);

void bm_theorem2(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(8, 3);
  gen::PlatformGenOptions options;
  options.processors = m;
  const auto plat = gen::random_comm_hom_het_failures(options, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::minimize_latency_comm_hom(pipe, plat));
  }
}
BENCHMARK(bm_theorem2)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
