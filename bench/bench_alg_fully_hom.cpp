// Experiment ALG1/ALG2 (paper Theorem 5): the polynomial bi-criteria
// algorithms for Fully Homogeneous platforms.
//
// Reproduction: the k(L) staircase of Algorithm 1 and the L(FP) staircase of
// Algorithm 2 on a canonical instance, agreement with exhaustive enumeration
// on small random instances, and runtime scaling in m.

#include <cstdio>

#include "bench_util.hpp"
#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/fully_hom.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/platform/builders.hpp"
#include "relap/util/stats.hpp"

namespace {

using namespace relap;

void print_tables() {
  // Canonical instance: T(k) = k * delta0/b + W/s + deltan/b = 2k + 6.
  const auto pipe = pipeline::Pipeline({10.0}, {2.0, 1.0});
  const auto plat = platform::make_fully_homogeneous(10, 2.0, 1.0, 0.3);

  benchutil::header("ALG1: max replication k and optimal FP vs latency threshold L");
  benchutil::note("instance: W=10, delta=(2,1), m=10 identical (s=2, b=1, fp=0.3);");
  benchutil::note("T(k) = 2k + 6, so k(L) = floor((L-6)/2) capped at m.");
  std::printf("%-8s %-6s %-14s %-12s\n", "L", "k", "FP = 0.3^k", "latency");
  for (const double L : {7.0, 8.0, 10.0, 12.0, 16.0, 20.0, 26.0, 40.0}) {
    const auto r = algorithms::fully_hom_min_fp_for_latency(pipe, plat, L);
    if (!r) {
      std::printf("%-8.1f %-6s\n", L, "infeasible");
      continue;
    }
    std::printf("%-8.1f %-6zu %-14.8f %-12.2f\n", L, r->mapping.processors_used(),
                r->failure_probability, r->latency);
  }

  benchutil::header("ALG2: min replication k and latency vs failure threshold FP");
  std::printf("%-12s %-6s %-14s %-12s\n", "FP cap", "k", "achieved FP", "latency");
  for (const double cap : {0.5, 0.3, 0.1, 0.03, 0.01, 0.001, 1e-5}) {
    const auto r = algorithms::fully_hom_min_latency_for_fp(pipe, plat, cap);
    if (!r) {
      std::printf("%-12.5f %-6s\n", cap, "infeasible");
      continue;
    }
    std::printf("%-12.5f %-6zu %-14.8f %-12.2f\n", cap, r->mapping.processors_used(),
                r->failure_probability, r->latency);
  }

  benchutil::header("optimality audit vs exhaustive (random 3-stage/4-processor instances)");
  std::size_t audited = 0;
  std::size_t agreed = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto p = gen::random_uniform_pipeline(3, seed);
    gen::PlatformGenOptions options;
    options.processors = 4;
    const auto fh = gen::random_fully_hom_het_failures(options, seed * 37);
    const auto oracle = algorithms::exhaustive_pareto(p, fh);
    if (!oracle) continue;
    for (const auto& point : oracle->front) {
      const auto fast = algorithms::fully_hom_min_fp_for_latency(p, fh, point.latency);
      ++audited;
      if (fast && (util::approx_equal(fast->failure_probability, point.failure_probability) ||
                   fast->failure_probability < point.failure_probability)) {
        ++agreed;
      }
    }
  }
  std::printf("threshold probes audited: %zu, optimal: %zu (expect 100%%)\n", audited, agreed);
}

void bm_alg1(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(8, 3);
  const auto plat = platform::make_fully_homogeneous(m, 2.0, 1.0, 0.3);
  const double L = 2.0 * static_cast<double>(m);  // mid-staircase threshold
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::fully_hom_min_fp_for_latency(pipe, plat, L));
  }
}
BENCHMARK(bm_alg1)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void bm_alg2(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(8, 3);
  const auto plat = platform::make_fully_homogeneous(m, 2.0, 1.0, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::fully_hom_min_latency_for_fp(pipe, plat, 1e-9));
  }
}
BENCHMARK(bm_alg2)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void bm_exhaustive_reference(benchmark::State& state) {
  // The exponential oracle the polynomial algorithms replace.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(3, 3);
  gen::PlatformGenOptions options;
  options.processors = m;
  const auto plat = gen::random_fully_hom_het_failures(options, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::exhaustive_pareto(pipe, plat));
  }
}
BENCHMARK(bm_exhaustive_reference)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
