// Experiment §4.4 (the open problem): Communication Homogeneous platforms
// with heterogeneous failure probabilities. The paper proves nothing here —
// it exhibits Figure 5 (single-interval optimality breaks) and conjectures
// NP-hardness. This bench measures how the library's heuristics close the
// gap to the exhaustive optimum, and how often the optimum needs more than
// one interval.
//
// Reproduction: heuristic-vs-exact FP ratios across random instance
// families (including Figure-5-shaped reliable/unreliable mixes) and the
// multi-interval frequency; timings compare the heuristic suite against
// exhaustive enumeration.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/heuristics.hpp"
#include "relap/algorithms/single_interval.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/util/stats.hpp"

namespace {

using namespace relap;

struct GapStats {
  util::StreamingStats suite_ratio;            // heuristic FP / optimal FP
  util::StreamingStats single_interval_ratio;  // best-single-interval FP / optimal FP
  std::size_t probes = 0;
  std::size_t multi_interval_optima = 0;
};

GapStats measure_family(bool fig5_shaped, std::size_t instances) {
  GapStats stats;
  for (std::uint64_t seed = 1; seed <= instances; ++seed) {
    const auto pipe = fig5_shaped ? gen::bimodal_pipeline(3, seed)
                                  : gen::random_uniform_pipeline(3, seed);
    const auto plat = fig5_shaped
                          ? gen::random_reliable_unreliable_mix(1, 4, seed * 83)
                          : gen::random_comm_hom_het_failures({.processors = 5}, seed * 83);
    const auto oracle = algorithms::exhaustive_pareto(pipe, plat);
    if (!oracle) continue;
    // Probe the middle of the front (extremes are easy for everyone).
    for (std::size_t i = 1; i + 1 < oracle->front.size();
         i += std::max<std::size_t>(1, oracle->front.size() / 4)) {
      const auto& point = oracle->front[i];
      if (point.failure_probability <= 0.0) continue;
      ++stats.probes;
      if (point.mapping.interval_count() > 1) ++stats.multi_interval_optima;

      const auto suite = algorithms::heuristic_min_fp_for_latency(pipe, plat, point.latency);
      if (suite) {
        stats.suite_ratio.add(suite->failure_probability / point.failure_probability);
      }
      const auto single =
          algorithms::single_interval_min_fp_for_latency(pipe, plat, point.latency);
      if (single) {
        stats.single_interval_ratio.add(single->failure_probability /
                                        point.failure_probability);
      }
    }
  }
  return stats;
}

void print_family(const char* name, const GapStats& stats) {
  std::printf("%-26s %-8zu %-12.2f%% %-14.4f %-14.4f %-14.4f\n", name, stats.probes,
              100.0 * static_cast<double>(stats.multi_interval_optima) /
                  static_cast<double>(std::max<std::size_t>(stats.probes, 1)),
              stats.suite_ratio.mean(), stats.suite_ratio.max(),
              stats.single_interval_ratio.mean());
}

void print_tables() {
  benchutil::header("open class §4.4: heuristic-vs-exact FP ratios (1.0 = optimal)");
  std::printf("%-26s %-8s %-13s %-14s %-14s %-14s\n", "instance family", "probes",
              "multi-intvl", "suite mean", "suite max", "single-intvl");
  print_family("uniform comm-hom het-fp", measure_family(false, 12));
  print_family("fig5-shaped mixes", measure_family(true, 12));
  benchutil::note("\nshape check: the suite stays near 1.0 everywhere; the single-");
  benchutil::note("interval baseline degrades exactly on the fig5-shaped family where");
  benchutil::note("the optimum needs two intervals (the paper's Section 3 argument).");
}

void bm_heuristic_suite(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto pipe = gen::bimodal_pipeline(n, 3);
  const auto plat = gen::random_comm_hom_het_failures({.processors = m}, 5);
  const double budget = 2.0 * mapping::latency_lower_bound(pipe, plat);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::heuristic_min_fp_for_latency(pipe, plat, budget));
  }
}
BENCHMARK(bm_heuristic_suite)
    ->Args({4, 6})
    ->Args({8, 12})
    ->Args({12, 24})
    ->Unit(benchmark::kMillisecond);

void bm_exhaustive_same_instances(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto pipe = gen::bimodal_pipeline(n, 3);
  const auto plat = gen::random_comm_hom_het_failures({.processors = m}, 5);
  const double budget = 2.0 * mapping::latency_lower_bound(pipe, plat);
  algorithms::ExhaustiveOptions ex;
  ex.max_evaluations = 5'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algorithms::exhaustive_min_fp_for_latency(pipe, plat, budget, ex));
  }
}
BENCHMARK(bm_exhaustive_same_instances)
    ->Args({4, 6})
    ->Args({5, 7})
    ->Unit(benchmark::kMillisecond);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
