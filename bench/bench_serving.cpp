// Experiment: serving-front overhead (service/server.hpp + snapshot.hpp).
//
// Reproduction artifact: the same warm multi-tenant lookup served two ways —
// in-process (`Broker::solve`) and over the wire (`Session::handle_line`
// parsing the line protocol, solving, rendering the response text). The gap
// is the full price of the text front: parse + dispatch + response
// formatting. A third table times cache persistence: snapshot encode/save
// and load/decode, whose entries/sec bound how fast a restarted server
// returns to warm.
//
// Emits BENCH_serving.json: warm in-process and wire requests/sec, snapshot
// save/load entries/sec, and miss-solve requests/sec with the write-ahead
// journal off vs on (all gated by compare_bench.py) plus the
// label-independent front checksum of the served fronts (warn-compared).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/service/broker.hpp"
#include "relap/service/server.hpp"
#include "relap/service/snapshot.hpp"
#include "relap/util/strings.hpp"

namespace {

using namespace relap;

using benchutil::seconds_since;

constexpr std::size_t kBases = 4;
constexpr std::size_t kStages = 6;
constexpr std::size_t kProcessors = 8;

service::SolveRequest base_request(std::uint64_t seed) {
  const auto pipe = gen::random_uniform_pipeline(kStages, seed);
  gen::PlatformGenOptions options;
  options.processors = kProcessors;
  const auto plat = gen::random_fully_heterogeneous(options, seed + 1000);
  service::SolveRequest request;
  request.instance = service::InstanceData::from(pipe, plat);
  request.objective = service::Objective::ParetoFront;
  // Forced heuristic, as in bench_service: bounded deterministic solves.
  request.method = algorithms::Method::Heuristic;
  request.pareto_thresholds = 16;
  return request;
}

/// Renders an instance as the protocol lines `instance <name> ... end`.
std::vector<std::string> instance_lines(const std::string& name,
                                        const service::InstanceData& instance) {
  std::vector<std::string> lines;
  lines.push_back("instance " + name);
  lines.push_back("input " + util::format_double(instance.input_data));
  for (const service::LabeledStage& stage : instance.stages) {
    lines.push_back("stage " + std::to_string(stage.position) + ' ' +
                    util::format_double(stage.work) + ' ' +
                    util::format_double(stage.output_data));
  }
  for (const service::LabeledProcessor& proc : instance.processors) {
    std::string line = "proc " + util::format_double(proc.speed) + ' ' +
                       util::format_double(proc.failure_prob) + ' ' +
                       util::format_double(proc.in_bandwidth) + ' ' +
                       util::format_double(proc.out_bandwidth);
    for (const double bandwidth : proc.links) line += ' ' + util::format_double(bandwidth);
    lines.push_back(std::move(line));
  }
  lines.push_back("end");
  return lines;
}

void expect_ok(const std::string& response, const char* what) {
  if (response.rfind("ok ", 0) != 0) {
    std::fprintf(stderr, "%s did not answer ok: %s\n", what, response.c_str());
    std::exit(1);
  }
}

/// Blocking loopback client for the concurrent-serving tables. A solve
/// reply is many lines ending `done`; a refused one is a single `err` line —
/// `read_reply` consumes exactly one reply either way.
class WireClient {
 public:
  explicit WireClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~WireClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool send_text(const std::string& text) {
    return ::send(fd_, text.data(), text.size(), 0) == static_cast<ssize_t>(text.size());
  }

  /// Reads one whole solve reply. Returns +1 for a served solve (`done`),
  /// 0 for a structured `err` line (e.g. shed as overloaded), -1 on
  /// connection loss.
  int read_reply() {
    for (;;) {
      const std::string line = read_line();
      if (line.empty()) return -1;
      if (line == "done\n") return 1;
      if (line.rfind("err ", 0) == 0) return 0;
    }
  }

  /// Reads one '\n'-terminated line; empty on connection loss.
  std::string read_line() {
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline + 1);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t received = ::recv(fd_, chunk, sizeof chunk, 0);
      if (received <= 0) return {};
      buffer_.append(chunk, static_cast<std::size_t>(received));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// One bench client session: upload `instance` under `name`, then issue
/// `solves` warm solve lines one at a time. Counts served vs refused.
void run_bench_client(std::uint16_t port, const std::string& name,
                      const service::InstanceData& instance, std::size_t solves,
                      std::atomic<std::size_t>& served, std::atomic<std::size_t>& refused) {
  WireClient client(port);
  if (!client.connected()) return;
  std::string upload;
  for (const std::string& line : instance_lines(name, instance)) upload += line + '\n';
  if (!client.send_text(upload)) return;
  // Drain the one `ok instance` response line (block lines answer nothing).
  if (client.read_line().rfind("ok instance", 0) != 0) return;
  const std::string solve_line = "solve " + name + " obj=pareto method=heuristic sweep=16\n";
  for (std::size_t i = 0; i < solves; ++i) {
    if (!client.send_text(solve_line)) return;
    const int reply = client.read_reply();
    if (reply < 0) return;
    (reply == 1 ? served : refused).fetch_add(1, std::memory_order_relaxed);
  }
  (void)client.send_text("quit\n");
}

void print_tables() {
  benchutil::header("serving front: wire protocol overhead and snapshot speed");
  std::printf("workload: %zu base instances (%zu stages x %zu processors), warm lookups\n\n",
              kBases, kStages, kProcessors);

  benchutil::JsonReport report("serving");
  report.field("bases", static_cast<std::uint64_t>(kBases))
      .field("stages", static_cast<std::uint64_t>(kStages))
      .field("processors", static_cast<std::uint64_t>(kProcessors));

  service::Broker broker;
  service::Session session(broker);

  // Register and prime every base through the wire (cold solves).
  std::vector<service::SolveRequest> requests;
  std::vector<std::string> solve_lines;
  std::string response;
  for (std::size_t b = 0; b < kBases; ++b) {
    requests.push_back(base_request(b * 7 + 3));
    const std::string name = "base" + std::to_string(b);
    for (const std::string& line : instance_lines(name, requests.back().instance)) {
      response.clear();
      if (!session.handle_line(line, response)) std::exit(1);
    }
    expect_ok(response, "instance upload");
    solve_lines.push_back("solve " + name + " obj=pareto method=heuristic sweep=16");
    response.clear();
    if (!session.handle_line(solve_lines.back(), response)) std::exit(1);
    expect_ok(response, "priming solve");
  }

  constexpr int kReps = 5;

  // Warm in-process: canonicalize + probe + denormalize, no text layer.
  double inproc_elapsed = std::numeric_limits<double>::infinity();
  benchutil::Checksum fronts;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (const service::SolveRequest& request : requests) {
      const auto reply = broker.solve(request);
      if (!reply.has_value() || !reply->cache_hit) {
        std::fprintf(stderr, "warm in-process pass produced a non-warm reply\n");
        std::exit(1);
      }
      if (rep == 0) fronts.add(service::front_checksum(reply->front));
    }
    inproc_elapsed = std::min(inproc_elapsed, seconds_since(start));
  }
  const double inproc_per_sec = static_cast<double>(requests.size()) / inproc_elapsed;

  // Warm over the wire: the same lookups through parse + response rendering.
  double wire_elapsed = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (const std::string& line : solve_lines) {
      response.clear();
      if (!session.handle_line(line, response)) std::exit(1);
      if (response.find("cache=hit") == std::string::npos) {
        std::fprintf(stderr, "warm wire pass produced a non-warm reply\n");
        std::exit(1);
      }
    }
    wire_elapsed = std::min(wire_elapsed, seconds_since(start));
  }
  const double wire_per_sec = static_cast<double>(solve_lines.size()) / wire_elapsed;

  // Concurrent TCP: the same warm lookups through the full concurrent front
  // — sockets, per-connection session threads, and the broker's shared
  // batch queue (`solve_batched`). One row per connection count.
  constexpr std::size_t kTotalConcurrentSolves = 96;
  struct ConcurrentRow {
    std::size_t connections;
    double requests_per_sec;
  };
  std::vector<ConcurrentRow> concurrent_rows;
  for (const std::size_t connections : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    auto bound = service::TcpServer::bind_localhost(0);
    if (!bound.has_value()) {
      std::fprintf(stderr, "tcp bind failed: %s\n", bound.error().to_string().c_str());
      std::exit(1);
    }
    service::TcpServer tcp = std::move(bound.value());
    service::ServerOptions server_options;
    server_options.max_connections = connections;
    std::thread accept_thread([&] { (void)tcp.serve(broker, server_options); });

    std::atomic<std::size_t> ok{0};
    std::atomic<std::size_t> err{0};
    const std::size_t per_client = kTotalConcurrentSolves / connections;
    const auto start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> clients;
      for (std::size_t c = 0; c < connections; ++c) {
        clients.emplace_back([&, c] {
          run_bench_client(tcp.port(), "conn" + std::to_string(c),
                           requests[c % requests.size()].instance, per_client, ok, err);
        });
      }
      for (std::thread& client : clients) client.join();
    }
    const double elapsed = seconds_since(start);
    tcp.request_stop();
    accept_thread.join();
    if (ok.load() != per_client * connections || err.load() != 0) {
      std::fprintf(stderr, "concurrent pass dropped requests: ok=%zu err=%zu want=%zu\n",
                   ok.load(), err.load(), per_client * connections);
      std::exit(1);
    }
    concurrent_rows.push_back({connections, static_cast<double>(ok.load()) / elapsed});
  }

  // Saturation: a tiny admission queue (high watermark 2) under 16 clients —
  // measures what fraction of offered load the broker sheds as `overloaded`
  // instead of queueing without bound. Structured refusals, no hangs.
  double shed_rate = 0.0;
  {
    service::BrokerOptions saturated_options;
    saturated_options.queue_high_watermark = 2;
    saturated_options.queue_low_watermark = 1;
    service::Broker saturated(saturated_options);
    for (const service::SolveRequest& request : requests) {
      if (!saturated.solve(request).has_value()) std::exit(1);  // warm its cache
    }
    auto bound = service::TcpServer::bind_localhost(0);
    if (!bound.has_value()) std::exit(1);
    service::TcpServer tcp = std::move(bound.value());
    service::ServerOptions server_options;
    server_options.max_connections = 16;
    std::thread accept_thread([&] { (void)tcp.serve(saturated, server_options); });

    std::atomic<std::size_t> ok{0};
    std::atomic<std::size_t> err{0};
    {
      std::vector<std::thread> clients;
      for (std::size_t c = 0; c < 16; ++c) {
        clients.emplace_back([&, c] {
          run_bench_client(tcp.port(), "sat" + std::to_string(c),
                           requests[c % requests.size()].instance, 12, ok, err);
        });
      }
      for (std::thread& client : clients) client.join();
    }
    tcp.request_stop();
    accept_thread.join();
    const std::size_t offered = ok.load() + err.load();
    shed_rate = offered == 0 ? 0.0 : static_cast<double>(err.load()) / static_cast<double>(offered);
  }

  // Snapshot persistence: save the primed cache, load it into a cold broker.
  const std::string path = "BENCH_serving.snapshot.tmp";
  double save_elapsed = std::numeric_limits<double>::infinity();
  double load_elapsed = std::numeric_limits<double>::infinity();
  std::size_t entries = 0;
  std::size_t bytes = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto save_start = std::chrono::steady_clock::now();
    const auto saved = broker.save_snapshot(path);
    save_elapsed = std::min(save_elapsed, seconds_since(save_start));
    if (!saved.has_value()) {
      std::fprintf(stderr, "snapshot save failed: %s\n", saved.error().to_string().c_str());
      std::exit(1);
    }
    entries = saved->entries;
    bytes = saved->bytes;

    service::Broker fresh;
    const auto load_start = std::chrono::steady_clock::now();
    const auto loaded = fresh.load_snapshot(path);
    load_elapsed = std::min(load_elapsed, seconds_since(load_start));
    if (!loaded.has_value() || loaded->entries != entries) {
      std::fprintf(stderr, "snapshot load failed or dropped entries\n");
      std::exit(1);
    }
  }
  std::remove(path.c_str());
  const double save_per_sec = static_cast<double>(entries) / save_elapsed;
  const double load_per_sec = static_cast<double>(entries) / load_elapsed;

  // Journal append overhead: a miss-heavy workload (every solve is a cache
  // miss, so every solve appends one group-committed record) with the
  // write-ahead journal detached vs attached. The gap is the full price of
  // durability at fsync_every=8: record encoding, the append write, and an
  // amortized fsync every 8th solve.
  constexpr std::size_t kJournalSolves = 16;
  const std::string journal_path = "BENCH_serving.journal.tmp";
  double journal_off_elapsed = std::numeric_limits<double>::infinity();
  double journal_on_elapsed = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    // Fresh seeds each rep keep every solve a miss in its fresh broker.
    std::vector<service::SolveRequest> misses;
    for (std::size_t i = 0; i < kJournalSolves; ++i) {
      misses.push_back(base_request(90'000 + static_cast<std::uint64_t>(rep) * 1'000 + i * 13));
    }

    {
      service::Broker cold;
      const auto start = std::chrono::steady_clock::now();
      for (const service::SolveRequest& request : misses) {
        if (!cold.solve(request).has_value()) std::exit(1);
      }
      journal_off_elapsed = std::min(journal_off_elapsed, seconds_since(start));
    }
    {
      std::remove(journal_path.c_str());
      service::Broker cold;
      service::JournalOptions journal_options;
      journal_options.fsync_every = 8;
      if (!cold.recover("", journal_path, journal_options).has_value()) std::exit(1);
      const auto start = std::chrono::steady_clock::now();
      for (const service::SolveRequest& request : misses) {
        if (!cold.solve(request).has_value()) std::exit(1);
      }
      journal_on_elapsed = std::min(journal_on_elapsed, seconds_since(start));
      if (cold.journal_stats().records_appended != kJournalSolves) {
        std::fprintf(stderr, "journal pass lost appends\n");
        std::exit(1);
      }
    }
  }
  std::remove(journal_path.c_str());
  const double journal_off_per_sec = static_cast<double>(kJournalSolves) / journal_off_elapsed;
  const double journal_on_per_sec = static_cast<double>(kJournalSolves) / journal_on_elapsed;

  std::printf("%-18s %9s %12s %16s\n", "path", "requests", "time", "requests/s");
  std::printf("%-18s %9zu %11.3fms %16.0f\n", "warm in-process", requests.size(),
              inproc_elapsed * 1e3, inproc_per_sec);
  std::printf("%-18s %9zu %11.3fms %16.0f\n", "warm wire", solve_lines.size(),
              wire_elapsed * 1e3, wire_per_sec);
  std::printf("\nwire/in-process: %.2fx   fronts %s\n", wire_per_sec / inproc_per_sec,
              fronts.hex().c_str());

  std::printf("\nconcurrent TCP (warm, %zu solves total):\n", kTotalConcurrentSolves);
  std::printf("%-18s %16s\n", "connections", "requests/s");
  for (const ConcurrentRow& row : concurrent_rows) {
    std::printf("%-18zu %16.0f\n", row.connections, row.requests_per_sec);
  }
  std::printf("\nsaturation (16 clients, queue high watermark 2): shed rate %.1f%%\n",
              shed_rate * 100.0);

  std::printf("\nsnapshot: %zu entries, %zu bytes   save %.0f entries/s   load %.0f entries/s\n",
              entries, bytes, save_per_sec, load_per_sec);

  std::printf("\njournal append overhead (%zu miss solves, fsync every 8):\n", kJournalSolves);
  std::printf("%-18s %16s\n", "journal", "requests/s");
  std::printf("%-18s %16.0f\n", "off", journal_off_per_sec);
  std::printf("%-18s %16.0f\n", "on", journal_on_per_sec);
  std::printf("on/off: %.3fx\n", journal_on_per_sec / journal_off_per_sec);

  report.field("warm_inproc_requests_per_sec", inproc_per_sec)
      .field("warm_wire_requests_per_sec", wire_per_sec)
      .field("wire_over_inproc", wire_per_sec / inproc_per_sec);
  for (const ConcurrentRow& row : concurrent_rows) {
    const std::string key = "tcp_" + std::to_string(row.connections) + "conn_requests_per_sec";
    report.field(key.c_str(), row.requests_per_sec);
  }
  report.field("saturation_shed_rate", shed_rate)
      .field("snapshot_entries", static_cast<std::uint64_t>(entries))
      .field("snapshot_bytes", static_cast<std::uint64_t>(bytes))
      .field("snapshot_save_entries_per_sec", save_per_sec)
      .field("snapshot_load_entries_per_sec", load_per_sec)
      .field("journal_off_requests_per_sec", journal_off_per_sec)
      .field("journal_on_requests_per_sec", journal_on_per_sec)
      .field("journal_on_over_off", journal_on_per_sec / journal_off_per_sec)
      .field("fronts_checksum", fronts.hex());
  report.write();
}

// --- Microbenchmarks. -------------------------------------------------------

void bm_wire_warm_solve(benchmark::State& state) {
  // One warm solve line end to end: parse, dispatch, render the full reply.
  service::Broker broker;
  service::Session session(broker);
  std::string response;
  const service::SolveRequest request = base_request(3);
  for (const std::string& line : instance_lines("x", request.instance)) {
    response.clear();
    if (!session.handle_line(line, response)) state.SkipWithError("upload failed");
  }
  response.clear();
  if (!session.handle_line("solve x obj=pareto method=heuristic sweep=16", response)) {
    state.SkipWithError("prime failed");
  }
  for (auto _ : state) {
    response.clear();
    benchmark::DoNotOptimize(
        session.handle_line("solve x obj=pareto method=heuristic sweep=16", response));
  }
}
BENCHMARK(bm_wire_warm_solve)->Unit(benchmark::kMicrosecond);

void bm_stats_line(benchmark::State& state) {
  service::Broker broker;
  service::Session session(broker);
  std::string response;
  for (auto _ : state) {
    response.clear();
    benchmark::DoNotOptimize(session.handle_line("stats", response));
  }
}
BENCHMARK(bm_stats_line)->Unit(benchmark::kMicrosecond);

void bm_snapshot_codec(benchmark::State& state) {
  // Encode + decode of a primed cache, no filesystem.
  service::Broker broker;
  for (std::size_t b = 0; b < kBases; ++b) {
    if (!broker.solve(base_request(b * 7 + 3)).has_value()) {
      state.SkipWithError("prime solve failed");
    }
  }
  const std::string snapshot_path = "BENCH_serving.codec.tmp";
  if (!broker.save_snapshot(snapshot_path).has_value()) state.SkipWithError("save failed");
  for (auto _ : state) {
    service::Broker fresh;
    benchmark::DoNotOptimize(fresh.load_snapshot(snapshot_path));
  }
  std::remove(snapshot_path.c_str());
}
BENCHMARK(bm_snapshot_codec)->Unit(benchmark::kMicrosecond);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
