// Experiment FIG5 (paper Section 3, Figure 5): on a Communication
// Homogeneous platform with heterogeneous failures, the optimal bi-criteria
// mapping under latency threshold 22 uses two intervals — the slow reliable
// processor runs the cheap stage and all ten fast unreliable processors
// replicate the heavy one, reaching FP < 0.2 where the best single interval
// only reaches 0.64.
//
// Reproduction: the headline comparison, then a sweep of the latency
// threshold L showing the regime change (below ~12+k only single-interval
// shapes fit; the two-interval family takes over as L grows).

#include <cstdio>

#include "bench_util.hpp"
#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/single_interval.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/mapping/reliability.hpp"

namespace {

using namespace relap;

void print_tables() {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  algorithms::ExhaustiveOptions budget;
  budget.max_evaluations = 100'000'000;

  benchutil::header("FIG5: best mapping under latency threshold 22 (paper Section 3)");
  const auto single = algorithms::single_interval_min_fp_for_latency(
      pipe, plat, gen::fig5_latency_threshold());
  const auto full = algorithms::exhaustive_min_fp_for_latency(
      pipe, plat, gen::fig5_latency_threshold(), budget);
  std::printf("%-22s %-44s %-10s %-10s %-10s\n", "family", "mapping", "latency", "FP",
              "paper");
  if (single) {
    std::printf("%-22s %-44s %-10.2f %-10.4f %-10s\n", "best single interval",
                single->mapping.describe().c_str(), single->latency,
                single->failure_probability, "0.64");
  }
  if (full) {
    std::printf("%-22s %-44s %-10.2f %-10.4f %-10s\n", "exact optimum",
                full->mapping.describe().c_str(), full->latency, full->failure_probability,
                "<0.2");
  }

  benchutil::header("threshold sweep: optimal FP and interval count vs latency budget L");
  std::printf("%-8s %-12s %-10s %-10s %-44s\n", "L", "optimal FP", "intervals", "replicas",
              "mapping");
  for (const double L : {11.0, 12.0, 13.0, 15.0, 17.0, 19.0, 21.0, 21.01, 22.0, 25.0, 31.0,
                         32.0, 40.0, 60.0, 111.0, 120.0}) {
    const auto best = algorithms::exhaustive_min_fp_for_latency(pipe, plat, L, budget);
    if (!best) {
      std::printf("%-8.2f %-12s\n", L, "infeasible");
      continue;
    }
    std::printf("%-8.2f %-12.6f %-10zu %-10zu %-44s\n", L, best->failure_probability,
                best->mapping.interval_count(), best->mapping.processors_used(),
                best->mapping.describe().c_str());
  }
  benchutil::note("\nshape check: FP drops sharply once L admits the two-interval");
  benchutil::note("family (slow processor on S1 + k-way replication of S2), matching");
  benchutil::note("the paper's argument that single-interval optimality (Lemma 1)");
  benchutil::note("breaks under heterogeneous failure probabilities.");
}

void bm_fig5_exhaustive(benchmark::State& state) {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  algorithms::ExhaustiveOptions budget;
  budget.max_evaluations = 100'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::exhaustive_min_fp_for_latency(
        pipe, plat, gen::fig5_latency_threshold(), budget));
  }
}
BENCHMARK(bm_fig5_exhaustive)->Unit(benchmark::kMillisecond);

void bm_fig5_single_interval_solver(benchmark::State& state) {
  const auto pipe = gen::fig5_pipeline();
  const auto plat = gen::fig5_platform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::single_interval_min_fp_for_latency(
        pipe, plat, gen::fig5_latency_threshold()));
  }
}
BENCHMARK(bm_fig5_single_interval_solver);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
