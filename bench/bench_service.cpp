// Experiment: solver-service throughput (service/broker.hpp).
//
// Reproduction artifact: a duplicate-heavy multi-tenant workload — B base
// instances, each presented R times under random stage/processor relabelings
// (and power-of-two unit rescalings) — served cold (empty memo cache, every
// request solves) and warm (cache primed, every request is a canonicalize +
// probe + denormalize). The ratio is the price of a solve vs the price of
// recognizing one, and the front checksums pin that warm replies are
// bit-identical to the cold solves that filled the cache.
//
// Emits BENCH_service.json: cold/warm requests/sec (gated by
// compare_bench.py), cache hit rate, and the label-independent FNV-1a
// checksum of every base front (warn-compared across runs).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_util.hpp"
#include "relap/service/broker.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/util/rng.hpp"

namespace {

using namespace relap;

using benchutil::seconds_since;

constexpr std::size_t kBases = 4;
constexpr std::size_t kDuplicatesPerBase = 6;
constexpr std::size_t kStages = 6;
constexpr std::size_t kProcessors = 8;

service::SolveRequest base_request(std::uint64_t seed) {
  const auto pipe = gen::random_uniform_pipeline(kStages, seed);
  gen::PlatformGenOptions options;
  options.processors = kProcessors;
  const auto plat = gen::random_fully_heterogeneous(options, seed + 1000);
  service::SolveRequest request;
  request.instance = service::InstanceData::from(pipe, plat);
  request.objective = service::Objective::ParetoFront;
  // Forced heuristic: bounded, thread-count-deterministic solve times, so the
  // cold/warm ratio measures the broker, not an exhaustive blowup.
  request.method = algorithms::Method::Heuristic;
  request.pareto_thresholds = 16;
  return request;
}

std::vector<service::SolveRequest> cold_workload() {
  std::vector<service::SolveRequest> requests;
  for (std::size_t b = 0; b < kBases; ++b) requests.push_back(base_request(b * 7 + 3));
  return requests;
}

/// R presentations of every base: random relabelings, half also rescaled.
std::vector<service::SolveRequest> warm_workload() {
  std::vector<service::SolveRequest> requests;
  util::Rng rng(20'080'401);
  for (std::size_t b = 0; b < kBases; ++b) {
    const service::SolveRequest base = base_request(b * 7 + 3);
    for (std::size_t r = 0; r < kDuplicatesPerBase; ++r) {
      service::SolveRequest request = base;
      std::vector<std::size_t> stage_order = util::iota_indices(base.instance.stages.size());
      std::vector<std::size_t> processor_order =
          util::iota_indices(base.instance.processors.size());
      rng.shuffle(stage_order);
      rng.shuffle(processor_order);
      request.instance = base.instance.relabeled(stage_order, processor_order);
      if (r % 2 == 1) request.instance = request.instance.scaled(2.0, 0.25, 0.5);
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

void print_tables() {
  benchutil::header("solver service: cold vs warm request throughput");
  std::printf("workload: %zu base instances (%zu stages x %zu processors), %zu presentations"
              " each\n\n",
              kBases, kStages, kProcessors, kDuplicatesPerBase);

  benchutil::JsonReport report("service");
  report.field("bases", static_cast<std::uint64_t>(kBases))
      .field("duplicates_per_base", static_cast<std::uint64_t>(kDuplicatesPerBase))
      .field("stages", static_cast<std::uint64_t>(kStages))
      .field("processors", static_cast<std::uint64_t>(kProcessors));

  service::Broker broker;
  const std::vector<service::SolveRequest> cold = cold_workload();
  const std::vector<service::SolveRequest> warm = warm_workload();

  // Cold: every base solves. The broker's solves are bit-identical across
  // repetitions, so best-of-N isolates throughput from machine load.
  constexpr int kReps = 5;
  double cold_elapsed = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    broker.clear_cache();
    const auto start = std::chrono::steady_clock::now();
    const auto replies = broker.solve_batch(cold);
    cold_elapsed = std::min(cold_elapsed, seconds_since(start));
    for (const auto& reply : replies) {
      if (!reply.has_value() || reply->cache_hit) {
        std::fprintf(stderr, "cold pass produced a non-cold reply\n");
        std::exit(1);
      }
    }
  }
  const double cold_per_sec = static_cast<double>(cold.size()) / cold_elapsed;

  // Checksum the cold fronts (cache is now primed by the last cold pass).
  benchutil::Checksum fronts;
  {
    const auto replies = broker.solve_batch(cold);
    for (const auto& reply : replies) fronts.add(service::front_checksum(reply->front));
  }

  // Warm: every presentation canonicalizes onto a primed key.
  double warm_elapsed = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const auto replies = broker.solve_batch(warm);
    warm_elapsed = std::min(warm_elapsed, seconds_since(start));
    for (const auto& reply : replies) {
      if (!reply.has_value() || !reply->cache_hit) {
        std::fprintf(stderr, "warm pass produced a non-warm reply\n");
        std::exit(1);
      }
    }
  }
  const double warm_per_sec = static_cast<double>(warm.size()) / warm_elapsed;
  const double speedup = warm_per_sec / cold_per_sec;
  const service::CacheStats stats = broker.cache_stats();

  std::printf("%-6s %9s %12s %16s\n", "pass", "requests", "time", "requests/s");
  std::printf("%-6s %9zu %11.3fms %16.0f\n", "cold", cold.size(), cold_elapsed * 1e3,
              cold_per_sec);
  std::printf("%-6s %9zu %11.3fms %16.0f\n", "warm", warm.size(), warm_elapsed * 1e3,
              warm_per_sec);
  std::printf("\nwarm/cold: %.1fx   cache: %llu hits / %llu misses (hit rate %.1f%%)   fronts %s\n",
              speedup, static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses), stats.hit_rate() * 100.0,
              fronts.hex().c_str());
  if (speedup < 10.0) {
    std::fprintf(stderr, "warm throughput below 10x cold (%.1fx)\n", speedup);
    std::exit(1);
  }

  report.field("cold_time_s", cold_elapsed)
      .field("cold_requests_per_sec", cold_per_sec)
      .field("warm_time_s", warm_elapsed)
      .field("warm_requests_per_sec", warm_per_sec)
      .field("warm_over_cold", speedup)
      .field("hit_rate", stats.hit_rate())
      .field("cache_hits", stats.hits)
      .field("cache_misses", stats.misses)
      .field("cache_evictions", stats.evictions)
      .field("fronts_checksum", fronts.hex());
  report.write();
}

// --- Microbenchmarks. -------------------------------------------------------

void bm_canonicalize(benchmark::State& state) {
  const service::SolveRequest request = base_request(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service::canonicalize(request.instance));
  }
}
BENCHMARK(bm_canonicalize);

void bm_warm_solve(benchmark::State& state) {
  // One warm request end to end: canonicalize + probe + denormalize.
  service::Broker broker;
  const service::SolveRequest request = base_request(3);
  if (!broker.solve(request).has_value()) state.SkipWithError("prime solve failed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(broker.solve(request));
  }
}
BENCHMARK(bm_warm_solve)->Unit(benchmark::kMicrosecond);

void bm_batch_dedup(benchmark::State& state) {
  // A full duplicate-heavy batch against a primed cache.
  service::Broker broker;
  const auto cold = cold_workload();
  const auto warm = warm_workload();
  benchmark::DoNotOptimize(broker.solve_batch(cold));
  for (auto _ : state) {
    benchmark::DoNotOptimize(broker.solve_batch(warm));
  }
}
BENCHMARK(bm_batch_dedup)->Unit(benchmark::kMicrosecond);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
