// Experiment: simulator validation (the testbed substitute, DESIGN.md §4).
//
// Reproduction: (a) Monte-Carlo failure frequency vs the analytic FP formula
// on both paper instances and random mappings; (b) the adversarial
// worst-case schedule reproduces Eq.(1)/(2) exactly; (c) failure-free
// latency never exceeds the worst case; timings measure engine throughput.
//
// Emits BENCH_simulation.json: wall times, trials/sec of the batched
// SimScratch Monte-Carlo drivers on two instances, and FNV-1a checksums of
// the resulting statistics (two runs agree on a checksum iff the engine
// produced bit-identical estimates — the determinism contract CI tracks).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench_util.hpp"
#include "relap/exec/thread_pool.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/sim/engine.hpp"
#include "relap/sim/monte_carlo.hpp"
#include "relap/util/stats.hpp"

namespace {

using namespace relap;

using benchutil::seconds_since;

void add_trial_stats(benchutil::Checksum& checksum, const sim::TrialStats& stats) {
  checksum.add(stats.failure.empirical);
  checksum.add(stats.failure.analytic);
  checksum.add(stats.failure.ci95.low);
  checksum.add(stats.failure.ci95.high);
  checksum.add(stats.failure_free_latency);
  checksum.add(static_cast<std::uint64_t>(stats.latency.count()));
  checksum.add(stats.latency.mean());
  checksum.add(stats.latency.variance());
  checksum.add(stats.latency.min());
  checksum.add(stats.latency.max());
}

/// Serial run_trials throughput on one instance; prints the table row and
/// records a <prefix>_* field group (incl. the stats checksum) in the JSON
/// artifact.
void engine_throughput_row(benchutil::JsonReport& report, const char* name, const char* prefix,
                           const pipeline::Pipeline& pipe, const platform::Platform& plat,
                           const mapping::IntervalMapping& mapping, std::size_t trials,
                           std::size_t dataset_count) {
  exec::ThreadPool serial(1);
  sim::TrialOptions options;
  options.trials = trials;
  options.dataset_count = dataset_count;
  options.pool = &serial;
  // Counter-addressed trials make every repetition bit-identical, so repeat
  // the run and keep the fastest pass: on a shared machine a single pass can
  // absorb a preemption and report load, not engine throughput.
  constexpr int kReps = 5;
  sim::TrialStats stats;
  double elapsed = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    stats = sim::run_trials(pipe, plat, mapping, options);
    elapsed = std::min(elapsed, seconds_since(start));
  }
  const double per_sec = elapsed > 0.0 ? static_cast<double>(trials) / elapsed : 0.0;
  benchutil::Checksum checksum;
  add_trial_stats(checksum, stats);
  std::printf("%-24s %9zu trials  %8.3fs  %12.0f trials/s  emp %.6f  checksum %s\n", name,
              trials, elapsed, per_sec, stats.failure.empirical, checksum.hex().c_str());
  report.field((std::string(prefix) + "_trials").c_str(), static_cast<std::uint64_t>(trials))
      .field((std::string(prefix) + "_time_s").c_str(), elapsed)
      .field((std::string(prefix) + "_trials_per_sec").c_str(), per_sec)
      .field((std::string(prefix) + "_checksum").c_str(), checksum.hex());
}

/// Engine trial throughput: the headline number for the SimScratch arena
/// (PR 5); the pre-arena engine ran the fig5 row at ~2.5M trials/s serial
/// on the reference machine, the batched driver at >= 2x that.
void engine_throughput(benchutil::JsonReport& report) {
  benchutil::header("full-engine Monte-Carlo throughput (batched SimScratch driver, 1 thread)");
  {
    const auto pipe = gen::fig5_pipeline();
    const auto plat = gen::fig5_platform();
    const auto mapping = gen::fig5_two_interval_mapping();
    engine_throughput_row(report, "fig5 two-interval", "engine_fig5", pipe, plat, mapping,
                          200'000, 1);
  }
  {
    const auto pipe = gen::random_uniform_pipeline(8, 42);
    gen::PlatformGenOptions options;
    options.processors = 12;
    options.fp_min = 0.05;
    options.fp_max = 0.3;
    const auto plat = gen::random_comm_hom_het_failures(options, 43);
    const mapping::IntervalMapping mapping(
        {{{0, 1}, {0, 1, 2}}, {{2, 3}, {3, 4, 5}}, {{4, 5}, {6, 7, 8}}, {{6, 7}, {9, 10, 11}}});
    engine_throughput_row(report, "8x12 four-interval d=4", "engine_8x12", pipe, plat, mapping,
                          60'000, 4);
  }
  {
    const auto plat = gen::fig5_platform();
    const auto mapping = gen::fig5_two_interval_mapping();
    exec::ThreadPool serial(1);
    sim::MonteCarloOptions mc;
    mc.trials = 4'000'000;
    mc.pool = &serial;
    constexpr int kReps = 3;  // best-of, as above
    sim::FailureRateEstimate est;
    double elapsed = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      est = sim::estimate_failure_rate(plat, mapping, mc);
      elapsed = std::min(elapsed, seconds_since(start));
    }
    const double per_sec = elapsed > 0.0 ? static_cast<double>(mc.trials) / elapsed : 0.0;
    benchutil::Checksum checksum;
    checksum.add(est.empirical);
    checksum.add(est.analytic);
    checksum.add(est.ci95.low);
    checksum.add(est.ci95.high);
    std::printf("%-24s %9zu trials  %8.3fs  %12.0f trials/s  emp %.6f  checksum %s\n",
                "fig5 direct Bernoulli", mc.trials, elapsed, per_sec, est.empirical,
                checksum.hex().c_str());
    report.field("direct_trials", static_cast<std::uint64_t>(mc.trials))
        .field("direct_time_s", elapsed)
        .field("direct_trials_per_sec", per_sec)
        .field("direct_checksum", checksum.hex());
  }
}

void print_tables() {
  benchutil::header("Monte Carlo vs analytic FP (200k trials per row)");
  std::printf("%-28s %-12s %-12s %-12s %-10s\n", "mapping", "analytic", "empirical",
              "95% CI +/-", "verdict");
  {
    const auto plat = gen::fig5_platform();
    sim::MonteCarloOptions mc;
    mc.trials = 200'000;
    for (const auto& [name, m] :
         {std::pair{"fig5 single {2 fast}", gen::fig5_single_interval_mapping()},
          std::pair{"fig5 two-interval", gen::fig5_two_interval_mapping()}}) {
      const auto est = sim::estimate_failure_rate(plat, m, mc);
      std::printf("%-28s %-12.6f %-12.6f %-12.6f %-10s\n", name, est.analytic, est.empirical,
                  est.ci95_half_width, est.consistent(0.003) ? "consistent" : "OFF");
    }
  }
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    gen::PlatformGenOptions options;
    options.processors = 6;
    options.fp_min = 0.1;
    options.fp_max = 0.6;
    const auto plat = gen::random_comm_hom_het_failures(options, seed * 101);
    const mapping::IntervalMapping m({{{0, 1}, {0, 3}}, {{2, 3}, {1, 4, 5}}});
    sim::MonteCarloOptions mc;
    mc.trials = 200'000;
    mc.seed = seed;
    const auto est = sim::estimate_failure_rate(plat, m, mc);
    char name[32];
    std::snprintf(name, sizeof(name), "random mapping (seed %llu)",
                  static_cast<unsigned long long>(seed));
    std::printf("%-28s %-12.6f %-12.6f %-12.6f %-10s\n", name, est.analytic, est.empirical,
                est.ci95_half_width, est.consistent(0.003) ? "consistent" : "OFF");
  }

  benchutil::header("adversarial worst-case schedule reproduces the latency formulas");
  std::printf("%-10s %-18s %-14s %-14s %-10s\n", "platform", "formula", "formula value",
              "simulated", "match");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(4, seed);
    gen::PlatformGenOptions options;
    options.processors = 6;
    const mapping::IntervalMapping m({{{0, 1}, {0, 3}}, {{2, 3}, {1, 2, 4}}});
    sim::SimOptions sim_options;
    sim_options.send_order = sim::SendOrder::WorstCaseLast;
    {
      const auto plat = gen::random_comm_hom_het_failures(options, seed * 211);
      const auto scenario = sim::FailureScenario::worst_case(pipe, plat, m);
      const auto run = sim::simulate(pipe, plat, m, scenario, sim_options);
      const double eq1 = mapping::latency_eq1(pipe, plat, m);
      std::printf("%-10s %-18s %-14.6f %-14.6f %-10s\n", "comm-hom", "Eq.(1)", eq1,
                  run.datasets[0].latency(),
                  util::approx_equal(eq1, run.datasets[0].latency()) ? "yes" : "NO");
    }
    {
      const auto plat = gen::random_fully_heterogeneous(options, seed * 223);
      const auto scenario = sim::FailureScenario::worst_case(pipe, plat, m);
      const auto run = sim::simulate(pipe, plat, m, scenario, sim_options);
      const double eq2 = mapping::latency_eq2(pipe, plat, m);
      std::printf("%-10s %-18s %-14.6f %-14.6f %-10s\n", "fully-het", "Eq.(2)", eq2,
                  run.datasets[0].latency(),
                  util::approx_equal(eq2, run.datasets[0].latency()) ? "yes" : "NO");
    }
  }

  benchutil::header("failure-free vs worst-case latency (slack the adversary can use)");
  std::printf("%-6s %-14s %-14s %-10s\n", "seed", "failure-free", "worst-case", "ratio");
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(4, seed);
    gen::PlatformGenOptions options;
    options.processors = 6;
    const auto plat = gen::random_comm_hom_het_failures(options, seed * 307);
    const mapping::IntervalMapping m({{{0, 1}, {0, 3}}, {{2, 3}, {1, 2, 4}}});
    const auto free_run =
        sim::simulate(pipe, plat, m, sim::FailureScenario::none(6), {});
    const double worst = mapping::latency(pipe, plat, m);
    std::printf("%-6llu %-14.6f %-14.6f %-10.4f\n", static_cast<unsigned long long>(seed),
                free_run.datasets[0].latency(), worst,
                worst / free_run.datasets[0].latency());
  }

  benchutil::JsonReport report("simulation");
  engine_throughput(report);
  report.write();
}

void bm_engine_single_dataset(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(n, 3);
  gen::PlatformGenOptions options;
  options.processors = n;
  const auto plat = gen::random_comm_hom_het_failures(options, 5);
  std::vector<platform::ProcessorId> first;
  std::vector<platform::ProcessorId> second;
  for (platform::ProcessorId u = 0; u < n; ++u) (u < n / 2 ? first : second).push_back(u);
  const mapping::IntervalMapping m({{{0, n / 2}, first}, {{n / 2 + 1, n - 1}, second}});
  const auto scenario = sim::FailureScenario::none(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(pipe, plat, m, scenario, {}));
  }
}
BENCHMARK(bm_engine_single_dataset)->Arg(8)->Arg(32)->Arg(128);

void bm_engine_pipelined_datasets(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(8, 3);
  gen::PlatformGenOptions options;
  options.processors = 8;
  const auto plat = gen::random_comm_hom_het_failures(options, 5);
  const mapping::IntervalMapping m({{{0, 4}, {0, 1, 2, 3}}, {{5, 7}, {4, 5, 6, 7}}});
  const auto scenario = sim::FailureScenario::none(8);
  sim::SimOptions sim_options;
  sim_options.dataset_count = d;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(pipe, plat, m, scenario, sim_options));
  }
}
BENCHMARK(bm_engine_pipelined_datasets)->Arg(1)->Arg(16)->Arg(256);

void bm_engine_scratch_reuse(benchmark::State& state) {
  // simulate_into on a bound scratch vs the per-call simulate() wrapper:
  // the allocation-free steady state the Monte-Carlo driver runs in.
  const auto pipe = gen::random_uniform_pipeline(8, 3);
  gen::PlatformGenOptions options;
  options.processors = 8;
  const auto plat = gen::random_comm_hom_het_failures(options, 5);
  const mapping::IntervalMapping m({{{0, 4}, {0, 1, 2, 3}}, {{5, 7}, {4, 5, 6, 7}}});
  const auto scenario = sim::FailureScenario::none(8);
  sim::SimOptions sim_options;
  sim::SimScratch scratch(plat.processor_count(), m.interval_count());
  scratch.bind(pipe, plat, m, sim_options.send_order);
  sim::SimResult run;
  for (auto _ : state) {
    sim::simulate_into(scratch, scenario, sim_options, run);
    benchmark::DoNotOptimize(run.makespan);
  }
}
BENCHMARK(bm_engine_scratch_reuse);

void bm_monte_carlo_direct(benchmark::State& state) {
  const auto plat = gen::fig5_platform();
  const auto m = gen::fig5_two_interval_mapping();
  sim::MonteCarloOptions mc;
  mc.trials = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::estimate_failure_rate(plat, m, mc));
  }
}
BENCHMARK(bm_monte_carlo_direct)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
