// Experiment: simulator validation (the testbed substitute, DESIGN.md §4).
//
// Reproduction: (a) Monte-Carlo failure frequency vs the analytic FP formula
// on both paper instances and random mappings; (b) the adversarial
// worst-case schedule reproduces Eq.(1)/(2) exactly; (c) failure-free
// latency never exceeds the worst case; timings measure engine throughput.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "relap/gen/paper_instances.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/sim/engine.hpp"
#include "relap/sim/monte_carlo.hpp"
#include "relap/util/stats.hpp"

namespace {

using namespace relap;

void print_tables() {
  benchutil::header("Monte Carlo vs analytic FP (200k trials per row)");
  std::printf("%-28s %-12s %-12s %-12s %-10s\n", "mapping", "analytic", "empirical",
              "95% CI +/-", "verdict");
  {
    const auto plat = gen::fig5_platform();
    sim::MonteCarloOptions mc;
    mc.trials = 200'000;
    for (const auto& [name, m] :
         {std::pair{"fig5 single {2 fast}", gen::fig5_single_interval_mapping()},
          std::pair{"fig5 two-interval", gen::fig5_two_interval_mapping()}}) {
      const auto est = sim::estimate_failure_rate(plat, m, mc);
      std::printf("%-28s %-12.6f %-12.6f %-12.6f %-10s\n", name, est.analytic, est.empirical,
                  est.ci95_half_width, est.consistent(0.003) ? "consistent" : "OFF");
    }
  }
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    gen::PlatformGenOptions options;
    options.processors = 6;
    options.fp_min = 0.1;
    options.fp_max = 0.6;
    const auto plat = gen::random_comm_hom_het_failures(options, seed * 101);
    const mapping::IntervalMapping m({{{0, 1}, {0, 3}}, {{2, 3}, {1, 4, 5}}});
    sim::MonteCarloOptions mc;
    mc.trials = 200'000;
    mc.seed = seed;
    const auto est = sim::estimate_failure_rate(plat, m, mc);
    char name[32];
    std::snprintf(name, sizeof(name), "random mapping (seed %llu)",
                  static_cast<unsigned long long>(seed));
    std::printf("%-28s %-12.6f %-12.6f %-12.6f %-10s\n", name, est.analytic, est.empirical,
                est.ci95_half_width, est.consistent(0.003) ? "consistent" : "OFF");
  }

  benchutil::header("adversarial worst-case schedule reproduces the latency formulas");
  std::printf("%-10s %-18s %-14s %-14s %-10s\n", "platform", "formula", "formula value",
              "simulated", "match");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(4, seed);
    gen::PlatformGenOptions options;
    options.processors = 6;
    const mapping::IntervalMapping m({{{0, 1}, {0, 3}}, {{2, 3}, {1, 2, 4}}});
    sim::SimOptions sim_options;
    sim_options.send_order = sim::SendOrder::WorstCaseLast;
    {
      const auto plat = gen::random_comm_hom_het_failures(options, seed * 211);
      const auto scenario = sim::FailureScenario::worst_case(pipe, plat, m);
      const auto run = sim::simulate(pipe, plat, m, scenario, sim_options);
      const double eq1 = mapping::latency_eq1(pipe, plat, m);
      std::printf("%-10s %-18s %-14.6f %-14.6f %-10s\n", "comm-hom", "Eq.(1)", eq1,
                  run.datasets[0].latency(),
                  util::approx_equal(eq1, run.datasets[0].latency()) ? "yes" : "NO");
    }
    {
      const auto plat = gen::random_fully_heterogeneous(options, seed * 223);
      const auto scenario = sim::FailureScenario::worst_case(pipe, plat, m);
      const auto run = sim::simulate(pipe, plat, m, scenario, sim_options);
      const double eq2 = mapping::latency_eq2(pipe, plat, m);
      std::printf("%-10s %-18s %-14.6f %-14.6f %-10s\n", "fully-het", "Eq.(2)", eq2,
                  run.datasets[0].latency(),
                  util::approx_equal(eq2, run.datasets[0].latency()) ? "yes" : "NO");
    }
  }

  benchutil::header("failure-free vs worst-case latency (slack the adversary can use)");
  std::printf("%-6s %-14s %-14s %-10s\n", "seed", "failure-free", "worst-case", "ratio");
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(4, seed);
    gen::PlatformGenOptions options;
    options.processors = 6;
    const auto plat = gen::random_comm_hom_het_failures(options, seed * 307);
    const mapping::IntervalMapping m({{{0, 1}, {0, 3}}, {{2, 3}, {1, 2, 4}}});
    const auto free_run =
        sim::simulate(pipe, plat, m, sim::FailureScenario::none(6), {});
    const double worst = mapping::latency(pipe, plat, m);
    std::printf("%-6llu %-14.6f %-14.6f %-10.4f\n", static_cast<unsigned long long>(seed),
                free_run.datasets[0].latency(), worst,
                worst / free_run.datasets[0].latency());
  }
}

void bm_engine_single_dataset(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(n, 3);
  gen::PlatformGenOptions options;
  options.processors = n;
  const auto plat = gen::random_comm_hom_het_failures(options, 5);
  std::vector<platform::ProcessorId> first;
  std::vector<platform::ProcessorId> second;
  for (platform::ProcessorId u = 0; u < n; ++u) (u < n / 2 ? first : second).push_back(u);
  const mapping::IntervalMapping m({{{0, n / 2}, first}, {{n / 2 + 1, n - 1}, second}});
  const auto scenario = sim::FailureScenario::none(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(pipe, plat, m, scenario, {}));
  }
}
BENCHMARK(bm_engine_single_dataset)->Arg(8)->Arg(32)->Arg(128);

void bm_engine_pipelined_datasets(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(8, 3);
  gen::PlatformGenOptions options;
  options.processors = 8;
  const auto plat = gen::random_comm_hom_het_failures(options, 5);
  const mapping::IntervalMapping m({{{0, 4}, {0, 1, 2, 3}}, {{5, 7}, {4, 5, 6, 7}}});
  const auto scenario = sim::FailureScenario::none(8);
  sim::SimOptions sim_options;
  sim_options.dataset_count = d;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(pipe, plat, m, scenario, sim_options));
  }
}
BENCHMARK(bm_engine_pipelined_datasets)->Arg(1)->Arg(16)->Arg(256);

void bm_monte_carlo_direct(benchmark::State& state) {
  const auto plat = gen::fig5_platform();
  const auto m = gen::fig5_two_interval_mapping();
  sim::MonteCarloOptions mc;
  mc.trials = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::estimate_failure_rate(plat, m, mc));
  }
}
BENCHMARK(bm_monte_carlo_direct)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
