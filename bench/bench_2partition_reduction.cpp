// Experiment T7 (paper Theorem 7): the bi-criteria decision problem on
// Fully Heterogeneous platforms is NP-hard (reduction from 2-PARTITION).
//
// Reproduction: yes/no instances map to feasible/infeasible scheduling
// decisions through the reduction, the squeeze argument is visible in the
// numbers (latency forces sum <= S/2, reliability forces sum >= S/2), and
// the exhaustive solver's cost on reduced instances grows exponentially
// while the pseudo-polynomial source solver stays cheap.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/types.hpp"
#include "relap/reductions/partition.hpp"
#include "relap/util/rng.hpp"

namespace {

using namespace relap;

bool decide_via_scheduling(const reductions::PartitionReduction& reduced) {
  const auto outcome = algorithms::exhaustive_pareto(reduced.pipeline, reduced.platform);
  if (!outcome) return false;
  for (const auto& p : outcome->front) {
    if (algorithms::within_cap(p.latency, reduced.latency_threshold) &&
        algorithms::within_cap(p.failure_probability, reduced.fp_threshold)) {
      return true;
    }
  }
  return false;
}

void print_tables() {
  benchutil::header("T7: 2-PARTITION instances through the reduction");
  struct Case {
    const char* name;
    std::vector<std::uint64_t> values;
  };
  const std::vector<Case> cases = {
      {"{1,1}", {1, 1}},
      {"{1,2} (odd sum)", {1, 2}},
      {"{3,1,1,2,2,1}", {3, 1, 1, 2, 2, 1}},
      {"{1,1,1,1,6}", {1, 1, 1, 1, 6}},
      {"{4,5,6,7}", {4, 5, 6, 7}},
      {"{10,1,1,1}", {10, 1, 1, 1}},
      {"{8,7,6,5,4,3,2,1}", {8, 7, 6, 5, 4, 3, 2, 1}},
  };
  std::printf("%-22s %-6s %-12s %-12s %-12s %-12s %-8s\n", "instance", "S", "L=S/2+2",
              "FP=e^-S/2", "partition?", "schedule?", "match");
  for (const Case& c : cases) {
    const reductions::PartitionInstance instance{c.values};
    const auto reduced = reductions::partition_to_bicriteria(instance);
    const bool partition = reductions::has_equal_partition(instance);
    const bool schedule = decide_via_scheduling(reduced);
    std::printf("%-22s %-6llu %-12.1f %-12.6f %-12s %-12s %-8s\n", c.name,
                static_cast<unsigned long long>(instance.sum()), reduced.latency_threshold,
                reduced.fp_threshold, partition ? "yes" : "no", schedule ? "yes" : "no",
                partition == schedule ? "ok" : "MISMATCH");
  }

  benchutil::header("the squeeze: subset sums vs the two thresholds ({3,1,1,2,2,1}, S/2 = 5)");
  const reductions::PartitionInstance instance{{3, 1, 1, 2, 2, 1}};
  const auto reduced = reductions::partition_to_bicriteria(instance);
  std::printf("%-14s %-12s %-14s %-14s %-14s\n", "subset sum", "latency", "lat feasible",
              "FP", "FP feasible");
  for (const double sum : {3.0, 4.0, 5.0, 6.0, 7.0}) {
    const double latency = sum + 2.0;
    const double fp = std::exp(-sum);
    std::printf("%-14.1f %-12.1f %-14s %-14.6f %-14s\n", sum, latency,
                latency <= reduced.latency_threshold + 1e-9 ? "yes" : "no", fp,
                fp <= reduced.fp_threshold + 1e-12 ? "yes" : "no");
  }
  benchutil::note("(only sum == S/2 satisfies both — the reduction's squeeze)");
}

void bm_pseudo_polynomial_source(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  reductions::PartitionInstance instance;
  for (std::size_t i = 0; i < m; ++i) {
    instance.values.push_back(1 + rng.uniform_int(50));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reductions::has_equal_partition(instance));
  }
}
BENCHMARK(bm_pseudo_polynomial_source)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void bm_exhaustive_on_reduced(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  reductions::PartitionInstance instance;
  for (std::size_t i = 0; i < m; ++i) {
    instance.values.push_back(1 + rng.uniform_int(9));
  }
  const auto reduced = reductions::partition_to_bicriteria(instance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decide_via_scheduling(reduced));
  }
}
BENCHMARK(bm_exhaustive_on_reduced)->DenseRange(4, 14, 2)->Unit(benchmark::kMicrosecond);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
