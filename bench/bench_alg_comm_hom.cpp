// Experiment ALG3/ALG4 (paper Theorem 6): the polynomial bi-criteria
// algorithms for Communication Homogeneous platforms with homogeneous
// failures.
//
// Reproduction: the staircase tables on an instance with spread-out speeds
// (each extra replica now also slows the compute term down, unlike the
// Fully Homogeneous case), the exhaustive audit, and runtime scaling.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "relap/algorithms/comm_hom.hpp"
#include "relap/algorithms/exhaustive.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/platform/builders.hpp"
#include "relap/util/stats.hpp"

namespace {

using namespace relap;

platform::Platform staircase_platform() {
  // Speeds 10, 9, ..., 1: T(k) = k * 2 + 60 / s_(k) + 1.
  std::vector<double> speeds;
  for (int s = 10; s >= 1; --s) speeds.push_back(static_cast<double>(s));
  return platform::make_comm_homogeneous(std::move(speeds), 1.0, 0.3);
}

void print_tables() {
  const auto pipe = pipeline::Pipeline({60.0}, {2.0, 1.0});
  const auto plat = staircase_platform();

  benchutil::header("ALG3: replication on the k fastest processors vs latency threshold");
  benchutil::note("instance: W=60, delta=(2,1), speeds 10..1, b=1, fp=0.3;");
  benchutil::note("T(k) = 2k + 60/s_(k) + 1 where s_(k) is the k-th fastest speed.");
  std::printf("%-8s %-6s %-10s %-14s %-12s\n", "L", "k", "s_(k)", "FP = 0.3^k", "latency");
  for (const double L : {9.0, 11.7, 13.0, 15.0, 19.0, 23.0, 28.0, 40.0, 81.0}) {
    const auto r = algorithms::comm_hom_min_fp_for_latency(pipe, plat, L);
    if (!r) {
      std::printf("%-8.1f %-6s\n", L, "infeasible");
      continue;
    }
    const auto& group = r->mapping.interval(0).processors;
    double slowest = plat.speed(group.front());
    for (const auto u : group) slowest = std::min(slowest, plat.speed(u));
    std::printf("%-8.1f %-6zu %-10.0f %-14.8f %-12.2f\n", L, group.size(), slowest,
                r->failure_probability, r->latency);
  }

  benchutil::header("ALG4: min latency vs failure threshold");
  std::printf("%-12s %-6s %-14s %-12s\n", "FP cap", "k", "achieved FP", "latency");
  for (const double cap : {0.5, 0.3, 0.1, 0.03, 0.01, 0.001}) {
    const auto r = algorithms::comm_hom_min_latency_for_fp(pipe, plat, cap);
    if (!r) {
      std::printf("%-12.4f %-6s\n", cap, "infeasible");
      continue;
    }
    std::printf("%-12.4f %-6zu %-14.8f %-12.2f\n", cap, r->mapping.processors_used(),
                r->failure_probability, r->latency);
  }

  benchutil::header("optimality audit vs exhaustive (random comm-hom instances)");
  std::size_t audited = 0;
  std::size_t agreed = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto p = gen::random_uniform_pipeline(3, seed);
    gen::PlatformGenOptions options;
    options.processors = 4;
    const auto ch = gen::random_comm_homogeneous(options, seed * 41);
    const auto oracle = algorithms::exhaustive_pareto(p, ch);
    if (!oracle) continue;
    for (const auto& point : oracle->front) {
      const auto fast = algorithms::comm_hom_min_fp_for_latency(p, ch, point.latency);
      ++audited;
      if (fast && (util::approx_equal(fast->failure_probability, point.failure_probability) ||
                   fast->failure_probability < point.failure_probability)) {
        ++agreed;
      }
    }
  }
  std::printf("threshold probes audited: %zu, optimal: %zu (expect 100%%)\n", audited, agreed);
}

void bm_alg3(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(8, 3);
  gen::PlatformGenOptions options;
  options.processors = m;
  const auto plat = gen::random_comm_homogeneous(options, 7);
  const double L = 2.0 * static_cast<double>(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::comm_hom_min_fp_for_latency(pipe, plat, L));
  }
}
BENCHMARK(bm_alg3)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void bm_alg4(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(8, 3);
  gen::PlatformGenOptions options;
  options.processors = m;
  const auto plat = gen::random_comm_homogeneous(options, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::comm_hom_min_latency_for_fp(pipe, plat, 1e-6));
  }
}
BENCHMARK(bm_alg4)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
