// Experiment §5 (the paper's future work): the latency / reliability /
// throughput interplay. The paper closes by naming this tri-criteria
// problem; this bench explores it with the library's period model
// (mapping/throughput.hpp): for each latency budget, the FP-optimal mapping
// is compared against the FP-optimal mapping *under an additional period
// constraint*, exposing the price of steady-state throughput.

#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/types.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/mapping/throughput.hpp"

namespace {

using namespace relap;

/// Exact tri-criteria probe: min FP s.t. latency <= L and period <= P
/// (exhaustive_min_fp_for_latency_and_period applies the period filter
/// inside the enumeration — a latency/FP front alone cannot answer this).
std::optional<algorithms::Solution> min_fp_latency_period(const pipeline::Pipeline& pipe,
                                                          const platform::Platform& plat,
                                                          double max_latency,
                                                          double max_period) {
  auto r = algorithms::exhaustive_min_fp_for_latency_and_period(pipe, plat, max_latency,
                                                                max_period);
  if (!r) return std::nullopt;
  return std::move(r).take();
}

void print_tables() {
  const auto pipe = gen::bimodal_pipeline(3, 7);
  const auto plat = gen::random_comm_hom_het_failures({.processors = 5}, 11);
  const double floor = mapping::latency_lower_bound(pipe, plat);

  benchutil::header("tri-criteria surface: optimal FP vs (latency budget, period budget)");
  benchutil::note("(paper §5 future work; period model documented in throughput.hpp)");
  std::printf("%-14s", "L \\ P");
  const std::vector<double> period_budgets = {floor * 0.8, floor * 1.2, floor * 2.0,
                                              floor * 4.0, 1e18};
  for (const double P : period_budgets) {
    if (P > 1e17) {
      std::printf(" %-12s", "unbounded");
    } else {
      std::printf(" %-12.2f", P);
    }
  }
  std::printf("\n");
  for (const double factor : {1.2, 1.6, 2.2, 3.0, 4.5, 7.0}) {
    const double L = floor * factor;
    std::printf("%-14.2f", L);
    for (const double P : period_budgets) {
      const auto best = min_fp_latency_period(pipe, plat, L, P);
      if (best) {
        std::printf(" %-12.6f", best->failure_probability);
      } else {
        std::printf(" %-12s", "infeas");
      }
    }
    std::printf("\n");
  }
  benchutil::note("\nshape check: each row is non-increasing left to right (looser period");
  benchutil::note("budgets admit more replication) and each column non-increasing top to");
  benchutil::note("bottom (looser latency budgets do too). Tight period budgets forbid");
  benchutil::note("exactly the high-replication mappings reliability wants — the tension");
  benchutil::note("the paper's closing section predicts.");
}

void bm_period_eval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(n, 7);
  gen::PlatformGenOptions options;
  options.processors = n;
  const auto plat = gen::random_comm_hom_het_failures(options, 11);
  std::vector<platform::ProcessorId> first;
  std::vector<platform::ProcessorId> second;
  for (platform::ProcessorId u = 0; u < n; ++u) (u < n / 2 ? first : second).push_back(u);
  const mapping::IntervalMapping m({{{0, n / 2}, first}, {{n / 2 + 1, n - 1}, second}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::period(pipe, plat, m));
  }
}
BENCHMARK(bm_period_eval)->Arg(8)->Arg(32)->Arg(128);

void bm_tri_criteria_probe(benchmark::State& state) {
  const auto pipe = gen::bimodal_pipeline(3, 7);
  const auto plat = gen::random_comm_hom_het_failures({.processors = 5}, 11);
  const double floor = mapping::latency_lower_bound(pipe, plat);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_fp_latency_period(pipe, plat, floor * 3.0, floor * 2.0));
  }
}
BENCHMARK(bm_tri_criteria_probe)->Unit(benchmark::kMillisecond);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
