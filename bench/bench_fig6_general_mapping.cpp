// Experiment FIG6/T4 (paper Theorem 4, Figure 6): minimizing latency over
// *general* mappings on Fully Heterogeneous platforms is polynomial via the
// layered-graph shortest path.
//
// Reproduction: optimality vs brute force (m^n enumeration) on small
// instances, the interval-vs-general gap, and the O(n * m^2) runtime scaling
// that certifies the polynomial claim.

#include <cstdio>

#include "bench_util.hpp"
#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/general_mapping_sp.hpp"
#include "relap/gen/pipelines.hpp"
#include "relap/gen/platforms.hpp"
#include "relap/util/stats.hpp"

namespace {

using namespace relap;

void print_tables() {
  benchutil::header("T4: shortest path vs brute force over all m^n general mappings");
  std::printf("%-6s %-6s %-6s %-14s %-14s %-8s\n", "seed", "n", "m", "shortest-path",
              "brute-force", "match");
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pipe = gen::random_uniform_pipeline(4, seed);
    gen::PlatformGenOptions options;
    options.processors = 4;
    const auto plat = gen::random_fully_heterogeneous(options, seed * 71);
    const auto sp = algorithms::general_mapping_min_latency(pipe, plat);
    const auto brute = algorithms::exhaustive_general_min_latency(pipe, plat);
    std::printf("%-6llu %-6d %-6d %-14.6f %-14.6f %-8s\n",
                static_cast<unsigned long long>(seed), 4, 4, sp.latency,
                brute ? brute->latency : -1.0,
                brute && util::approx_equal(sp.latency, brute->latency) ? "yes" : "NO");
  }

  benchutil::header("general vs best unreplicated interval mapping (the relaxation gap)");
  std::printf("%-6s %-14s %-14s %-14s\n", "seed", "general", "interval", "gap %%");
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto pipe = gen::bimodal_pipeline(5, seed);
    gen::PlatformGenOptions options;
    options.processors = 3;
    const auto plat = gen::random_fully_heterogeneous(options, seed * 73);
    const auto sp = algorithms::general_mapping_min_latency(pipe, plat);
    algorithms::ExhaustiveOptions unreplicated;
    unreplicated.max_replication = 1;
    const auto interval = algorithms::exhaustive_pareto(pipe, plat, unreplicated);
    const double best_interval = interval ? interval->front.front().latency : -1.0;
    std::printf("%-6llu %-14.6f %-14.6f %-14.2f\n", static_cast<unsigned long long>(seed),
                sp.latency, best_interval,
                100.0 * (best_interval - sp.latency) / best_interval);
  }
  benchutil::note("\nshape check: gap >= 0 always (general mappings relax intervals);");
  benchutil::note("it is usually 0 on small instances and grows when bouncing between");
  benchutil::note("fast processors across slow boundaries pays off.");
}

void bm_shortest_path(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto pipe = gen::random_uniform_pipeline(n, 3);
  gen::PlatformGenOptions options;
  options.processors = m;
  const auto plat = gen::random_fully_heterogeneous(options, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::general_mapping_min_latency(pipe, plat));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n * m * m));
}
BENCHMARK(bm_shortest_path)
    ->Args({8, 8})
    ->Args({16, 16})
    ->Args({32, 32})
    ->Args({64, 64})
    ->Complexity(benchmark::oN);

void bm_brute_force(benchmark::State& state) {
  // The m^n wall the shortest path avoids.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pipe = gen::random_uniform_pipeline(n, 3);
  gen::PlatformGenOptions options;
  options.processors = 4;
  const auto plat = gen::random_fully_heterogeneous(options, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::exhaustive_general_min_latency(pipe, plat));
  }
}
BENCHMARK(bm_brute_force)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

RELAP_BENCH_MAIN(print_tables)
