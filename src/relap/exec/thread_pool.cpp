#include "relap/exec/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "relap/util/assert.hpp"

namespace relap::exec {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("RELAP_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) return static_cast<std::size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// One blocking `run()` call: an index space [0, total) claimed via an atomic
/// cursor. Completion is tracked separately from claiming because a claimed
/// task is still running after the cursor passes `total`.
struct ThreadPool::Job {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t total = 0;
  std::atomic<std::size_t> next_task{0};

  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t done = 0;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t threads) : thread_count_(threads) {
  RELAP_ASSERT(threads >= 1, "a thread pool needs at least the calling thread");
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain(Job& job) {
  while (true) {
    const std::size_t task = job.next_task.fetch_add(1, std::memory_order_relaxed);
    if (task >= job.total) return;
    std::exception_ptr error;
    try {
      (*job.body)(task);
    } catch (...) {
      error = std::current_exception();
    }
    const std::lock_guard<std::mutex> lock(job.mutex);
    if (error && !job.error) job.error = error;
    if (++job.done == job.total) job.all_done.notify_all();
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (stopping_) return;
      job = jobs_.front();
      if (job->next_task.load(std::memory_order_relaxed) >= job->total) {
        // Exhausted: retire it so the next wait does not spin on it.
        jobs_.pop_front();
        continue;
      }
    }
    drain(*job);
  }
}

void ThreadPool::run(std::size_t tasks, const std::function<void(std::size_t)>& body) {
  if (tasks == 0) return;
  if (thread_count_ == 1 || tasks == 1) {
    // Inline fast path: no synchronization, exceptions propagate directly.
    for (std::size_t task = 0; task < tasks; ++task) body(task);
    return;
  }

  auto job = std::make_shared<Job>();
  job->body = &body;
  job->total = tasks;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(job);
  }
  work_available_.notify_all();

  drain(*job);

  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->all_done.wait(lock, [&] { return job->done == job->total; });
  }
  {
    // The job is exhausted; remove it if a worker has not already.
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->get() == job.get()) {
        jobs_.erase(it);
        break;
      }
    }
  }
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

}  // namespace relap::exec
