#pragma once

/// \file parallel.hpp
/// Deterministic data-parallel primitives over a `ThreadPool`.
///
/// The key invariant: **the chunk grid depends only on the problem size and
/// the grain, never on the thread count.** Each chunk writes its results to
/// its own slot, and reductions merge the per-chunk accumulators serially in
/// chunk-index order. A computation expressed through these primitives
/// therefore produces bit-identical results on 1, 2 or 64 threads — the
/// property the determinism regression tests pin down.
///
/// Randomized chunk bodies get their independent streams by pre-splitting a
/// parent `util::Rng` into one child per chunk (`util::Rng::split_n`), again
/// in chunk-index order, so seeding is also thread-count-invariant.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "relap/exec/thread_pool.hpp"
#include "relap/util/assert.hpp"

namespace relap::exec {

/// A fixed partition of [0, n) into `ceil(n / grain)` chunks of `grain`
/// elements each (the last one possibly shorter).
struct ChunkGrid {
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;

  [[nodiscard]] std::size_t begin(std::size_t chunk) const { return chunk * grain; }
  [[nodiscard]] std::size_t end(std::size_t chunk) const {
    const std::size_t e = (chunk + 1) * grain;
    return e < n ? e : n;
  }
};

/// Builds the grid; `grain` >= 1. Pure function of (n, grain).
[[nodiscard]] ChunkGrid chunk_grid(std::size_t n, std::size_t grain);

/// Runs `body(begin, end, chunk)` for every chunk of the grid over [0, n).
/// Chunks run concurrently on `pool` (null = shared pool); the body must only
/// write to per-chunk state.
template <typename Body>
void parallel_for_chunks(std::size_t n, std::size_t grain, Body&& body,
                         ThreadPool* pool = nullptr) {
  const ChunkGrid grid = chunk_grid(n, grain);
  if (grid.chunks == 0) return;
  const std::function<void(std::size_t)> task = [&](std::size_t chunk) {
    body(grid.begin(chunk), grid.end(chunk), chunk);
  };
  ThreadPool::resolve(pool).run(grid.chunks, task);
}

/// Runs `body(i)` for every i in [0, n), `grain` indices per task.
template <typename Body>
void parallel_for(std::size_t n, std::size_t grain, Body&& body, ThreadPool* pool = nullptr) {
  parallel_for_chunks(
      n, grain,
      [&body](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      pool);
}

/// Order-deterministic chunked reduction.
///
/// `make()` builds a fresh accumulator per chunk; `body(acc, begin, end,
/// chunk)` folds the chunk's index range into it; after every chunk finished,
/// `merge(result, acc)` is applied serially in increasing chunk order,
/// starting from chunk 0's accumulator. With n == 0 the result is `make()`.
template <typename Make, typename Body, typename Merge>
[[nodiscard]] auto parallel_reduce(std::size_t n, std::size_t grain, Make&& make, Body&& body,
                                   Merge&& merge, ThreadPool* pool = nullptr) {
  using Acc = decltype(make());
  const ChunkGrid grid = chunk_grid(n, grain);
  if (grid.chunks == 0) return make();

  std::vector<Acc> partials;
  partials.reserve(grid.chunks);
  for (std::size_t chunk = 0; chunk < grid.chunks; ++chunk) partials.push_back(make());

  const std::function<void(std::size_t)> task = [&](std::size_t chunk) {
    body(partials[chunk], grid.begin(chunk), grid.end(chunk), chunk);
  };
  ThreadPool::resolve(pool).run(grid.chunks, task);

  Acc result = std::move(partials[0]);
  for (std::size_t chunk = 1; chunk < grid.chunks; ++chunk) {
    merge(result, std::move(partials[chunk]));
  }
  return result;
}

}  // namespace relap::exec
