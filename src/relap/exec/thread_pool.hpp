#pragma once

/// \file thread_pool.hpp
/// A small fixed-size thread pool — the execution backbone of the parallel
/// solver hot paths (see parallel.hpp for the chunked primitives built on
/// top of it).
///
/// Design constraints, in order of importance:
///  * **Determinism first.** The pool never influences *what* is computed,
///    only *when*: work is pre-partitioned into an indexed task space and
///    tasks only write to their own slots, so results are independent of
///    scheduling. There is deliberately no work stealing and no per-thread
///    caching of results.
///  * **Caller participation.** `run()` blocks, and the calling thread works
///    through tasks alongside the pool. A pool constructed with 1 thread
///    therefore runs everything inline on the caller — the "serial" baseline
///    the determinism tests and scaling bench compare against — and nested
///    `run()` calls cannot deadlock: the inner caller can always drain its
///    own task space even when every pool thread is busy.
///  * **Exception safety.** The first exception thrown by a task is captured
///    and rethrown on the calling thread after the job completes.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace relap::exec {

/// Worker count used by `ThreadPool::shared()`: the `RELAP_THREADS`
/// environment variable when set to a positive integer, otherwise
/// `std::thread::hardware_concurrency()`; always at least 1.
[[nodiscard]] std::size_t default_thread_count();

class ThreadPool {
 public:
  /// A pool with parallelism `threads` (>= 1): the caller of `run()` counts
  /// as one of them, so `threads - 1` worker threads are spawned.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return thread_count_; }

  /// Runs `body(0) ... body(tasks - 1)`, each exactly once, distributed over
  /// the calling thread and the pool workers. Blocks until all tasks have
  /// finished; rethrows the first exception any task threw. Task indices are
  /// claimed in increasing order, but tasks run concurrently — they must not
  /// depend on each other.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& body);

  /// The process-wide default pool, lazily constructed with
  /// `default_thread_count()` threads.
  [[nodiscard]] static ThreadPool& shared();

  /// `pool` if non-null, else the shared pool. The hot-path option structs
  /// carry an optional `ThreadPool*` resolved through this helper.
  [[nodiscard]] static ThreadPool& resolve(ThreadPool* pool) {
    return pool != nullptr ? *pool : shared();
  }

 private:
  struct Job;

  void worker_loop();
  /// Claims and runs tasks of `job` until its index space is exhausted.
  static void drain(Job& job);

  std::size_t thread_count_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stopping_ = false;
};

}  // namespace relap::exec
