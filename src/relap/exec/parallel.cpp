#include "relap/exec/parallel.hpp"

namespace relap::exec {

ChunkGrid chunk_grid(std::size_t n, std::size_t grain) {
  RELAP_ASSERT(grain >= 1, "chunk grain must be positive");
  ChunkGrid grid;
  grid.n = n;
  grid.grain = grain;
  grid.chunks = n == 0 ? 0 : (n - 1) / grain + 1;
  return grid;
}

}  // namespace relap::exec
