#include "relap/sim/trace.hpp"

#include "relap/util/strings.hpp"

namespace relap::sim {

namespace {

std::string endpoint_name(std::int64_t id, bool sender) {
  if (id == kExternal) return sender ? "P_in" : "P_out";
  return "P" + std::to_string(id);
}

}  // namespace

std::string Trace::describe() const {
  std::string out;
  for (const TraceOp& op : ops_) {
    out += '[' + util::format_fixed(op.start, 3) + ", " + util::format_fixed(op.end, 3) + "] d" +
           std::to_string(op.dataset) + " I" + std::to_string(op.interval) + ' ';
    if (op.kind == OpKind::Transfer) {
      out += endpoint_name(op.subject, true) + " -> " + endpoint_name(op.peer, false);
    } else {
      out += endpoint_name(op.subject, true) + " compute";
    }
    if (!op.completed) out += " (failed)";
    out += '\n';
  }
  return out;
}

}  // namespace relap::sim
