#include "relap/sim/engine.hpp"

#include <algorithm>
#include <limits>

#include "relap/util/assert.hpp"

namespace relap::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Mutable per-run simulation state.
struct State {
  std::vector<double> avail;  ///< next-free time per processor
  double avail_in = 0.0;
  double avail_out = 0.0;
  std::vector<double> death;        ///< resolved death time per processor
  std::vector<bool> received_once;  ///< for fail_after_first_receive resolution
};

/// A transfer completes iff both endpoints outlive it.
bool transfer_completes(const State& state, std::int64_t sender, std::int64_t receiver,
                        double end) {
  const bool sender_ok =
      sender == kExternal || state.death[static_cast<std::size_t>(sender)] >= end;
  const bool receiver_ok =
      receiver == kExternal || state.death[static_cast<std::size_t>(receiver)] >= end;
  return sender_ok && receiver_ok;
}

}  // namespace

double SimResult::worst_latency() const {
  double worst = -kInf;
  for (const DatasetOutcome& d : datasets) {
    if (d.completed) worst = std::max(worst, d.latency());
  }
  return worst;
}

std::size_t SimResult::completed_count() const {
  std::size_t count = 0;
  for (const DatasetOutcome& d : datasets) count += d.completed ? 1 : 0;
  return count;
}

SimResult simulate(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                   const mapping::IntervalMapping& mapping, const FailureScenario& scenario,
                   const SimOptions& options) {
  RELAP_ASSERT(mapping.stage_count() == pipeline.stage_count(),
               "mapping does not cover the pipeline");
  const std::size_t m = platform.processor_count();
  RELAP_ASSERT(scenario.failure_time.size() == m && scenario.fail_after_first_receive.size() == m,
               "failure scenario does not match the platform");
  RELAP_ASSERT(options.dataset_count >= 1, "need at least one data set");

  State state;
  state.avail.assign(m, 0.0);
  state.death = scenario.failure_time;
  state.received_once.assign(m, false);

  const std::size_t p = mapping.interval_count();

  // Receive order per interval, fixed across data sets.
  std::vector<std::vector<platform::ProcessorId>> order(p);
  for (std::size_t j = 0; j < p; ++j) {
    order[j] = mapping.interval(j).processors;  // already sorted by id
    if (options.send_order == SendOrder::WorstCaseLast) {
      const std::vector<platform::ProcessorId>* next =
          (j + 1 < p) ? &mapping.interval(j + 1).processors : nullptr;
      const platform::ProcessorId survivor =
          worst_case_survivor(pipeline, platform, mapping.interval(j), next);
      auto it = std::find(order[j].begin(), order[j].end(), survivor);
      RELAP_ASSERT(it != order[j].end(), "survivor must belong to its group");
      order[j].erase(it);
      order[j].push_back(survivor);
    }
  }

  SimResult result;
  result.datasets.resize(options.dataset_count);

  for (std::size_t d = 0; d < options.dataset_count; ++d) {
    DatasetOutcome& outcome = result.datasets[d];
    outcome.injection_time = -1.0;  // set at the first transfer

    // The designated sender of the previous interval; kExternal means P_in.
    std::int64_t sender = kExternal;
    double data_ready = 0.0;
    bool dataset_alive = true;

    for (std::size_t j = 0; j < p && dataset_alive; ++j) {
      const mapping::IntervalAssignment& group = mapping.interval(j);
      const double in_size = pipeline.data(group.stages.first);
      const double work = pipeline.work_sum(group.stages.first, group.stages.last);

      // --- Serialized receive phase. -----------------------------------
      std::vector<double> receive_end(m, kInf);  // kInf = did not receive
      double& sender_avail =
          (sender == kExternal) ? state.avail_in : state.avail[static_cast<std::size_t>(sender)];
      for (const platform::ProcessorId v : order[j]) {
        const double start = std::max({sender_avail, state.avail[v], data_ready});
        // Consensus knows a peer that is already dead; skip it for free.
        if (state.death[v] <= start) continue;
        // A dead sender cannot transmit; the dataset is lost past this point.
        if (sender != kExternal && state.death[static_cast<std::size_t>(sender)] <= start) break;
        const double duration =
            in_size / ((sender == kExternal) ? platform.bandwidth_in(v)
                                             : platform.bandwidth(
                                                   static_cast<platform::ProcessorId>(sender), v));
        const double end = start + duration;
        const bool ok = transfer_completes(state, sender, static_cast<std::int64_t>(v), end);
        sender_avail = end;
        state.avail[v] = end;
        if (outcome.injection_time < 0.0 && sender == kExternal) outcome.injection_time = start;
        if (options.trace != nullptr) {
          options.trace->record(TraceOp{OpKind::Transfer, d, j, sender,
                                        static_cast<std::int64_t>(v), start, end, ok});
        }
        if (ok) {
          receive_end[v] = end;
          if (scenario.fail_after_first_receive[v] && !state.received_once[v]) {
            state.death[v] = end;  // dies the instant its first receive completes
          }
          state.received_once[v] = true;
        }
      }

      // --- Compute phase. ----------------------------------------------
      double best_completion = kInf;
      platform::ProcessorId best_replica = 0;
      for (const platform::ProcessorId v : group.processors) {
        if (receive_end[v] == kInf) continue;
        const double start = std::max(receive_end[v], state.avail[v]);
        const double end = start + work / platform.speed(v);
        state.avail[v] = end;
        // "death > start" makes a zero-work compute on a
        // dead-after-receive replica fail, as it should.
        const bool ok = state.death[v] >= end && state.death[v] > start;
        if (options.trace != nullptr) {
          options.trace->record(TraceOp{OpKind::Compute, d, j, static_cast<std::int64_t>(v),
                                        kExternal, start, end, ok});
        }
        if (ok && (end < best_completion ||
                   (end == best_completion && v < best_replica))) {
          best_completion = end;
          best_replica = v;
        }
      }
      if (best_completion == kInf) {
        dataset_alive = false;
        break;
      }
      sender = static_cast<std::int64_t>(best_replica);
      data_ready = best_completion;
    }

    if (!dataset_alive) {
      outcome.completed = false;
      outcome.completion_time = kInf;
      result.application_failed = true;
      continue;
    }

    // --- Final transfer to P_out. --------------------------------------
    const auto out_sender = static_cast<platform::ProcessorId>(sender);
    const double start = std::max({state.avail[out_sender], state.avail_out, data_ready});
    if (state.death[out_sender] <= start) {
      outcome.completed = false;
      outcome.completion_time = kInf;
      result.application_failed = true;
      continue;
    }
    const double end = start + pipeline.data(pipeline.stage_count()) / platform.bandwidth_out(out_sender);
    const bool ok = state.death[out_sender] >= end;
    state.avail[out_sender] = end;
    state.avail_out = end;
    if (options.trace != nullptr) {
      options.trace->record(
          TraceOp{OpKind::Transfer, d, p, sender, kExternal, start, end, ok});
    }
    if (!ok) {
      outcome.completed = false;
      outcome.completion_time = kInf;
      result.application_failed = true;
      continue;
    }
    outcome.completed = true;
    outcome.completion_time = end;
    result.makespan = std::max(result.makespan, end);
  }

  return result;
}

}  // namespace relap::sim
