#include "relap/sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <span>

#include "relap/util/assert.hpp"

namespace relap::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A transfer completes iff both endpoints outlive it.
bool transfer_completes(const std::vector<double>& death, std::int64_t sender,
                        std::int64_t receiver, double end) {
  const bool sender_ok = sender == kExternal || death[static_cast<std::size_t>(sender)] >= end;
  const bool receiver_ok =
      receiver == kExternal || death[static_cast<std::size_t>(receiver)] >= end;
  return sender_ok && receiver_ok;
}

}  // namespace

double SimResult::worst_latency() const {
  double worst = -kInf;
  for (const DatasetOutcome& d : datasets) {
    if (d.completed) worst = std::max(worst, d.latency());
  }
  return worst;
}

std::size_t SimResult::completed_count() const {
  std::size_t count = 0;
  for (const DatasetOutcome& d : datasets) count += d.completed ? 1 : 0;
  return count;
}

SimScratch::SimScratch(std::size_t processor_count, std::size_t interval_count) {
  avail_.reserve(processor_count);
  death_.reserve(processor_count);
  received_once_.reserve(processor_count);
  receive_end_.reserve(processor_count);
  order_.reserve(processor_count);
  groups_.reserve(processor_count);
  order_offsets_.reserve(interval_count + 1);
  recv_offsets_.reserve(interval_count + 1);
  compute_duration_.reserve(processor_count);
  out_duration_.reserve(processor_count);
  scenario_.failure_time.reserve(processor_count);
  scenario_.fail_after_first_receive.reserve(processor_count);
}

void SimScratch::bind(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                      const mapping::IntervalMapping& mapping, SendOrder send_order) {
  RELAP_ASSERT(mapping.stage_count() == pipeline.stage_count(),
               "mapping does not cover the pipeline");
  const std::size_t m = platform.processor_count();
  const std::size_t p = mapping.interval_count();
  processor_count_ = m;
  interval_count_ = p;
  send_order_ = send_order;

  order_.clear();
  groups_.clear();
  order_offsets_.resize(p + 1);
  order_offsets_[0] = 0;
  for (std::size_t j = 0; j < p; ++j) {
    const mapping::IntervalAssignment& group = mapping.interval(j);
    for (const platform::ProcessorId v : group.processors) {  // sorted by id
      order_.push_back(v);
      groups_.push_back(v);
    }
    if (send_order == SendOrder::WorstCaseLast) {
      const std::vector<platform::ProcessorId>* next =
          (j + 1 < p) ? &mapping.interval(j + 1).processors : nullptr;
      const platform::ProcessorId survivor =
          worst_case_survivor(pipeline, platform, group, next);
      const auto begin = order_.begin() + static_cast<std::ptrdiff_t>(order_offsets_[j]);
      const auto it = std::find(begin, order_.end(), survivor);
      RELAP_ASSERT(it != order_.end(), "survivor must belong to its group");
      std::rotate(it, it + 1, order_.end());  // survivor last, others in id order
    }
    order_offsets_[j + 1] = order_.size();
  }

  // Hoist every trial-invariant cost term: the per-trial loops then touch
  // only flat scratch arrays, never the pipeline/platform accessors.
  recv_duration_.clear();
  recv_offsets_.resize(p + 1);
  recv_offsets_[0] = 0;
  compute_duration_.assign(m, 0.0);
  out_duration_.assign(m, 0.0);
  for (std::size_t j = 0; j < p; ++j) {
    const mapping::IntervalAssignment& group = mapping.interval(j);
    const double in_size = pipeline.data(group.stages.first);
    const double work = pipeline.work_sum(group.stages.first, group.stages.last);
    const std::span<const platform::ProcessorId> order{
        order_.data() + order_offsets_[j], order_offsets_[j + 1] - order_offsets_[j]};
    if (j == 0) {
      for (const platform::ProcessorId v : order) {
        recv_duration_.push_back(in_size / platform.bandwidth_in(v));
      }
    } else {
      for (const platform::ProcessorId u : mapping.interval(j - 1).processors) {
        for (const platform::ProcessorId v : order) {
          recv_duration_.push_back(in_size / platform.bandwidth(u, v));
        }
      }
    }
    recv_offsets_[j + 1] = recv_duration_.size();
    for (const platform::ProcessorId v : group.processors) {
      compute_duration_[v] = work / platform.speed(v);
    }
  }
  const double out_size = pipeline.data(pipeline.stage_count());
  for (const platform::ProcessorId v : mapping.interval(p - 1).processors) {
    out_duration_[v] = out_size / platform.bandwidth_out(v);
  }

  avail_.resize(m);
  death_.resize(m);
  received_once_.resize(m);
  receive_end_.resize(m);
  bound_ = true;
}

void simulate_into(SimScratch& scratch, const FailureScenario& scenario,
                   const SimOptions& options, SimResult& out) {
  RELAP_ASSERT(scratch.bound_ && scratch.send_order_ == options.send_order,
               "scratch is not bound with this send order");
  const std::size_t m = scratch.processor_count_;
  RELAP_ASSERT(scenario.failure_time.size() == m && scenario.fail_after_first_receive.size() == m,
               "failure scenario does not match the bound platform");
  RELAP_ASSERT(options.dataset_count >= 1, "need at least one data set");

  std::fill(scratch.avail_.begin(), scratch.avail_.end(), 0.0);
  std::copy(scenario.failure_time.begin(), scenario.failure_time.end(), scratch.death_.begin());
  std::fill(scratch.received_once_.begin(), scratch.received_once_.end(), std::uint8_t{0});
  std::vector<double>& avail = scratch.avail_;
  std::vector<double>& death = scratch.death_;
  std::vector<double>& receive_end = scratch.receive_end_;
  double avail_in = 0.0;
  double avail_out = 0.0;

  const std::size_t p = scratch.interval_count_;

  out.datasets.resize(options.dataset_count);
  out.application_failed = false;
  out.makespan = 0.0;

  for (std::size_t d = 0; d < options.dataset_count; ++d) {
    DatasetOutcome& outcome = out.datasets[d];
    outcome.completed = false;
    outcome.injection_time = -1.0;  // set at the first transfer
    outcome.completion_time = 0.0;

    // The designated sender of the previous interval; kExternal means P_in.
    // `sender_pos` is its position (ascending id) within its group — the row
    // index into the cached transfer-duration table (row 0 for P_in).
    std::int64_t sender = kExternal;
    std::size_t sender_pos = 0;
    double data_ready = 0.0;
    bool dataset_alive = true;

    for (std::size_t j = 0; j < p && dataset_alive; ++j) {
      // --- Serialized receive phase. -----------------------------------
      const std::size_t group_size = scratch.order_offsets_[j + 1] - scratch.order_offsets_[j];
      const std::span<const platform::ProcessorId> order{
          scratch.order_.data() + scratch.order_offsets_[j], group_size};
      const std::span<const platform::ProcessorId> group{
          scratch.groups_.data() + scratch.order_offsets_[j], group_size};
      const double* recv_duration =
          scratch.recv_duration_.data() + scratch.recv_offsets_[j] + sender_pos * order.size();
      for (const platform::ProcessorId v : order) receive_end[v] = kInf;  // = did not receive
      double& sender_avail =
          (sender == kExternal) ? avail_in : avail[static_cast<std::size_t>(sender)];
      for (std::size_t r = 0; r < order.size(); ++r) {
        const platform::ProcessorId v = order[r];
        const double start = std::max({sender_avail, avail[v], data_ready});
        // Consensus knows a peer that is already dead; skip it for free.
        if (death[v] <= start) continue;
        // A dead sender cannot transmit; the dataset is lost past this point.
        if (sender != kExternal && death[static_cast<std::size_t>(sender)] <= start) break;
        const double end = start + recv_duration[r];
        const bool ok = transfer_completes(death, sender, static_cast<std::int64_t>(v), end);
        sender_avail = end;
        avail[v] = end;
        if (outcome.injection_time < 0.0 && sender == kExternal) outcome.injection_time = start;
        if (options.trace != nullptr) {
          options.trace->record(TraceOp{OpKind::Transfer, d, j, sender,
                                        static_cast<std::int64_t>(v), start, end, ok});
        }
        if (ok) {
          receive_end[v] = end;
          if (scenario.fail_after_first_receive[v] && scratch.received_once_[v] == 0) {
            death[v] = end;  // dies the instant its first receive completes
          }
          scratch.received_once_[v] = 1;
        }
      }

      // --- Compute phase. ----------------------------------------------
      double best_completion = kInf;
      platform::ProcessorId best_replica = 0;
      std::size_t best_pos = 0;
      for (std::size_t g = 0; g < group.size(); ++g) {
        const platform::ProcessorId v = group[g];
        if (receive_end[v] == kInf) continue;
        const double start = std::max(receive_end[v], avail[v]);
        const double end = start + scratch.compute_duration_[v];
        avail[v] = end;
        // "death > start" makes a zero-work compute on a
        // dead-after-receive replica fail, as it should.
        const bool ok = death[v] >= end && death[v] > start;
        if (options.trace != nullptr) {
          options.trace->record(TraceOp{OpKind::Compute, d, j, static_cast<std::int64_t>(v),
                                        kExternal, start, end, ok});
        }
        if (ok && (end < best_completion ||
                   (end == best_completion && v < best_replica))) {
          best_completion = end;
          best_replica = v;
          best_pos = g;
        }
      }
      if (best_completion == kInf) {
        dataset_alive = false;
        break;
      }
      sender = static_cast<std::int64_t>(best_replica);
      sender_pos = best_pos;
      data_ready = best_completion;
    }

    if (!dataset_alive) {
      outcome.completed = false;
      outcome.completion_time = kInf;
      out.application_failed = true;
      continue;
    }

    // --- Final transfer to P_out. --------------------------------------
    const auto out_sender = static_cast<platform::ProcessorId>(sender);
    const double start = std::max({avail[out_sender], avail_out, data_ready});
    if (death[out_sender] <= start) {
      outcome.completed = false;
      outcome.completion_time = kInf;
      out.application_failed = true;
      continue;
    }
    const double end = start + scratch.out_duration_[out_sender];
    const bool ok = death[out_sender] >= end;
    avail[out_sender] = end;
    avail_out = end;
    if (options.trace != nullptr) {
      options.trace->record(
          TraceOp{OpKind::Transfer, d, p, sender, kExternal, start, end, ok});
    }
    if (!ok) {
      outcome.completed = false;
      outcome.completion_time = kInf;
      out.application_failed = true;
      continue;
    }
    outcome.completed = true;
    outcome.completion_time = end;
    out.makespan = std::max(out.makespan, end);
  }
}

SimResult simulate(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                   const mapping::IntervalMapping& mapping, const FailureScenario& scenario,
                   const SimOptions& options) {
  SimScratch scratch;
  scratch.bind(pipeline, platform, mapping, options.send_order);
  SimResult out;
  simulate_into(scratch, scenario, options, out);
  return out;
}

}  // namespace relap::sim
