#pragma once

/// \file trace.hpp
/// Operation-level trace of a simulation run, for debugging, the failure_sim
/// example and the engine tests (which assert on exact operation windows).

#include <cstdint>
#include <string>
#include <vector>

namespace relap::sim {

enum class OpKind : std::uint8_t {
  Transfer,  ///< subject = sender (-1 for P_in), peer = receiver (-1 for P_out)
  Compute,   ///< subject = processor, peer unused
};

/// Sentinel processor id for P_in / P_out endpoints in trace records.
inline constexpr std::int64_t kExternal = -1;

struct TraceOp {
  OpKind kind = OpKind::Transfer;
  std::size_t dataset = 0;
  std::size_t interval = 0;
  std::int64_t subject = 0;  ///< acting processor (sender / computer)
  std::int64_t peer = 0;     ///< transfer receiver; unused for computes
  double start = 0.0;
  double end = 0.0;
  bool completed = true;  ///< false if a failure aborted the operation
};

/// Chronologically ordered (by start, then record order) operation log.
class Trace {
 public:
  void record(const TraceOp& op) { ops_.push_back(op); }
  [[nodiscard]] const std::vector<TraceOp>& ops() const { return ops_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  void clear() { ops_.clear(); }

  /// Multi-line human-readable dump.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<TraceOp> ops_;
};

}  // namespace relap::sim
