#pragma once

/// \file trace.hpp
/// Operation-level trace of a simulation run, for debugging, the failure_sim
/// example and the engine tests (which assert on exact operation windows).

#include <cstdint>
#include <string>
#include <vector>

namespace relap::sim {

enum class OpKind : std::uint8_t {
  Transfer,  ///< subject = sender (-1 for P_in), peer = receiver (-1 for P_out)
  Compute,   ///< subject = processor, peer unused
};

/// Sentinel processor id for P_in / P_out endpoints in trace records.
inline constexpr std::int64_t kExternal = -1;

struct TraceOp {
  OpKind kind = OpKind::Transfer;
  std::size_t dataset = 0;
  std::size_t interval = 0;
  std::int64_t subject = 0;  ///< acting processor (sender / computer)
  std::int64_t peer = 0;     ///< transfer receiver; unused for computes
  double start = 0.0;
  double end = 0.0;
  bool completed = true;  ///< false if a failure aborted the operation
};

/// Chronologically ordered (by start, then record order) operation log.
///
/// An appendable flat record buffer, designed to compose with `SimScratch`
/// reuse: `record` appends, `clear` keeps the capacity, and `reserve` warms
/// the buffer up front, so a per-worker trace drained (or cleared) between
/// `simulate_into` runs records operations without allocating in steady
/// state. A failure-free run bounds the operation count of every scenario
/// on the same instance (failures only skip operations), so one traced
/// failure-free warm-up run sizes the buffer for good.
class Trace {
 public:
  void record(const TraceOp& op) { ops_.push_back(op); }
  [[nodiscard]] const std::vector<TraceOp>& ops() const { return ops_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  /// Drops the records but keeps the capacity for the next run.
  void clear() { ops_.clear(); }
  void reserve(std::size_t capacity) { ops_.reserve(capacity); }

  /// Multi-line human-readable dump.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<TraceOp> ops_;
};

}  // namespace relap::sim
