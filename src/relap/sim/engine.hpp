#pragma once

/// \file engine.hpp
/// Discrete-event simulation of an interval mapping under the one-port
/// model with failure injection — the library's executable substitute for
/// the testbed the paper does not have (DESIGN.md §4).
///
/// Semantics, matching the cost model of Section 2:
///  * every resource (P_in, each processor, P_out) performs one operation at
///    a time; transfers occupy both endpoints for size/bandwidth time-units;
///  * the replicas of interval j receive their input through *serialized*
///    transfers from the previous interval's designated sender (or P_in);
///  * a replica computes its whole interval after its own receive completes;
///  * the designated sender of interval j is the earliest-completing replica
///    that is still alive (ties by processor id) — the paper's consensus
///    protocol [17]; it alone forwards the output;
///  * a processor that dies mid-operation wastes the operation: transfers it
///    was receiving are lost (the sender's time is still spent), computes
///    produce nothing; peers it would have received later are skipped once
///    it is known dead at the transfer's start;
///  * a data set fails when an interval has no surviving completed replica;
///    the application run fails when any data set fails.
///
/// Scheduling is greedy virtual-time FIFO: data sets are processed in order
/// on every resource. This is deterministic and matches the steady-state
/// assumptions behind Equations (1)/(2); with the worst-case failure
/// scenario and worst-case send order the simulated latency reproduces the
/// equations exactly (asserted by the engine tests and bench_simulation).
///
/// The engine runs on a caller-owned `SimScratch` arena, the simulation
/// counterpart of the enumerators' `mapping::EvalScratch`: all mutable state
/// (per-processor avail/death/received-once arrays, the flattened receive
/// orders, the per-group receive-end workspace, a reusable failure-scenario
/// buffer) lives in flat buffers that are sized once by `bind()` and reused
/// across runs. After warm-up a `simulate_into` call performs **zero heap
/// allocations** (pinned by a counting-allocator test), which is what makes
/// high-volume Monte-Carlo trials cheap. `simulate()` is the convenience
/// wrapper that builds a throwaway scratch per call.

#include <cstdint>

#include "relap/mapping/interval_mapping.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"
#include "relap/sim/failure_model.hpp"
#include "relap/sim/trace.hpp"

namespace relap::sim {

/// Order in which a sender emits the serialized copies to the next group.
enum class SendOrder {
  ById,           ///< ascending processor id
  WorstCaseLast,  ///< the Eq. (2) worst-case survivor receives last
};

struct SimOptions {
  std::size_t dataset_count = 1;
  SendOrder send_order = SendOrder::ById;
  /// Optional operation log (not owned). The trace is appended to, never
  /// cleared, so one trace can span several runs; clear() between runs
  /// keeps its capacity (see trace.hpp).
  Trace* trace = nullptr;
};

struct DatasetOutcome {
  bool completed = false;
  /// Start of the data set's first input transfer from P_in.
  double injection_time = 0.0;
  /// Arrival time of the result at P_out; +infinity when failed.
  double completion_time = 0.0;

  [[nodiscard]] double latency() const { return completion_time - injection_time; }
};

struct SimResult {
  std::vector<DatasetOutcome> datasets;
  bool application_failed = false;
  /// Completion time of the last successful data set (0 if none).
  double makespan = 0.0;

  /// Largest latency over completed data sets (-infinity if none).
  [[nodiscard]] double worst_latency() const;
  /// Number of completed data sets.
  [[nodiscard]] std::size_t completed_count() const;
};

/// Caller-owned, reusable engine state. `bind()` sizes every buffer for one
/// (pipeline, platform, mapping, send-order) combination and precomputes the
/// per-interval receive orders; `simulate_into` then runs trial after trial
/// against the bound instance without allocating. Construct one per
/// Monte-Carlo worker chunk and rebind only when the mapping changes.
class SimScratch {
 public:
  SimScratch() = default;

  /// Reserves for platforms up to `processor_count` processors and mappings
  /// up to `interval_count` intervals ahead of the first `bind()`.
  SimScratch(std::size_t processor_count, std::size_t interval_count);

  /// Binds the scratch to an instance: sizes the engine state and rebuilds
  /// the flattened receive orders (ascending ids, or the Eq. (2) worst-case
  /// survivor rotated last). The only allocating step; rebinding to an
  /// instance of the same or smaller shape reuses capacity.
  void bind(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
            const mapping::IntervalMapping& mapping, SendOrder send_order);

  /// Reusable failure-scenario buffer for sampling trials in place (see
  /// `FailureScenario::draw_into`); not touched by `simulate_into` unless
  /// passed as its scenario.
  [[nodiscard]] FailureScenario& scenario() { return scenario_; }

  [[nodiscard]] bool bound() const { return bound_; }
  [[nodiscard]] std::size_t processor_count() const { return processor_count_; }
  [[nodiscard]] std::size_t interval_count() const { return interval_count_; }
  [[nodiscard]] SendOrder send_order() const { return send_order_; }

 private:
  friend void simulate_into(SimScratch& scratch, const FailureScenario& scenario,
                            const SimOptions& options, SimResult& out);

  // Bound shape, asserted against by simulate_into.
  std::size_t processor_count_ = 0;
  std::size_t interval_count_ = 0;
  SendOrder send_order_ = SendOrder::ById;
  bool bound_ = false;

  /// Receive orders, flattened: interval j's order is
  /// order_[order_offsets_[j] .. order_offsets_[j+1]). `groups_` holds the
  /// same members in the mapping's canonical ascending-id order (the compute
  /// phase's iteration order); the two coincide except under WorstCaseLast.
  std::vector<platform::ProcessorId> order_;
  std::vector<platform::ProcessorId> groups_;
  std::vector<std::size_t> order_offsets_;

  // Trial-invariant cost terms, hoisted out of the per-trial loops the way
  // `mapping::CompositionCache` hoists the composition terms out of the
  // enumeration loop. Each cached double is exactly the value the engine
  // used to recompute per trial (same operands, same single division), so
  // caching cannot perturb a single bit.
  /// Transfer durations into interval j, one row per possible sender —
  /// row 0 is P_in for interval 0, row s is the s-th member (ascending id)
  /// of group j-1 otherwise — and one column per receive-order position:
  /// recv_duration_[recv_offsets_[j] + s * order_len(j) + r].
  std::vector<double> recv_duration_;
  std::vector<std::size_t> recv_offsets_;
  /// Compute time work_j / speed_v per enrolled processor id (groups are
  /// disjoint, so one array covers all intervals).
  std::vector<double> compute_duration_;
  /// Final-output transfer duration delta_n / bandwidth_out per member of
  /// the last group (by processor id; other entries unused).
  std::vector<double> out_duration_;

  // Engine state, reset at the start of every run.
  std::vector<double> avail_;   ///< next-free time per processor
  std::vector<double> death_;   ///< resolved death time per processor
  /// For fail_after_first_receive resolution. A byte array, not
  /// std::vector<bool>: the innermost transfer loop reads and writes it and
  /// the proxy-reference bit twiddling costs more than the 8x storage.
  std::vector<std::uint8_t> received_once_;
  /// Per-interval receive-completion workspace, indexed by processor id;
  /// only the current group's entries are live (reset per interval).
  std::vector<double> receive_end_;

  FailureScenario scenario_;
};

/// Runs the simulation against the instance `scratch` is bound to, writing
/// into `out` (whose buffers are reused across calls). Zero heap allocations
/// after warm-up. The bound instance is the single source of truth — there
/// is no way to pass a mapping that disagrees with the cached state.
/// Preconditions (asserted): `scratch` is bound with `options.send_order`;
/// the scenario matches the bound platform's processor count.
void simulate_into(SimScratch& scratch, const FailureScenario& scenario,
                   const SimOptions& options, SimResult& out);

/// Convenience wrapper over `simulate_into` with a throwaway scratch; the
/// entry point for one-off runs (tests, examples, the worst-case validation
/// tables). High-volume callers should own a `SimScratch` instead.
[[nodiscard]] SimResult simulate(const pipeline::Pipeline& pipeline,
                                 const platform::Platform& platform,
                                 const mapping::IntervalMapping& mapping,
                                 const FailureScenario& scenario, const SimOptions& options = {});

}  // namespace relap::sim
