#pragma once

/// \file engine.hpp
/// Discrete-event simulation of an interval mapping under the one-port
/// model with failure injection — the library's executable substitute for
/// the testbed the paper does not have (DESIGN.md §4).
///
/// Semantics, matching the cost model of Section 2:
///  * every resource (P_in, each processor, P_out) performs one operation at
///    a time; transfers occupy both endpoints for size/bandwidth time-units;
///  * the replicas of interval j receive their input through *serialized*
///    transfers from the previous interval's designated sender (or P_in);
///  * a replica computes its whole interval after its own receive completes;
///  * the designated sender of interval j is the earliest-completing replica
///    that is still alive (ties by processor id) — the paper's consensus
///    protocol [17]; it alone forwards the output;
///  * a processor that dies mid-operation wastes the operation: transfers it
///    was receiving are lost (the sender's time is still spent), computes
///    produce nothing; peers it would have received later are skipped once
///    it is known dead at the transfer's start;
///  * a data set fails when an interval has no surviving completed replica;
///    the application run fails when any data set fails.
///
/// Scheduling is greedy virtual-time FIFO: data sets are processed in order
/// on every resource. This is deterministic and matches the steady-state
/// assumptions behind Equations (1)/(2); with the worst-case failure
/// scenario and worst-case send order the simulated latency reproduces the
/// equations exactly (asserted by the engine tests and bench_simulation).

#include "relap/mapping/interval_mapping.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"
#include "relap/sim/failure_model.hpp"
#include "relap/sim/trace.hpp"

namespace relap::sim {

/// Order in which a sender emits the serialized copies to the next group.
enum class SendOrder {
  ById,           ///< ascending processor id
  WorstCaseLast,  ///< the Eq. (2) worst-case survivor receives last
};

struct SimOptions {
  std::size_t dataset_count = 1;
  SendOrder send_order = SendOrder::ById;
  /// Optional operation log (not owned).
  Trace* trace = nullptr;
};

struct DatasetOutcome {
  bool completed = false;
  /// Start of the data set's first input transfer from P_in.
  double injection_time = 0.0;
  /// Arrival time of the result at P_out; +infinity when failed.
  double completion_time = 0.0;

  [[nodiscard]] double latency() const { return completion_time - injection_time; }
};

struct SimResult {
  std::vector<DatasetOutcome> datasets;
  bool application_failed = false;
  /// Completion time of the last successful data set (0 if none).
  double makespan = 0.0;

  /// Largest latency over completed data sets (-infinity if none).
  [[nodiscard]] double worst_latency() const;
  /// Number of completed data sets.
  [[nodiscard]] std::size_t completed_count() const;
};

/// Runs the simulation. The mapping must cover the pipeline and name only
/// platform processors (asserted).
[[nodiscard]] SimResult simulate(const pipeline::Pipeline& pipeline,
                                 const platform::Platform& platform,
                                 const mapping::IntervalMapping& mapping,
                                 const FailureScenario& scenario, const SimOptions& options = {});

}  // namespace relap::sim
