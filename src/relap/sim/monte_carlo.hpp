#pragma once

/// \file monte_carlo.hpp
/// Monte-Carlo validation of the analytic formulas.
///
/// Two estimators:
///  * `estimate_failure_rate` draws Bernoulli failure realizations directly
///    (no event simulation needed — the paper's FP is exactly the
///    probability that some replica group is wiped out) and compares the
///    empirical frequency against the closed-form FP;
///  * `run_trials` drives the full engine per realization, collecting
///    latency statistics of surviving runs and the empirical failure rate
///    under actual execution semantics (a run can also fail because the
///    designated sender dies mid-transfer, so its rate is >= the analytic
///    FP; with failure times at the horizon's far end the two coincide).

#include <cstdint>

#include "relap/mapping/interval_mapping.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"
#include "relap/sim/engine.hpp"
#include "relap/util/stats.hpp"

namespace relap::sim {

struct MonteCarloOptions {
  std::size_t trials = 100'000;
  std::uint64_t seed = 0xFEEDFACE12345ULL;
};

struct FailureRateEstimate {
  double empirical = 0.0;
  double analytic = 0.0;
  /// Normal-approximation 95% half-width of the empirical estimate.
  double ci95_half_width = 0.0;
  std::size_t trials = 0;

  /// |empirical - analytic| <= slack + CI? (the tests' acceptance check)
  [[nodiscard]] bool consistent(double slack = 0.0) const;
};

/// Direct Bernoulli estimate of the application failure probability.
[[nodiscard]] FailureRateEstimate estimate_failure_rate(const platform::Platform& platform,
                                                        const mapping::IntervalMapping& mapping,
                                                        const MonteCarloOptions& options = {});

struct TrialStats {
  FailureRateEstimate failure;
  /// Worst per-data-set latency of each fully successful trial.
  util::StreamingStats latency;
  /// Latency of the failure-free reference run.
  double failure_free_latency = 0.0;
};

struct TrialOptions {
  std::size_t trials = 2'000;
  std::uint64_t seed = 0xFEEDFACE12345ULL;
  std::size_t dataset_count = 1;
  /// Failure times are drawn uniform in [0, horizon_factor * failure-free
  /// makespan); a factor > 1 means failures can land after the run.
  double horizon_factor = 1.0;
};

/// Full-engine Monte Carlo.
[[nodiscard]] TrialStats run_trials(const pipeline::Pipeline& pipeline,
                                    const platform::Platform& platform,
                                    const mapping::IntervalMapping& mapping,
                                    const TrialOptions& options = {});

}  // namespace relap::sim
