#pragma once

/// \file monte_carlo.hpp
/// Monte-Carlo validation of the analytic formulas.
///
/// Two estimators:
///  * `estimate_failure_rate` draws Bernoulli failure realizations directly
///    (no event simulation needed — the paper's FP is exactly the
///    probability that some replica group is wiped out) and compares the
///    empirical frequency against the closed-form FP;
///  * `run_trials` drives the full engine per realization, collecting
///    latency statistics of surviving runs and the empirical failure rate
///    under actual execution semantics (a run can also fail because the
///    designated sender dies mid-transfer, so its rate is >= the analytic
///    FP; with failure times at the horizon's far end the two coincide).
///
/// Both are batched drivers: `estimate_failure_rate` flattens the mapping
/// into SoA replica arrays once per call, and `run_trials` binds one
/// `SimScratch` arena per parallel chunk, samples scenarios in place and
/// recycles the result buffers — zero heap allocations per steady-state
/// trial, with results bit-identical at any thread count (fixed chunk
/// grids, per-chunk split RNG streams, index-order Kahan/Welford merges).

#include <cstdint>

#include "relap/mapping/interval_mapping.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"
#include "relap/sim/engine.hpp"
#include "relap/util/stats.hpp"

namespace relap::exec {
class ThreadPool;
}  // namespace relap::exec

namespace relap::sim {

struct MonteCarloOptions {
  std::size_t trials = 100'000;
  std::uint64_t seed = 0xFEEDFACE12345ULL;
  /// Pool for the parallel trial loop; null uses `exec::ThreadPool::shared()`.
  /// Results are bit-identical at any thread count: every replica draw is a
  /// `util::counter_hash` at the absolute counter `trial * R + replica`, so
  /// the realization is independent of the chunk grid.
  exec::ThreadPool* pool = nullptr;
  /// SIMD lane width of the Bernoulli trial kernel — W trials are drawn and
  /// reduced per step: 1, 4 or 8, or 0 for the build default. Counter
  /// addressing makes the estimate bit-identical at any width.
  std::size_t lane_width = 0;
};

struct FailureRateEstimate {
  double empirical = 0.0;
  double analytic = 0.0;
  /// Wilson score 95% interval of the empirical estimate. Unlike the normal
  /// approximation it keeps a positive width when `empirical` is exactly 0
  /// or 1, so `consistent()` cannot degenerate into an exact-equality check.
  util::ProportionInterval ci95;
  /// Half-width of `ci95` (kept as a field for reporting convenience).
  double ci95_half_width = 0.0;
  std::size_t trials = 0;

  /// Does the 95% interval, widened by `slack`, contain `analytic`?
  /// (the tests' acceptance check)
  [[nodiscard]] bool consistent(double slack = 0.0) const;
};

/// Direct Bernoulli estimate of the application failure probability.
[[nodiscard]] FailureRateEstimate estimate_failure_rate(const platform::Platform& platform,
                                                        const mapping::IntervalMapping& mapping,
                                                        const MonteCarloOptions& options = {});

struct TrialStats {
  FailureRateEstimate failure;
  /// Worst per-data-set latency of each fully successful trial.
  util::StreamingStats latency;
  /// Latency of the failure-free reference run.
  double failure_free_latency = 0.0;
};

struct TrialOptions {
  std::size_t trials = 2'000;
  std::uint64_t seed = 0xFEEDFACE12345ULL;
  std::size_t dataset_count = 1;
  /// Failure times are drawn uniform in [0, horizon_factor * failure-free
  /// makespan); a factor > 1 means failures can land after the run.
  double horizon_factor = 1.0;
  /// Pool for the parallel trial loop; null uses `exec::ThreadPool::shared()`.
  /// Scenarios are counter-addressed per trial (`FailureScenario::
  /// draw_indexed`), so results are bit-identical at any thread count or
  /// chunk grain by construction; the event-driven engine itself stays
  /// scalar (its control flow is data-dependent, which SIMD lanes cannot
  /// follow bit-exactly).
  exec::ThreadPool* pool = nullptr;
};

/// Full-engine Monte Carlo.
[[nodiscard]] TrialStats run_trials(const pipeline::Pipeline& pipeline,
                                    const platform::Platform& platform,
                                    const mapping::IntervalMapping& mapping,
                                    const TrialOptions& options = {});

}  // namespace relap::sim
