#include "relap/sim/failure_model.hpp"

#include <limits>
#include <span>

#include "relap/util/assert.hpp"

namespace relap::sim {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}

FailureScenario FailureScenario::none(std::size_t processor_count) {
  return FailureScenario{std::vector<double>(processor_count, kNever),
                         std::vector<bool>(processor_count, false)};
}

FailureScenario FailureScenario::at_times(std::vector<double> times) {
  const std::size_t m = times.size();
  return FailureScenario{std::move(times), std::vector<bool>(m, false)};
}

FailureScenario FailureScenario::draw(const platform::Platform& platform, double horizon,
                                      util::Rng& rng) {
  FailureScenario scenario;
  draw_into(scenario, platform, horizon, rng);
  return scenario;
}

void FailureScenario::draw_into(FailureScenario& scenario, const platform::Platform& platform,
                                double horizon, util::Rng& rng) {
  RELAP_ASSERT(horizon > 0.0, "failure horizon must be positive");
  const std::size_t m = platform.processor_count();
  const std::span<const double> fp = platform.failure_probs();  // same values as failure_prob(u)
  scenario.failure_time.assign(m, kNever);
  scenario.fail_after_first_receive.assign(m, false);
  for (platform::ProcessorId u = 0; u < m; ++u) {
    if (rng.bernoulli(fp[u])) {
      scenario.failure_time[u] = rng.uniform(0.0, horizon);
    }
  }
}

void FailureScenario::draw_indexed(FailureScenario& scenario, const platform::Platform& platform,
                                   double horizon, std::uint64_t seed, std::uint64_t trial_index) {
  RELAP_ASSERT(horizon > 0.0, "failure horizon must be positive");
  const std::size_t m = platform.processor_count();
  const std::span<const double> fp = platform.failure_probs();
  scenario.failure_time.assign(m, kNever);
  scenario.fail_after_first_receive.assign(m, false);
  const std::uint64_t base = trial_index * 2 * static_cast<std::uint64_t>(m);
  for (platform::ProcessorId u = 0; u < m; ++u) {
    const std::uint64_t c = base + 2 * static_cast<std::uint64_t>(u);
    // `unit < fp[u]` reproduces Rng::bernoulli exactly for fp in [0, 1]:
    // unit lies in [0, 1), so fp == 0 can never fire and fp == 1 always does.
    if (util::to_unit_double(util::counter_hash(seed, c)) < fp[u]) {
      // uniform(0, horizon) == horizon * unit, drawn at the adjacent counter.
      scenario.failure_time[u] = horizon * util::to_unit_double(util::counter_hash(seed, c + 1));
    }
  }
}

platform::ProcessorId worst_case_survivor(const pipeline::Pipeline& pipeline,
                                          const platform::Platform& platform,
                                          const mapping::IntervalAssignment& interval,
                                          const std::vector<platform::ProcessorId>* next_group) {
  const double work = pipeline.work_sum(interval.stages.first, interval.stages.last);
  const double out_size = pipeline.data(interval.stages.last + 1);
  platform::ProcessorId worst = interval.processors.front();
  double worst_term = -1.0;
  for (const platform::ProcessorId u : interval.processors) {
    double term = work / platform.speed(u);
    if (next_group != nullptr) {
      for (const platform::ProcessorId v : *next_group) {
        term += out_size / platform.bandwidth(u, v);
      }
    } else {
      term += out_size / platform.bandwidth_out(u);
    }
    if (term > worst_term) {
      worst_term = term;
      worst = u;
    }
  }
  return worst;
}

FailureScenario FailureScenario::worst_case(const pipeline::Pipeline& pipeline,
                                            const platform::Platform& platform,
                                            const mapping::IntervalMapping& mapping) {
  FailureScenario scenario = none(platform.processor_count());
  const std::size_t p = mapping.interval_count();
  for (std::size_t j = 0; j < p; ++j) {
    const mapping::IntervalAssignment& a = mapping.interval(j);
    const std::vector<platform::ProcessorId>* next =
        (j + 1 < p) ? &mapping.interval(j + 1).processors : nullptr;
    const platform::ProcessorId survivor = worst_case_survivor(pipeline, platform, a, next);
    for (const platform::ProcessorId u : a.processors) {
      if (u != survivor) scenario.fail_after_first_receive[u] = true;
    }
  }
  return scenario;
}

bool FailureScenario::dead_at(platform::ProcessorId u, double time) const {
  RELAP_ASSERT(u < failure_time.size(), "processor id out of range");
  return failure_time[u] <= time;
}

bool FailureScenario::application_fails(const mapping::IntervalMapping& mapping) const {
  for (const mapping::IntervalAssignment& a : mapping.intervals()) {
    bool any_survivor = false;
    for (const platform::ProcessorId u : a.processors) {
      const bool dies =
          fail_after_first_receive[u] || failure_time[u] < std::numeric_limits<double>::infinity();
      if (!dies) {
        any_survivor = true;
        break;
      }
    }
    if (!any_survivor) return true;
  }
  return false;
}

}  // namespace relap::sim
