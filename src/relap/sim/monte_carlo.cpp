#include "relap/sim/monte_carlo.hpp"

#include <cmath>

#include "relap/mapping/reliability.hpp"
#include "relap/util/assert.hpp"
#include "relap/util/rng.hpp"

namespace relap::sim {

bool FailureRateEstimate::consistent(double slack) const {
  return std::abs(empirical - analytic) <= slack + ci95_half_width;
}

FailureRateEstimate estimate_failure_rate(const platform::Platform& platform,
                                          const mapping::IntervalMapping& mapping,
                                          const MonteCarloOptions& options) {
  RELAP_ASSERT(options.trials >= 1, "need at least one trial");
  util::Rng rng(options.seed);
  std::size_t failures = 0;
  for (std::size_t t = 0; t < options.trials; ++t) {
    bool app_failed = false;
    for (const mapping::IntervalAssignment& a : mapping.intervals()) {
      bool group_wiped = true;
      for (const platform::ProcessorId u : a.processors) {
        if (!rng.bernoulli(platform.failure_prob(u))) {
          group_wiped = false;
          // Keep drawing the remaining replicas so the stream position does
          // not depend on outcomes (reproducibility across refactors).
        }
      }
      app_failed = app_failed || group_wiped;
    }
    failures += app_failed ? 1 : 0;
  }

  FailureRateEstimate estimate;
  estimate.trials = options.trials;
  estimate.empirical = static_cast<double>(failures) / static_cast<double>(options.trials);
  estimate.analytic = mapping::failure_probability(platform, mapping);
  const double variance = estimate.empirical * (1.0 - estimate.empirical);
  estimate.ci95_half_width =
      1.96 * std::sqrt(variance / static_cast<double>(options.trials));
  return estimate;
}

TrialStats run_trials(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                      const mapping::IntervalMapping& mapping, const TrialOptions& options) {
  RELAP_ASSERT(options.trials >= 1, "need at least one trial");
  util::Rng rng(options.seed);

  SimOptions sim_options;
  sim_options.dataset_count = options.dataset_count;

  // Failure-free reference run fixes the horizon.
  const SimResult reference =
      simulate(pipeline, platform, mapping, FailureScenario::none(platform.processor_count()),
               sim_options);
  RELAP_ASSERT(!reference.application_failed, "the failure-free run cannot fail");
  const double horizon = std::max(reference.makespan * options.horizon_factor, 1e-9);

  TrialStats stats;
  stats.failure_free_latency = reference.worst_latency();

  std::size_t failures = 0;
  for (std::size_t t = 0; t < options.trials; ++t) {
    util::Rng trial_rng = rng.split();
    const FailureScenario scenario = FailureScenario::draw(platform, horizon, trial_rng);
    const SimResult run = simulate(pipeline, platform, mapping, scenario, sim_options);
    if (run.application_failed) {
      ++failures;
    } else {
      stats.latency.add(run.worst_latency());
    }
  }

  stats.failure.trials = options.trials;
  stats.failure.empirical = static_cast<double>(failures) / static_cast<double>(options.trials);
  stats.failure.analytic = mapping::failure_probability(platform, mapping);
  const double variance = stats.failure.empirical * (1.0 - stats.failure.empirical);
  stats.failure.ci95_half_width =
      1.96 * std::sqrt(variance / static_cast<double>(options.trials));
  return stats;
}

}  // namespace relap::sim
