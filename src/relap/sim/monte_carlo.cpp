#include "relap/sim/monte_carlo.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "relap/exec/parallel.hpp"
#include "relap/mapping/reliability.hpp"
#include "relap/util/assert.hpp"
#include "relap/util/rng.hpp"
#include "relap/util/simd.hpp"

namespace relap::sim {

namespace {

namespace simd = util::simd;

/// Chunk grains for the parallel trial loops. Both drivers draw via
/// `util::counter_hash` at absolute per-trial counters, so the grains only
/// set task granularity — results are invariant to them (and to thread
/// count and lane width) by construction. Bernoulli trials are branch-cheap,
/// full-engine trials each run a discrete-event simulation.
constexpr std::size_t kBernoulliGrain = 8192;
constexpr std::size_t kEngineGrain = 16;

/// SplitMix64 finalizer applied per lane, written in the vertical lane ops so
/// the multiplies use `simd::mul_u`'s exact vpmuludq decomposition instead of
/// per-lane GPR round-trips. Same constants and shift order as
/// `util::splitmix64_mix`, hence the same bits per lane.
template <std::size_t W>
simd::UintLanes<W> mix_lanes(simd::UintLanes<W> z) {
  z = simd::mul_u(simd::xor_u(z, simd::shr_u<30>(z)),
                  simd::broadcast_u<W>(0xBF58476D1CE4E5B9ULL));
  z = simd::mul_u(simd::xor_u(z, simd::shr_u<27>(z)),
                  simd::broadcast_u<W>(0x94D049BB133111EBULL));
  return simd::xor_u(z, simd::shr_u<31>(z));
}

/// W-wide Bernoulli replica-survival kernel: trials [begin, end) of the
/// flattened mapping, W trials per lane step. Replica i of trial t draws
/// `counter_hash(seed, t * R + i)` — for fixed t that is
/// `mix(base + i * gamma)` with `base = seed + (t * R + 1) * gamma` — and
/// fails when the unit double lands below its failure probability; a group
/// is wiped when every replica lane-AND fails, the application when any
/// group lane-ORs wiped. Returns the failure count over the range. Every
/// lane reproduces the scalar counter walk bit for bit, so the count is
/// identical at W in {1, 4, 8}; a final partial step pads with the last
/// trial and discards the duplicate lanes.
template <std::size_t W>
simd::UintLanes<W> bernoulli_batch_failed(const simd::UintLanes<W>& base,
                                          std::span<const double> replica_fp,
                                          std::span<const std::size_t> group_offsets) {
  const std::size_t group_count = group_offsets.size() - 1;
  simd::UintLanes<W> failed = simd::broadcast_u<W>(0);
  for (std::size_t g = 0; g < group_count; ++g) {
    simd::UintLanes<W> wiped = simd::broadcast_u<W>(~std::uint64_t{0});
    for (std::size_t i = group_offsets[g]; i < group_offsets[g + 1]; ++i) {
      const simd::UintLanes<W> z =
          mix_lanes(simd::add_u(base, simd::broadcast_u<W>(i * util::kSplitMix64Gamma)));
      wiped = simd::and_u(
          wiped, simd::less(simd::to_unit_double_lanes(z), simd::broadcast<W>(replica_fp[i])));
    }
    failed = simd::or_u(failed, wiped);
  }
  return failed;
}

template <std::size_t W>
std::size_t bernoulli_failures_w(std::uint64_t seed, std::size_t begin, std::size_t end,
                                 std::span<const double> replica_fp,
                                 std::span<const std::size_t> group_offsets) {
  const std::uint64_t replica_count = replica_fp.size();
  std::size_t failures = 0;
  // Lane l of the running base is trial t0 + l's counter origin
  // `seed + (t * R + 1) * gamma`; advancing the batch by W trials adds the
  // same `W * R * gamma` to every lane, so the main loop carries the bases
  // as a vector recurrence instead of re-deriving them with per-lane
  // multiplies each step.
  simd::UintLanes<W> base;
  for (std::size_t l = 0; l < W; ++l) {
    base.v[l] = seed + ((begin + l) * replica_count + 1) * util::kSplitMix64Gamma;
  }
  const simd::UintLanes<W> step =
      simd::broadcast_u<W>(W * replica_count * util::kSplitMix64Gamma);
  std::size_t t0 = begin;
  for (; t0 + W <= end; t0 += W) {
    failures += simd::count_set_lanes(bernoulli_batch_failed<W>(base, replica_fp, group_offsets));
    base = simd::add_u(base, step);
  }
  if (t0 < end) {
    // Partial tail: pad with the last trial and count only the live lanes.
    const std::size_t count = end - t0;
    for (std::size_t l = 0; l < W; ++l) {
      const std::uint64_t t = t0 + std::min(l, count - 1);
      base.v[l] = seed + (t * replica_count + 1) * util::kSplitMix64Gamma;
    }
    const simd::UintLanes<W> failed =
        bernoulli_batch_failed<W>(base, replica_fp, group_offsets);
    for (std::size_t l = 0; l < count; ++l) failures += failed.v[l] != 0 ? 1 : 0;
  }
  return failures;
}

FailureRateEstimate make_estimate(std::size_t failures, std::size_t trials, double analytic) {
  FailureRateEstimate estimate;
  estimate.trials = trials;
  estimate.empirical = static_cast<double>(failures) / static_cast<double>(trials);
  estimate.analytic = analytic;
  estimate.ci95 = util::wilson_interval(failures, trials);
  estimate.ci95_half_width = estimate.ci95.half_width();
  return estimate;
}

}  // namespace

bool FailureRateEstimate::consistent(double slack) const {
  return ci95.contains(analytic, slack);
}

FailureRateEstimate estimate_failure_rate(const platform::Platform& platform,
                                          const mapping::IntervalMapping& mapping,
                                          const MonteCarloOptions& options) {
  RELAP_ASSERT(options.trials >= 1, "need at least one trial");

  // Flatten the mapping into SoA form once: the per-replica failure
  // probabilities group-major (the order that assigns replica i of trial t
  // the absolute counter t * R + i) plus group offsets. The trial kernel
  // then touches two flat arrays instead of chasing the mapping's
  // vector-of-vectors 100k+ times.
  std::vector<double> replica_fp;
  std::vector<std::size_t> group_offsets;
  group_offsets.reserve(mapping.interval_count() + 1);
  group_offsets.push_back(0);
  for (const mapping::IntervalAssignment& a : mapping.intervals()) {
    for (const platform::ProcessorId u : a.processors) {
      replica_fp.push_back(platform.failure_prob(u));
    }
    group_offsets.push_back(replica_fp.size());
  }

  const std::size_t failures = exec::parallel_reduce(
      options.trials, kBernoulliGrain, [] { return std::size_t{0}; },
      [&](std::size_t& local_failures, std::size_t begin, std::size_t end, std::size_t) {
        switch (simd::effective_lane_width(options.lane_width)) {
          case 1:
            local_failures += bernoulli_failures_w<1>(options.seed, begin, end, replica_fp,
                                                      group_offsets);
            break;
          case 4:
            local_failures += bernoulli_failures_w<4>(options.seed, begin, end, replica_fp,
                                                      group_offsets);
            break;
          case 8:
            local_failures += bernoulli_failures_w<8>(options.seed, begin, end, replica_fp,
                                                      group_offsets);
            break;
          default: RELAP_UNREACHABLE("lane_width must be 0, 1, 4 or 8");
        }
      },
      [](std::size_t& acc, std::size_t partial) { acc += partial; }, options.pool);

  return make_estimate(failures, options.trials,
                       mapping::failure_probability(platform, mapping));
}

TrialStats run_trials(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                      const mapping::IntervalMapping& mapping, const TrialOptions& options) {
  RELAP_ASSERT(options.trials >= 1, "need at least one trial");

  SimOptions sim_options;
  sim_options.dataset_count = options.dataset_count;

  // Failure-free reference run fixes the horizon.
  const SimResult reference =
      simulate(pipeline, platform, mapping, FailureScenario::none(platform.processor_count()),
               sim_options);
  RELAP_ASSERT(!reference.application_failed, "the failure-free run cannot fail");
  const double horizon = std::max(reference.makespan * options.horizon_factor, 1e-9);

  struct Accumulator {
    std::size_t failures = 0;
    util::StreamingStats latency;
  };
  // Batched driver: each chunk task runs its trials on a SimScratch arena —
  // scenarios are sampled in place into the scratch's buffer and the
  // SimResult buffers are recycled, so the steady-state trial loop performs
  // no heap allocation. Workspaces are recycled through a freelist rather
  // than rebuilt per 16-trial chunk: every workspace is bound identically,
  // so which chunk borrows which cannot affect the results, and in steady
  // state only as many workspaces exist as chunks ran concurrently.
  // Scenarios are counter-addressed per trial index (draw_indexed), and the
  // merge is index-ordered, so results are bit-identical at any thread
  // count or chunk grain by construction.
  struct Workspace {
    SimScratch scratch;
    SimResult run;
  };
  std::mutex freelist_mutex;
  std::vector<std::unique_ptr<Workspace>> freelist;
  const auto acquire = [&]() -> std::unique_ptr<Workspace> {
    {
      const std::lock_guard<std::mutex> lock(freelist_mutex);
      if (!freelist.empty()) {
        std::unique_ptr<Workspace> w = std::move(freelist.back());
        freelist.pop_back();
        return w;
      }
    }
    auto w = std::make_unique<Workspace>();
    w->scratch.bind(pipeline, platform, mapping, sim_options.send_order);
    return w;
  };

  const Accumulator totals = exec::parallel_reduce(
      options.trials, kEngineGrain, [] { return Accumulator{}; },
      [&](Accumulator& local, std::size_t begin, std::size_t end, std::size_t) {
        std::unique_ptr<Workspace> w = acquire();
        for (std::size_t t = begin; t < end; ++t) {
          FailureScenario::draw_indexed(w->scratch.scenario(), platform, horizon, options.seed, t);
          simulate_into(w->scratch, w->scratch.scenario(), sim_options, w->run);
          if (w->run.application_failed) {
            ++local.failures;
          } else {
            local.latency.add(w->run.worst_latency());
          }
        }
        const std::lock_guard<std::mutex> lock(freelist_mutex);
        freelist.push_back(std::move(w));
      },
      [](Accumulator& acc, Accumulator&& partial) {
        acc.failures += partial.failures;
        acc.latency.merge(partial.latency);
      },
      options.pool);

  TrialStats stats;
  stats.failure_free_latency = reference.worst_latency();
  stats.failure = make_estimate(totals.failures, options.trials,
                                mapping::failure_probability(platform, mapping));
  stats.latency = totals.latency;
  return stats;
}

}  // namespace relap::sim
