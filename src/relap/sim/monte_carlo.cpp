#include "relap/sim/monte_carlo.hpp"

#include <cmath>
#include <memory>
#include <mutex>
#include <vector>

#include "relap/exec/parallel.hpp"
#include "relap/mapping/reliability.hpp"
#include "relap/util/assert.hpp"
#include "relap/util/rng.hpp"

namespace relap::sim {

namespace {

/// Chunk grains for the parallel trial loops. Part of the deterministic
/// result contract: changing a grain changes which chunk (and hence which
/// split RNG stream) a trial belongs to, so these are fixed constants, not
/// tuned per thread count. Bernoulli trials are branch-cheap, full-engine
/// trials each run a discrete-event simulation.
constexpr std::size_t kBernoulliGrain = 8192;
constexpr std::size_t kEngineGrain = 16;

FailureRateEstimate make_estimate(std::size_t failures, std::size_t trials, double analytic) {
  FailureRateEstimate estimate;
  estimate.trials = trials;
  estimate.empirical = static_cast<double>(failures) / static_cast<double>(trials);
  estimate.analytic = analytic;
  estimate.ci95 = util::wilson_interval(failures, trials);
  estimate.ci95_half_width = estimate.ci95.half_width();
  return estimate;
}

}  // namespace

bool FailureRateEstimate::consistent(double slack) const {
  return ci95.contains(analytic, slack);
}

FailureRateEstimate estimate_failure_rate(const platform::Platform& platform,
                                          const mapping::IntervalMapping& mapping,
                                          const MonteCarloOptions& options) {
  RELAP_ASSERT(options.trials >= 1, "need at least one trial");
  util::Rng root(options.seed);
  const exec::ChunkGrid grid = exec::chunk_grid(options.trials, kBernoulliGrain);
  const std::vector<util::Rng> chunk_rngs = root.split_n(grid.chunks);

  // Flatten the mapping into SoA form once: the per-replica failure
  // probabilities group-major (the exact order the nested loops drew them
  // in, so the Bernoulli stream positions are unchanged) plus group
  // offsets. The per-trial loop then touches two flat arrays instead of
  // chasing the mapping's vector-of-vectors 2000+ times.
  std::vector<double> replica_fp;
  std::vector<std::size_t> group_offsets;
  group_offsets.reserve(mapping.interval_count() + 1);
  group_offsets.push_back(0);
  for (const mapping::IntervalAssignment& a : mapping.intervals()) {
    for (const platform::ProcessorId u : a.processors) {
      replica_fp.push_back(platform.failure_prob(u));
    }
    group_offsets.push_back(replica_fp.size());
  }
  const std::size_t group_count = mapping.interval_count();

  const std::size_t failures = exec::parallel_reduce(
      options.trials, kBernoulliGrain, [] { return std::size_t{0}; },
      [&](std::size_t& local_failures, std::size_t begin, std::size_t end, std::size_t chunk) {
        util::Rng rng = chunk_rngs[chunk];
        for (std::size_t t = begin; t < end; ++t) {
          bool app_failed = false;
          for (std::size_t g = 0; g < group_count; ++g) {
            bool group_wiped = true;
            for (std::size_t i = group_offsets[g]; i < group_offsets[g + 1]; ++i) {
              if (!rng.bernoulli(replica_fp[i])) {
                group_wiped = false;
                // Keep drawing the remaining replicas so the stream position
                // does not depend on outcomes (reproducibility across
                // refactors).
              }
            }
            app_failed = app_failed || group_wiped;
          }
          local_failures += app_failed ? 1 : 0;
        }
      },
      [](std::size_t& acc, std::size_t partial) { acc += partial; }, options.pool);

  return make_estimate(failures, options.trials,
                       mapping::failure_probability(platform, mapping));
}

TrialStats run_trials(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                      const mapping::IntervalMapping& mapping, const TrialOptions& options) {
  RELAP_ASSERT(options.trials >= 1, "need at least one trial");
  util::Rng root(options.seed);

  SimOptions sim_options;
  sim_options.dataset_count = options.dataset_count;

  // Failure-free reference run fixes the horizon.
  const SimResult reference =
      simulate(pipeline, platform, mapping, FailureScenario::none(platform.processor_count()),
               sim_options);
  RELAP_ASSERT(!reference.application_failed, "the failure-free run cannot fail");
  const double horizon = std::max(reference.makespan * options.horizon_factor, 1e-9);

  const exec::ChunkGrid grid = exec::chunk_grid(options.trials, kEngineGrain);
  const std::vector<util::Rng> chunk_rngs = root.split_n(grid.chunks);

  struct Accumulator {
    std::size_t failures = 0;
    util::StreamingStats latency;
  };
  // Batched driver: each chunk task runs its trials on a SimScratch arena —
  // scenarios are sampled in place into the scratch's buffer and the
  // SimResult buffers are recycled, so the steady-state trial loop performs
  // no heap allocation. Workspaces are recycled through a freelist rather
  // than rebuilt per 16-trial chunk: every workspace is bound identically,
  // so which chunk borrows which cannot affect the results, and in steady
  // state only as many workspaces exist as chunks ran concurrently. The
  // chunk grid, per-chunk split RNG streams and index-order merge are
  // unchanged, so results are bit-identical to the per-trial-allocation
  // engine at any thread count.
  struct Workspace {
    SimScratch scratch;
    SimResult run;
  };
  std::mutex freelist_mutex;
  std::vector<std::unique_ptr<Workspace>> freelist;
  const auto acquire = [&]() -> std::unique_ptr<Workspace> {
    {
      const std::lock_guard<std::mutex> lock(freelist_mutex);
      if (!freelist.empty()) {
        std::unique_ptr<Workspace> w = std::move(freelist.back());
        freelist.pop_back();
        return w;
      }
    }
    auto w = std::make_unique<Workspace>();
    w->scratch.bind(pipeline, platform, mapping, sim_options.send_order);
    return w;
  };

  const Accumulator totals = exec::parallel_reduce(
      options.trials, kEngineGrain, [] { return Accumulator{}; },
      [&](Accumulator& local, std::size_t begin, std::size_t end, std::size_t chunk) {
        util::Rng rng = chunk_rngs[chunk];
        std::unique_ptr<Workspace> w = acquire();
        for (std::size_t t = begin; t < end; ++t) {
          util::Rng trial_rng = rng.split();
          FailureScenario::draw_into(w->scratch.scenario(), platform, horizon, trial_rng);
          simulate_into(w->scratch, w->scratch.scenario(), sim_options, w->run);
          if (w->run.application_failed) {
            ++local.failures;
          } else {
            local.latency.add(w->run.worst_latency());
          }
        }
        const std::lock_guard<std::mutex> lock(freelist_mutex);
        freelist.push_back(std::move(w));
      },
      [](Accumulator& acc, Accumulator&& partial) {
        acc.failures += partial.failures;
        acc.latency.merge(partial.latency);
      },
      options.pool);

  TrialStats stats;
  stats.failure_free_latency = reference.worst_latency();
  stats.failure = make_estimate(totals.failures, options.trials,
                                mapping::failure_probability(platform, mapping));
  stats.latency = totals.latency;
  return stats;
}

}  // namespace relap::sim
