#include "relap/sim/monte_carlo.hpp"

#include <cmath>
#include <vector>

#include "relap/exec/parallel.hpp"
#include "relap/mapping/reliability.hpp"
#include "relap/util/assert.hpp"
#include "relap/util/rng.hpp"

namespace relap::sim {

namespace {

/// Chunk grains for the parallel trial loops. Part of the deterministic
/// result contract: changing a grain changes which chunk (and hence which
/// split RNG stream) a trial belongs to, so these are fixed constants, not
/// tuned per thread count. Bernoulli trials are branch-cheap, full-engine
/// trials each run a discrete-event simulation.
constexpr std::size_t kBernoulliGrain = 8192;
constexpr std::size_t kEngineGrain = 16;

FailureRateEstimate make_estimate(std::size_t failures, std::size_t trials, double analytic) {
  FailureRateEstimate estimate;
  estimate.trials = trials;
  estimate.empirical = static_cast<double>(failures) / static_cast<double>(trials);
  estimate.analytic = analytic;
  estimate.ci95 = util::wilson_interval(failures, trials);
  estimate.ci95_half_width = estimate.ci95.half_width();
  return estimate;
}

}  // namespace

bool FailureRateEstimate::consistent(double slack) const {
  return ci95.contains(analytic, slack);
}

FailureRateEstimate estimate_failure_rate(const platform::Platform& platform,
                                          const mapping::IntervalMapping& mapping,
                                          const MonteCarloOptions& options) {
  RELAP_ASSERT(options.trials >= 1, "need at least one trial");
  util::Rng root(options.seed);
  const exec::ChunkGrid grid = exec::chunk_grid(options.trials, kBernoulliGrain);
  const std::vector<util::Rng> chunk_rngs = root.split_n(grid.chunks);

  const std::size_t failures = exec::parallel_reduce(
      options.trials, kBernoulliGrain, [] { return std::size_t{0}; },
      [&](std::size_t& local_failures, std::size_t begin, std::size_t end, std::size_t chunk) {
        util::Rng rng = chunk_rngs[chunk];
        for (std::size_t t = begin; t < end; ++t) {
          bool app_failed = false;
          for (const mapping::IntervalAssignment& a : mapping.intervals()) {
            bool group_wiped = true;
            for (const platform::ProcessorId u : a.processors) {
              if (!rng.bernoulli(platform.failure_prob(u))) {
                group_wiped = false;
                // Keep drawing the remaining replicas so the stream position
                // does not depend on outcomes (reproducibility across
                // refactors).
              }
            }
            app_failed = app_failed || group_wiped;
          }
          local_failures += app_failed ? 1 : 0;
        }
      },
      [](std::size_t& acc, std::size_t partial) { acc += partial; }, options.pool);

  return make_estimate(failures, options.trials,
                       mapping::failure_probability(platform, mapping));
}

TrialStats run_trials(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                      const mapping::IntervalMapping& mapping, const TrialOptions& options) {
  RELAP_ASSERT(options.trials >= 1, "need at least one trial");
  util::Rng root(options.seed);

  SimOptions sim_options;
  sim_options.dataset_count = options.dataset_count;

  // Failure-free reference run fixes the horizon.
  const SimResult reference =
      simulate(pipeline, platform, mapping, FailureScenario::none(platform.processor_count()),
               sim_options);
  RELAP_ASSERT(!reference.application_failed, "the failure-free run cannot fail");
  const double horizon = std::max(reference.makespan * options.horizon_factor, 1e-9);

  const exec::ChunkGrid grid = exec::chunk_grid(options.trials, kEngineGrain);
  const std::vector<util::Rng> chunk_rngs = root.split_n(grid.chunks);

  struct Accumulator {
    std::size_t failures = 0;
    util::StreamingStats latency;
  };
  const Accumulator totals = exec::parallel_reduce(
      options.trials, kEngineGrain, [] { return Accumulator{}; },
      [&](Accumulator& local, std::size_t begin, std::size_t end, std::size_t chunk) {
        util::Rng rng = chunk_rngs[chunk];
        for (std::size_t t = begin; t < end; ++t) {
          util::Rng trial_rng = rng.split();
          const FailureScenario scenario = FailureScenario::draw(platform, horizon, trial_rng);
          const SimResult run = simulate(pipeline, platform, mapping, scenario, sim_options);
          if (run.application_failed) {
            ++local.failures;
          } else {
            local.latency.add(run.worst_latency());
          }
        }
      },
      [](Accumulator& acc, Accumulator&& partial) {
        acc.failures += partial.failures;
        acc.latency.merge(partial.latency);
      },
      options.pool);

  TrialStats stats;
  stats.failure_free_latency = reference.worst_latency();
  stats.failure = make_estimate(totals.failures, options.trials,
                                mapping::failure_probability(platform, mapping));
  stats.latency = totals.latency;
  return stats;
}

}  // namespace relap::sim
