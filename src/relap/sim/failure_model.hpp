#pragma once

/// \file failure_model.hpp
/// Failure scenarios for the discrete-event simulator.
///
/// The paper's model is a *per-execution* failure probability: processor u
/// breaks down at some point during the (long) run with probability fp_u,
/// independently. A `FailureScenario` fixes one realization: an absolute
/// death time per processor (+infinity = survives), plus an optional
/// "dies immediately after its first completed receive" marker used to
/// build the adversarial worst case behind Equations (1)/(2) — the paper's
/// "the first processors involved in the replication fail during execution":
/// the serialized input transfers are all paid, but the replica contributes
/// no computation.

#include <cstdint>
#include <vector>

#include "relap/mapping/interval_mapping.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"
#include "relap/util/rng.hpp"

namespace relap::sim {

struct FailureScenario {
  /// Absolute death time per processor; +infinity means it never fails.
  std::vector<double> failure_time;
  /// When set, the processor dies the instant its first receive completes
  /// (overrides failure_time).
  std::vector<bool> fail_after_first_receive;

  /// No failures at all.
  [[nodiscard]] static FailureScenario none(std::size_t processor_count);

  /// Explicit death times.
  [[nodiscard]] static FailureScenario at_times(std::vector<double> times);

  /// Random realization of the paper's model: processor u dies with
  /// probability fp_u, at a time uniform in [0, horizon).
  [[nodiscard]] static FailureScenario draw(const platform::Platform& platform, double horizon,
                                            util::Rng& rng);

  /// In-place variant of `draw` for the Monte-Carlo hot loop: consumes the
  /// RNG stream identically but writes into `scenario`'s existing buffers,
  /// so a scenario sized to the platform is re-sampled without allocating
  /// (the batched trial driver samples into `SimScratch::scenario()`).
  static void draw_into(FailureScenario& scenario, const platform::Platform& platform,
                        double horizon, util::Rng& rng);

  /// Counter-addressed variant of `draw_into`: every random decision of
  /// trial `trial_index` is a `util::counter_hash` draw at an absolute
  /// counter (2 per processor — breakdown Bernoulli, then death time), so
  /// the realization depends only on (seed, trial_index, u). `run_trials`
  /// samples with this, which makes its results invariant to thread count
  /// and chunk grid *by construction* instead of by careful stream
  /// splitting. Allocation-free once `scenario` is sized to the platform.
  static void draw_indexed(FailureScenario& scenario, const platform::Platform& platform,
                           double horizon, std::uint64_t seed, std::uint64_t trial_index);

  /// The adversarial scenario behind the latency formulas: in every replica
  /// group of `mapping`, all processors except the one with the largest
  /// Eq. (2) sender-side term die right after receiving their input.
  [[nodiscard]] static FailureScenario worst_case(const pipeline::Pipeline& pipeline,
                                                  const platform::Platform& platform,
                                                  const mapping::IntervalMapping& mapping);

  /// True iff `u` is dead at (or before) `time`.
  [[nodiscard]] bool dead_at(platform::ProcessorId u, double time) const;

  /// True iff at least one interval of `mapping` lost all its replicas —
  /// the event whose probability the paper's FP formula computes.
  [[nodiscard]] bool application_fails(const mapping::IntervalMapping& mapping) const;
};

/// The Eq. (2) sender-side worst-case survivor of a replica group: the
/// processor maximizing compute + serialized-output time. `next_group` is
/// null for the last interval (output goes to P_out). Exposed for tests.
[[nodiscard]] platform::ProcessorId worst_case_survivor(
    const pipeline::Pipeline& pipeline, const platform::Platform& platform,
    const mapping::IntervalAssignment& interval,
    const std::vector<platform::ProcessorId>* next_group);

}  // namespace relap::sim
