#include "relap/pipeline/pipeline.hpp"

#include <cmath>

#include "relap/util/assert.hpp"
#include "relap/util/strings.hpp"

namespace relap::pipeline {

namespace {

void check_finite_non_negative(std::span<const double> values, const char* what) {
  for (const double v : values) {
    RELAP_ASSERT(std::isfinite(v), what);
    RELAP_ASSERT(v >= 0.0, what);
  }
}

}  // namespace

Pipeline::Pipeline(std::vector<double> work, std::vector<double> data)
    : work_(std::move(work)), data_(std::move(data)) {
  RELAP_ASSERT(!work_.empty(), "pipeline needs at least one stage");
  RELAP_ASSERT(data_.size() == work_.size() + 1,
               "need exactly n+1 data sizes delta_0..delta_n for n stages");
  check_finite_non_negative(work_, "stage work must be finite and >= 0");
  check_finite_non_negative(data_, "data sizes must be finite and >= 0");
  work_prefix_.resize(work_.size() + 1, 0.0);
  for (std::size_t k = 0; k < work_.size(); ++k) {
    work_prefix_[k + 1] = work_prefix_[k] + work_[k];
  }
}

double Pipeline::work(std::size_t stage) const {
  RELAP_ASSERT(stage < work_.size(), "stage index out of range");
  return work_[stage];
}

double Pipeline::data(std::size_t boundary) const {
  RELAP_ASSERT(boundary < data_.size(), "data boundary index out of range");
  return data_[boundary];
}

double Pipeline::work_sum(std::size_t first, std::size_t last) const {
  RELAP_ASSERT(first <= last, "work_sum requires first <= last");
  RELAP_ASSERT(last < work_.size(), "work_sum range out of bounds");
  return work_prefix_[last + 1] - work_prefix_[first];
}

Pipeline Pipeline::uniform(std::size_t n, double w, double delta) {
  RELAP_ASSERT(n >= 1, "pipeline needs at least one stage");
  return Pipeline(std::vector<double>(n, w), std::vector<double>(n + 1, delta));
}

std::string Pipeline::describe() const {
  std::string out = "pipeline n=" + std::to_string(stage_count()) + " w=[";
  for (std::size_t k = 0; k < work_.size(); ++k) {
    if (k > 0) out += ' ';
    out += util::format_double(work_[k]);
  }
  out += "] delta=[";
  for (std::size_t k = 0; k < data_.size(); ++k) {
    if (k > 0) out += ' ';
    out += util::format_double(data_[k]);
  }
  out += ']';
  return out;
}

}  // namespace relap::pipeline
