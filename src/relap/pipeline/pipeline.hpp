#pragma once

/// \file pipeline.hpp
/// The application model: a linear pipeline workflow (paper Figure 1).
///
/// A pipeline has n stages S_1..S_n. Stage S_k reads an input of size
/// delta_{k-1} from its predecessor, performs w_k units of computation and
/// writes an output of size delta_k. delta_0 is the size of the external
/// input (read from P_in), delta_n the size of the final result (written to
/// P_out). Consecutive data sets are fed into the pipeline; every data set
/// traverses all stages in order.
///
/// Indexing convention: this library is 0-based. Stage k (0 <= k < n)
/// corresponds to the paper's S_{k+1}; `input_size(k)` is the paper's
/// delta_k (the data flowing *into* stage k), `output_size(k)` is
/// delta_{k+1}.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace relap::pipeline {

/// Immutable pipeline workflow description.
class Pipeline {
 public:
  /// Builds a pipeline from per-stage work amounts and the n+1 data sizes
  /// delta_0..delta_n.
  ///
  /// Preconditions: `work` non-empty; `data.size() == work.size() + 1`;
  /// all values finite and non-negative.
  Pipeline(std::vector<double> work, std::vector<double> data);

  /// Number of stages n.
  [[nodiscard]] std::size_t stage_count() const { return work_.size(); }

  /// Computation amount w_{k+1} of stage k (0-based).
  [[nodiscard]] double work(std::size_t stage) const;

  /// delta_k for k in [0, n]: data size flowing between stage k-1 and k
  /// (k = 0 is the external input, k = n the external output).
  [[nodiscard]] double data(std::size_t boundary) const;

  /// Size of the data read by stage k: delta_k.
  [[nodiscard]] double input_size(std::size_t stage) const { return data(stage); }

  /// Size of the data written by stage k: delta_{k+1}.
  [[nodiscard]] double output_size(std::size_t stage) const { return data(stage + 1); }

  /// Sum of w over the stage interval [first, last] (inclusive, 0-based).
  /// Precondition: first <= last < stage_count(). O(1) via prefix sums.
  [[nodiscard]] double work_sum(std::size_t first, std::size_t last) const;

  /// Total computation of the whole pipeline.
  [[nodiscard]] double total_work() const { return work_sum(0, stage_count() - 1); }

  [[nodiscard]] std::span<const double> work_vector() const { return work_; }
  [[nodiscard]] std::span<const double> data_vector() const { return data_; }

  /// A pipeline with n stages of identical work `w` and identical data sizes
  /// `delta` on every boundary (including input/output).
  [[nodiscard]] static Pipeline uniform(std::size_t n, double w, double delta);

  /// One-line human-readable description.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const Pipeline&, const Pipeline&) = default;

 private:
  std::vector<double> work_;        // size n
  std::vector<double> data_;        // size n+1
  std::vector<double> work_prefix_; // size n+1, work_prefix_[k] = sum of first k works
};

}  // namespace relap::pipeline
