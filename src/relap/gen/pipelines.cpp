#include "relap/gen/pipelines.hpp"

#include "relap/util/assert.hpp"
#include "relap/util/rng.hpp"

namespace relap::gen {

pipeline::Pipeline random_pipeline(const PipelineGenOptions& options, std::uint64_t seed) {
  RELAP_ASSERT(options.stages >= 1, "pipeline needs at least one stage");
  util::Rng rng(seed);
  std::vector<double> work(options.stages);
  std::vector<double> data(options.stages + 1);
  for (double& w : work) w = rng.uniform(options.work_min, options.work_max);
  for (double& d : data) d = rng.uniform(options.data_min, options.data_max);
  return pipeline::Pipeline(std::move(work), std::move(data));
}

pipeline::Pipeline random_uniform_pipeline(std::size_t stages, std::uint64_t seed) {
  PipelineGenOptions options;
  options.stages = stages;
  return random_pipeline(options, seed);
}

pipeline::Pipeline compute_heavy_pipeline(std::size_t stages, std::uint64_t seed) {
  PipelineGenOptions options;
  options.stages = stages;
  options.work_min = 50.0;
  options.work_max = 100.0;
  options.data_min = 1.0;
  options.data_max = 5.0;
  return random_pipeline(options, seed);
}

pipeline::Pipeline comm_heavy_pipeline(std::size_t stages, std::uint64_t seed) {
  PipelineGenOptions options;
  options.stages = stages;
  options.work_min = 1.0;
  options.work_max = 5.0;
  options.data_min = 50.0;
  options.data_max = 100.0;
  return random_pipeline(options, seed);
}

pipeline::Pipeline bimodal_pipeline(std::size_t stages, std::uint64_t seed) {
  RELAP_ASSERT(stages >= 1, "pipeline needs at least one stage");
  util::Rng rng(seed);
  std::vector<double> work(stages);
  std::vector<double> data(stages + 1);
  for (double& w : work) {
    w = rng.bernoulli(0.5) ? rng.uniform(1.0, 5.0) : rng.uniform(80.0, 120.0);
  }
  for (double& d : data) d = rng.uniform(1.0, 10.0);
  return pipeline::Pipeline(std::move(work), std::move(data));
}

pipeline::Pipeline jpeg_like_pipeline() {
  // Stages: RGB->YCbCr, chroma subsample, 8x8 block split, forward DCT,
  // quantization, zigzag + RLE, Huffman coding. Work in relative
  // operation counts per image, data in relative bytes between stages
  // (shrinking after subsampling and entropy steps).
  return pipeline::Pipeline(
      /*work=*/{12.0, 6.0, 2.0, 40.0, 10.0, 8.0, 18.0},
      /*data=*/{48.0, 48.0, 24.0, 24.0, 24.0, 24.0, 12.0, 6.0});
}

}  // namespace relap::gen
