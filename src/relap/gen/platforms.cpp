#include "relap/gen/platforms.hpp"

#include "relap/platform/builders.hpp"
#include "relap/util/assert.hpp"
#include "relap/util/rng.hpp"

namespace relap::gen {

namespace {

std::vector<double> uniform_vector(util::Rng& rng, std::size_t count, double lo, double hi) {
  std::vector<double> values(count);
  for (double& v : values) v = rng.uniform(lo, hi);
  return values;
}

}  // namespace

platform::Platform random_fully_homogeneous(const PlatformGenOptions& options,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  return platform::make_fully_homogeneous(
      options.processors, rng.uniform(options.speed_min, options.speed_max),
      rng.uniform(options.bandwidth_min, options.bandwidth_max),
      rng.uniform(options.fp_min, options.fp_max));
}

platform::Platform random_fully_hom_het_failures(const PlatformGenOptions& options,
                                                 std::uint64_t seed) {
  util::Rng rng(seed);
  const double s = rng.uniform(options.speed_min, options.speed_max);
  const double b = rng.uniform(options.bandwidth_min, options.bandwidth_max);
  return platform::make_fully_homogeneous_het_failures(
      s, b, uniform_vector(rng, options.processors, options.fp_min, options.fp_max));
}

platform::Platform random_comm_homogeneous(const PlatformGenOptions& options,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> speeds =
      uniform_vector(rng, options.processors, options.speed_min, options.speed_max);
  const double b = rng.uniform(options.bandwidth_min, options.bandwidth_max);
  return platform::make_comm_homogeneous(std::move(speeds), b,
                                         rng.uniform(options.fp_min, options.fp_max));
}

platform::Platform random_comm_hom_het_failures(const PlatformGenOptions& options,
                                                std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> speeds =
      uniform_vector(rng, options.processors, options.speed_min, options.speed_max);
  const double b = rng.uniform(options.bandwidth_min, options.bandwidth_max);
  return platform::make_comm_homogeneous(
      std::move(speeds), b,
      uniform_vector(rng, options.processors, options.fp_min, options.fp_max));
}

platform::Platform random_fully_heterogeneous(const PlatformGenOptions& options,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t m = options.processors;
  std::vector<double> speeds = uniform_vector(rng, m, options.speed_min, options.speed_max);
  std::vector<double> fps = uniform_vector(rng, m, options.fp_min, options.fp_max);
  std::vector<std::vector<double>> link(m);
  for (auto& row : link) {
    row = uniform_vector(rng, m, options.bandwidth_min, options.bandwidth_max);
  }
  std::vector<double> in = uniform_vector(rng, m, options.bandwidth_min, options.bandwidth_max);
  std::vector<double> out = uniform_vector(rng, m, options.bandwidth_min, options.bandwidth_max);
  return platform::Platform(std::move(speeds), std::move(fps), std::move(link), std::move(in),
                            std::move(out));
}

platform::Platform random_reliable_unreliable_mix(std::size_t reliable, std::size_t unreliable,
                                                  std::uint64_t seed) {
  RELAP_ASSERT(reliable + unreliable >= 1, "platform needs at least one processor");
  util::Rng rng(seed);
  std::vector<double> speeds;
  std::vector<double> fps;
  speeds.reserve(reliable + unreliable);
  fps.reserve(reliable + unreliable);
  for (std::size_t i = 0; i < reliable; ++i) {
    speeds.push_back(rng.uniform(1.0, 2.0));     // slow
    fps.push_back(rng.uniform(0.01, 0.15));      // reliable
  }
  for (std::size_t i = 0; i < unreliable; ++i) {
    speeds.push_back(rng.uniform(50.0, 150.0));  // fast
    fps.push_back(rng.uniform(0.6, 0.9));        // unreliable
  }
  return platform::make_comm_homogeneous(std::move(speeds), 1.0, std::move(fps));
}

}  // namespace relap::gen
