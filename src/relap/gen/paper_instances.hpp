#pragma once

/// \file paper_instances.hpp
/// The paper's worked examples, digit for digit.
///
/// * Figures 3 and 4 (Section 3): a 2-stage pipeline (w = 2, delta = 100
///   everywhere) on a 2-processor Fully Heterogeneous platform where mapping
///   both stages to one processor yields latency 105 but splitting across
///   the two processors yields 7 — splitting can beat the single interval
///   once links are heterogeneous.
/// * Figure 5 (Section 3): a 2-stage pipeline (w = [1, 100], delta =
///   [10, 1, 0]) on 1 slow reliable processor (s = 1, fp = 0.1) plus 10 fast
///   unreliable ones (s = 100, fp = 0.8), identical unit links. Under
///   latency threshold 22 the best single interval achieves FP = 0.64 while
///   the two-interval mapping {slow on S1, 10-way replication of S2} reaches
///   latency exactly 22 with FP = 1 - 0.9*(1 - 0.8^10) < 0.2.

#include "relap/mapping/interval_mapping.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"

namespace relap::gen {

/// Figure 3: two stages, w_i = 2, delta_0 = delta_1 = delta_2 = 100.
[[nodiscard]] pipeline::Pipeline fig3_pipeline();

/// Figure 4: two unit-speed processors; b_{in,1} = b_{1,2} = b_{2,out} = 100,
/// b_{in,2} = b_{1,out} = 1. (Failure probabilities are irrelevant to the
/// example; set to 0.1.)
[[nodiscard]] platform::Platform fig4_platform();

/// The latency-105 mapping of the example: both stages on processor 0.
[[nodiscard]] mapping::IntervalMapping fig4_single_mapping();

/// The latency-7 mapping: stage 0 on processor 0, stage 1 on processor 1.
[[nodiscard]] mapping::IntervalMapping fig4_split_mapping();

/// Figure 5: two stages, w = [1, 100], delta = [10, 1, 0].
[[nodiscard]] pipeline::Pipeline fig5_pipeline();

/// Figure 5 platform: processor 0 slow/reliable (s=1, fp=0.1), processors
/// 1..10 fast/unreliable (s=100, fp=0.8), all links b = 1.
[[nodiscard]] platform::Platform fig5_platform();

/// The paper's latency threshold for the Figure 5 discussion.
[[nodiscard]] constexpr double fig5_latency_threshold() { return 22.0; }

/// Best single-interval mapping under the threshold: two fast processors
/// (FP = 0.64).
[[nodiscard]] mapping::IntervalMapping fig5_single_interval_mapping();

/// The two-interval optimum: slow processor on stage 0, all ten fast
/// processors replicating stage 1 (latency 22, FP < 0.2).
[[nodiscard]] mapping::IntervalMapping fig5_two_interval_mapping();

}  // namespace relap::gen
