#pragma once

/// \file platforms.hpp
/// Seeded random platform generators, one per class of the paper's taxonomy
/// plus mixes that exercise the motivating examples' structure.

#include <cstdint>

#include "relap/platform/platform.hpp"

namespace relap::gen {

/// Parameter ranges for random platforms; values drawn uniformly.
struct PlatformGenOptions {
  std::size_t processors = 8;
  double speed_min = 1.0;
  double speed_max = 20.0;
  double fp_min = 0.01;
  double fp_max = 0.5;
  double bandwidth_min = 1.0;
  double bandwidth_max = 20.0;
};

/// Fully Homogeneous, Failure Homogeneous: one random speed/bandwidth/fp
/// shared by everything.
[[nodiscard]] platform::Platform random_fully_homogeneous(const PlatformGenOptions& options,
                                                          std::uint64_t seed);

/// Fully Homogeneous communications, heterogeneous failures.
[[nodiscard]] platform::Platform random_fully_hom_het_failures(const PlatformGenOptions& options,
                                                               std::uint64_t seed);

/// Communication Homogeneous, Failure Homogeneous.
[[nodiscard]] platform::Platform random_comm_homogeneous(const PlatformGenOptions& options,
                                                         std::uint64_t seed);

/// Communication Homogeneous, Failure Heterogeneous — the open class.
[[nodiscard]] platform::Platform random_comm_hom_het_failures(const PlatformGenOptions& options,
                                                              std::uint64_t seed);

/// Fully Heterogeneous (independent link bandwidths), Failure Heterogeneous.
[[nodiscard]] platform::Platform random_fully_heterogeneous(const PlatformGenOptions& options,
                                                            std::uint64_t seed);

/// Figure-5-shaped mix: `reliable` slow processors with small fp plus
/// `unreliable` fast ones with large fp, identical links — the structure on
/// which single-interval mappings are provably suboptimal.
[[nodiscard]] platform::Platform random_reliable_unreliable_mix(std::size_t reliable,
                                                                std::size_t unreliable,
                                                                std::uint64_t seed);

}  // namespace relap::gen
