#pragma once

/// \file pipelines.hpp
/// Seeded random pipeline generators and fixed application presets used by
/// tests, benches and examples. All generators are deterministic functions
/// of their arguments (see util/rng.hpp for the portable stream).

#include <cstdint>

#include "relap/pipeline/pipeline.hpp"

namespace relap::gen {

/// Parameter ranges for random pipelines; values drawn uniformly.
struct PipelineGenOptions {
  std::size_t stages = 8;
  double work_min = 1.0;
  double work_max = 10.0;
  double data_min = 1.0;
  double data_max = 10.0;
};

[[nodiscard]] pipeline::Pipeline random_pipeline(const PipelineGenOptions& options,
                                                 std::uint64_t seed);

/// Balanced: work and data both in [1, 10].
[[nodiscard]] pipeline::Pipeline random_uniform_pipeline(std::size_t stages, std::uint64_t seed);

/// Compute-bound: work in [50, 100], data in [1, 5].
[[nodiscard]] pipeline::Pipeline compute_heavy_pipeline(std::size_t stages, std::uint64_t seed);

/// Communication-bound: work in [1, 5], data in [50, 100].
[[nodiscard]] pipeline::Pipeline comm_heavy_pipeline(std::size_t stages, std::uint64_t seed);

/// Bimodal: each stage is light (work ~ [1, 5]) or heavy (work ~ [80, 120])
/// with equal probability — the shape that stresses interval splitting.
[[nodiscard]] pipeline::Pipeline bimodal_pipeline(std::size_t stages, std::uint64_t seed);

/// A 7-stage JPEG-encoder-like pipeline (color transform, subsample, block
/// split, DCT, quantize, RLE/zigzag, entropy coding) with plausible relative
/// costs. Synthetic: the companion report [3] the paper cites is not part of
/// this paper, so these numbers are illustrative only (see DESIGN.md §4).
[[nodiscard]] pipeline::Pipeline jpeg_like_pipeline();

}  // namespace relap::gen
