#include "relap/gen/paper_instances.hpp"

#include "relap/platform/builders.hpp"

namespace relap::gen {

pipeline::Pipeline fig3_pipeline() { return pipeline::Pipeline({2.0, 2.0}, {100.0, 100.0, 100.0}); }

platform::Platform fig4_platform() {
  platform::PlatformBuilder builder;
  const platform::ProcessorId p1 = builder.add_processor(1.0, 0.1);
  const platform::ProcessorId p2 = builder.add_processor(1.0, 0.1);
  builder.default_bandwidth(1.0)
      .link(p1, p2, 100.0)
      .link_in(p1, 100.0)
      .link_in(p2, 1.0)
      .link_out(p1, 1.0)
      .link_out(p2, 100.0);
  return builder.build();
}

mapping::IntervalMapping fig4_single_mapping() {
  return mapping::IntervalMapping::single_interval(2, {0});
}

mapping::IntervalMapping fig4_split_mapping() {
  return mapping::IntervalMapping({{{0, 0}, {0}}, {{1, 1}, {1}}});
}

pipeline::Pipeline fig5_pipeline() { return pipeline::Pipeline({1.0, 100.0}, {10.0, 1.0, 0.0}); }

platform::Platform fig5_platform() {
  std::vector<double> speeds{1.0};
  std::vector<double> fps{0.1};
  for (int i = 0; i < 10; ++i) {
    speeds.push_back(100.0);
    fps.push_back(0.8);
  }
  return platform::make_comm_homogeneous(std::move(speeds), 1.0, std::move(fps));
}

mapping::IntervalMapping fig5_single_interval_mapping() {
  return mapping::IntervalMapping::single_interval(2, {1, 2});
}

mapping::IntervalMapping fig5_two_interval_mapping() {
  return mapping::IntervalMapping(
      {{{0, 0}, {0}}, {{1, 1}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}});
}

}  // namespace relap::gen
