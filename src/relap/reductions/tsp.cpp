#include "relap/reductions/tsp.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "relap/util/assert.hpp"

namespace relap::reductions {

TspReduction tsp_to_one_to_one(const TspInstance& instance) {
  const std::size_t n = instance.vertex_count();
  RELAP_ASSERT(n >= 2, "TSP reduction needs at least two vertices");
  RELAP_ASSERT(instance.source < n && instance.tail < n && instance.source != instance.tail,
               "source and tail must be distinct vertices");
  for (std::size_t i = 0; i < n; ++i) {
    RELAP_ASSERT(instance.cost[i].size() == n, "cost matrix must be square");
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        RELAP_ASSERT(std::isfinite(instance.cost[i][j]) && instance.cost[i][j] > 0.0,
                     "edge costs must be positive and finite");
      }
    }
  }

  // Unit application: w_i = delta_i = 1 everywhere.
  pipeline::Pipeline pipe(std::vector<double>(n, 1.0), std::vector<double>(n + 1, 1.0));

  // "Very slow" links must cost more than K + n + 3 so that any mapping that
  // uses one immediately exceeds the threshold K' = K + n + 2.
  const double slow_bandwidth =
      1.0 / (instance.bound + static_cast<double>(n) + 4.0);

  std::vector<std::vector<double>> link(n, std::vector<double>(n, slow_bandwidth));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) link[i][j] = 1.0 / instance.cost[i][j];
    }
  }
  std::vector<double> in(n, slow_bandwidth);
  std::vector<double> out(n, slow_bandwidth);
  in[instance.source] = 1.0;
  out[instance.tail] = 1.0;

  platform::Platform plat(std::vector<double>(n, 1.0), std::vector<double>(n, 0.0),
                          std::move(link), std::move(in), std::move(out));
  const double threshold = instance.bound + static_cast<double>(n) + 2.0;
  return TspReduction{std::move(pipe), std::move(plat), threshold};
}

double path_cost(const TspInstance& instance, const std::vector<std::size_t>& path) {
  const std::size_t n = instance.vertex_count();
  RELAP_ASSERT(path.size() == n, "path must visit every vertex exactly once");
  RELAP_ASSERT(path.front() == instance.source && path.back() == instance.tail,
               "path must start at the source and end at the tail");
  std::vector<bool> seen(n, false);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    RELAP_ASSERT(!seen[path[i]], "path must visit every vertex exactly once");
    seen[path[i]] = true;
    if (i + 1 < n) total += instance.cost[path[i]][path[i + 1]];
  }
  return total;
}

util::Expected<std::vector<std::size_t>> held_karp_path(const TspInstance& instance) {
  const std::size_t n = instance.vertex_count();
  if (n > 20) {
    return util::budget_exceeded("Held-Karp beyond 20 vertices does not fit in memory");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t mask_count = std::size_t{1} << n;

  // dp[mask * n + v]: cheapest path from source through exactly `mask`,
  // currently at v. The tail is only allowed as the final vertex.
  std::vector<double> dp(mask_count * n, kInf);
  std::vector<std::uint8_t> parent(mask_count * n, 0);
  dp[(std::size_t{1} << instance.source) * n + instance.source] = 0.0;

  for (std::size_t mask = 1; mask < mask_count; ++mask) {
    if (!(mask & (std::size_t{1} << instance.source))) continue;
    for (std::size_t v = 0; v < n; ++v) {
      if (!(mask & (std::size_t{1} << v))) continue;
      const double base = dp[mask * n + v];
      if (base == kInf) continue;
      if (v == instance.tail) continue;  // the tail ends the path
      for (std::size_t w = 0; w < n; ++w) {
        if (mask & (std::size_t{1} << w)) continue;
        const double cost = base + instance.cost[v][w];
        const std::size_t slot = (mask | (std::size_t{1} << w)) * n + w;
        if (cost < dp[slot]) {
          dp[slot] = cost;
          parent[slot] = static_cast<std::uint8_t>(v);
        }
      }
    }
  }

  const std::size_t full = mask_count - 1;
  if (dp[full * n + instance.tail] == kInf) {
    return util::infeasible("no Hamiltonian source->tail path exists");
  }
  std::vector<std::size_t> path(n);
  std::size_t mask = full;
  std::size_t v = instance.tail;
  for (std::size_t i = n; i-- > 0;) {
    path[i] = v;
    const std::size_t prev = parent[mask * n + v];
    mask &= ~(std::size_t{1} << v);
    v = prev;
  }
  return path;
}

std::vector<std::size_t> mapping_to_path(const mapping::GeneralMapping& mapping) {
  return mapping.assignment();
}

double expected_latency_for_path_cost(const TspInstance& instance, double cost) {
  // 1 (P_in -> source) + n computations + path cost + 1 (tail -> P_out).
  return cost + static_cast<double>(instance.vertex_count()) + 2.0;
}

}  // namespace relap::reductions
