#include "relap/reductions/partition.hpp"

#include <algorithm>
#include <cmath>

#include "relap/util/assert.hpp"

namespace relap::reductions {

std::uint64_t PartitionInstance::sum() const {
  std::uint64_t total = 0;
  for (const std::uint64_t v : values) total += v;
  return total;
}

PartitionReduction partition_to_bicriteria(const PartitionInstance& instance) {
  const std::size_t m = instance.values.size();
  RELAP_ASSERT(m >= 1, "2-PARTITION needs at least one value");
  for (const std::uint64_t v : instance.values) {
    RELAP_ASSERT(v >= 1, "2-PARTITION values must be positive");
  }

  pipeline::Pipeline pipe({1.0}, {1.0, 1.0});

  std::vector<double> failure_probs(m);
  std::vector<double> in(m);
  for (std::size_t j = 0; j < m; ++j) {
    const auto a = static_cast<double>(instance.values[j]);
    failure_probs[j] = std::exp(-a);
    in[j] = 1.0 / a;
  }
  // Inter-processor links are irrelevant for a single-stage pipeline; unit
  // bandwidth keeps the platform well-formed.
  std::vector<std::vector<double>> link(m, std::vector<double>(m, 1.0));
  platform::Platform plat(std::vector<double>(m, 1.0), std::move(failure_probs), std::move(link),
                          std::move(in), std::vector<double>(m, 1.0));

  const double half = static_cast<double>(instance.sum()) / 2.0;
  return PartitionReduction{std::move(pipe), std::move(plat), half + 2.0, std::exp(-half)};
}

bool has_equal_partition(const PartitionInstance& instance) {
  return !equal_partition_witness(instance).empty() ||
         (instance.sum() == 0);  // degenerate; sum()==0 cannot happen with positive values
}

std::vector<std::size_t> equal_partition_witness(const PartitionInstance& instance) {
  const std::uint64_t total = instance.sum();
  if (total % 2 != 0) return {};
  const std::uint64_t target = total / 2;

  // reachable[s] = index of the last value used to first reach sum s, or -1.
  constexpr std::size_t kUnreached = static_cast<std::size_t>(-1);
  std::vector<std::size_t> last_used(target + 1, kUnreached);
  std::vector<std::uint64_t> reached_order;  // sums in discovery order, for DP sweep
  last_used[0] = instance.values.size();     // sentinel "no value"

  for (std::size_t i = 0; i < instance.values.size(); ++i) {
    const std::uint64_t v = instance.values[i];
    if (v > target) continue;
    // Classic 0/1 subset-sum sweep, descending so each value is used once.
    for (std::uint64_t s = target; s >= v; --s) {
      if (last_used[s] == kUnreached && last_used[s - v] != kUnreached &&
          last_used[s - v] != i) {
        last_used[s] = i;
      }
      if (s == v) break;  // avoid unsigned underflow in the loop condition
    }
  }
  if (last_used[target] == kUnreached) return {};

  std::vector<std::size_t> witness;
  std::uint64_t s = target;
  while (s > 0) {
    const std::size_t i = last_used[s];
    RELAP_ASSERT(i < instance.values.size(), "subset-sum reconstruction out of range");
    witness.push_back(i);
    s -= instance.values[i];
  }
  std::reverse(witness.begin(), witness.end());
  return witness;
}

std::vector<std::size_t> mapping_to_subset(const mapping::IntervalMapping& mapping) {
  RELAP_ASSERT(mapping.interval_count() == 1,
               "the reduced instance has one stage, so one interval");
  return mapping.interval(0).processors;
}

}  // namespace relap::reductions
