#pragma once

/// \file tsp.hpp
/// Executable form of Theorem 3: minimizing the latency of one-to-one
/// mappings on Fully Heterogeneous platforms is NP-hard, by reduction from
/// the Traveling Salesman (Hamiltonian path) problem.
///
/// The construction (paper Section 4.1): given a complete graph G with edge
/// costs c, a source s, a tail t and a bound K, build a pipeline of n = |V|
/// unit stages (w_i = delta_i = 1) and a platform of n unit-speed
/// processors; interconnect P_in with s and P_out with t at bandwidth 1,
/// processor i with j at bandwidth 1/c(i,j), and make every other link
/// slower than 1/(K+n+3). Then G has a Hamiltonian path from s to t of cost
/// <= K iff the reduced instance admits a one-to-one mapping of latency
/// <= K' = K + n + 2 — and the mapping *is* the path.
///
/// The module also ships a Held-Karp solver for the source problem so tests
/// can verify both directions of the reduction, and converters between
/// mappings and paths.

#include <cstddef>
#include <vector>

#include "relap/algorithms/types.hpp"
#include "relap/mapping/general_mapping.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"
#include "relap/util/expected.hpp"

namespace relap::reductions {

/// A TSP (Hamiltonian s-t path) decision instance on a complete graph.
struct TspInstance {
  /// Symmetric or asymmetric edge costs; cost[i][j] > 0 for i != j.
  std::vector<std::vector<double>> cost;
  std::size_t source = 0;
  std::size_t tail = 0;
  double bound = 0.0;  ///< K

  [[nodiscard]] std::size_t vertex_count() const { return cost.size(); }
};

/// The reduced scheduling instance of Theorem 3.
struct TspReduction {
  pipeline::Pipeline pipeline;
  platform::Platform platform;
  /// K' = K + n + 2: the latency threshold of the decision problem.
  double latency_threshold;
};

/// Builds the reduced instance. Preconditions: >= 2 vertices, source != tail,
/// positive finite costs off the diagonal.
[[nodiscard]] TspReduction tsp_to_one_to_one(const TspInstance& instance);

/// Cost of a given vertex sequence (must start at source, end at tail, and
/// visit every vertex exactly once — asserted).
[[nodiscard]] double path_cost(const TspInstance& instance, const std::vector<std::size_t>& path);

/// Exact minimum Hamiltonian source->tail path, by Held-Karp dynamic
/// programming (O(2^n n^2)). Errors with "budget" beyond 20 vertices.
[[nodiscard]] util::Expected<std::vector<std::size_t>> held_karp_path(const TspInstance& instance);

/// Interprets a one-to-one mapping of the reduced instance as the vertex
/// sequence it traverses (stage order = path order).
[[nodiscard]] std::vector<std::size_t> mapping_to_path(const mapping::GeneralMapping& mapping);

/// Round-trip check used by tests and the bench: latency of the reduced
/// mapping equals path cost + n + 2 for any Hamiltonian s->t path.
[[nodiscard]] double expected_latency_for_path_cost(const TspInstance& instance, double cost);

}  // namespace relap::reductions
