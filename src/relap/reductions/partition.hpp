#pragma once

/// \file partition.hpp
/// Executable form of Theorem 7: the bi-criteria decision problem on Fully
/// Heterogeneous platforms is NP-hard, by reduction from 2-PARTITION.
///
/// The construction (paper Section 4.5): given positive integers a_1..a_m
/// with sum S, build a single-stage pipeline (w = 1, delta_0 = delta_1 = 1)
/// and m unit-speed processors with fp_j = exp(-a_j), b_{in,j} = 1/a_j and
/// b_{j,out} = 1. A replication set I then has latency sum_{j in I} a_j + 2
/// and failure probability exp(-sum_{j in I} a_j), so thresholds
/// L = S/2 + 2 and FP = exp(-S/2) squeeze sum_{j in I} a_j to exactly S/2:
/// the instance is feasible iff the integers admit an equal partition.
///
/// A pseudo-polynomial subset-sum solver for the source problem lets tests
/// verify both directions.

#include <cstdint>
#include <vector>

#include "relap/mapping/interval_mapping.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"

namespace relap::reductions {

/// A 2-PARTITION instance: positive integers.
struct PartitionInstance {
  std::vector<std::uint64_t> values;

  [[nodiscard]] std::uint64_t sum() const;
};

/// The reduced bi-criteria decision instance of Theorem 7.
struct PartitionReduction {
  pipeline::Pipeline pipeline;
  platform::Platform platform;
  double latency_threshold;  ///< S/2 + 2
  double fp_threshold;       ///< exp(-S/2)
};

/// Builds the reduced instance. Precondition: non-empty positive values.
[[nodiscard]] PartitionReduction partition_to_bicriteria(const PartitionInstance& instance);

/// Pseudo-polynomial (O(m * S)) solver: does a subset summing to S/2 exist?
/// False outright when S is odd.
[[nodiscard]] bool has_equal_partition(const PartitionInstance& instance);

/// A witness subset summing to S/2 (indices into `values`), or empty when
/// none exists.
[[nodiscard]] std::vector<std::size_t> equal_partition_witness(const PartitionInstance& instance);

/// Interprets a single-interval mapping of the reduced instance as the
/// chosen subset I (processor ids = value indices).
[[nodiscard]] std::vector<std::size_t> mapping_to_subset(const mapping::IntervalMapping& mapping);

}  // namespace relap::reductions
