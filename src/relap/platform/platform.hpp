#pragma once

/// \file platform.hpp
/// The target platform model (paper Figure 2).
///
/// A platform is a set of m processors P_u fully interconnected as a virtual
/// clique, plus two special processors P_in (holds the initial data) and
/// P_out (receives the final results). Each processor has a speed s_u
/// (work-units per time-unit) and a failure probability fp_u in [0, 1] — the
/// probability that P_u breaks down at some point during the (long-running)
/// execution of the workflow. Each ordered processor pair (u, v) has a link
/// of bandwidth b_{u,v}; P_in/P_out are connected to every processor through
/// dedicated links of bandwidths b_{in,u} and b_{u,out}.
///
/// The paper distinguishes platform classes along two independent axes:
///  * communication: Fully Homogeneous (identical speeds *and* identical
///    links), Communication Homogeneous (identical links, arbitrary speeds),
///    Fully Heterogeneous (arbitrary links);
///  * failure: Failure Homogeneous (identical fp_u) vs Failure Heterogeneous.
///
/// `Platform` stores the most general (fully heterogeneous) description and
/// classifies itself; the polynomial algorithms assert the class they need.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace relap::platform {

/// Index of a processor within a platform: 0 <= u < processor_count().
using ProcessorId = std::size_t;

/// Communication-axis classification (paper Section 2.1).
enum class CommClass {
  FullyHomogeneous,     ///< identical speeds and identical links
  CommHomogeneous,      ///< identical links, heterogeneous speeds
  FullyHeterogeneous,   ///< heterogeneous links
};

/// Failure-axis classification (paper Section 2.1).
enum class FailureClass {
  Homogeneous,    ///< identical failure probabilities
  Heterogeneous,  ///< per-processor failure probabilities
};

[[nodiscard]] std::string to_string(CommClass c);
[[nodiscard]] std::string to_string(FailureClass c);

/// Immutable platform description.
class Platform {
 public:
  /// Fully general constructor.
  ///
  /// Preconditions: all vectors sized `m = speeds.size() >= 1`;
  /// `link_bandwidth` is an m-by-m matrix (diagonal entries are ignored —
  /// intra-processor transfers are free); speeds and bandwidths are finite
  /// and strictly positive; failure probabilities lie in [0, 1].
  Platform(std::vector<double> speeds, std::vector<double> failure_probs,
           std::vector<std::vector<double>> link_bandwidth, std::vector<double> in_bandwidth,
           std::vector<double> out_bandwidth);

  /// Number of processors m (excluding P_in / P_out).
  [[nodiscard]] std::size_t processor_count() const { return speeds_.size(); }

  /// Speed s_u: work-units per time-unit.
  [[nodiscard]] double speed(ProcessorId u) const;

  /// Failure probability fp_u in [0, 1].
  [[nodiscard]] double failure_prob(ProcessorId u) const;

  /// Bandwidth b_{u,v} of the link between distinct processors u and v.
  /// Precondition: u != v (intra-processor communication costs nothing and
  /// must be short-circuited by the caller, as the latency evaluators do).
  [[nodiscard]] double bandwidth(ProcessorId u, ProcessorId v) const;

  /// Bandwidth b_{in,u} of the link P_in -> P_u.
  [[nodiscard]] double bandwidth_in(ProcessorId u) const;

  /// Bandwidth b_{u,out} of the link P_u -> P_out.
  [[nodiscard]] double bandwidth_out(ProcessorId u) const;

  [[nodiscard]] CommClass comm_class() const { return comm_class_; }
  [[nodiscard]] FailureClass failure_class() const { return failure_class_; }

  [[nodiscard]] bool is_fully_homogeneous() const {
    return comm_class_ == CommClass::FullyHomogeneous;
  }
  /// True for Fully Homogeneous as well: identical links are what matters.
  [[nodiscard]] bool has_homogeneous_links() const {
    return comm_class_ != CommClass::FullyHeterogeneous;
  }
  [[nodiscard]] bool is_failure_homogeneous() const {
    return failure_class_ == FailureClass::Homogeneous;
  }

  /// The common link bandwidth b. Precondition: `has_homogeneous_links()`.
  [[nodiscard]] double common_bandwidth() const;

  /// The rounded reciprocal 1/b of the common link bandwidth, shared by every
  /// latency evaluator (see the reciprocal-table comment below).
  /// Precondition: `has_homogeneous_links()`.
  [[nodiscard]] double inv_common_bandwidth() const;

  /// The common failure probability. Precondition: `is_failure_homogeneous()`.
  [[nodiscard]] double common_failure_prob() const;

  /// A processor of maximal speed (smallest id among ties).
  [[nodiscard]] ProcessorId fastest_processor() const;

  /// Processor ids sorted by non-increasing speed (ties by id).
  [[nodiscard]] std::vector<ProcessorId> by_speed_desc() const;

  /// Processor ids sorted by non-decreasing failure probability (most
  /// reliable first; ties by id).
  [[nodiscard]] std::vector<ProcessorId> by_reliability() const;

  [[nodiscard]] std::span<const double> speeds() const { return speeds_; }
  [[nodiscard]] std::span<const double> failure_probs() const { return failure_probs_; }
  [[nodiscard]] std::span<const double> in_bandwidths() const { return in_bandwidth_; }
  [[nodiscard]] std::span<const double> out_bandwidths() const { return out_bandwidth_; }

  /// Row-major m-by-m copy of the link-bandwidth matrix for the lane
  /// kernels' vector gathers: entry [u * m + v] equals `bandwidth(u, v)` for
  /// u != v. Diagonal entries hold a harmless 1.0 so a masked-out lane whose
  /// stale indices collide can still gather in bounds without tripping the
  /// `bandwidth()` precondition; callers must mask such lanes out.
  [[nodiscard]] std::span<const double> flat_link_bandwidths() const { return flat_bandwidth_; }

  /// Reciprocal tables: entry-wise rounded 1/x of the speed and bandwidth
  /// tables, precomputed once at construction. The latency evaluators
  /// multiply by these instead of dividing — a division-throughput
  /// optimisation — and because the scalar oracle and the lane kernels read
  /// the *same* rounded reciprocals, their results stay bit-identical to each
  /// other (each latency term differs from the division form by at most one
  /// extra rounding). `flat_inv_link_bandwidths()` is row-major m-by-m with a
  /// harmless 1.0 diagonal, mirroring `flat_link_bandwidths()`.
  [[nodiscard]] std::span<const double> inv_speeds() const { return inv_speeds_; }
  [[nodiscard]] std::span<const double> inv_in_bandwidths() const { return inv_in_bandwidth_; }
  [[nodiscard]] std::span<const double> inv_out_bandwidths() const { return inv_out_bandwidth_; }
  [[nodiscard]] std::span<const double> flat_inv_link_bandwidths() const {
    return flat_inv_bandwidth_;
  }

  /// Scalar accessors over the reciprocal tables (same preconditions as the
  /// corresponding bandwidth/speed accessors).
  [[nodiscard]] double inv_speed(ProcessorId u) const { return inv_speeds_[u]; }
  [[nodiscard]] double inv_bandwidth(ProcessorId u, ProcessorId v) const {
    return flat_inv_bandwidth_[u * processor_count() + v];
  }
  [[nodiscard]] double inv_bandwidth_in(ProcessorId u) const { return inv_in_bandwidth_[u]; }
  [[nodiscard]] double inv_bandwidth_out(ProcessorId u) const { return inv_out_bandwidth_[u]; }

  /// One-line human-readable description.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<double> speeds_;
  std::vector<double> failure_probs_;
  std::vector<std::vector<double>> link_bandwidth_;
  std::vector<double> in_bandwidth_;
  std::vector<double> out_bandwidth_;
  std::vector<double> flat_bandwidth_;  // row-major m*m; diagonal = 1.0 (see accessor)
  std::vector<double> inv_speeds_;          // 1/s_u
  std::vector<double> inv_in_bandwidth_;    // 1/b_{in,u}
  std::vector<double> inv_out_bandwidth_;   // 1/b_{u,out}
  std::vector<double> flat_inv_bandwidth_;  // row-major m*m 1/b_{u,v}; diagonal = 1.0
  CommClass comm_class_;
  FailureClass failure_class_;
};

}  // namespace relap::platform
