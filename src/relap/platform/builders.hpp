#pragma once

/// \file builders.hpp
/// Convenience constructors for the three platform classes of the paper,
/// plus a fluent `PlatformBuilder` for fully heterogeneous instances.
///
/// The raw `Platform` constructor takes the complete bandwidth matrix; these
/// helpers build the common special cases without boilerplate and guarantee
/// the resulting object classifies as intended.

#include <vector>

#include "relap/platform/platform.hpp"

namespace relap::platform {

/// Fully Homogeneous platform: m processors of speed `s`, all links
/// (inter-processor and in/out) of bandwidth `b`, all failure probabilities
/// `fp`.
[[nodiscard]] Platform make_fully_homogeneous(std::size_t m, double s, double b, double fp);

/// Fully Homogeneous communication but heterogeneous failures: identical
/// speed `s` and links `b`, per-processor failure probabilities.
[[nodiscard]] Platform make_fully_homogeneous_het_failures(double s, double b,
                                                           std::vector<double> failure_probs);

/// Communication Homogeneous platform: per-processor speeds, common link
/// bandwidth `b`, common failure probability `fp`.
[[nodiscard]] Platform make_comm_homogeneous(std::vector<double> speeds, double b, double fp);

/// Communication Homogeneous platform with heterogeneous failures.
[[nodiscard]] Platform make_comm_homogeneous(std::vector<double> speeds, double b,
                                             std::vector<double> failure_probs);

/// Incremental construction of Fully Heterogeneous platforms. All bandwidths
/// default to `default_bandwidth` (1.0 unless overridden); individual links
/// are then overridden link by link. Symmetric by default: `link(u, v, b)`
/// sets both directions unless `directed` is requested.
class PlatformBuilder {
 public:
  /// Adds a processor; returns its id (assigned sequentially from 0).
  ProcessorId add_processor(double speed, double failure_prob);

  /// Sets the default bandwidth used for every link not explicitly set.
  PlatformBuilder& default_bandwidth(double b);

  /// Sets the bandwidth of the link between u and v (both directions).
  PlatformBuilder& link(ProcessorId u, ProcessorId v, double b);

  /// Sets the bandwidth of the directed link u -> v only.
  PlatformBuilder& directed_link(ProcessorId u, ProcessorId v, double b);

  /// Sets the bandwidth of the link P_in -> u.
  PlatformBuilder& link_in(ProcessorId u, double b);

  /// Sets the bandwidth of the link u -> P_out.
  PlatformBuilder& link_out(ProcessorId u, double b);

  /// Materializes the platform. Precondition: at least one processor added.
  [[nodiscard]] Platform build() const;

 private:
  struct LinkOverride {
    ProcessorId u;
    ProcessorId v;
    double bandwidth;
  };

  std::vector<double> speeds_;
  std::vector<double> failure_probs_;
  std::vector<LinkOverride> links_;
  std::vector<LinkOverride> in_links_;   // u unused
  std::vector<LinkOverride> out_links_;  // v unused
  double default_bandwidth_ = 1.0;
};

}  // namespace relap::platform
