#include "relap/platform/builders.hpp"

#include <utility>

#include "relap/util/assert.hpp"

namespace relap::platform {

namespace {

Platform uniform_links(std::vector<double> speeds, std::vector<double> failure_probs, double b) {
  const std::size_t m = speeds.size();
  std::vector<std::vector<double>> link(m, std::vector<double>(m, b));
  return Platform(std::move(speeds), std::move(failure_probs), std::move(link),
                  std::vector<double>(m, b), std::vector<double>(m, b));
}

}  // namespace

Platform make_fully_homogeneous(std::size_t m, double s, double b, double fp) {
  RELAP_ASSERT(m >= 1, "platform needs at least one processor");
  return uniform_links(std::vector<double>(m, s), std::vector<double>(m, fp), b);
}

Platform make_fully_homogeneous_het_failures(double s, double b,
                                             std::vector<double> failure_probs) {
  const std::size_t m = failure_probs.size();
  RELAP_ASSERT(m >= 1, "platform needs at least one processor");
  return uniform_links(std::vector<double>(m, s), std::move(failure_probs), b);
}

Platform make_comm_homogeneous(std::vector<double> speeds, double b, double fp) {
  const std::size_t m = speeds.size();
  RELAP_ASSERT(m >= 1, "platform needs at least one processor");
  return uniform_links(std::move(speeds), std::vector<double>(m, fp), b);
}

Platform make_comm_homogeneous(std::vector<double> speeds, double b,
                               std::vector<double> failure_probs) {
  RELAP_ASSERT(speeds.size() == failure_probs.size(),
               "need matching speed and failure-probability vectors");
  return uniform_links(std::move(speeds), std::move(failure_probs), b);
}

ProcessorId PlatformBuilder::add_processor(double speed, double failure_prob) {
  speeds_.push_back(speed);
  failure_probs_.push_back(failure_prob);
  return speeds_.size() - 1;
}

PlatformBuilder& PlatformBuilder::default_bandwidth(double b) {
  default_bandwidth_ = b;
  return *this;
}

PlatformBuilder& PlatformBuilder::link(ProcessorId u, ProcessorId v, double b) {
  links_.push_back({u, v, b});
  links_.push_back({v, u, b});
  return *this;
}

PlatformBuilder& PlatformBuilder::directed_link(ProcessorId u, ProcessorId v, double b) {
  links_.push_back({u, v, b});
  return *this;
}

PlatformBuilder& PlatformBuilder::link_in(ProcessorId u, double b) {
  in_links_.push_back({0, u, b});
  return *this;
}

PlatformBuilder& PlatformBuilder::link_out(ProcessorId u, double b) {
  out_links_.push_back({u, 0, b});
  return *this;
}

Platform PlatformBuilder::build() const {
  const std::size_t m = speeds_.size();
  RELAP_ASSERT(m >= 1, "platform needs at least one processor");
  std::vector<std::vector<double>> link(m, std::vector<double>(m, default_bandwidth_));
  std::vector<double> in(m, default_bandwidth_);
  std::vector<double> out(m, default_bandwidth_);
  for (const LinkOverride& o : links_) {
    RELAP_ASSERT(o.u < m && o.v < m, "link override out of range");
    link[o.u][o.v] = o.bandwidth;
  }
  for (const LinkOverride& o : in_links_) {
    RELAP_ASSERT(o.v < m, "P_in link override out of range");
    in[o.v] = o.bandwidth;
  }
  for (const LinkOverride& o : out_links_) {
    RELAP_ASSERT(o.u < m, "P_out link override out of range");
    out[o.u] = o.bandwidth;
  }
  return Platform(speeds_, failure_probs_, std::move(link), std::move(in), std::move(out));
}

}  // namespace relap::platform
