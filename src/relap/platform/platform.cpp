#include "relap/platform/platform.hpp"

#include <algorithm>
#include <cmath>

#include "relap/util/assert.hpp"
#include "relap/util/strings.hpp"

namespace relap::platform {

namespace {

void check_positive_finite(std::span<const double> values, const char* what) {
  for (const double v : values) {
    RELAP_ASSERT(std::isfinite(v) && v > 0.0, what);
  }
}

/// True iff all off-diagonal link bandwidths and all in/out bandwidths share
/// one common value. The paper's Communication Homogeneous class assumes
/// "identical links"; equations (1) use the same b for the in/out transfers,
/// so the special links must match too.
bool links_identical(const std::vector<std::vector<double>>& link, std::span<const double> in,
                     std::span<const double> out) {
  const double b = in.front();
  const std::size_t m = in.size();
  for (std::size_t u = 0; u < m; ++u) {
    if (in[u] != b || out[u] != b) return false;
    for (std::size_t v = 0; v < m; ++v) {
      if (u != v && link[u][v] != b) return false;
    }
  }
  return true;
}

}  // namespace

std::string to_string(CommClass c) {
  switch (c) {
    case CommClass::FullyHomogeneous: return "FullyHomogeneous";
    case CommClass::CommHomogeneous: return "CommHomogeneous";
    case CommClass::FullyHeterogeneous: return "FullyHeterogeneous";
  }
  RELAP_UNREACHABLE("invalid CommClass");
}

std::string to_string(FailureClass c) {
  switch (c) {
    case FailureClass::Homogeneous: return "FailureHomogeneous";
    case FailureClass::Heterogeneous: return "FailureHeterogeneous";
  }
  RELAP_UNREACHABLE("invalid FailureClass");
}

Platform::Platform(std::vector<double> speeds, std::vector<double> failure_probs,
                   std::vector<std::vector<double>> link_bandwidth,
                   std::vector<double> in_bandwidth, std::vector<double> out_bandwidth)
    : speeds_(std::move(speeds)),
      failure_probs_(std::move(failure_probs)),
      link_bandwidth_(std::move(link_bandwidth)),
      in_bandwidth_(std::move(in_bandwidth)),
      out_bandwidth_(std::move(out_bandwidth)),
      comm_class_(CommClass::FullyHeterogeneous),
      failure_class_(FailureClass::Heterogeneous) {
  const std::size_t m = speeds_.size();
  RELAP_ASSERT(m >= 1, "platform needs at least one processor");
  RELAP_ASSERT(failure_probs_.size() == m, "need one failure probability per processor");
  RELAP_ASSERT(link_bandwidth_.size() == m, "link bandwidth matrix must be m-by-m");
  for (const auto& row : link_bandwidth_) {
    RELAP_ASSERT(row.size() == m, "link bandwidth matrix must be m-by-m");
  }
  RELAP_ASSERT(in_bandwidth_.size() == m, "need one P_in bandwidth per processor");
  RELAP_ASSERT(out_bandwidth_.size() == m, "need one P_out bandwidth per processor");

  check_positive_finite(speeds_, "processor speeds must be finite and > 0");
  check_positive_finite(in_bandwidth_, "P_in bandwidths must be finite and > 0");
  check_positive_finite(out_bandwidth_, "P_out bandwidths must be finite and > 0");
  for (std::size_t u = 0; u < m; ++u) {
    for (std::size_t v = 0; v < m; ++v) {
      if (u == v) continue;
      RELAP_ASSERT(std::isfinite(link_bandwidth_[u][v]) && link_bandwidth_[u][v] > 0.0,
                   "link bandwidths must be finite and > 0");
    }
  }
  for (const double fp : failure_probs_) {
    RELAP_ASSERT(std::isfinite(fp) && fp >= 0.0 && fp <= 1.0,
                 "failure probabilities must lie in [0, 1]");
  }

  flat_bandwidth_.resize(m * m);
  for (std::size_t u = 0; u < m; ++u) {
    for (std::size_t v = 0; v < m; ++v) {
      flat_bandwidth_[u * m + v] = u == v ? 1.0 : link_bandwidth_[u][v];
    }
  }

  // Reciprocal tables for the latency evaluators: one rounded 1/x per entry,
  // shared by the scalar oracle and the lane kernels so both multiply by the
  // *same* double and stay bit-identical to each other.
  inv_speeds_.resize(m);
  inv_in_bandwidth_.resize(m);
  inv_out_bandwidth_.resize(m);
  flat_inv_bandwidth_.resize(m * m);
  for (std::size_t u = 0; u < m; ++u) {
    inv_speeds_[u] = 1.0 / speeds_[u];
    inv_in_bandwidth_[u] = 1.0 / in_bandwidth_[u];
    inv_out_bandwidth_[u] = 1.0 / out_bandwidth_[u];
    for (std::size_t v = 0; v < m; ++v) {
      flat_inv_bandwidth_[u * m + v] = 1.0 / flat_bandwidth_[u * m + v];
    }
  }

  const bool comm_hom = links_identical(link_bandwidth_, in_bandwidth_, out_bandwidth_);
  const bool speed_hom =
      std::all_of(speeds_.begin(), speeds_.end(), [&](double s) { return s == speeds_.front(); });
  if (comm_hom) {
    comm_class_ = speed_hom ? CommClass::FullyHomogeneous : CommClass::CommHomogeneous;
  }
  const bool fail_hom = std::all_of(failure_probs_.begin(), failure_probs_.end(),
                                    [&](double f) { return f == failure_probs_.front(); });
  failure_class_ = fail_hom ? FailureClass::Homogeneous : FailureClass::Heterogeneous;
}

double Platform::speed(ProcessorId u) const {
  RELAP_ASSERT(u < speeds_.size(), "processor id out of range");
  return speeds_[u];
}

double Platform::failure_prob(ProcessorId u) const {
  RELAP_ASSERT(u < failure_probs_.size(), "processor id out of range");
  return failure_probs_[u];
}

double Platform::bandwidth(ProcessorId u, ProcessorId v) const {
  RELAP_ASSERT(u < speeds_.size() && v < speeds_.size(), "processor id out of range");
  RELAP_ASSERT(u != v, "intra-processor bandwidth is undefined (communication is free)");
  return link_bandwidth_[u][v];
}

double Platform::bandwidth_in(ProcessorId u) const {
  RELAP_ASSERT(u < speeds_.size(), "processor id out of range");
  return in_bandwidth_[u];
}

double Platform::bandwidth_out(ProcessorId u) const {
  RELAP_ASSERT(u < speeds_.size(), "processor id out of range");
  return out_bandwidth_[u];
}

double Platform::common_bandwidth() const {
  RELAP_ASSERT(has_homogeneous_links(), "common_bandwidth requires homogeneous links");
  return in_bandwidth_.front();
}

double Platform::inv_common_bandwidth() const {
  RELAP_ASSERT(has_homogeneous_links(), "inv_common_bandwidth requires homogeneous links");
  return inv_in_bandwidth_.front();
}

double Platform::common_failure_prob() const {
  RELAP_ASSERT(is_failure_homogeneous(), "common_failure_prob requires homogeneous failures");
  return failure_probs_.front();
}

ProcessorId Platform::fastest_processor() const {
  ProcessorId best = 0;
  for (ProcessorId u = 1; u < speeds_.size(); ++u) {
    if (speeds_[u] > speeds_[best]) best = u;
  }
  return best;
}

std::vector<ProcessorId> Platform::by_speed_desc() const {
  std::vector<ProcessorId> ids(processor_count());
  for (std::size_t u = 0; u < ids.size(); ++u) ids[u] = u;
  std::stable_sort(ids.begin(), ids.end(),
                   [&](ProcessorId a, ProcessorId b) { return speeds_[a] > speeds_[b]; });
  return ids;
}

std::vector<ProcessorId> Platform::by_reliability() const {
  std::vector<ProcessorId> ids(processor_count());
  for (std::size_t u = 0; u < ids.size(); ++u) ids[u] = u;
  std::stable_sort(ids.begin(), ids.end(), [&](ProcessorId a, ProcessorId b) {
    return failure_probs_[a] < failure_probs_[b];
  });
  return ids;
}

std::string Platform::describe() const {
  std::string out = "platform m=" + std::to_string(processor_count()) + " [" +
                    to_string(comm_class_) + ", " + to_string(failure_class_) + "] s=[";
  for (std::size_t u = 0; u < speeds_.size(); ++u) {
    if (u > 0) out += ' ';
    out += util::format_double(speeds_[u]);
  }
  out += "] fp=[";
  for (std::size_t u = 0; u < failure_probs_.size(); ++u) {
    if (u > 0) out += ' ';
    out += util::format_double(failure_probs_[u]);
  }
  out += ']';
  return out;
}

}  // namespace relap::platform
