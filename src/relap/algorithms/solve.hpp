#pragma once

/// \file solve.hpp
/// The library facade: pick the right algorithm for the platform class.
///
/// Dispatch mirrors the paper's complexity landscape:
///  * Fully Homogeneous (any failures)        -> Algorithms 1/2, exact;
///  * Comm. Homogeneous + Failure Homogeneous -> Algorithms 3/4, exact;
///  * Comm. Homogeneous + Failure Het.        -> open problem: exhaustive
///    when the search space fits the budget, otherwise heuristics;
///  * Fully Heterogeneous                     -> NP-hard (Theorem 7): same
///    exhaustive-or-heuristic policy.
///
/// The report says which algorithm ran and whether the answer is certified
/// optimal, so callers (and the benches) can tell exact answers from
/// best-effort ones.

#include <string>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/heuristics.hpp"
#include "relap/algorithms/types.hpp"

namespace relap::algorithms {

enum class Method {
  Auto,        ///< class-based dispatch described above
  Exact,       ///< polynomial algorithm or exhaustive; error if intractable
  Heuristic,   ///< always use the heuristic suite
  Exhaustive,  ///< always use exhaustive enumeration (budget permitting)
};

struct SolveOptions {
  Method method = Method::Auto;
  /// Auto mode switches from exhaustive to heuristics above this many
  /// candidate mappings (see exhaustive.hpp's interval_mapping_count).
  std::uint64_t auto_exhaustive_budget = 2'000'000;
  /// Latency thresholds swept when `solve_pareto_front` falls back to the
  /// heuristic front (pareto_driver.hpp); ignored on the exhaustive path,
  /// which enumerates the exact front directly.
  std::size_t pareto_thresholds = 24;
  ExhaustiveOptions exhaustive;
  HeuristicOptions heuristic;
};

struct SolveReport {
  Solution solution;
  /// Name of the algorithm that produced the solution (for logs/benches).
  std::string algorithm;
  /// True iff the answer is certified optimal.
  bool exact = false;
};

/// Result of `solve_pareto_front`: the front plus the same provenance a
/// `SolveReport` carries — this is the facade the service broker caches, so
/// callers can tell an exact front from a best-effort one after a cache hit.
struct FrontReport {
  std::vector<ParetoSolution> front;
  std::string algorithm;
  /// True iff the front is the certified exact latency/FP front.
  bool exact = false;
  /// Candidates evaluated by the exhaustive path (0 on the heuristic path).
  std::uint64_t evaluations = 0;
};

/// Minimize FP subject to latency <= L.
[[nodiscard]] util::Expected<SolveReport> solve_min_fp_for_latency(
    const pipeline::Pipeline& pipeline, const platform::Platform& platform, double max_latency,
    const SolveOptions& options = {});

/// Minimize latency subject to FP <= F.
[[nodiscard]] util::Expected<SolveReport> solve_min_latency_for_fp(
    const pipeline::Pipeline& pipeline, const platform::Platform& platform,
    double max_failure_probability, const SolveOptions& options = {});

/// The full latency/FP Pareto front under the same dispatch policy: exact
/// (exhaustive) when the candidate count fits the budget, the heuristic
/// threshold sweep otherwise. Method::Exact / Method::Exhaustive force the
/// exhaustive path (error "budget" if the space exceeds the evaluation
/// budget); Method::Heuristic forces the sweep.
[[nodiscard]] util::Expected<FrontReport> solve_pareto_front(const pipeline::Pipeline& pipeline,
                                                             const platform::Platform& platform,
                                                             const SolveOptions& options = {});

}  // namespace relap::algorithms
