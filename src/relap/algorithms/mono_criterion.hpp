#pragma once

/// \file mono_criterion.hpp
/// The mono-criterion polynomial cases (paper Section 4.1).
///
/// * Theorem 1 — minimizing the failure probability alone is polynomial on
///   every platform class: replicate the whole pipeline as a single interval
///   on *all* processors.
/// * Theorem 2 — minimizing the latency alone is polynomial on
///   Communication Homogeneous (hence also Fully Homogeneous) platforms:
///   map the whole pipeline as a single interval on the fastest processor
///   (replication only adds communications, splitting only adds transfers).
/// * On Fully Heterogeneous platforms latency minimization is NP-hard for
///   one-to-one mappings (Theorem 3, see one_to_one_exact.hpp and
///   reductions/tsp.hpp) but polynomial for general mappings (Theorem 4, see
///   general_mapping_sp.hpp).

#include "relap/algorithms/types.hpp"

namespace relap::algorithms {

/// Theorem 1: the mapping of minimal failure probability (single interval on
/// all m processors). Works on every platform class.
[[nodiscard]] Solution minimize_failure_probability(const pipeline::Pipeline& pipeline,
                                                    const platform::Platform& platform);

/// Theorem 2: the mapping of minimal latency on an identical-link platform
/// (single interval on the fastest processor).
/// Precondition: `platform.has_homogeneous_links()`.
[[nodiscard]] Solution minimize_latency_comm_hom(const pipeline::Pipeline& pipeline,
                                                 const platform::Platform& platform);

}  // namespace relap::algorithms
