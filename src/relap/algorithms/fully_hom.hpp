#pragma once

/// \file fully_hom.hpp
/// Bi-criteria algorithms for Fully Homogeneous platforms (paper Theorem 5,
/// Algorithms 1 and 2).
///
/// By Lemma 1 the optimal solution maps the whole pipeline as a single
/// interval; the only question is the replication set. With identical links
/// and speeds the latency depends only on the set's *size* k:
///
///     T(k) = k * delta_0 / b + W / s + delta_n / b,
///
/// so Algorithm 1 picks the largest k with T(k) <= L and replicates on the k
/// most reliable processors, and Algorithm 2 picks the smallest k whose k
/// most reliable processors satisfy FP. Per the paper's closing remark, both
/// algorithms remain optimal when failure probabilities are heterogeneous
/// (the platform only needs homogeneous speeds and links).

#include "relap/algorithms/types.hpp"

namespace relap::algorithms {

/// Algorithm 1: minimize the failure probability subject to latency <= L.
/// Precondition: `platform.is_fully_homogeneous()`.
/// Returns an "infeasible" error when even a single processor exceeds L.
[[nodiscard]] Result fully_hom_min_fp_for_latency(const pipeline::Pipeline& pipeline,
                                                  const platform::Platform& platform,
                                                  double max_latency);

/// Algorithm 2: minimize the latency subject to failure probability <= FP.
/// Precondition: `platform.is_fully_homogeneous()`.
/// Returns an "infeasible" error when even all m processors exceed FP.
[[nodiscard]] Result fully_hom_min_latency_for_fp(const pipeline::Pipeline& pipeline,
                                                  const platform::Platform& platform,
                                                  double max_failure_probability);

}  // namespace relap::algorithms
