#pragma once

/// \file comm_hom.hpp
/// Bi-criteria algorithms for Communication Homogeneous platforms with
/// homogeneous failures (paper Theorem 6, Algorithms 3 and 4).
///
/// With identical links but heterogeneous speeds, a single interval is still
/// optimal (Lemma 1 requires Failure Homogeneous here). Replicating on the k
/// *fastest* processors gives latency
///
///     T(k) = k * delta_0 / b + W / s_(k) + delta_n / b,
///
/// where s_(k) is the k-th fastest speed (the slowest member), and failure
/// probability fp^k. T(k) is non-decreasing and fp^k decreasing in k, so
/// Algorithm 3 takes the largest feasible k and Algorithm 4 the smallest k
/// meeting FP.
///
/// With heterogeneous failure probabilities this single-interval approach is
/// no longer optimal (the paper's Figure 5 example needs two intervals; the
/// complexity is open) — see single_interval.hpp for the exact
/// single-interval solver and heuristics.hpp for multi-interval heuristics.

#include "relap/algorithms/types.hpp"

namespace relap::algorithms {

/// Algorithm 3: minimize the failure probability subject to latency <= L.
/// Preconditions: `platform.has_homogeneous_links()` and
/// `platform.is_failure_homogeneous()`.
[[nodiscard]] Result comm_hom_min_fp_for_latency(const pipeline::Pipeline& pipeline,
                                                 const platform::Platform& platform,
                                                 double max_latency);

/// Algorithm 4: minimize the latency subject to failure probability <= FP.
/// Preconditions: as for Algorithm 3.
[[nodiscard]] Result comm_hom_min_latency_for_fp(const pipeline::Pipeline& pipeline,
                                                 const platform::Platform& platform,
                                                 double max_failure_probability);

}  // namespace relap::algorithms
