#include "relap/algorithms/one_to_one_exact.hpp"

#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "relap/mapping/latency.hpp"
#include "relap/util/assert.hpp"

namespace relap::algorithms {

GeneralResult one_to_one_min_latency(const pipeline::Pipeline& pipeline,
                                     const platform::Platform& platform,
                                     const OneToOneOptions& options) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();
  if (n > m) {
    return util::infeasible("one-to-one mappings need n <= m (" + std::to_string(n) +
                            " stages, " + std::to_string(m) + " processors)");
  }
  RELAP_ASSERT(options.max_processors <= 26, "2^m DP tables beyond m=26 cannot fit in memory");
  if (m > options.max_processors) {
    return util::budget_exceeded("Held-Karp needs 2^m tables; m=" + std::to_string(m) +
                                 " exceeds the cap of " + std::to_string(options.max_processors));
  }

  const std::size_t mask_count = std::size_t{1} << m;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[mask * m + u]: stages 0..popcount(mask)-1 mapped onto exactly `mask`,
  // the last of them on u. parent holds the predecessor processor.
  std::vector<double> dp(mask_count * m, kInf);
  std::vector<std::uint8_t> parent(mask_count * m, 0);

  for (platform::ProcessorId u = 0; u < m; ++u) {
    dp[(std::size_t{1} << u) * m + u] =
        pipeline.data(0) / platform.bandwidth_in(u) + pipeline.work(0) / platform.speed(u);
  }

  double best = kInf;
  std::size_t best_mask = 0;
  platform::ProcessorId best_last = 0;

  for (std::size_t mask = 1; mask < mask_count; ++mask) {
    const auto filled = static_cast<std::size_t>(std::popcount(mask));
    if (filled > n) continue;
    for (platform::ProcessorId u = 0; u < m; ++u) {
      if (!(mask & (std::size_t{1} << u))) continue;
      const double base = dp[mask * m + u];
      if (base == kInf) continue;
      if (filled == n) {
        const double total = base + pipeline.data(n) / platform.bandwidth_out(u);
        if (total < best) {
          best = total;
          best_mask = mask;
          best_last = u;
        }
        continue;
      }
      // Extend with stage `filled` on a fresh processor v.
      for (platform::ProcessorId v = 0; v < m; ++v) {
        if (mask & (std::size_t{1} << v)) continue;
        const double cost = base + pipeline.data(filled) / platform.bandwidth(u, v) +
                            pipeline.work(filled) / platform.speed(v);
        const std::size_t slot = (mask | (std::size_t{1} << v)) * m + v;
        if (cost < dp[slot]) {
          dp[slot] = cost;
          parent[slot] = static_cast<std::uint8_t>(u);
        }
      }
    }
  }

  RELAP_ASSERT(best < kInf, "a one-to-one mapping always exists when n <= m");
  std::vector<platform::ProcessorId> assignment(n);
  std::size_t mask = best_mask;
  platform::ProcessorId u = best_last;
  for (std::size_t k = n; k-- > 0;) {
    assignment[k] = u;
    const platform::ProcessorId prev = parent[mask * m + u];
    mask &= ~(std::size_t{1} << u);
    u = prev;
  }
  // Report the canonical evaluator's latency for the reconstructed
  // assignment (see general_mapping_sp.cpp): bit-for-bit comparable with the
  // enumeration oracles, instead of the DP's own accumulation order.
  const double evaluated = mapping::latency(pipeline, platform, std::span(assignment));
  return GeneralSolution{mapping::GeneralMapping(std::move(assignment)), evaluated};
}

}  // namespace relap::algorithms
