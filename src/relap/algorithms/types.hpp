#pragma once

/// \file types.hpp
/// Shared result types and comparators for the optimization algorithms.
///
/// Every solver returns a `Solution` — a mapping together with its two
/// objective values — wrapped in `Expected` because infeasibility (no mapping
/// satisfies the threshold) is a normal outcome.
///
/// Threshold checks use a relative tolerance (`within_cap`): the paper's
/// instances are exact rationals, but solvers compare sums of divisions, and
/// an optimal solution sitting exactly on the threshold (e.g. Figure 5's
/// latency-22 mapping with L = 22) must not be rejected over one ulp.

#include <string>

#include "relap/mapping/general_mapping.hpp"
#include "relap/mapping/interval_mapping.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/mapping/reliability.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"
#include "relap/util/expected.hpp"

namespace relap::algorithms {

/// An interval mapping with both objectives evaluated.
struct Solution {
  mapping::IntervalMapping mapping;
  double latency = 0.0;
  double failure_probability = 0.0;

  [[nodiscard]] std::string describe() const;
};

using Result = util::Expected<Solution>;

/// An unreplicated (general or one-to-one) mapping with its latency.
struct GeneralSolution {
  mapping::GeneralMapping mapping;
  double latency = 0.0;
};

using GeneralResult = util::Expected<GeneralSolution>;

/// Evaluates both criteria of `mapping` (latency via the platform-appropriate
/// equation, failure probability via the product formula).
[[nodiscard]] Solution evaluate(const pipeline::Pipeline& pipeline,
                                const platform::Platform& platform,
                                mapping::IntervalMapping mapping);

/// The comparator-visible objectives of a candidate, without the mapping
/// itself. The batched enumerators compare candidates in this form and only
/// materialize an `IntervalMapping` for the rare winner — materializing per
/// candidate is exactly the allocation churn the evaluation kernel removes.
struct Objectives {
  double latency = 0.0;
  double failure_probability = 0.0;
  std::size_t processors_used = 0;
};

[[nodiscard]] inline Objectives objectives_of(const Solution& s) {
  return Objectives{s.latency, s.failure_probability, s.mapping.processors_used()};
}

/// True iff `value <= cap` up to relative tolerance — the feasibility test
/// used by every constrained solver in the library.
[[nodiscard]] bool within_cap(double value, double cap);

/// Strict-preference comparator for "minimize FP subject to latency <= cap":
/// feasible beats infeasible; among feasible, smaller FP wins, then smaller
/// latency, then fewer processors (cheapest certificate).
[[nodiscard]] bool better_min_fp(const Objectives& a, const Objectives& b, double latency_cap);
[[nodiscard]] bool better_min_fp(const Solution& a, const Solution& b, double latency_cap);

/// Strict-preference comparator for "minimize latency subject to FP <= cap".
[[nodiscard]] bool better_min_latency(const Objectives& a, const Objectives& b, double fp_cap);
[[nodiscard]] bool better_min_latency(const Solution& a, const Solution& b, double fp_cap);

}  // namespace relap::algorithms
