#include "relap/algorithms/pareto_driver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "relap/algorithms/heuristics.hpp"
#include "relap/algorithms/mono_criterion.hpp"
#include "relap/exec/parallel.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/util/assert.hpp"
#include "relap/util/pareto.hpp"

namespace relap::algorithms {

namespace {

void insert_solution(util::ParetoFront& front, std::vector<ParetoSolution>& pool, Solution s) {
  if (front.insert({s.latency, s.failure_probability, pool.size()})) {
    pool.push_back(ParetoSolution{s.latency, s.failure_probability, std::move(s.mapping)});
  }
}

std::vector<ParetoSolution> finalize(const util::ParetoFront& front,
                                     std::vector<ParetoSolution>& pool) {
  std::vector<ParetoSolution> out;
  out.reserve(front.size());
  for (const util::ParetoPoint& point : front.points()) {
    out.push_back(std::move(pool[point.payload]));
  }
  return out;
}

}  // namespace

std::vector<ParetoSolution> sweep_latency_thresholds(const pipeline::Pipeline& pipeline,
                                                     const platform::Platform& platform,
                                                     const MinFpSolver& solver,
                                                     const ParetoDriverOptions& options) {
  RELAP_ASSERT(options.thresholds >= 2, "need at least two sweep thresholds");
  // Sweep bounds: the instance's latency floor, and the latency of the
  // maximally replicated mapping (Theorem 1's FP optimum) as a ceiling that
  // every mapping of interest stays under.
  const double lo = std::max(mapping::latency_lower_bound(pipeline, platform), 1e-9);
  const Solution most_reliable = minimize_failure_probability(pipeline, platform);
  const double hi = std::max(most_reliable.latency, lo * (1.0 + 1e-6));

  // Solve every threshold concurrently (the expensive part), then merge the
  // candidates into the front serially in threshold order so the resulting
  // front does not depend on the thread count.
  const double ratio = hi / lo;
  std::vector<std::optional<Result>> results(options.thresholds);
  exec::parallel_for(
      options.thresholds, 1,
      [&](std::size_t i) {
        if (util::cancel_requested(options.cancel)) return;  // skip late thresholds
        const double t = static_cast<double>(i) / static_cast<double>(options.thresholds - 1);
        const double threshold = lo * std::pow(ratio, t);
        results[i].emplace(solver(threshold));
      },
      options.pool);

  util::ParetoFront front;
  std::vector<ParetoSolution> pool;
  insert_solution(front, pool, most_reliable);
  for (std::optional<Result>& r : results) {
    if (r.has_value() && r->has_value()) insert_solution(front, pool, std::move(*r).take());
  }
  return finalize(front, pool);
}

std::vector<ParetoSolution> heuristic_pareto_front(const pipeline::Pipeline& pipeline,
                                                   const platform::Platform& platform,
                                                   const ParetoDriverOptions& options) {
  return sweep_latency_thresholds(
      pipeline, platform,
      [&](double max_latency) {
        HeuristicOptions heuristic;
        heuristic.cancel = options.cancel;
        return heuristic_min_fp_for_latency(pipeline, platform, max_latency, heuristic);
      },
      options);
}

double front_fp_ratio(const std::vector<ParetoSolution>& achieved,
                      const std::vector<ParetoSolution>& reference, double miss_penalty) {
  RELAP_ASSERT(!reference.empty(), "reference front must be non-empty");
  double total = 0.0;
  for (const ParetoSolution& ref : reference) {
    // Best achieved FP within the reference point's latency budget.
    double best = std::numeric_limits<double>::infinity();
    for (const ParetoSolution& got : achieved) {
      if (got.latency <= ref.latency * (1.0 + 1e-9)) {
        best = std::min(best, got.failure_probability);
      }
    }
    if (!std::isfinite(best)) {
      total += miss_penalty;
    } else if (ref.failure_probability <= 0.0) {
      total += (best <= 0.0) ? 1.0 : miss_penalty;
    } else {
      total += std::max(1.0, best / ref.failure_probability);
    }
  }
  return total / static_cast<double>(reference.size());
}

}  // namespace relap::algorithms
