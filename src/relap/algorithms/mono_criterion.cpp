#include "relap/algorithms/mono_criterion.hpp"

#include "relap/util/assert.hpp"

namespace relap::algorithms {

Solution minimize_failure_probability(const pipeline::Pipeline& pipeline,
                                      const platform::Platform& platform) {
  std::vector<platform::ProcessorId> all(platform.processor_count());
  for (std::size_t u = 0; u < all.size(); ++u) all[u] = u;
  return evaluate(pipeline, platform,
                  mapping::IntervalMapping::single_interval(pipeline.stage_count(), std::move(all)));
}

Solution minimize_latency_comm_hom(const pipeline::Pipeline& pipeline,
                                   const platform::Platform& platform) {
  RELAP_ASSERT(platform.has_homogeneous_links(),
               "Theorem 2 applies to identical-link platforms only");
  return evaluate(pipeline, platform,
                  mapping::IntervalMapping::single_interval(pipeline.stage_count(),
                                                            {platform.fastest_processor()}));
}

}  // namespace relap::algorithms
