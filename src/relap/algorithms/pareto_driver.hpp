#pragma once

/// \file pareto_driver.hpp
/// Builds latency/FP Pareto fronts out of constrained solvers.
///
/// Any solver of "minimize FP subject to latency <= L" induces a front: sweep
/// L over a grid between the latency lower bound and the latency of the most
/// replicated candidate, solve at each threshold, and keep the non-dominated
/// outcomes. This driver is how the benches compare heuristic fronts with
/// the exhaustive ground truth and how examples expose trade-off tables.

#include <functional>
#include <vector>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/algorithms/types.hpp"

namespace relap::exec {
class ThreadPool;
}  // namespace relap::exec

namespace relap::algorithms {

/// A constrained solver: latency threshold -> best-effort solution.
/// The sweep evaluates thresholds concurrently, so the solver must be safe
/// to call from multiple threads at once (every solver in this library is:
/// they share only the immutable pipeline/platform).
using MinFpSolver = std::function<Result(double max_latency)>;

struct ParetoDriverOptions {
  /// Number of latency thresholds swept (log-spaced between bounds).
  std::size_t thresholds = 24;
  /// Pool for the parallel sweep; null uses `exec::ThreadPool::shared()`.
  /// The front is assembled from the per-threshold results in index order,
  /// so the outcome is identical at any thread count.
  exec::ThreadPool* pool = nullptr;
  /// Optional cooperative cancellation (util/cancel.hpp): polled per
  /// threshold; remaining thresholds are skipped once it trips. Callers that
  /// need an all-or-nothing answer must re-check the token after the sweep
  /// (the broker does) — a partially swept front is otherwise returned.
  const util::CancelToken* cancel = nullptr;
};

/// Sweeps latency thresholds and merges the solver's answers into a front.
/// Infeasible thresholds are skipped.
[[nodiscard]] std::vector<ParetoSolution> sweep_latency_thresholds(
    const pipeline::Pipeline& pipeline, const platform::Platform& platform,
    const MinFpSolver& solver, const ParetoDriverOptions& options = {});

/// Convenience: the heuristic front (heuristic_min_fp_for_latency swept over
/// thresholds, plus the two mono-criterion extreme points).
[[nodiscard]] std::vector<ParetoSolution> heuristic_pareto_front(
    const pipeline::Pipeline& pipeline, const platform::Platform& platform,
    const ParetoDriverOptions& options = {});

/// Area-style front comparison: mean over `reference`'s points of the FP
/// ratio achieved/reference at the reference point's latency (>= 1; 1 means
/// `achieved` matches the reference everywhere). Points of `reference` whose
/// latency no achieved point can meet contribute `miss_penalty`.
[[nodiscard]] double front_fp_ratio(const std::vector<ParetoSolution>& achieved,
                                    const std::vector<ParetoSolution>& reference,
                                    double miss_penalty = 10.0);

}  // namespace relap::algorithms
