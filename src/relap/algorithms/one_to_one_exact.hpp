#pragma once

/// \file one_to_one_exact.hpp
/// Exact minimum-latency one-to-one mapping on Fully Heterogeneous
/// platforms — the problem Theorem 3 proves NP-hard via reduction from TSP.
///
/// Being NP-hard, the solver is exponential: a Held-Karp dynamic program
/// over processor subsets, dp[S][u] = minimum latency of mapping stages
/// 0..|S|-1 onto exactly the processors of S with stage |S|-1 on u. This is
/// O(2^m * m^2) time and O(2^m * m) memory, which is exactly the cost the
/// hardness result predicts; the `max_processors` budget refuses instances
/// that would not fit (the tests and benches stay well below it). The bench
/// for Theorem 3 uses this solver to exhibit the exponential growth and to
/// verify the TSP reduction round-trip.

#include "relap/algorithms/types.hpp"

namespace relap::algorithms {

struct OneToOneOptions {
  /// Hard cap on m: the DP allocates 2^m * m doubles (~170 MB at m = 20);
  /// beyond that the table does not fit in reasonable memory.
  std::size_t max_processors = 20;
};

/// The latency-optimal one-to-one mapping (each stage on a distinct
/// processor). Errors: "infeasible" if n > m, "budget" if m exceeds
/// `options.max_processors`.
[[nodiscard]] GeneralResult one_to_one_min_latency(const pipeline::Pipeline& pipeline,
                                                   const platform::Platform& platform,
                                                   const OneToOneOptions& options = {});

}  // namespace relap::algorithms
