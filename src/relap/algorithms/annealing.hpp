#pragma once

/// \file annealing.hpp
/// Simulated annealing over interval mappings — the randomized counterpart
/// of local_search.hpp, able to cross the infeasible region that steepest
/// descent cannot.
///
/// Energy for "minimize FP subject to latency <= L":
///     E = FP + penalty * max(0, (latency - L) / L)
/// and symmetrically for the other direction. A random neighbor (same move
/// set as local search) is accepted with the Metropolis rule under a
/// geometric cooling schedule. The best *feasible* solution ever visited is
/// returned; if none is feasible the least-infeasible one is returned with
/// its objectives evaluated (callers check the threshold themselves).

#include "relap/algorithms/types.hpp"

namespace relap::exec {
class ThreadPool;
}  // namespace relap::exec

namespace relap::algorithms {

struct AnnealingOptions {
  std::uint64_t seed = 0xC0FFEE123456789ULL;
  std::size_t iterations = 20'000;
  double initial_temperature = 0.5;
  double cooling = 0.9995;      ///< geometric factor per iteration
  double penalty = 10.0;        ///< constraint-violation weight
  /// Independent annealing chains, run concurrently, each with its own RNG
  /// stream split off `seed` in restart order; the best outcome under the
  /// direction's comparator wins (earliest restart on ties). Results are
  /// identical at any thread count.
  std::size_t restarts = 1;
  /// Pool for the restarts; null uses `exec::ThreadPool::shared()`.
  exec::ThreadPool* pool = nullptr;
};

/// Minimizes FP subject to latency <= `max_latency`, starting from `start`.
[[nodiscard]] Solution anneal_min_fp(const pipeline::Pipeline& pipeline,
                                     const platform::Platform& platform, Solution start,
                                     double max_latency, const AnnealingOptions& options = {});

/// Minimizes latency subject to FP <= `max_failure_probability`.
[[nodiscard]] Solution anneal_min_latency(const pipeline::Pipeline& pipeline,
                                          const platform::Platform& platform, Solution start,
                                          double max_failure_probability,
                                          const AnnealingOptions& options = {});

}  // namespace relap::algorithms
