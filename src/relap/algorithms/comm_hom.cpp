#include "relap/algorithms/comm_hom.hpp"

#include <cmath>

#include "relap/util/assert.hpp"
#include "relap/util/strings.hpp"

namespace relap::algorithms {

namespace {

void check_preconditions(const platform::Platform& platform) {
  RELAP_ASSERT(platform.has_homogeneous_links(),
               "Algorithms 3/4 require identical communication links");
  RELAP_ASSERT(platform.is_failure_homogeneous(),
               "Algorithms 3/4 require homogeneous failure probabilities");
}

/// T(k) when replicating on the k fastest processors; `order` is sorted by
/// non-increasing speed.
double latency_with_k_fastest(const pipeline::Pipeline& pipeline,
                              const platform::Platform& platform,
                              const std::vector<platform::ProcessorId>& order, std::size_t k) {
  const double b = platform.common_bandwidth();
  return static_cast<double>(k) * pipeline.data(0) / b +
         pipeline.total_work() / platform.speed(order[k - 1]) +
         pipeline.data(pipeline.stage_count()) / b;
}

Solution replicate_on_k_fastest(const pipeline::Pipeline& pipeline,
                                const platform::Platform& platform,
                                std::vector<platform::ProcessorId> order, std::size_t k) {
  order.resize(k);
  return evaluate(pipeline, platform,
                  mapping::IntervalMapping::single_interval(pipeline.stage_count(),
                                                            std::move(order)));
}

}  // namespace

Result comm_hom_min_fp_for_latency(const pipeline::Pipeline& pipeline,
                                   const platform::Platform& platform, double max_latency) {
  check_preconditions(platform);
  const std::vector<platform::ProcessorId> order = platform.by_speed_desc();
  // T(k) is non-decreasing in k (the transfer term grows, s_(k) shrinks), so
  // the scan can stop at the first violation.
  std::size_t best_k = 0;
  for (std::size_t k = 1; k <= order.size(); ++k) {
    if (!within_cap(latency_with_k_fastest(pipeline, platform, order, k), max_latency)) break;
    best_k = k;
  }
  if (best_k == 0) {
    return util::infeasible("no replication count meets latency threshold " +
                            util::format_double(max_latency));
  }
  return replicate_on_k_fastest(pipeline, platform, order, best_k);
}

Result comm_hom_min_latency_for_fp(const pipeline::Pipeline& pipeline,
                                   const platform::Platform& platform,
                                   double max_failure_probability) {
  check_preconditions(platform);
  const std::vector<platform::ProcessorId> order = platform.by_speed_desc();
  const double fp = platform.common_failure_prob();
  double product = 1.0;
  for (std::size_t k = 1; k <= order.size(); ++k) {
    product *= fp;
    if (within_cap(product, max_failure_probability)) {
      return replicate_on_k_fastest(pipeline, platform, order, k);
    }
  }
  return util::infeasible("even replicating on all processors exceeds failure threshold " +
                          util::format_double(max_failure_probability));
}

}  // namespace relap::algorithms
