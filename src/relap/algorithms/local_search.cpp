#include "relap/algorithms/local_search.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "relap/exec/parallel.hpp"
#include "relap/util/assert.hpp"

namespace relap::algorithms {

namespace {

using Assignments = std::vector<mapping::IntervalAssignment>;

/// Emits every neighbor of `current` to `visit`. Neighbors are structurally
/// valid interval mappings (the IntervalMapping constructor re-checks).
void for_each_neighbor(const platform::Platform& platform, const Assignments& current,
                       const std::function<void(Assignments)>& visit) {
  const std::size_t m = platform.processor_count();
  std::vector<bool> used(m, false);
  for (const auto& a : current) {
    for (const platform::ProcessorId u : a.processors) used[u] = true;
  }
  std::vector<platform::ProcessorId> unused;
  for (platform::ProcessorId u = 0; u < m; ++u) {
    if (!used[u]) unused.push_back(u);
  }

  for (std::size_t j = 0; j < current.size(); ++j) {
    const auto& a = current[j];

    // Boundary shifts with the next interval.
    if (j + 1 < current.size()) {
      if (a.stages.length() > 1) {  // give the last stage away
        Assignments next = current;
        --next[j].stages.last;
        --next[j + 1].stages.first;
        visit(std::move(next));
      }
      if (current[j + 1].stages.length() > 1) {  // take a stage
        Assignments next = current;
        ++next[j].stages.last;
        ++next[j + 1].stages.first;
        visit(std::move(next));
      }
      // Merge with the next interval.
      {
        Assignments next = current;
        next[j].stages.last = next[j + 1].stages.last;
        next[j].processors.insert(next[j].processors.end(), next[j + 1].processors.begin(),
                                  next[j + 1].processors.end());
        next.erase(next.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        visit(std::move(next));
      }
    }

    // Splits: left half keeps the group, right half takes one member (when
    // the group has >= 2) or one unused processor.
    for (std::size_t cut = a.stages.first; cut < a.stages.last; ++cut) {
      if (a.processors.size() >= 2) {
        Assignments next = current;
        const platform::ProcessorId moved = next[j].processors.back();
        next[j].processors.pop_back();
        next[j].stages.last = cut;
        next.insert(next.begin() + static_cast<std::ptrdiff_t>(j) + 1,
                    mapping::IntervalAssignment{{cut + 1, a.stages.last}, {moved}});
        visit(std::move(next));
      }
      for (const platform::ProcessorId fresh : unused) {
        Assignments next = current;
        next[j].stages.last = cut;
        next.insert(next.begin() + static_cast<std::ptrdiff_t>(j) + 1,
                    mapping::IntervalAssignment{{cut + 1, a.stages.last}, {fresh}});
        visit(std::move(next));
      }
    }

    // Replica-set edits.
    for (const platform::ProcessorId fresh : unused) {
      Assignments next = current;
      next[j].processors.push_back(fresh);
      visit(std::move(next));
    }
    if (a.processors.size() >= 2) {
      for (std::size_t i = 0; i < a.processors.size(); ++i) {
        Assignments next = current;
        next[j].processors.erase(next[j].processors.begin() + static_cast<std::ptrdiff_t>(i));
        visit(std::move(next));
      }
    }
    for (std::size_t i = 0; i < a.processors.size(); ++i) {
      for (const platform::ProcessorId fresh : unused) {
        Assignments next = current;
        next[j].processors[i] = fresh;
        visit(std::move(next));
      }
    }
  }
}

Solution descend(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                 Solution start, double cap, const LocalSearchOptions& options,
                 bool (*better)(const Solution&, const Solution&, double)) {
  Solution best = std::move(start);
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    std::optional<Solution> improved;
    for_each_neighbor(platform, best.mapping.intervals(), [&](Assignments next) {
      Solution candidate = evaluate(pipeline, platform, mapping::IntervalMapping(std::move(next)));
      const Solution& incumbent = improved ? *improved : best;
      if (better(candidate, incumbent, cap)) improved = std::move(candidate);
    });
    if (!improved) break;
    best = *std::move(improved);
  }
  return best;
}

/// Descends every start concurrently, then picks the winner in start order.
Solution multi_start_descend(const pipeline::Pipeline& pipeline,
                             const platform::Platform& platform, std::vector<Solution> starts,
                             double cap, const LocalSearchOptions& options,
                             bool (*better)(const Solution&, const Solution&, double)) {
  RELAP_ASSERT(!starts.empty(), "multi-start local search needs at least one start");
  std::vector<std::optional<Solution>> outcomes(starts.size());
  exec::parallel_for(
      starts.size(), 1,
      [&](std::size_t i) {
        outcomes[i] = descend(pipeline, platform, std::move(starts[i]), cap, options, better);
      },
      options.pool);

  Solution best = *std::move(outcomes[0]);
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    if (better(*outcomes[i], best, cap)) best = *std::move(outcomes[i]);
  }
  return best;
}

}  // namespace

Solution local_search_min_fp(const pipeline::Pipeline& pipeline,
                             const platform::Platform& platform, Solution start,
                             double max_latency, const LocalSearchOptions& options) {
  return descend(pipeline, platform, std::move(start), max_latency, options, &better_min_fp);
}

Solution local_search_min_latency(const pipeline::Pipeline& pipeline,
                                  const platform::Platform& platform, Solution start,
                                  double max_failure_probability,
                                  const LocalSearchOptions& options) {
  return descend(pipeline, platform, std::move(start), max_failure_probability, options,
                 &better_min_latency);
}

Solution multi_start_local_search_min_fp(const pipeline::Pipeline& pipeline,
                                         const platform::Platform& platform,
                                         std::vector<Solution> starts, double max_latency,
                                         const LocalSearchOptions& options) {
  return multi_start_descend(pipeline, platform, std::move(starts), max_latency, options,
                             &better_min_fp);
}

Solution multi_start_local_search_min_latency(const pipeline::Pipeline& pipeline,
                                              const platform::Platform& platform,
                                              std::vector<Solution> starts,
                                              double max_failure_probability,
                                              const LocalSearchOptions& options) {
  return multi_start_descend(pipeline, platform, std::move(starts), max_failure_probability,
                             options, &better_min_latency);
}

}  // namespace relap::algorithms
