#pragma once

/// \file general_mapping_sp.hpp
/// Theorem 4: minimizing the latency on Fully Heterogeneous platforms is
/// polynomial for *general* mappings (a processor may execute any set of
/// stages, not necessarily consecutive).
///
/// The construction is the layered graph of the paper's Figure 6: vertex
/// V_{i,u} means "stage i runs on P_u"; edge V_{i,u} -> V_{i+1,v} carries
/// w_i / s_u plus delta_i / b_{u,v} when u != v (intra-processor transfers
/// are free); source/sink edges carry the P_in / P_out transfers. The
/// minimum-latency mapping is a shortest source-to-sink path. Because the
/// graph is layered (a DAG), one dynamic-programming sweep in O(n * m^2)
/// replaces a general shortest-path algorithm.

#include "relap/algorithms/types.hpp"

namespace relap::algorithms {

/// The latency-optimal general mapping. Always feasible (any platform).
[[nodiscard]] GeneralSolution general_mapping_min_latency(const pipeline::Pipeline& pipeline,
                                                          const platform::Platform& platform);

}  // namespace relap::algorithms
