#include "relap/algorithms/fully_hom.hpp"

#include <algorithm>

#include "relap/util/assert.hpp"
#include "relap/util/strings.hpp"

namespace relap::algorithms {

namespace {

/// T(k) for a single interval of k identical-speed replicas.
double single_interval_latency(const pipeline::Pipeline& pipeline,
                               const platform::Platform& platform, std::size_t k) {
  const double b = platform.common_bandwidth();
  return static_cast<double>(k) * pipeline.data(0) / b +
         pipeline.total_work() / platform.speed(0) + pipeline.data(pipeline.stage_count()) / b;
}

Solution replicate_on_most_reliable(const pipeline::Pipeline& pipeline,
                                    const platform::Platform& platform, std::size_t k) {
  std::vector<platform::ProcessorId> order = platform.by_reliability();
  order.resize(k);
  return evaluate(pipeline, platform,
                  mapping::IntervalMapping::single_interval(pipeline.stage_count(),
                                                            std::move(order)));
}

}  // namespace

Result fully_hom_min_fp_for_latency(const pipeline::Pipeline& pipeline,
                                    const platform::Platform& platform, double max_latency) {
  RELAP_ASSERT(platform.is_fully_homogeneous(),
               "Algorithm 1 requires a Fully Homogeneous platform");
  const std::size_t m = platform.processor_count();
  // T(k) is non-decreasing in k; find the largest feasible k.
  std::size_t best_k = 0;
  for (std::size_t k = 1; k <= m; ++k) {
    if (!within_cap(single_interval_latency(pipeline, platform, k), max_latency)) break;
    best_k = k;
  }
  if (best_k == 0) {
    return util::infeasible("no replication count meets latency threshold " +
                            util::format_double(max_latency));
  }
  return replicate_on_most_reliable(pipeline, platform, best_k);
}

Result fully_hom_min_latency_for_fp(const pipeline::Pipeline& pipeline,
                                    const platform::Platform& platform,
                                    double max_failure_probability) {
  RELAP_ASSERT(platform.is_fully_homogeneous(),
               "Algorithm 2 requires a Fully Homogeneous platform");
  const std::vector<platform::ProcessorId> order = platform.by_reliability();
  // FP(k) = prod of the k smallest fp_u is non-increasing in k; latency is
  // non-decreasing in k, so the smallest feasible k is optimal.
  double product = 1.0;
  for (std::size_t k = 1; k <= order.size(); ++k) {
    product *= platform.failure_prob(order[k - 1]);
    if (within_cap(product, max_failure_probability)) {
      return replicate_on_most_reliable(pipeline, platform, k);
    }
  }
  return util::infeasible("even replicating on all processors exceeds failure threshold " +
                          util::format_double(max_failure_probability));
}

}  // namespace relap::algorithms
