#pragma once

/// \file single_interval.hpp
/// Exact bi-criteria optimization over *single-interval* mappings on
/// identical-link platforms with arbitrary (heterogeneous) speeds and
/// failure probabilities.
///
/// This covers the Communication Homogeneous / Failure Heterogeneous class,
/// for which the paper leaves the general problem open (an optimal solution
/// may need several intervals — Figure 5); restricting to one interval makes
/// it polynomial, and the restriction is the natural strong baseline the
/// heuristics must beat.
///
/// Key structure (our derivation, documented in DESIGN.md): for a single
/// interval replicated on a set A, the latency |A| * delta_0 / b + W /
/// min_{u in A} s_u + delta_n / b depends only on (|A|, min speed), and the
/// failure probability prod_{u in A} fp_u is minimized, for fixed size k and
/// speed floor s, by the k most reliable processors among {u : s_u >= s}.
/// Enumerating k in [1, m] and the m candidate speed floors therefore finds
/// the exact optimum in O(m^2 log m).

#include "relap/algorithms/types.hpp"

namespace relap::algorithms {

/// Minimum failure probability over single-interval mappings with latency
/// <= L. Precondition: `platform.has_homogeneous_links()`.
[[nodiscard]] Result single_interval_min_fp_for_latency(const pipeline::Pipeline& pipeline,
                                                        const platform::Platform& platform,
                                                        double max_latency);

/// Minimum latency over single-interval mappings with failure probability
/// <= FP. Precondition: `platform.has_homogeneous_links()`.
[[nodiscard]] Result single_interval_min_latency_for_fp(const pipeline::Pipeline& pipeline,
                                                        const platform::Platform& platform,
                                                        double max_failure_probability);

}  // namespace relap::algorithms
