#pragma once

/// \file local_search.hpp
/// Hill-climbing refinement of interval mappings under a threshold
/// constraint. Used to polish heuristic candidates and as a standalone
/// baseline in the heuristics bench.
///
/// Neighborhood moves:
///  * shift an interval boundary left/right by one stage;
///  * merge two adjacent intervals (union of their replica groups);
///  * split an interval at a stage boundary (its group split between halves);
///  * add an unused processor to a replica group;
///  * remove a processor from a group of size >= 2;
///  * swap a group member for an unused processor.
///
/// The search takes the best improving neighbor per round (steepest
/// descent) under the constrained comparator from types.hpp and stops at a
/// local optimum or the iteration cap. Fully deterministic: the neighborhood
/// is scanned in a fixed order (randomized exploration lives in
/// annealing.hpp instead).

#include <vector>

#include "relap/algorithms/types.hpp"

namespace relap::exec {
class ThreadPool;
}  // namespace relap::exec

namespace relap::algorithms {

struct LocalSearchOptions {
  /// Maximum descent rounds; each round scans the whole neighborhood.
  std::size_t max_rounds = 200;
  /// Pool for the multi-start drivers; null uses
  /// `exec::ThreadPool::shared()`. Single-start descent is deterministic and
  /// runs on the calling thread regardless.
  exec::ThreadPool* pool = nullptr;
};

/// Minimizes FP subject to latency <= `max_latency`, starting from `start`.
/// Never returns a solution worse than `start` under the constrained
/// comparator.
[[nodiscard]] Solution local_search_min_fp(const pipeline::Pipeline& pipeline,
                                           const platform::Platform& platform, Solution start,
                                           double max_latency,
                                           const LocalSearchOptions& options = {});

/// Minimizes latency subject to FP <= `max_failure_probability`.
[[nodiscard]] Solution local_search_min_latency(const pipeline::Pipeline& pipeline,
                                                const platform::Platform& platform, Solution start,
                                                double max_failure_probability,
                                                const LocalSearchOptions& options = {});

/// Multi-start steepest descent: descends every start concurrently on the
/// options' pool and returns the best local optimum under the constrained
/// comparator, picking in start order (the earliest start wins ties) so the
/// result is identical at any thread count. Precondition: `starts` non-empty.
[[nodiscard]] Solution multi_start_local_search_min_fp(const pipeline::Pipeline& pipeline,
                                                       const platform::Platform& platform,
                                                       std::vector<Solution> starts,
                                                       double max_latency,
                                                       const LocalSearchOptions& options = {});

/// Multi-start counterpart of `local_search_min_latency`.
[[nodiscard]] Solution multi_start_local_search_min_latency(
    const pipeline::Pipeline& pipeline, const platform::Platform& platform,
    std::vector<Solution> starts, double max_failure_probability,
    const LocalSearchOptions& options = {});

}  // namespace relap::algorithms
