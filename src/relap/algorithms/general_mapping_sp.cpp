#include "relap/algorithms/general_mapping_sp.hpp"

#include <limits>
#include <span>

#include "relap/mapping/latency.hpp"
#include "relap/util/assert.hpp"

namespace relap::algorithms {

GeneralSolution general_mapping_min_latency(const pipeline::Pipeline& pipeline,
                                            const platform::Platform& platform) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();

  // dist[u]: best cost of a path reaching "stage k on P_u", including the
  // computation of stage k. parent[k][u]: predecessor processor of stage k.
  std::vector<double> dist(m);
  std::vector<std::vector<platform::ProcessorId>> parent(
      n, std::vector<platform::ProcessorId>(m, 0));

  for (platform::ProcessorId u = 0; u < m; ++u) {
    dist[u] = pipeline.data(0) / platform.bandwidth_in(u) + pipeline.work(0) / platform.speed(u);
  }

  std::vector<double> next(m);
  for (std::size_t k = 1; k < n; ++k) {
    const double data_k = pipeline.data(k);
    const double work_k = pipeline.work(k);
    for (platform::ProcessorId v = 0; v < m; ++v) {
      double best = std::numeric_limits<double>::infinity();
      platform::ProcessorId best_u = 0;
      for (platform::ProcessorId u = 0; u < m; ++u) {
        const double transfer = (u == v) ? 0.0 : data_k / platform.bandwidth(u, v);
        const double cost = dist[u] + transfer;
        if (cost < best) {
          best = cost;
          best_u = u;
        }
      }
      next[v] = best + work_k / platform.speed(v);
      parent[k][v] = best_u;
    }
    dist.swap(next);
  }

  double best = std::numeric_limits<double>::infinity();
  platform::ProcessorId last = 0;
  for (platform::ProcessorId u = 0; u < m; ++u) {
    const double cost = dist[u] + pipeline.data(n) / platform.bandwidth_out(u);
    if (cost < best) {
      best = cost;
      last = u;
    }
  }

  std::vector<platform::ProcessorId> assignment(n);
  assignment[n - 1] = last;
  for (std::size_t k = n - 1; k > 0; --k) {
    assignment[k - 1] = parent[k][assignment[k]];
  }
  // Report the canonical evaluator's latency for the reconstructed path
  // rather than the DP's running sum: the two agree mathematically, but the
  // evaluator's compensated summation is the value every other solver (and
  // the exhaustive oracle) reports, so callers can compare solutions with ==.
  const double evaluated = mapping::latency(pipeline, platform, std::span(assignment));
  return GeneralSolution{mapping::GeneralMapping(std::move(assignment)), evaluated};
}

}  // namespace relap::algorithms
