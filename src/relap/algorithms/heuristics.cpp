#include "relap/algorithms/heuristics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <set>
#include <utility>

#include "relap/algorithms/local_search.hpp"
#include "relap/exec/parallel.hpp"
#include "relap/mapping/mapping_lanes.hpp"
#include "relap/mapping/mapping_view.hpp"
#include "relap/util/assert.hpp"
#include "relap/util/simd.hpp"
#include "relap/util/strings.hpp"

namespace relap::algorithms {

namespace {

using Group = std::vector<platform::ProcessorId>;

/// Distinct candidate replica groups drawn from `available` (any order):
/// the k most reliable, the k fastest, and the k best speed-reliability
/// blends, for every k up to the replication cap. Deduplicated.
std::vector<Group> candidate_groups(const platform::Platform& platform, const Group& available,
                                    std::size_t max_replication) {
  std::vector<Group> out;
  if (available.empty()) return out;
  const std::size_t k_max = std::min(available.size(), max_replication);

  Group by_rel = available;
  std::stable_sort(by_rel.begin(), by_rel.end(), [&](auto a, auto b) {
    return platform.failure_prob(a) < platform.failure_prob(b);
  });
  Group by_speed = available;
  std::stable_sort(by_speed.begin(), by_speed.end(),
                   [&](auto a, auto b) { return platform.speed(a) > platform.speed(b); });
  // Blend: prefer processors that are both fast and reliable; score is the
  // product of survival probability and speed.
  Group by_blend = available;
  std::stable_sort(by_blend.begin(), by_blend.end(), [&](auto a, auto b) {
    return (1.0 - platform.failure_prob(a)) * platform.speed(a) >
           (1.0 - platform.failure_prob(b)) * platform.speed(b);
  });

  std::set<Group> seen;
  for (const Group* order : {&by_rel, &by_speed, &by_blend}) {
    for (std::size_t k = 1; k <= k_max; ++k) {
      Group g(order->begin(), order->begin() + static_cast<std::ptrdiff_t>(k));
      std::sort(g.begin(), g.end());
      if (seen.insert(g).second) out.push_back(std::move(g));
    }
  }
  // Every singleton: on Fully Heterogeneous platforms the right processor
  // for an interval can be picked by its *links*, which none of the
  // orderings above see.
  for (const platform::ProcessorId u : available) {
    Group g{u};
    if (seen.insert(g).second) out.push_back(std::move(g));
  }
  return out;
}

Group all_processors(const platform::Platform& platform) {
  Group ids(platform.processor_count());
  for (std::size_t u = 0; u < ids.size(); ++u) ids[u] = u;
  return ids;
}

}  // namespace

void enumerate_single_interval_candidates(const pipeline::Pipeline& pipeline,
                                          const platform::Platform& platform,
                                          const HeuristicOptions& options,
                                          const CandidateSink& sink) {
  const std::size_t n = pipeline.stage_count();
  const std::vector<platform::ProcessorId> by_rel = platform.by_reliability();

  // Strategy sweeps from candidate_groups plus, for identical-link platforms,
  // the exact structure: for every speed floor, the k most reliable
  // processors at least that fast (contains the single-interval optimum,
  // see single_interval.hpp).
  for (Group& g : candidate_groups(platform, all_processors(platform),
                                   std::max<std::size_t>(options.max_replication,
                                                         platform.processor_count()))) {
    sink(evaluate(pipeline, platform, mapping::IntervalMapping::single_interval(n, std::move(g))));
  }

  std::vector<double> floors(platform.speeds().begin(), platform.speeds().end());
  std::sort(floors.begin(), floors.end(), std::greater<>());
  floors.erase(std::unique(floors.begin(), floors.end()), floors.end());
  for (const double floor : floors) {
    Group eligible;
    for (const platform::ProcessorId u : by_rel) {
      if (platform.speed(u) >= floor) eligible.push_back(u);
    }
    for (std::size_t k = 1; k <= eligible.size(); ++k) {
      Group g(eligible.begin(), eligible.begin() + static_cast<std::ptrdiff_t>(k));
      sink(evaluate(pipeline, platform,
                    mapping::IntervalMapping::single_interval(n, std::move(g))));
    }
  }
}

void enumerate_greedy_split_candidates(const pipeline::Pipeline& pipeline,
                                       const platform::Platform& platform,
                                       const HeuristicOptions& options,
                                       const CandidateSink& sink) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();

  // Augment every interval of `base` with extra reliable unused processors;
  // emits the latency/FP trade-offs replication buys on a fixed partition.
  const auto emit_replication_ladder = [&](const mapping::IntervalMapping& base) {
    std::vector<bool> used(m, false);
    for (const auto& a : base.intervals()) {
      for (const platform::ProcessorId u : a.processors) used[u] = true;
    }
    for (std::size_t target = 0; target < base.interval_count(); ++target) {
      Group unused_by_rel;
      for (const platform::ProcessorId u : platform.by_reliability()) {
        if (!used[u]) unused_by_rel.push_back(u);
      }
      std::vector<mapping::IntervalAssignment> intervals = base.intervals();
      for (std::size_t extra = 1;
           extra <= std::min(unused_by_rel.size(),
                             options.max_replication - std::min(options.max_replication,
                                                                intervals[target].processors.size()));
           ++extra) {
        intervals[target].processors.push_back(unused_by_rel[extra - 1]);
        sink(evaluate(pipeline, platform, mapping::IntervalMapping(intervals)));
      }
    }
  };

  // Latency-greedy descent: start from the best single processor and keep
  // applying the best single split (one interval cut in two, the new half
  // assigned the best unused processor) while it reduces latency. This is
  // the move that wins the paper's Figure 3/4 example.
  std::optional<Solution> current;
  for (const platform::ProcessorId u : all_processors(platform)) {
    Solution s = evaluate(pipeline, platform, mapping::IntervalMapping::single_interval(n, {u}));
    if (!current || s.latency < current->latency) current = std::move(s);
  }
  sink(*current);
  emit_replication_ladder(current->mapping);

  for (std::size_t round = 0; round < n; ++round) {
    std::optional<Solution> best_split;
    std::vector<bool> used(m, false);
    for (const auto& a : current->mapping.intervals()) {
      for (const platform::ProcessorId u : a.processors) used[u] = true;
    }
    Group unused;
    for (platform::ProcessorId u = 0; u < m; ++u) {
      if (!used[u]) unused.push_back(u);
    }
    if (unused.empty()) break;

    const auto& intervals = current->mapping.intervals();
    for (std::size_t j = 0; j < intervals.size(); ++j) {
      const auto& a = intervals[j];
      for (std::size_t cut = a.stages.first; cut < a.stages.last; ++cut) {
        for (const platform::ProcessorId fresh : unused) {
          // Keep the existing group on the left half, the fresh processor on
          // the right half (and the mirrored variant).
          for (const bool fresh_on_right : {true, false}) {
            std::vector<mapping::IntervalAssignment> next = intervals;
            mapping::IntervalAssignment left{{a.stages.first, cut}, a.processors};
            mapping::IntervalAssignment right{{cut + 1, a.stages.last}, {fresh}};
            if (!fresh_on_right) std::swap(left.processors, right.processors);
            next[j] = left;
            next.insert(next.begin() + static_cast<std::ptrdiff_t>(j) + 1, right);
            Solution s = evaluate(pipeline, platform, mapping::IntervalMapping(std::move(next)));
            sink(s);
            if (!best_split || s.latency < best_split->latency) best_split = std::move(s);
          }
        }
      }
    }
    if (!best_split || best_split->latency >= current->latency) break;
    current = std::move(best_split);
    emit_replication_ladder(current->mapping);
  }
}

namespace {

/// Beam-search state: stages [0, boundary) are fully assigned; the last
/// interval's sender-side cost (compute + transfer to its successor) is
/// still pending because it depends on the successor's group.
struct BeamState {
  std::uint64_t used_mask = 0;
  std::vector<mapping::IntervalAssignment> intervals;
  double latency_prefix = 0.0;  ///< all terms except the pending interval's
  double log_survival = 0.0;    ///< includes the pending interval's group
};

/// Eq. (2) sender-side term of interval `a` when its successor group is
/// `next` (or P_out when `next` is null).
double pending_term(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                    const mapping::IntervalAssignment& a, const Group* next) {
  const double work = pipeline.work_sum(a.stages.first, a.stages.last);
  const double out_size = pipeline.data(a.stages.last + 1);
  double worst = 0.0;
  for (const platform::ProcessorId u : a.processors) {
    double term = work / platform.speed(u);
    if (next != nullptr) {
      for (const platform::ProcessorId v : *next) term += out_size / platform.bandwidth(u, v);
    } else {
      term += out_size / platform.bandwidth_out(u);
    }
    worst = std::max(worst, term);
  }
  return worst;
}

double group_log_survival(const platform::Platform& platform, const Group& g) {
  double product = 1.0;
  for (const platform::ProcessorId u : g) product *= platform.failure_prob(u);
  if (product >= 1.0) return -std::numeric_limits<double>::infinity();
  return std::log1p(-product);
}

/// Evaluates the beam's surviving final states through the W-lane batch
/// kernel (ragged `push_intervals` staging), each chunk writing its own
/// solution slots. Lanes are consumed in push (= state index) order, so the
/// sink sees the same sequence at any thread count and any lane width.
template <std::size_t W>
void evaluate_beam_finals(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                          const std::vector<BeamState>& finals,
                          std::vector<std::optional<Solution>>& solutions,
                          exec::ThreadPool* pool) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();
  constexpr std::size_t kStatesPerChunk = 8;
  exec::parallel_for_chunks(
      finals.size(), kStatesPerChunk,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        mapping::LaneEvalBatch<W> batch(n, m);
        std::array<mapping::ViewEval, W> evals;
        std::size_t base = begin;
        const auto flush = [&] {
          batch.evaluate(platform, evals);
          for (std::size_t l = 0; l < batch.size(); ++l) {
            const std::size_t i = base + l;
            solutions[i].emplace(Solution{mapping::IntervalMapping(finals[i].intervals),
                                          evals[l].latency, evals[l].failure_probability});
          }
          base += batch.size();
          batch.clear();
        };
        for (std::size_t i = begin; i < end; ++i) {
          batch.push_intervals(pipeline, finals[i].intervals);
          if (batch.full()) flush();
        }
        if (!batch.empty()) flush();
      },
      pool);
}

}  // namespace

void enumerate_beam_candidates(const pipeline::Pipeline& pipeline,
                               const platform::Platform& platform,
                               const HeuristicOptions& options, const CandidateSink& sink) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();
  if (m > 64) return;  // the used-set bitmask caps the beam at 64 processors

  // beams[i]: states whose assigned prefix is exactly stages [0, i).
  std::vector<std::vector<BeamState>> beams(n + 1);
  beams[0].push_back(BeamState{});

  // Admissible latency estimate for pruning: the prefix plus a lower bound
  // on the pending interval's unpaid term (its compute on the group's
  // slowest member; the outgoing transfers are bounded below by zero).
  // Pruning on the raw prefix alone would let a cheap-so-far state with a
  // huge pending compute (e.g. a slow reliable processor holding the whole
  // pipeline) shadow genuinely better completions.
  const auto optimistic_total = [&](const BeamState& s) {
    if (s.intervals.empty()) return s.latency_prefix;
    const mapping::IntervalAssignment& last = s.intervals.back();
    double slowest_inv = 0.0;  // 1 / min speed: the pending max runs at least this slow
    for (const platform::ProcessorId u : last.processors) {
      slowest_inv = std::max(slowest_inv, 1.0 / platform.speed(u));
    }
    return s.latency_prefix +
           pipeline.work_sum(last.stages.first, last.stages.last) * slowest_inv;
  };

  // Union-keep pruning: half the width goes to the latency-cheapest states,
  // half to the most reliable ones. A Pareto-domination filter would be
  // wrong here: on Fully Heterogeneous platforms two states with the same
  // optimistic latency and ordered survivals can still complete differently
  // (the bound cannot see link identities), so "dominated" states must
  // survive as long as the beam has room.
  const auto prune = [&](std::vector<BeamState>& states) {
    if (states.size() <= options.beam_width) return;
    const std::size_t half = std::max<std::size_t>(1, options.beam_width / 2);
    std::stable_sort(states.begin(), states.end(),
                     [&](const BeamState& a, const BeamState& b) {
                       return optimistic_total(a) < optimistic_total(b);
                     });
    std::vector<BeamState> kept(std::make_move_iterator(states.begin()),
                                std::make_move_iterator(states.begin() +
                                                        static_cast<std::ptrdiff_t>(half)));
    std::stable_sort(states.begin() + static_cast<std::ptrdiff_t>(half), states.end(),
                     [](const BeamState& a, const BeamState& b) {
                       return a.log_survival > b.log_survival;
                     });
    for (std::size_t i = half; i < states.size() && kept.size() < options.beam_width; ++i) {
      kept.push_back(std::move(states[i]));
    }
    states = std::move(kept);
  };

  for (std::size_t i = 0; i < n; ++i) {
    // Cancellation poll per beam level: a cancelled solve stops extending
    // states and emits nothing (the entry points turn that into an error).
    if (util::cancel_requested(options.cancel)) return;
    prune(beams[i]);
    for (const BeamState& state : beams[i]) {
      Group unused;
      for (platform::ProcessorId u = 0; u < m; ++u) {
        if (!(state.used_mask & (std::uint64_t{1} << u))) unused.push_back(u);
      }
      if (unused.empty()) continue;
      const std::vector<Group> groups =
          candidate_groups(platform, unused, options.max_replication);
      for (std::size_t j = i; j < n; ++j) {
        for (const Group& g : groups) {
          BeamState next = state;
          if (state.intervals.empty()) {
            for (const platform::ProcessorId u : g) {
              next.latency_prefix += pipeline.data(0) / platform.bandwidth_in(u);
            }
          } else {
            next.latency_prefix +=
                pending_term(pipeline, platform, state.intervals.back(), &g);
          }
          next.log_survival += group_log_survival(platform, g);
          for (const platform::ProcessorId u : g) next.used_mask |= std::uint64_t{1} << u;
          next.intervals.push_back(mapping::IntervalAssignment{{i, j}, g});
          beams[j + 1].push_back(std::move(next));
        }
      }
    }
  }

  prune(beams[n]);
  // The evaluated latency re-derives the prefix plus the final pending term;
  // the view kernel recomputes from scratch as the single source of truth
  // (bit-identical to evaluate()), and the owning mapping is built once per
  // surviving state instead of round-tripping through a second copy.
  //
  // Evaluation is chunked over the surviving states through the lane batch
  // kernel (every state writes its own slot), and the sink consumes the
  // solutions serially in state-index order afterwards — the same
  // lowest-rank tie-breaking as the serial scan, so downstream first-wins
  // incumbents are identical at any thread count and any lane width.
  const std::vector<BeamState>& finals = beams[n];
  std::vector<std::optional<Solution>> solutions(finals.size());
  switch (util::simd::effective_lane_width(options.lane_width)) {
    case 1: evaluate_beam_finals<1>(pipeline, platform, finals, solutions, options.pool); break;
    case 4: evaluate_beam_finals<4>(pipeline, platform, finals, solutions, options.pool); break;
    case 8: evaluate_beam_finals<8>(pipeline, platform, finals, solutions, options.pool); break;
    default: RELAP_UNREACHABLE("lane_width must be 0, 1, 4 or 8");
  }
  for (std::optional<Solution>& s : solutions) sink(*std::move(s));
}

namespace {

Result pick_best(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                 const HeuristicOptions& options, double cap,
                 bool (*better)(const Solution&, const Solution&, double),
                 bool (*feasible)(const Solution&, double), const char* criterion) {
  std::optional<Solution> best;
  const CandidateSink sink = [&](Solution s) {
    if (!best || better(s, *best, cap)) best = std::move(s);
  };
  enumerate_single_interval_candidates(pipeline, platform, options, sink);
  if (!util::cancel_requested(options.cancel)) {
    enumerate_greedy_split_candidates(pipeline, platform, options, sink);
  }
  if (!util::cancel_requested(options.cancel)) {
    enumerate_beam_candidates(pipeline, platform, options, sink);
  }
  if (util::cancel_requested(options.cancel)) {
    return util::make_error("cancelled", "heuristic search was cancelled before completing");
  }

  if (!best || !feasible(*best, cap)) {
    return util::infeasible(std::string("no heuristic candidate meets the ") + criterion +
                            " threshold " + util::format_double(cap));
  }
  return *std::move(best);
}

}  // namespace

Result heuristic_min_fp_for_latency(const pipeline::Pipeline& pipeline,
                                    const platform::Platform& platform, double max_latency,
                                    const HeuristicOptions& options) {
  Result best = pick_best(
      pipeline, platform, options, max_latency, &better_min_fp,
      [](const Solution& s, double cap) { return within_cap(s.latency, cap); }, "latency");
  if (!best) return best;
  return local_search_min_fp(pipeline, platform, std::move(best).take(), max_latency,
                             LocalSearchOptions{});
}

Result heuristic_min_latency_for_fp(const pipeline::Pipeline& pipeline,
                                    const platform::Platform& platform,
                                    double max_failure_probability,
                                    const HeuristicOptions& options) {
  Result best = pick_best(
      pipeline, platform, options, max_failure_probability, &better_min_latency,
      [](const Solution& s, double cap) { return within_cap(s.failure_probability, cap); },
      "failure-probability");
  if (!best) return best;
  return local_search_min_latency(pipeline, platform, std::move(best).take(),
                                  max_failure_probability, LocalSearchOptions{});
}

}  // namespace relap::algorithms
