#include "relap/algorithms/exhaustive.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>
#include <utility>

#include "relap/exec/parallel.hpp"
#include "relap/mapping/latency.hpp"
#include "relap/mapping/mapping_lanes.hpp"
#include "relap/mapping/mapping_view.hpp"
#include "relap/mapping/throughput.hpp"
#include "relap/util/assert.hpp"
#include "relap/util/enumeration.hpp"
#include "relap/util/pareto.hpp"
#include "relap/util/simd.hpp"
#include "relap/util/strings.hpp"

namespace relap::algorithms {

namespace {

using util::kSaturated;

/// Candidates per parallel chunk. Fixed (never derived from the thread
/// count) so the chunk grid — and therefore the merge order and the result —
/// is identical at any thread count.
constexpr std::size_t kCandidatesPerChunk = 1024;

/// One interval count's slice of the flat candidate index space:
/// C(n-1, p-1) compositions x count_groupings(m, p) groupings, candidates
/// ordered composition-major within the slice.
struct PBlock {
  std::uint64_t start;  ///< flat index of the block's first candidate
  util::CompositionIndexer compositions;
  util::GroupingIndexer groupings;
};

/// The flat candidate index space [0, total): p-blocks in increasing p.
/// Rank/unrank over this space lets the parallel driver cut uniform chunks
/// of candidates regardless of how candidates distribute over compositions —
/// the load-balance fix for instances with few compositions.
///
/// `total` is computed with saturating arithmetic and is the single source
/// of truth for the budget decision: a saturated total means the block
/// offsets are meaningless, so callers must reject it before enumerating.
/// Equals the evaluation count the pre-parallel streaming enumerator charged
/// against its budget, so the budget decision is unchanged.
struct CandidateSpace {
  std::vector<PBlock> blocks;
  std::uint64_t total = 0;
};

CandidateSpace build_candidate_space(std::size_t n, std::size_t m, std::size_t max_parts) {
  CandidateSpace space;
  std::uint64_t start = 0;
  for (std::size_t p = 1; p <= max_parts; ++p) {
    util::CompositionIndexer compositions(n, p);
    util::GroupingIndexer groupings(m, p);
    const std::uint64_t count = util::sat_mul(compositions.count(), groupings.count());
    if (count == 0) continue;
    space.blocks.push_back(PBlock{start, std::move(compositions), std::move(groupings)});
    start = util::sat_add(start, count);
  }
  space.total = start;
  return space;
}

/// Walks candidates of a `CandidateSpace` in flat-index order. `seek`
/// unranks an arbitrary start; `advance` steps to the successor with the
/// amortized-O(p) lexicographic `next`, re-deriving the composition only on
/// wrap and reporting the wrap so the caller can refresh its per-composition
/// cache (`LaneEvalBatch::set_composition`).
class CandidateCursor {
 public:
  explicit CandidateCursor(const CandidateSpace& space) : space_(space) {}

  void seek(std::uint64_t flat_index) {
    block_ = 0;
    while (block_ + 1 < space_.blocks.size() && space_.blocks[block_ + 1].start <= flat_index) {
      ++block_;
    }
    const PBlock& b = space_.blocks[block_];
    const std::uint64_t local = flat_index - b.start;
    composition_rank_ = local / b.groupings.count();
    load_composition();
    group_of_.resize(b.groupings.items());
    group_sizes_.resize(b.groupings.groups());
    b.groupings.unrank(local % b.groupings.count(), group_of_, group_sizes_);
  }

  /// Steps to the next candidate; returns true iff the composition changed
  /// (so `lengths()` must be re-installed). Precondition: not at the last
  /// candidate.
  bool advance() {
    const PBlock* b = &space_.blocks[block_];
    if (b->groupings.next(group_of_, group_sizes_)) return false;
    if (++composition_rank_ == b->compositions.count()) {
      ++block_;
      b = &space_.blocks[block_];
      composition_rank_ = 0;
      group_of_.resize(b->groupings.items());
      group_sizes_.resize(b->groupings.groups());
    }
    load_composition();
    b->groupings.unrank(0, group_of_, group_sizes_);
    return true;
  }

  [[nodiscard]] std::span<const std::size_t> lengths() const { return lengths_; }
  [[nodiscard]] std::span<const std::size_t> group_sizes() const { return group_sizes_; }
  [[nodiscard]] std::span<const std::size_t> group_of() const { return group_of_; }

 private:
  void load_composition() {
    space_.blocks[block_].compositions.unrank(composition_rank_, lengths_);
  }

  const CandidateSpace& space_;
  std::size_t block_ = 0;
  std::uint64_t composition_rank_ = 0;
  std::vector<std::size_t> lengths_;
  std::vector<std::size_t> group_of_;
  std::vector<std::size_t> group_sizes_;
};

using util::simd::effective_lane_width;

/// Enumerates every interval mapping within the options' structural caps
/// through the zero-allocation evaluation kernel, in parallel on the
/// options' pool.
///
/// The flat (composition x grouping) index space is cut into fixed
/// `kCandidatesPerChunk`-sized chunks; each chunk seeks its start by
/// rank/unrank, walks candidates with the lexicographic successor, stages
/// admitted candidates into a W-lane `LaneEvalBatch`, and consumes each
/// flushed batch in push (= candidate index) order into a per-chunk
/// accumulator; accumulators merge serially in chunk-index order. Results
/// are therefore identical at any thread count *and* any lane width, and
/// chunks are uniform in candidate count even when one composition dominates
/// the space.
///
/// `visit(acc, view, cache, eval, idx)` sees each admitted candidate's
/// objectives plus its view/cache (for `period_view`, `materialize`,
/// `processors_used`) and its flat candidate index, which identifies the
/// candidate across the whole space — visitors that only need the mapping of
/// a few winners can carry the index and re-derive the view later instead of
/// materializing in the hot loop. The view must not be retained past the
/// call.
///
/// Returns false iff the candidate count exceeds the evaluation budget (in
/// which case nothing is evaluated).
template <std::size_t W, typename Acc, typename Visit, typename Merge>
bool parallel_interval_enumeration_w(const pipeline::Pipeline& pipeline,
                                     const platform::Platform& platform,
                                     const ExhaustiveOptions& options, Acc& out,
                                     const Visit& visit, const Merge& merge) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();
  const std::size_t max_parts = std::min({n, m, options.max_intervals});
  const CandidateSpace space = build_candidate_space(n, m, max_parts);
  // A saturated total is over budget by definition: even max_evaluations ==
  // UINT64_MAX cannot admit it, and its block offsets are meaningless.
  if (space.total == kSaturated || space.total > options.max_evaluations) return false;
  out = exec::parallel_reduce(
      space.total, kCandidatesPerChunk, [] { return Acc(); },
      [&](Acc& local, std::size_t begin, std::size_t end, std::size_t) {
        // Cooperative cancellation, polled per chunk: a cancelled group
        // abandons its remaining chunks and the entry point discards the
        // partial accumulators behind a "cancelled" error.
        if (util::cancel_requested(options.cancel)) return;
        mapping::LaneEvalBatch<W> batch(n, m);
        std::array<mapping::ViewEval, W> evals;
        std::array<std::size_t, W> lane_idx{};  // flat index staged per lane
        const auto flush = [&] {
          batch.evaluate(platform, evals);
          for (std::size_t l = 0; l < batch.size(); ++l) {
            visit(local, batch.view(l), batch.cache(l), evals[l], lane_idx[l]);
          }
          batch.clear();
        };
        CandidateCursor cursor(space);
        cursor.seek(begin);
        batch.set_composition(pipeline, cursor.lengths());
        for (std::size_t idx = begin;; ++idx) {
          const std::span<const std::size_t> sizes = cursor.group_sizes();
          if (std::none_of(sizes.begin(), sizes.end(),
                           [&](std::size_t s) { return s > options.max_replication; })) {
            lane_idx[batch.size()] = idx;
            batch.push_grouping(cursor.group_of(), sizes);
            if (batch.full()) flush();
          }
          if (idx + 1 == end) break;
          if (cursor.advance()) batch.set_composition(pipeline, cursor.lengths());
        }
        if (!batch.empty()) flush();
      },
      merge, options.pool);
  return true;
}

/// Width dispatch for the interval enumerators (see
/// `ExhaustiveOptions::lane_width`).
template <typename Acc, typename Visit, typename Merge>
bool parallel_interval_enumeration(const pipeline::Pipeline& pipeline,
                                   const platform::Platform& platform,
                                   const ExhaustiveOptions& options, Acc& out, const Visit& visit,
                                   const Merge& merge) {
  switch (effective_lane_width(options.lane_width)) {
    case 1:
      return parallel_interval_enumeration_w<1>(pipeline, platform, options, out, visit, merge);
    case 4:
      return parallel_interval_enumeration_w<4>(pipeline, platform, options, out, visit, merge);
    case 8:
      return parallel_interval_enumeration_w<8>(pipeline, platform, options, out, visit, merge);
    default: RELAP_UNREACHABLE("lane_width must be 0, 1, 4 or 8");
  }
}

/// Accumulator for the single-best entry points: the incumbent under a
/// comparator, with its comparator-visible objectives cached so candidates
/// are compared without touching the incumbent's mapping. Merging keeps the
/// earlier (lower enumeration order) accumulator's incumbent on ties,
/// matching the serial first-wins rule.
struct BestAccumulator {
  std::optional<Solution> best;
  Objectives objectives;  ///< valid iff `best`
};

using ValueComparator = bool (*)(const Objectives&, const Objectives&, double);

/// Shared driver for the single-best entry points: enumerates all interval
/// mappings, keeps the best admitted solution under `better` with `cap`.
/// `admit(view, cache, eval)` applies the entry point's feasibility filter.
/// Returns false iff the candidate count exceeds the evaluation budget.
template <typename Admit>
bool enumerate_best(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                    const ExhaustiveOptions& options, double cap, ValueComparator better,
                    const Admit& admit, std::optional<Solution>& best) {
  BestAccumulator acc;
  const bool completed = parallel_interval_enumeration(
      pipeline, platform, options, acc,
      [&](BestAccumulator& local, const mapping::MappingView& view,
          const mapping::CompositionCache& cache, const mapping::ViewEval& eval, std::size_t) {
        if (!admit(view, cache, eval)) return;
        const Objectives candidate{eval.latency, eval.failure_probability,
                                   view.processors_used()};
        if (!local.best || better(candidate, local.objectives, cap)) {
          local.best =
              Solution{mapping::materialize(view), eval.latency, eval.failure_probability};
          local.objectives = candidate;
        }
      },
      [&](BestAccumulator& into, BestAccumulator&& from) {
        if (!from.best) return;
        if (!into.best || better(from.objectives, into.objectives, cap)) {
          into.best = std::move(from.best);
          into.objectives = from.objectives;
        }
      });
  best = std::move(acc.best);
  return completed;
}

util::Error budget_error(const ExhaustiveOptions& options) {
  return util::budget_exceeded("exhaustive enumeration exceeded " +
                               std::to_string(options.max_evaluations) + " evaluations");
}

util::Error cancelled_error() {
  return util::make_error("cancelled", "exhaustive enumeration was cancelled before completing");
}

}  // namespace

util::Expected<ParetoOutcome> exhaustive_pareto(const pipeline::Pipeline& pipeline,
                                                const platform::Platform& platform,
                                                const ExhaustiveOptions& options) {
  // Payloads are flat candidate indices, not materialized mappings: the hot
  // loop only maintains (latency, FP, index) fronts, and the few surviving
  // candidates are re-derived and materialized once after the scan — the
  // same rank-instead-of-mapping trick the unreplicated enumerators use.
  struct FrontAccumulator {
    util::ParetoFront front;
    std::uint64_t evaluations = 0;
  };
  FrontAccumulator acc;
  const bool completed = parallel_interval_enumeration(
      pipeline, platform, options, acc,
      [](FrontAccumulator& local, const mapping::MappingView&, const mapping::CompositionCache&,
         const mapping::ViewEval& eval, std::size_t idx) {
        ++local.evaluations;
        local.front.insert({eval.latency, eval.failure_probability, idx});
      },
      [](FrontAccumulator& into, FrontAccumulator&& from) {
        into.evaluations += from.evaluations;
        for (const util::ParetoPoint& point : from.front.points()) into.front.insert(point);
      });
  if (!completed) return budget_error(options);
  if (util::cancel_requested(options.cancel)) return cancelled_error();

  ParetoOutcome outcome;
  outcome.evaluations = acc.evaluations;
  outcome.front.reserve(acc.front.size());
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();
  const CandidateSpace space = build_candidate_space(n, m, std::min({n, m, options.max_intervals}));
  CandidateCursor cursor(space);
  mapping::EvalScratch scratch(n, m);
  for (const util::ParetoPoint& point : acc.front.points()) {
    cursor.seek(point.payload);
    scratch.set_composition(pipeline, cursor.lengths());
    scratch.set_grouping(cursor.group_of(), cursor.group_sizes());
    outcome.front.push_back(ParetoSolution{point.x, point.y, mapping::materialize(scratch.view())});
  }
  return outcome;
}

Result exhaustive_min_fp_for_latency(const pipeline::Pipeline& pipeline,
                                     const platform::Platform& platform, double max_latency,
                                     const ExhaustiveOptions& options) {
  std::optional<Solution> best;
  const bool completed = enumerate_best(
      pipeline, platform, options, max_latency, &better_min_fp,
      [&](const mapping::MappingView&, const mapping::CompositionCache&,
          const mapping::ViewEval& eval) { return within_cap(eval.latency, max_latency); },
      best);
  if (!completed) return budget_error(options);
  if (util::cancel_requested(options.cancel)) return cancelled_error();
  if (!best) {
    return util::infeasible("no interval mapping meets latency threshold " +
                            util::format_double(max_latency));
  }
  return *std::move(best);
}

Result exhaustive_min_latency_for_fp(const pipeline::Pipeline& pipeline,
                                     const platform::Platform& platform,
                                     double max_failure_probability,
                                     const ExhaustiveOptions& options) {
  std::optional<Solution> best;
  const bool completed = enumerate_best(
      pipeline, platform, options, max_failure_probability, &better_min_latency,
      [&](const mapping::MappingView&, const mapping::CompositionCache&,
          const mapping::ViewEval& eval) {
        return within_cap(eval.failure_probability, max_failure_probability);
      },
      best);
  if (!completed) return budget_error(options);
  if (util::cancel_requested(options.cancel)) return cancelled_error();
  if (!best) {
    return util::infeasible("no interval mapping meets failure threshold " +
                            util::format_double(max_failure_probability));
  }
  return *std::move(best);
}

Result exhaustive_min_fp_for_latency_and_period(const pipeline::Pipeline& pipeline,
                                                const platform::Platform& platform,
                                                double max_latency, double max_period,
                                                const ExhaustiveOptions& options) {
  std::optional<Solution> best;
  const bool completed = enumerate_best(
      pipeline, platform, options, max_latency, &better_min_fp,
      [&](const mapping::MappingView& view, const mapping::CompositionCache& cache,
          const mapping::ViewEval& eval) {
        return within_cap(eval.latency, max_latency) &&
               within_cap(mapping::period_view(platform, view, cache), max_period);
      },
      best);
  if (!completed) return budget_error(options);
  if (util::cancel_requested(options.cancel)) return cancelled_error();
  if (!best) {
    return util::infeasible("no interval mapping meets latency threshold " +
                            util::format_double(max_latency) + " and period threshold " +
                            util::format_double(max_period));
  }
  return *std::move(best);
}

namespace {

/// Incumbent for the unreplicated enumerators: the best latency seen and the
/// flat rank of the candidate that achieved it. Ranks order merges exactly
/// like the serial first-strict-improvement rule, and carrying a rank
/// instead of a mapping keeps the hot loop allocation-free.
struct RankedBest {
  double latency = std::numeric_limits<double>::infinity();
  std::uint64_t rank = 0;
  bool has = false;
};

void merge_ranked(RankedBest& into, RankedBest&& from) {
  if (from.has && (!into.has || from.latency < into.latency)) into = from;
}

/// Lane-batched chunk scan for the unreplicated enumerators: stages up to W
/// successive assignments lane-major into `ids`, evaluates them with one
/// `latency_assignment_lanes` call, and folds the results in rank order —
/// the same strict-improvement scan as the scalar loop, so ties still go to
/// the lowest rank at any lane width. `advance()` steps the enumeration to
/// its successor; it is called exactly once per consumed candidate after the
/// first, never past the last. A final partial batch leaves the unused
/// lanes' prior (in-bounds) ids in place and ignores their outputs.
template <std::size_t W, typename Advance>
void ranked_lane_scan(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                      RankedBest& local, std::uint64_t begin, std::uint64_t end,
                      std::span<const platform::ProcessorId> assignment,
                      std::vector<std::uint64_t>& ids, const Advance& advance) {
  const std::size_t n = assignment.size();
  std::array<double, W> lat;
  std::uint64_t idx = begin;
  while (idx < end) {
    const std::size_t count = static_cast<std::size_t>(std::min<std::uint64_t>(W, end - idx));
    for (std::size_t l = 0; l < count; ++l) {
      if (l > 0) advance();
      for (std::size_t k = 0; k < n; ++k) ids[k * W + l] = assignment[k];
    }
    mapping::latency_assignment_lanes<W>(pipeline, platform, ids.data(), lat.data());
    for (std::size_t l = 0; l < count; ++l) {
      if (!local.has || lat[l] < local.latency) local = RankedBest{lat[l], idx + l, true};
    }
    idx += count;
    if (idx < end) advance();
  }
}

template <std::size_t W>
RankedBest general_ranked_best(const pipeline::Pipeline& pipeline,
                               const platform::Platform& platform,
                               const util::AssignmentIndexer& indexer, std::uint64_t total,
                               exec::ThreadPool* pool) {
  const std::size_t n = pipeline.stage_count();
  return exec::parallel_reduce(
      total, kCandidatesPerChunk, [] { return RankedBest(); },
      [&](RankedBest& local, std::size_t begin, std::size_t end, std::size_t) {
        std::vector<platform::ProcessorId> assignment(n);
        std::vector<std::uint64_t> ids(n * W, 0);
        indexer.unrank(begin, assignment);
        ranked_lane_scan<W>(pipeline, platform, local, begin, end, assignment, ids,
                            [&] { indexer.next(assignment); });
      },
      merge_ranked, pool);
}

template <std::size_t W>
RankedBest one_to_one_ranked_best(const pipeline::Pipeline& pipeline,
                                  const platform::Platform& platform,
                                  const util::InjectionIndexer& indexer, std::uint64_t total,
                                  exec::ThreadPool* pool) {
  const std::size_t n = pipeline.stage_count();
  return exec::parallel_reduce(
      total, kCandidatesPerChunk, [] { return RankedBest(); },
      [&](RankedBest& local, std::size_t begin, std::size_t end, std::size_t) {
        std::vector<platform::ProcessorId> assignment(n);
        std::vector<bool> used;
        std::vector<std::uint64_t> ids(n * W, 0);
        indexer.unrank(begin, assignment, used);
        ranked_lane_scan<W>(pipeline, platform, local, begin, end, assignment, ids,
                            [&] { indexer.next(assignment, used); });
      },
      merge_ranked, pool);
}

}  // namespace

GeneralResult exhaustive_general_min_latency(const pipeline::Pipeline& pipeline,
                                             const platform::Platform& platform,
                                             std::uint64_t max_evaluations, exec::ThreadPool* pool,
                                             std::size_t lane_width) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();
  const util::AssignmentIndexer indexer(n, m);
  const std::uint64_t total = indexer.count();
  // A saturated count is over budget even for max_evaluations == UINT64_MAX;
  // it is not a valid rank-space size.
  if (total == kSaturated || total > max_evaluations) {
    return util::budget_exceeded("general-mapping enumeration exceeded " +
                                 std::to_string(max_evaluations) + " evaluations");
  }

  RankedBest best;
  switch (effective_lane_width(lane_width)) {
    case 1: best = general_ranked_best<1>(pipeline, platform, indexer, total, pool); break;
    case 4: best = general_ranked_best<4>(pipeline, platform, indexer, total, pool); break;
    case 8: best = general_ranked_best<8>(pipeline, platform, indexer, total, pool); break;
    default: RELAP_UNREACHABLE("lane_width must be 0, 1, 4 or 8");
  }

  std::vector<platform::ProcessorId> assignment(n);
  indexer.unrank(best.rank, assignment);
  return GeneralSolution{mapping::GeneralMapping(std::move(assignment)), best.latency};
}

GeneralResult exhaustive_one_to_one_min_latency(const pipeline::Pipeline& pipeline,
                                                const platform::Platform& platform,
                                                std::uint64_t max_evaluations,
                                                exec::ThreadPool* pool, std::size_t lane_width) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();
  if (n > m) return util::infeasible("one-to-one mappings need n <= m");
  const util::InjectionIndexer indexer(n, m);
  const std::uint64_t total = indexer.count();
  // As above: a saturated count can never fit a uint64 budget.
  if (total == kSaturated || total > max_evaluations) {
    return util::budget_exceeded("one-to-one enumeration exceeded " +
                                 std::to_string(max_evaluations) + " evaluations");
  }

  RankedBest best;
  switch (effective_lane_width(lane_width)) {
    case 1: best = one_to_one_ranked_best<1>(pipeline, platform, indexer, total, pool); break;
    case 4: best = one_to_one_ranked_best<4>(pipeline, platform, indexer, total, pool); break;
    case 8: best = one_to_one_ranked_best<8>(pipeline, platform, indexer, total, pool); break;
    default: RELAP_UNREACHABLE("lane_width must be 0, 1, 4 or 8");
  }

  std::vector<platform::ProcessorId> assignment(n);
  std::vector<bool> used;
  indexer.unrank(best.rank, assignment, used);
  return GeneralSolution{mapping::GeneralMapping(std::move(assignment)), best.latency};
}

std::uint64_t interval_mapping_count(std::size_t stages, std::size_t processors) {
  const std::size_t max_parts = std::min(stages, processors);
  std::uint64_t total = 0;
  for (std::size_t p = 1; p <= max_parts; ++p) {
    total = util::sat_add(total, util::sat_mul(util::binomial(stages - 1, p - 1),
                                               util::count_groupings(processors, p)));
  }
  return total;
}

}  // namespace relap::algorithms
