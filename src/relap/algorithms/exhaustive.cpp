#include "relap/algorithms/exhaustive.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "relap/exec/parallel.hpp"
#include "relap/mapping/throughput.hpp"
#include "relap/util/assert.hpp"
#include "relap/util/enumeration.hpp"
#include "relap/util/pareto.hpp"
#include "relap/util/strings.hpp"

namespace relap::algorithms {

namespace {

/// Number of grouping callbacks the interval enumerator makes, from the
/// closed form sum_p C(n-1, p-1) * count_groupings(m, p), saturating.
/// Equals the evaluation count the pre-parallel streaming enumerator charged
/// against its budget, so the budget decision is unchanged — it is just made
/// in O(max_parts) before any candidate is evaluated.
std::uint64_t count_enumeration_callbacks(std::size_t n, std::size_t m, std::size_t max_parts) {
  constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t total = 0;
  for (std::size_t p = 1; p <= max_parts; ++p) {
    const std::uint64_t compositions = util::binomial(n - 1, p - 1);
    const std::uint64_t groupings = util::count_groupings(m, p);
    if (compositions != 0 && groupings > kSaturated / compositions) return kSaturated;
    const std::uint64_t product = compositions * groupings;
    if (product > kSaturated - total) return kSaturated;
    total += product;
  }
  return total;
}

/// Enumerates every interval mapping within the options' structural caps,
/// evaluating candidates in parallel on the options' pool.
///
/// Work is split by composition (stage partition): compositions are streamed
/// in fixed-size blocks, each block's compositions are expanded and evaluated
/// concurrently (one composition per task) into per-composition accumulators,
/// and the accumulators are merged serially in enumeration order — so the
/// result is identical at any thread count, and matches a serial left fold
/// of `visit` over the enumeration order up to `merge` associativity.
///
/// Returns false iff the candidate count exceeds the evaluation budget (in
/// which case nothing is evaluated).
template <typename Acc, typename Visit>
bool parallel_interval_enumeration(const pipeline::Pipeline& pipeline,
                                   const platform::Platform& platform,
                                   const ExhaustiveOptions& options, Acc& out,
                                   const Visit& visit,
                                   const std::function<void(Acc&, Acc&&)>& merge) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();
  const std::size_t max_parts = std::min({n, m, options.max_intervals});
  if (count_enumeration_callbacks(n, m, max_parts) > options.max_evaluations) return false;

  constexpr std::size_t kCompositionsPerBlock = 1024;
  std::vector<std::vector<std::size_t>> block;
  block.reserve(kCompositionsPerBlock);

  auto flush_block = [&] {
    if (block.empty()) return;
    Acc block_acc = exec::parallel_reduce(
        block.size(), 1, [] { return Acc(); },
        [&](Acc& local, std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t c = begin; c < end; ++c) {
            const std::vector<std::size_t>& lengths = block[c];
            const std::size_t p = lengths.size();
            util::for_each_grouping(m, p, [&](std::span<const std::size_t> group_of) {
              std::vector<std::vector<platform::ProcessorId>> groups(p);
              for (platform::ProcessorId u = 0; u < m; ++u) {
                if (group_of[u] < p) groups[group_of[u]].push_back(u);
              }
              for (const auto& g : groups) {
                if (g.size() > options.max_replication) return true;  // skip, keep enumerating
              }
              visit(local,
                    evaluate(pipeline, platform,
                             mapping::IntervalMapping::from_composition(lengths,
                                                                       std::move(groups))));
              return true;
            });
          }
        },
        merge, options.pool);
    merge(out, std::move(block_acc));
    block.clear();
  };

  util::for_each_composition(n, max_parts, [&](std::span<const std::size_t> lengths) {
    block.emplace_back(lengths.begin(), lengths.end());
    if (block.size() == kCompositionsPerBlock) flush_block();
    return true;
  });
  flush_block();
  return true;
}

/// Accumulator for the single-best entry points: the incumbent under a
/// comparator. Merging keeps the earlier (lower enumeration order)
/// accumulator's incumbent on ties, matching the serial first-wins rule.
struct BestAccumulator {
  std::optional<Solution> best;
};

using Comparator = bool (*)(const Solution&, const Solution&, double);

/// Shared driver for the single-best entry points: enumerates all interval
/// mappings, keeps the best admitted solution under `better` with `cap`.
/// Returns false iff the candidate count exceeds the evaluation budget.
bool enumerate_best(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                    const ExhaustiveOptions& options, double cap, Comparator better,
                    const std::function<bool(const Solution&)>& admit,
                    std::optional<Solution>& best) {
  BestAccumulator acc;
  const bool completed = parallel_interval_enumeration<BestAccumulator>(
      pipeline, platform, options, acc,
      [&](BestAccumulator& local, Solution s) {
        if (!admit(s)) return;
        if (!local.best || better(s, *local.best, cap)) local.best = std::move(s);
      },
      [&](BestAccumulator& into, BestAccumulator&& from) {
        if (!from.best) return;
        if (!into.best || better(*from.best, *into.best, cap)) into.best = std::move(from.best);
      });
  best = std::move(acc.best);
  return completed;
}

util::Error budget_error(const ExhaustiveOptions& options) {
  return util::budget_exceeded("exhaustive enumeration exceeded " +
                               std::to_string(options.max_evaluations) + " evaluations");
}

}  // namespace

util::Expected<ParetoOutcome> exhaustive_pareto(const pipeline::Pipeline& pipeline,
                                                const platform::Platform& platform,
                                                const ExhaustiveOptions& options) {
  struct FrontAccumulator {
    util::ParetoFront front;
    std::vector<ParetoSolution> pool;  // payload storage; may hold dead entries
    std::uint64_t evaluations = 0;
  };
  FrontAccumulator acc;
  const bool completed = parallel_interval_enumeration<FrontAccumulator>(
      pipeline, platform, options, acc,
      [](FrontAccumulator& local, Solution s) {
        ++local.evaluations;
        const util::ParetoPoint point{s.latency, s.failure_probability, local.pool.size()};
        if (local.front.insert(point)) {
          local.pool.push_back(
              ParetoSolution{s.latency, s.failure_probability, std::move(s.mapping)});
        }
      },
      [](FrontAccumulator& into, FrontAccumulator&& from) {
        into.evaluations += from.evaluations;
        for (const util::ParetoPoint& point : from.front.points()) {
          if (into.front.insert({point.x, point.y, into.pool.size()})) {
            into.pool.push_back(std::move(from.pool[point.payload]));
          }
        }
      });
  if (!completed) return budget_error(options);

  ParetoOutcome outcome;
  outcome.evaluations = acc.evaluations;
  outcome.front.reserve(acc.front.size());
  for (const util::ParetoPoint& point : acc.front.points()) {
    outcome.front.push_back(std::move(acc.pool[point.payload]));
  }
  return outcome;
}

Result exhaustive_min_fp_for_latency(const pipeline::Pipeline& pipeline,
                                     const platform::Platform& platform, double max_latency,
                                     const ExhaustiveOptions& options) {
  std::optional<Solution> best;
  const bool completed = enumerate_best(
      pipeline, platform, options, max_latency, &better_min_fp,
      [&](const Solution& s) { return within_cap(s.latency, max_latency); }, best);
  if (!completed) return budget_error(options);
  if (!best) {
    return util::infeasible("no interval mapping meets latency threshold " +
                            util::format_double(max_latency));
  }
  return *std::move(best);
}

Result exhaustive_min_latency_for_fp(const pipeline::Pipeline& pipeline,
                                     const platform::Platform& platform,
                                     double max_failure_probability,
                                     const ExhaustiveOptions& options) {
  std::optional<Solution> best;
  const bool completed = enumerate_best(
      pipeline, platform, options, max_failure_probability, &better_min_latency,
      [&](const Solution& s) { return within_cap(s.failure_probability, max_failure_probability); },
      best);
  if (!completed) return budget_error(options);
  if (!best) {
    return util::infeasible("no interval mapping meets failure threshold " +
                            util::format_double(max_failure_probability));
  }
  return *std::move(best);
}

Result exhaustive_min_fp_for_latency_and_period(const pipeline::Pipeline& pipeline,
                                                const platform::Platform& platform,
                                                double max_latency, double max_period,
                                                const ExhaustiveOptions& options) {
  std::optional<Solution> best;
  const bool completed = enumerate_best(
      pipeline, platform, options, max_latency, &better_min_fp,
      [&](const Solution& s) {
        return within_cap(s.latency, max_latency) &&
               within_cap(mapping::period(pipeline, platform, s.mapping), max_period);
      },
      best);
  if (!completed) return budget_error(options);
  if (!best) {
    return util::infeasible("no interval mapping meets latency threshold " +
                            util::format_double(max_latency) + " and period threshold " +
                            util::format_double(max_period));
  }
  return *std::move(best);
}

GeneralResult exhaustive_general_min_latency(const pipeline::Pipeline& pipeline,
                                             const platform::Platform& platform,
                                             std::uint64_t max_evaluations) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();
  std::vector<platform::ProcessorId> assignment(n, 0);
  std::optional<GeneralSolution> best;
  std::uint64_t evaluations = 0;

  // Odometer over all m^n assignments.
  while (true) {
    if (++evaluations > max_evaluations) {
      return util::budget_exceeded("general-mapping enumeration exceeded " +
                                   std::to_string(max_evaluations) + " evaluations");
    }
    mapping::GeneralMapping candidate(assignment);
    const double lat = mapping::latency(pipeline, platform, candidate);
    if (!best || lat < best->latency) best = GeneralSolution{std::move(candidate), lat};

    std::size_t k = 0;
    while (k < n && assignment[k] + 1 == m) {
      assignment[k] = 0;
      ++k;
    }
    if (k == n) break;
    ++assignment[k];
  }
  return *std::move(best);
}

GeneralResult exhaustive_one_to_one_min_latency(const pipeline::Pipeline& pipeline,
                                                const platform::Platform& platform,
                                                std::uint64_t max_evaluations) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();
  if (n > m) return util::infeasible("one-to-one mappings need n <= m");

  std::vector<platform::ProcessorId> assignment(n, 0);
  std::vector<bool> used(m, false);
  std::optional<GeneralSolution> best;
  std::uint64_t evaluations = 0;
  bool over_budget = false;

  // Depth-first enumeration of all injections [0,n) -> [0,m).
  auto recurse = [&](auto&& self, std::size_t stage) -> void {
    if (over_budget) return;
    if (stage == n) {
      if (++evaluations > max_evaluations) {
        over_budget = true;
        return;
      }
      mapping::GeneralMapping candidate(assignment);
      const double lat = mapping::latency(pipeline, platform, candidate);
      if (!best || lat < best->latency) best = GeneralSolution{std::move(candidate), lat};
      return;
    }
    for (platform::ProcessorId u = 0; u < m; ++u) {
      if (used[u]) continue;
      used[u] = true;
      assignment[stage] = u;
      self(self, stage + 1);
      used[u] = false;
    }
  };
  recurse(recurse, 0);

  if (over_budget) {
    return util::budget_exceeded("one-to-one enumeration exceeded " +
                                 std::to_string(max_evaluations) + " evaluations");
  }
  return *std::move(best);
}

std::uint64_t interval_mapping_count(std::size_t stages, std::size_t processors) {
  const std::size_t max_parts = std::min(stages, processors);
  std::uint64_t total = 0;
  for (std::size_t p = 1; p <= max_parts; ++p) {
    const std::uint64_t compositions = util::binomial(stages - 1, p - 1);
    const std::uint64_t groupings = util::count_groupings(processors, p);
    if (compositions != 0 && groupings > ~std::uint64_t{0} / compositions) {
      return ~std::uint64_t{0};  // saturate
    }
    const std::uint64_t product = compositions * groupings;
    if (total > ~std::uint64_t{0} - product) return ~std::uint64_t{0};
    total += product;
  }
  return total;
}

}  // namespace relap::algorithms
