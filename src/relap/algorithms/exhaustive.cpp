#include "relap/algorithms/exhaustive.hpp"

#include <algorithm>
#include <optional>

#include "relap/mapping/throughput.hpp"
#include "relap/util/assert.hpp"
#include "relap/util/enumeration.hpp"
#include "relap/util/pareto.hpp"
#include "relap/util/strings.hpp"

namespace relap::algorithms {

namespace {

/// Enumerates every interval mapping within the options' structural caps,
/// calling `visit` with each evaluated solution. Returns true iff the
/// enumeration completed within the evaluation budget.
bool for_each_interval_solution(const pipeline::Pipeline& pipeline,
                                const platform::Platform& platform,
                                const ExhaustiveOptions& options,
                                const std::function<void(Solution)>& visit) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();
  const std::size_t max_parts = std::min({n, m, options.max_intervals});
  std::uint64_t evaluations = 0;

  const bool completed = util::for_each_composition(
      n, max_parts, [&](std::span<const std::size_t> lengths) {
        const std::size_t p = lengths.size();
        return util::for_each_grouping(m, p, [&](std::span<const std::size_t> group_of) {
          if (++evaluations > options.max_evaluations) return false;
          std::vector<std::vector<platform::ProcessorId>> groups(p);
          for (platform::ProcessorId u = 0; u < m; ++u) {
            if (group_of[u] < p) groups[group_of[u]].push_back(u);
          }
          for (const auto& g : groups) {
            if (g.size() > options.max_replication) return true;  // skip, keep enumerating
          }
          visit(evaluate(pipeline, platform,
                         mapping::IntervalMapping::from_composition(lengths, std::move(groups))));
          return true;
        });
      });
  return completed;
}

util::Error budget_error(const ExhaustiveOptions& options) {
  return util::budget_exceeded("exhaustive enumeration exceeded " +
                               std::to_string(options.max_evaluations) + " evaluations");
}

}  // namespace

util::Expected<ParetoOutcome> exhaustive_pareto(const pipeline::Pipeline& pipeline,
                                                const platform::Platform& platform,
                                                const ExhaustiveOptions& options) {
  util::ParetoFront front;
  std::vector<ParetoSolution> pool;
  std::uint64_t evaluations = 0;
  const bool completed = for_each_interval_solution(
      pipeline, platform, options, [&](Solution s) {
        ++evaluations;
        const util::ParetoPoint point{s.latency, s.failure_probability, pool.size()};
        if (front.insert(point)) {
          pool.push_back(ParetoSolution{s.latency, s.failure_probability, std::move(s.mapping)});
        }
      });
  if (!completed) return budget_error(options);

  ParetoOutcome outcome;
  outcome.evaluations = evaluations;
  outcome.front.reserve(front.size());
  for (const util::ParetoPoint& point : front.points()) {
    outcome.front.push_back(std::move(pool[point.payload]));
  }
  return outcome;
}

Result exhaustive_min_fp_for_latency(const pipeline::Pipeline& pipeline,
                                     const platform::Platform& platform, double max_latency,
                                     const ExhaustiveOptions& options) {
  std::optional<Solution> best;
  const bool completed = for_each_interval_solution(
      pipeline, platform, options, [&](Solution s) {
        if (!within_cap(s.latency, max_latency)) return;
        if (!best || better_min_fp(s, *best, max_latency)) best = std::move(s);
      });
  if (!completed) return budget_error(options);
  if (!best) {
    return util::infeasible("no interval mapping meets latency threshold " +
                            util::format_double(max_latency));
  }
  return *std::move(best);
}

Result exhaustive_min_latency_for_fp(const pipeline::Pipeline& pipeline,
                                     const platform::Platform& platform,
                                     double max_failure_probability,
                                     const ExhaustiveOptions& options) {
  std::optional<Solution> best;
  const bool completed = for_each_interval_solution(
      pipeline, platform, options, [&](Solution s) {
        if (!within_cap(s.failure_probability, max_failure_probability)) return;
        if (!best || better_min_latency(s, *best, max_failure_probability)) best = std::move(s);
      });
  if (!completed) return budget_error(options);
  if (!best) {
    return util::infeasible("no interval mapping meets failure threshold " +
                            util::format_double(max_failure_probability));
  }
  return *std::move(best);
}

Result exhaustive_min_fp_for_latency_and_period(const pipeline::Pipeline& pipeline,
                                                const platform::Platform& platform,
                                                double max_latency, double max_period,
                                                const ExhaustiveOptions& options) {
  std::optional<Solution> best;
  const bool completed = for_each_interval_solution(
      pipeline, platform, options, [&](Solution s) {
        if (!within_cap(s.latency, max_latency)) return;
        if (!within_cap(mapping::period(pipeline, platform, s.mapping), max_period)) return;
        if (!best || better_min_fp(s, *best, max_latency)) best = std::move(s);
      });
  if (!completed) return budget_error(options);
  if (!best) {
    return util::infeasible("no interval mapping meets latency threshold " +
                            util::format_double(max_latency) + " and period threshold " +
                            util::format_double(max_period));
  }
  return *std::move(best);
}

GeneralResult exhaustive_general_min_latency(const pipeline::Pipeline& pipeline,
                                             const platform::Platform& platform,
                                             std::uint64_t max_evaluations) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();
  std::vector<platform::ProcessorId> assignment(n, 0);
  std::optional<GeneralSolution> best;
  std::uint64_t evaluations = 0;

  // Odometer over all m^n assignments.
  while (true) {
    if (++evaluations > max_evaluations) {
      return util::budget_exceeded("general-mapping enumeration exceeded " +
                                   std::to_string(max_evaluations) + " evaluations");
    }
    mapping::GeneralMapping candidate(assignment);
    const double lat = mapping::latency(pipeline, platform, candidate);
    if (!best || lat < best->latency) best = GeneralSolution{std::move(candidate), lat};

    std::size_t k = 0;
    while (k < n && assignment[k] + 1 == m) {
      assignment[k] = 0;
      ++k;
    }
    if (k == n) break;
    ++assignment[k];
  }
  return *std::move(best);
}

GeneralResult exhaustive_one_to_one_min_latency(const pipeline::Pipeline& pipeline,
                                                const platform::Platform& platform,
                                                std::uint64_t max_evaluations) {
  const std::size_t n = pipeline.stage_count();
  const std::size_t m = platform.processor_count();
  if (n > m) return util::infeasible("one-to-one mappings need n <= m");

  std::vector<platform::ProcessorId> assignment(n, 0);
  std::vector<bool> used(m, false);
  std::optional<GeneralSolution> best;
  std::uint64_t evaluations = 0;
  bool over_budget = false;

  // Depth-first enumeration of all injections [0,n) -> [0,m).
  auto recurse = [&](auto&& self, std::size_t stage) -> void {
    if (over_budget) return;
    if (stage == n) {
      if (++evaluations > max_evaluations) {
        over_budget = true;
        return;
      }
      mapping::GeneralMapping candidate(assignment);
      const double lat = mapping::latency(pipeline, platform, candidate);
      if (!best || lat < best->latency) best = GeneralSolution{std::move(candidate), lat};
      return;
    }
    for (platform::ProcessorId u = 0; u < m; ++u) {
      if (used[u]) continue;
      used[u] = true;
      assignment[stage] = u;
      self(self, stage + 1);
      used[u] = false;
    }
  };
  recurse(recurse, 0);

  if (over_budget) {
    return util::budget_exceeded("one-to-one enumeration exceeded " +
                                 std::to_string(max_evaluations) + " evaluations");
  }
  return *std::move(best);
}

std::uint64_t interval_mapping_count(std::size_t stages, std::size_t processors) {
  const std::size_t max_parts = std::min(stages, processors);
  std::uint64_t total = 0;
  for (std::size_t p = 1; p <= max_parts; ++p) {
    const std::uint64_t compositions = util::binomial(stages - 1, p - 1);
    const std::uint64_t groupings = util::count_groupings(processors, p);
    if (compositions != 0 && groupings > ~std::uint64_t{0} / compositions) {
      return ~std::uint64_t{0};  // saturate
    }
    const std::uint64_t product = compositions * groupings;
    if (total > ~std::uint64_t{0} - product) return ~std::uint64_t{0};
    total += product;
  }
  return total;
}

}  // namespace relap::algorithms
