#include "relap/algorithms/solve.hpp"

#include "relap/algorithms/comm_hom.hpp"
#include "relap/algorithms/fully_hom.hpp"
#include "relap/algorithms/pareto_driver.hpp"
#include "relap/util/assert.hpp"

namespace relap::algorithms {

namespace {

/// True iff a polynomial exact algorithm covers this platform class.
bool has_exact_polynomial(const platform::Platform& platform) {
  if (platform.is_fully_homogeneous()) return true;  // Algorithms 1/2 (any failures)
  return platform.has_homogeneous_links() && platform.is_failure_homogeneous();  // 3/4
}

util::Expected<SolveReport> wrap(Result r, std::string algorithm, bool exact) {
  if (!r) return r.error();
  return SolveReport{std::move(r).take(), std::move(algorithm), exact};
}

/// Shared dispatch skeleton for both optimization directions.
template <typename PolyFn, typename ExhaustiveFn, typename HeuristicFn>
util::Expected<SolveReport> dispatch(const pipeline::Pipeline& pipeline,
                                     const platform::Platform& platform,
                                     const SolveOptions& options, PolyFn&& poly,
                                     ExhaustiveFn&& exhaustive, HeuristicFn&& heuristic) {
  const bool poly_exact = has_exact_polynomial(platform);
  switch (options.method) {
    case Method::Exact:
      if (poly_exact) return poly();
      return exhaustive();
    case Method::Exhaustive: return exhaustive();
    case Method::Heuristic: return heuristic();
    case Method::Auto: {
      if (poly_exact) return poly();
      const std::uint64_t candidates =
          interval_mapping_count(pipeline.stage_count(), platform.processor_count());
      if (candidates <= options.auto_exhaustive_budget) return exhaustive();
      return heuristic();
    }
  }
  RELAP_UNREACHABLE("invalid Method");
}

}  // namespace

util::Expected<SolveReport> solve_min_fp_for_latency(const pipeline::Pipeline& pipeline,
                                                     const platform::Platform& platform,
                                                     double max_latency,
                                                     const SolveOptions& options) {
  const auto poly = [&] {
    if (platform.is_fully_homogeneous()) {
      return wrap(fully_hom_min_fp_for_latency(pipeline, platform, max_latency),
                  "algorithm-1 (fully homogeneous)", true);
    }
    return wrap(comm_hom_min_fp_for_latency(pipeline, platform, max_latency),
                "algorithm-3 (comm homogeneous, failure homogeneous)", true);
  };
  const auto exhaustive = [&] {
    return wrap(exhaustive_min_fp_for_latency(pipeline, platform, max_latency, options.exhaustive),
                "exhaustive", true);
  };
  const auto heuristic = [&] {
    return wrap(heuristic_min_fp_for_latency(pipeline, platform, max_latency, options.heuristic),
                "heuristic suite + local search", false);
  };
  return dispatch(pipeline, platform, options, poly, exhaustive, heuristic);
}

util::Expected<SolveReport> solve_min_latency_for_fp(const pipeline::Pipeline& pipeline,
                                                     const platform::Platform& platform,
                                                     double max_failure_probability,
                                                     const SolveOptions& options) {
  const auto poly = [&] {
    if (platform.is_fully_homogeneous()) {
      return wrap(fully_hom_min_latency_for_fp(pipeline, platform, max_failure_probability),
                  "algorithm-2 (fully homogeneous)", true);
    }
    return wrap(comm_hom_min_latency_for_fp(pipeline, platform, max_failure_probability),
                "algorithm-4 (comm homogeneous, failure homogeneous)", true);
  };
  const auto exhaustive = [&] {
    return wrap(exhaustive_min_latency_for_fp(pipeline, platform, max_failure_probability,
                                              options.exhaustive),
                "exhaustive", true);
  };
  const auto heuristic = [&] {
    return wrap(
        heuristic_min_latency_for_fp(pipeline, platform, max_failure_probability,
                                     options.heuristic),
        "heuristic suite + local search", false);
  };
  return dispatch(pipeline, platform, options, poly, exhaustive, heuristic);
}

util::Expected<FrontReport> solve_pareto_front(const pipeline::Pipeline& pipeline,
                                               const platform::Platform& platform,
                                               const SolveOptions& options) {
  const auto exhaustive = [&]() -> util::Expected<FrontReport> {
    auto outcome = exhaustive_pareto(pipeline, platform, options.exhaustive);
    if (!outcome) return outcome.error();
    return FrontReport{std::move(outcome.value().front), "exhaustive pareto", true,
                       outcome.value().evaluations};
  };
  const auto heuristic = [&]() -> util::Expected<FrontReport> {
    ParetoDriverOptions driver;
    driver.thresholds = options.pareto_thresholds;
    driver.pool = options.heuristic.pool;
    driver.cancel = options.heuristic.cancel;
    // The sweep's per-threshold solver is the heuristic suite, so the front
    // inherits its determinism contract (bit-identical at any thread count).
    std::vector<ParetoSolution> front = heuristic_pareto_front(pipeline, platform, driver);
    // A cancelled sweep is partial: report the cancellation, not the front.
    if (util::cancel_requested(options.heuristic.cancel)) {
      return util::make_error("cancelled", "pareto sweep was cancelled before completing");
    }
    return FrontReport{std::move(front), "heuristic front sweep", false, 0};
  };
  switch (options.method) {
    case Method::Exact:
    case Method::Exhaustive: return exhaustive();
    case Method::Heuristic: return heuristic();
    case Method::Auto: {
      const std::uint64_t candidates =
          interval_mapping_count(pipeline.stage_count(), platform.processor_count());
      if (candidates <= options.auto_exhaustive_budget) return exhaustive();
      return heuristic();
    }
  }
  RELAP_UNREACHABLE("invalid Method");
}

}  // namespace relap::algorithms
