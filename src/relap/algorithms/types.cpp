#include "relap/algorithms/types.hpp"

#include "relap/util/stats.hpp"
#include "relap/util/strings.hpp"

namespace relap::algorithms {

std::string Solution::describe() const {
  return mapping.describe() + "  latency=" + util::format_double(latency) +
         " fp=" + util::format_double(failure_probability);
}

Solution evaluate(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                  mapping::IntervalMapping mapping) {
  const double lat = mapping::latency(pipeline, platform, mapping);
  const double fp = mapping::failure_probability(platform, mapping);
  return Solution{std::move(mapping), lat, fp};
}

bool within_cap(double value, double cap) {
  return value <= cap || util::approx_equal(value, cap);
}

namespace {

/// Three-way helper: -1 if a better, +1 if b better, 0 if tied (tolerance).
int compare_towards_smaller(double a, double b) {
  if (util::approx_equal(a, b)) return 0;
  return a < b ? -1 : 1;
}

}  // namespace

bool better_min_fp(const Objectives& a, const Objectives& b, double latency_cap) {
  const bool fa = within_cap(a.latency, latency_cap);
  const bool fb = within_cap(b.latency, latency_cap);
  if (fa != fb) return fa;
  if (!fa) {
    // Both infeasible: prefer the one closer to feasibility.
    return compare_towards_smaller(a.latency, b.latency) < 0;
  }
  if (int c = compare_towards_smaller(a.failure_probability, b.failure_probability); c != 0) {
    return c < 0;
  }
  if (int c = compare_towards_smaller(a.latency, b.latency); c != 0) return c < 0;
  return a.processors_used < b.processors_used;
}

bool better_min_fp(const Solution& a, const Solution& b, double latency_cap) {
  return better_min_fp(objectives_of(a), objectives_of(b), latency_cap);
}

bool better_min_latency(const Objectives& a, const Objectives& b, double fp_cap) {
  const bool fa = within_cap(a.failure_probability, fp_cap);
  const bool fb = within_cap(b.failure_probability, fp_cap);
  if (fa != fb) return fa;
  if (!fa) {
    return compare_towards_smaller(a.failure_probability, b.failure_probability) < 0;
  }
  if (int c = compare_towards_smaller(a.latency, b.latency); c != 0) return c < 0;
  if (int c = compare_towards_smaller(a.failure_probability, b.failure_probability); c != 0) {
    return c < 0;
  }
  return a.processors_used < b.processors_used;
}

bool better_min_latency(const Solution& a, const Solution& b, double fp_cap) {
  return better_min_latency(objectives_of(a), objectives_of(b), fp_cap);
}

}  // namespace relap::algorithms
