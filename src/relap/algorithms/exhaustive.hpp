#pragma once

/// \file exhaustive.hpp
/// Exhaustive (exponential) baselines: ground truth for the NP-hard and open
/// problem classes, and the oracle every polynomial algorithm and heuristic
/// is tested against.
///
/// The interval enumerator walks every partition of the n stages into p
/// intervals (compositions of n) crossed with every assignment of p disjoint
/// non-empty replica groups out of the m processors. The count grows as
/// roughly (p+1)^m per composition, so a `max_evaluations` budget guards
/// every entry point; exceeding it yields a "budget" error rather than a
/// silently wrong "optimum" — an incomplete exhaustive search certifies
/// nothing.
///
/// Separate enumerators cover general mappings (m^n assignments) and
/// one-to-one mappings (m!/(m-n)! injections) for cross-checking Theorems 3
/// and 4 on small instances.

#include <cstdint>
#include <vector>

#include "relap/algorithms/types.hpp"
#include "relap/util/cancel.hpp"

namespace relap::exec {
class ThreadPool;
}  // namespace relap::exec

namespace relap::algorithms {

struct ExhaustiveOptions {
  /// Maximum number of candidate mappings evaluated before giving up.
  /// Whether the budget suffices is decided *upfront* from the closed-form
  /// candidate counts (the per-p grouping counts are exact), so an
  /// over-budget call fails fast instead of burning the whole budget first.
  std::uint64_t max_evaluations = 20'000'000;
  /// Optional structural caps, useful for ablations (SIZE_MAX = no cap).
  std::size_t max_intervals = static_cast<std::size_t>(-1);
  std::size_t max_replication = static_cast<std::size_t>(-1);
  /// Pool for the parallel enumeration; null uses
  /// `exec::ThreadPool::shared()`. The flat (composition x grouping)
  /// candidate index space — p-blocks in increasing interval count,
  /// compositions lexicographic within a block, groupings lexicographic
  /// within a composition — is cut into fixed-size chunks via rank/unrank
  /// and the per-chunk results merged in chunk order, so the outcome is
  /// identical at any thread count and chunks stay uniform even when one
  /// composition dominates the candidate count.
  exec::ThreadPool* pool = nullptr;
  /// SIMD lane width of the batched evaluation kernel: 1, 4 or 8 candidates
  /// evaluated per `LaneEvalBatch` step, or 0 for the build's default
  /// (`util::simd::kDefaultLaneWidth`). Results are bit-identical at any
  /// width — the lane kernels follow the scalar oracle term for term and the
  /// determinism suite pins W in {1, 4, 8} against each other.
  std::size_t lane_width = 0;
  /// Optional cooperative cancellation (util/cancel.hpp): polled at chunk
  /// granularity by the parallel drivers. A tripped token makes the entry
  /// point return a "cancelled" error; it never alters a completed result.
  const util::CancelToken* cancel = nullptr;
};

/// One point of a latency/FP Pareto front together with a witness mapping.
struct ParetoSolution {
  double latency = 0.0;
  double failure_probability = 0.0;
  mapping::IntervalMapping mapping;
};

struct ParetoOutcome {
  /// Non-dominated solutions sorted by increasing latency.
  std::vector<ParetoSolution> front;
  /// Candidates evaluated (for the complexity benches).
  std::uint64_t evaluations = 0;
};

/// The exact latency/FP Pareto front over all interval mappings.
[[nodiscard]] util::Expected<ParetoOutcome> exhaustive_pareto(const pipeline::Pipeline& pipeline,
                                                              const platform::Platform& platform,
                                                              const ExhaustiveOptions& options = {});

/// Exact minimum failure probability subject to latency <= L, over all
/// interval mappings. Errors: "infeasible", "budget".
[[nodiscard]] Result exhaustive_min_fp_for_latency(const pipeline::Pipeline& pipeline,
                                                   const platform::Platform& platform,
                                                   double max_latency,
                                                   const ExhaustiveOptions& options = {});

/// Exact minimum latency subject to failure probability <= FP.
[[nodiscard]] Result exhaustive_min_latency_for_fp(const pipeline::Pipeline& pipeline,
                                                   const platform::Platform& platform,
                                                   double max_failure_probability,
                                                   const ExhaustiveOptions& options = {});

/// Tri-criteria probe (the paper's Section 5 future work, using the period
/// model of mapping/throughput.hpp): exact minimum failure probability
/// subject to latency <= L *and* period <= P. A (latency, FP) Pareto front
/// cannot answer this — period is an independent third axis — so the
/// enumeration applies the period filter directly.
[[nodiscard]] Result exhaustive_min_fp_for_latency_and_period(
    const pipeline::Pipeline& pipeline, const platform::Platform& platform, double max_latency,
    double max_period, const ExhaustiveOptions& options = {});

/// Exact minimum-latency general mapping by enumerating all m^n assignments
/// (oracle for Theorem 4's shortest-path construction). Parallelized over
/// uniform chunks of the base-m rank space (digit 0 fastest — the serial
/// odometer order); results are identical at any thread count, with ties
/// resolved to the lowest rank exactly as the serial first-wins scan did.
/// `lane_width` selects the SIMD batch width (0 = build default; results are
/// bit-identical at any width).
[[nodiscard]] GeneralResult exhaustive_general_min_latency(
    const pipeline::Pipeline& pipeline, const platform::Platform& platform,
    std::uint64_t max_evaluations = 20'000'000, exec::ThreadPool* pool = nullptr,
    std::size_t lane_width = 0);

/// Exact minimum-latency one-to-one mapping by enumerating all injections
/// (oracle for the Held-Karp solver). Parallelized over uniform chunks of
/// the lexicographic injection rank space (the serial DFS order), with the
/// same lowest-rank tie-breaking guarantee as the general enumerator and the
/// same `lane_width` convention.
[[nodiscard]] GeneralResult exhaustive_one_to_one_min_latency(
    const pipeline::Pipeline& pipeline, const platform::Platform& platform,
    std::uint64_t max_evaluations = 20'000'000, exec::ThreadPool* pool = nullptr,
    std::size_t lane_width = 0);

/// Number of interval-mapping candidates the exhaustive enumerator would
/// visit on an (n, m) instance — used by benches to report search-space
/// sizes and by callers to predict budget feasibility.
[[nodiscard]] std::uint64_t interval_mapping_count(std::size_t stages, std::size_t processors);

}  // namespace relap::algorithms
