#include "relap/algorithms/single_interval.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "relap/util/assert.hpp"
#include "relap/util/stats.hpp"
#include "relap/util/strings.hpp"

namespace relap::algorithms {

namespace {

/// The k most reliable processors among those with speed >= `speed_floor`,
/// or nullopt if fewer than k qualify. `by_reliability` is the platform's
/// most-reliable-first order.
std::optional<std::vector<platform::ProcessorId>> most_reliable_at_least(
    const platform::Platform& platform, const std::vector<platform::ProcessorId>& by_reliability,
    double speed_floor, std::size_t k) {
  std::vector<platform::ProcessorId> picked;
  picked.reserve(k);
  for (const platform::ProcessorId u : by_reliability) {
    if (platform.speed(u) >= speed_floor) {
      picked.push_back(u);
      if (picked.size() == k) return picked;
    }
  }
  return std::nullopt;
}

Solution to_solution(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                     std::vector<platform::ProcessorId> group) {
  return evaluate(pipeline, platform,
                  mapping::IntervalMapping::single_interval(pipeline.stage_count(),
                                                            std::move(group)));
}

}  // namespace

Result single_interval_min_fp_for_latency(const pipeline::Pipeline& pipeline,
                                          const platform::Platform& platform,
                                          double max_latency) {
  RELAP_ASSERT(platform.has_homogeneous_links(),
               "the single-interval solver requires identical links");
  const std::size_t m = platform.processor_count();
  const double b = platform.common_bandwidth();
  const double work = pipeline.total_work();
  const double fixed = pipeline.data(pipeline.stage_count()) / b;
  const std::vector<platform::ProcessorId> by_rel = platform.by_reliability();

  std::optional<Solution> best;
  for (std::size_t k = 1; k <= m; ++k) {
    // Latency budget left for computation once k serialized inputs are paid.
    const double compute_budget = max_latency - static_cast<double>(k) * pipeline.data(0) / b - fixed;
    double speed_floor = 0.0;
    if (work > 0.0) {
      if (compute_budget <= 0.0) break;  // larger k only shrinks the budget
      // Tiny relaxation so a processor whose speed sits exactly on the floor
      // is not excluded by one rounding ulp; the within_cap re-check below
      // still rejects genuinely infeasible groups.
      speed_floor = work / compute_budget * (1.0 - 1e-12);
    } else if (compute_budget < 0.0 && !util::approx_equal(compute_budget, 0.0)) {
      break;
    }
    auto group = most_reliable_at_least(platform, by_rel, speed_floor, k);
    if (!group) continue;
    Solution candidate = to_solution(pipeline, platform, std::move(*group));
    // The speed floor guarantees feasibility, modulo rounding at the boundary.
    if (!within_cap(candidate.latency, max_latency)) continue;
    if (!best || better_min_fp(candidate, *best, max_latency)) best = std::move(candidate);
  }
  if (!best) {
    return util::infeasible("no single-interval mapping meets latency threshold " +
                            util::format_double(max_latency));
  }
  return *std::move(best);
}

Result single_interval_min_latency_for_fp(const pipeline::Pipeline& pipeline,
                                          const platform::Platform& platform,
                                          double max_failure_probability) {
  RELAP_ASSERT(platform.has_homogeneous_links(),
               "the single-interval solver requires identical links");
  const std::size_t m = platform.processor_count();
  const std::vector<platform::ProcessorId> by_rel = platform.by_reliability();

  // Candidate speed floors: the distinct processor speeds (the optimum's
  // slowest member has one of these speeds), highest first.
  std::vector<double> floors(platform.speeds().begin(), platform.speeds().end());
  std::sort(floors.begin(), floors.end(), std::greater<>());
  floors.erase(std::unique(floors.begin(), floors.end()), floors.end());

  std::optional<Solution> best;
  for (std::size_t k = 1; k <= m; ++k) {
    // For fixed k the latency improves with a faster slowest member, so take
    // the highest feasible floor; feasibility (product of the k most
    // reliable fps above the floor <= FP) only improves as the floor drops,
    // so the scan can stop at the first success.
    for (const double floor : floors) {
      auto group = most_reliable_at_least(platform, by_rel, floor, k);
      if (!group) continue;
      double product = 1.0;
      for (const platform::ProcessorId u : *group) product *= platform.failure_prob(u);
      if (!within_cap(product, max_failure_probability)) continue;
      Solution candidate = to_solution(pipeline, platform, std::move(*group));
      if (!best || better_min_latency(candidate, *best, max_failure_probability)) {
        best = std::move(candidate);
      }
      break;
    }
  }
  if (!best) {
    return util::infeasible("no single-interval mapping meets failure threshold " +
                            util::format_double(max_failure_probability));
  }
  return *std::move(best);
}

}  // namespace relap::algorithms
