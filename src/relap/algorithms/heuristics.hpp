#pragma once

/// \file heuristics.hpp
/// Polynomial heuristics for the problem classes the paper proves NP-hard
/// (Fully Heterogeneous, Theorem 7) or leaves open (Communication
/// Homogeneous with heterogeneous failures, Section 4.4).
///
/// All heuristics are *candidate generators*: they emit interval mappings
/// into a sink, and the constrained solvers / Pareto drivers pick from the
/// emitted set. This keeps one implementation per heuristic serving all
/// three uses (min FP under L, min latency under FP, Pareto front).
///
/// Heuristics (each named for benches in bench_heuristics_comm_het):
///  * `single-interval` — every "k most reliable / k fastest processors with
///    speed >= floor" single-interval mapping; on identical-link platforms
///    this sweep contains the exact single-interval optimum
///    (single_interval.hpp).
///  * `greedy-split` — start from promising single intervals and recursively
///    split the interval whose compute term dominates, re-assigning groups
///    greedily; emits every intermediate mapping.
///  * `beam` — beam search over stage boundaries: a state is (boundary,
///    used-processor set, group of the yet-unsent last interval, partial
///    latency, log survival); transitions extend the mapping by one interval
///    with a candidate group drawn from the unused processors (k most
///    reliable / k fastest / k best speed-reliability blend). Exact for the
///    emitted structure under Eq. (2) because the pending interval's
///    sender-side cost is added only when its successor group is known.
///
/// Processor counts are capped at 64 by the beam state's bitmask; the other
/// heuristics have no such cap.

#include <functional>

#include "relap/algorithms/types.hpp"
#include "relap/util/cancel.hpp"

namespace relap::exec {
class ThreadPool;
}  // namespace relap::exec

namespace relap::algorithms {

struct HeuristicOptions {
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;
  /// Beam width: states kept per boundary (Pareto-pruned first).
  std::size_t beam_width = 64;
  /// Replica-group sizes tried per interval go up to this cap.
  std::size_t max_replication = 16;
  /// Pool for the beam's parallel candidate evaluation; null uses
  /// `exec::ThreadPool::shared()`. Surviving final states are evaluated in
  /// fixed-size chunks (per-chunk `EvalScratch`) and fed to the sink
  /// serially in state-index order, so candidates, ties and results are
  /// identical at any thread count.
  exec::ThreadPool* pool = nullptr;
  /// SIMD lane width of the beam's batched final evaluation: 1, 4 or 8, or
  /// 0 for the build default. Results are bit-identical at any width.
  std::size_t lane_width = 0;
  /// Optional cooperative cancellation (util/cancel.hpp): polled between
  /// generators and per beam level. A tripped token makes the constrained
  /// entry points return a "cancelled" error; a completed result is never
  /// altered.
  const util::CancelToken* cancel = nullptr;
};

/// Receives each candidate mapping a heuristic generates.
using CandidateSink = std::function<void(Solution)>;

void enumerate_single_interval_candidates(const pipeline::Pipeline& pipeline,
                                          const platform::Platform& platform,
                                          const HeuristicOptions& options, const CandidateSink& sink);

void enumerate_greedy_split_candidates(const pipeline::Pipeline& pipeline,
                                       const platform::Platform& platform,
                                       const HeuristicOptions& options, const CandidateSink& sink);

void enumerate_beam_candidates(const pipeline::Pipeline& pipeline,
                               const platform::Platform& platform,
                               const HeuristicOptions& options, const CandidateSink& sink);

/// Runs every generator above (and polishes the constrained winners with
/// local search, see local_search.hpp) and returns the best candidate for
/// "minimize FP subject to latency <= L". Errors: "infeasible" if no
/// candidate meets L.
[[nodiscard]] Result heuristic_min_fp_for_latency(const pipeline::Pipeline& pipeline,
                                                  const platform::Platform& platform,
                                                  double max_latency,
                                                  const HeuristicOptions& options = {});

/// Same for "minimize latency subject to FP <= F".
[[nodiscard]] Result heuristic_min_latency_for_fp(const pipeline::Pipeline& pipeline,
                                                  const platform::Platform& platform,
                                                  double max_failure_probability,
                                                  const HeuristicOptions& options = {});

}  // namespace relap::algorithms
