#include "relap/algorithms/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "relap/exec/parallel.hpp"
#include "relap/util/assert.hpp"
#include "relap/util/rng.hpp"

namespace relap::algorithms {

namespace {

using Assignments = std::vector<mapping::IntervalAssignment>;

/// Draws one random applicable move; returns nullopt if the drawn move does
/// not apply to the drawn operands (the caller just redraws).
std::optional<Assignments> random_neighbor(util::Rng& rng, const platform::Platform& platform,
                                           const Assignments& current) {
  const std::size_t m = platform.processor_count();
  std::vector<bool> used(m, false);
  for (const auto& a : current) {
    for (const platform::ProcessorId u : a.processors) used[u] = true;
  }
  std::vector<platform::ProcessorId> unused;
  for (platform::ProcessorId u = 0; u < m; ++u) {
    if (!used[u]) unused.push_back(u);
  }

  const std::size_t j = rng.index(current.size());
  const mapping::IntervalAssignment& a = current[j];
  Assignments next = current;

  switch (rng.index(7)) {
    case 0:  // shift boundary left: give the last stage to the next interval
      if (j + 1 >= current.size() || a.stages.length() < 2) return std::nullopt;
      --next[j].stages.last;
      --next[j + 1].stages.first;
      return next;
    case 1:  // shift boundary right: take a stage from the next interval
      if (j + 1 >= current.size() || current[j + 1].stages.length() < 2) return std::nullopt;
      ++next[j].stages.last;
      ++next[j + 1].stages.first;
      return next;
    case 2:  // merge with the next interval
      if (j + 1 >= current.size()) return std::nullopt;
      next[j].stages.last = next[j + 1].stages.last;
      next[j].processors.insert(next[j].processors.end(), next[j + 1].processors.begin(),
                                next[j + 1].processors.end());
      next.erase(next.begin() + static_cast<std::ptrdiff_t>(j) + 1);
      return next;
    case 3: {  // split at a random cut, right half takes a random processor
      if (a.stages.length() < 2) return std::nullopt;
      const std::size_t cut =
          a.stages.first + rng.index(a.stages.length() - 1);  // in [first, last)
      platform::ProcessorId right;
      if (!unused.empty() && (a.processors.size() < 2 || rng.bernoulli(0.5))) {
        right = unused[rng.index(unused.size())];
      } else if (a.processors.size() >= 2) {
        const std::size_t pick = rng.index(next[j].processors.size());
        right = next[j].processors[pick];
        next[j].processors.erase(next[j].processors.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        return std::nullopt;
      }
      const std::size_t old_last = a.stages.last;
      next[j].stages.last = cut;
      next.insert(next.begin() + static_cast<std::ptrdiff_t>(j) + 1,
                  mapping::IntervalAssignment{{cut + 1, old_last}, {right}});
      return next;
    }
    case 4:  // add an unused processor to the group
      if (unused.empty()) return std::nullopt;
      next[j].processors.push_back(unused[rng.index(unused.size())]);
      return next;
    case 5:  // remove a random group member
      if (a.processors.size() < 2) return std::nullopt;
      next[j].processors.erase(next[j].processors.begin() +
                               static_cast<std::ptrdiff_t>(rng.index(a.processors.size())));
      return next;
    case 6:  // swap a group member for an unused processor
      if (unused.empty()) return std::nullopt;
      next[j].processors[rng.index(a.processors.size())] = unused[rng.index(unused.size())];
      return next;
    default: RELAP_UNREACHABLE("move index out of range");
  }
}

/// One annealing chain driven by its own generator.
Solution anneal_chain(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                      Solution start, double cap, const AnnealingOptions& options,
                      util::Rng rng,
                      double (*energy)(const Solution&, double cap, double penalty),
                      bool (*better)(const Solution&, const Solution&, double)) {
  Solution current = start;
  Solution best = std::move(start);
  double temperature = options.initial_temperature;

  for (std::size_t it = 0; it < options.iterations; ++it, temperature *= options.cooling) {
    std::optional<Assignments> neighbor = random_neighbor(rng, platform, current.mapping.intervals());
    if (!neighbor) continue;
    Solution candidate = evaluate(pipeline, platform, mapping::IntervalMapping(std::move(*neighbor)));
    const double delta =
        energy(candidate, cap, options.penalty) - energy(current, cap, options.penalty);
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / std::max(temperature, 1e-12))) {
      current = candidate;
    }
    if (better(candidate, best, cap)) best = std::move(candidate);
  }
  return best;
}

/// Multi-start driver: independent chains with per-restart RNG streams split
/// off the seed in restart order, run concurrently; the winner is picked in
/// restart order (strictly-better replaces, so the earliest restart wins
/// ties) — thread-count-invariant.
Solution anneal(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                Solution start, double cap, const AnnealingOptions& options,
                double (*energy)(const Solution&, double cap, double penalty),
                bool (*better)(const Solution&, const Solution&, double)) {
  RELAP_ASSERT(options.restarts >= 1, "need at least one annealing restart");
  util::Rng root(options.seed);
  std::vector<util::Rng> restart_rngs = root.split_n(options.restarts);

  std::vector<std::optional<Solution>> outcomes(options.restarts);
  exec::parallel_for(
      options.restarts, 1,
      [&](std::size_t r) {
        outcomes[r] =
            anneal_chain(pipeline, platform, start, cap, options, restart_rngs[r], energy, better);
      },
      options.pool);

  Solution best = *std::move(outcomes[0]);
  for (std::size_t r = 1; r < options.restarts; ++r) {
    if (better(*outcomes[r], best, cap)) best = *std::move(outcomes[r]);
  }
  return best;
}

double energy_min_fp(const Solution& s, double cap, double penalty) {
  const double violation = std::max(0.0, (s.latency - cap) / std::max(cap, 1e-12));
  return s.failure_probability + penalty * violation;
}

double energy_min_latency(const Solution& s, double cap, double penalty) {
  const double violation =
      std::max(0.0, (s.failure_probability - cap) / std::max(cap, 1e-12));
  return s.latency + penalty * violation * std::max(s.latency, 1.0);
}

}  // namespace

Solution anneal_min_fp(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                       Solution start, double max_latency, const AnnealingOptions& options) {
  return anneal(pipeline, platform, std::move(start), max_latency, options, &energy_min_fp,
                &better_min_fp);
}

Solution anneal_min_latency(const pipeline::Pipeline& pipeline,
                            const platform::Platform& platform, Solution start,
                            double max_failure_probability, const AnnealingOptions& options) {
  return anneal(pipeline, platform, std::move(start), max_failure_probability, options,
                &energy_min_latency, &better_min_latency);
}

}  // namespace relap::algorithms
