#pragma once

/// \file mapping_view.hpp
/// Zero-allocation batched evaluation kernel for interval mappings.
///
/// The exact solvers evaluate exponentially many candidate mappings; building
/// an owning `IntervalMapping` (a vector of vectors) per candidate dominates
/// their runtime. This header provides the allocation-free alternative the
/// enumerators run on:
///
///  * `MappingView` — a non-owning SoA description of an interval mapping:
///    one flat processor array, group offsets, and stage offsets. Cheap to
///    re-point at the next candidate; no per-candidate ownership.
///  * `CompositionCache` — the latency terms that depend only on the *stage
///    partition* (work sums, boundary data sizes), computed once per
///    composition and reused across every replica-group assignment of that
///    composition. On an (n=6, m=7) instance one composition is shared by
///    tens of thousands of groupings.
///  * `EvalScratch` — caller-owned buffers backing the view and the cache.
///    All `set_*` methods reuse capacity; after warm-up the steady-state
///    inner loop performs no heap allocation (pinned by a counting-allocator
///    test).
///  * `evaluate_view` / `period_view` — the evaluators. They follow the
///    scalar evaluators' summation order term for term (same `KahanSum`
///    adds, same loop nesting), so their results are bit-identical to
///    `latency()` / `failure_probability()` / `period()` on the equivalent
///    `IntervalMapping`. The determinism suite relies on this.
///
/// Typical enumerator loop:
///
///   EvalScratch scratch(n, m);
///   scratch.set_composition(pipeline, lengths);     // once per composition
///   for (each grouping) {
///     scratch.set_grouping(group_of, group_sizes);  // no allocation
///     const ViewEval e = evaluate_view(platform, scratch.view(), scratch.cache());
///     if (keep(e)) best = materialize(scratch.view());  // allocation only here
///   }

#include <cstddef>
#include <span>
#include <vector>

#include "relap/mapping/interval_mapping.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"

namespace relap::mapping {

/// Non-owning structure-of-arrays form of an interval mapping with p
/// intervals over n stages and a flat, per-group-sorted processor array.
struct MappingView {
  /// p+1 entries; interval j covers stages [stage_offsets[j], stage_offsets[j+1]).
  std::span<const std::size_t> stage_offsets;
  /// All enrolled processors, grouped by interval, ascending within a group.
  std::span<const platform::ProcessorId> processors;
  /// p+1 entries; group j is processors[group_offsets[j] .. group_offsets[j+1]).
  std::span<const std::size_t> group_offsets;

  [[nodiscard]] std::size_t interval_count() const { return stage_offsets.size() - 1; }
  [[nodiscard]] std::size_t stage_count() const { return stage_offsets.back(); }
  [[nodiscard]] std::size_t first_stage(std::size_t j) const { return stage_offsets[j]; }
  [[nodiscard]] std::size_t last_stage(std::size_t j) const { return stage_offsets[j + 1] - 1; }
  [[nodiscard]] std::span<const platform::ProcessorId> group(std::size_t j) const {
    return processors.subspan(group_offsets[j], group_offsets[j + 1] - group_offsets[j]);
  }
  [[nodiscard]] std::size_t processors_used() const { return processors.size(); }
};

/// Latency/period terms that depend only on the composition (stage
/// partition), not on the replica groups: hoisted out of the per-grouping
/// inner loop. The cached doubles are exactly the values the scalar
/// evaluators would read (`Pipeline::data` lookups and `Pipeline::work_sum`
/// results), so reusing them cannot perturb a single bit.
struct CompositionCache {
  std::vector<double> work;        ///< work_sum over interval j
  std::vector<double> data_first;  ///< delta_{d_j}: data into interval j
  std::vector<double> out_size;    ///< delta_{e_j + 1}: data out of interval j
  double data_out = 0.0;           ///< delta_n: final output size
};

/// Both objectives of one candidate; the period, when a solver needs it, is
/// computed separately via `period_view`.
struct ViewEval {
  double latency = 0.0;
  double failure_probability = 0.0;
};

/// Caller-owned, reusable backing storage for a `MappingView` and its
/// `CompositionCache`. Construct once per worker (reserves for the instance
/// size); the `set_*` methods never allocate after warm-up.
class EvalScratch {
 public:
  /// Reserves for pipelines up to `stage_count` stages on platforms up to
  /// `processor_count` processors.
  EvalScratch(std::size_t stage_count, std::size_t processor_count);

  /// Installs the composition `lengths` (positive parts summing to the stage
  /// count) and rebuilds the per-composition cache.
  void set_composition(const pipeline::Pipeline& pipeline, std::span<const std::size_t> lengths);

  /// Installs the replica groups from an enumeration word: `group_of[u]` is
  /// the group of processor u (or `lengths.size()` for unused), `group_sizes`
  /// the per-group occupancy. Group count must match the current composition.
  void set_grouping(std::span<const std::size_t> group_of,
                    std::span<const std::size_t> group_sizes);

  /// Installs composition and groups from explicit interval assignments
  /// (the heuristics' representation). Precondition: each assignment's
  /// processor list is sorted ascending (the `IntervalMapping` canonical
  /// form), so evaluation order matches the scalar path.
  void set_intervals(const pipeline::Pipeline& pipeline,
                     std::span<const IntervalAssignment> intervals);

  [[nodiscard]] MappingView view() const {
    return MappingView{stage_offsets_, processors_, group_offsets_};
  }
  [[nodiscard]] const CompositionCache& cache() const { return cache_; }

 private:
  std::vector<std::size_t> stage_offsets_;
  std::vector<platform::ProcessorId> processors_;
  std::vector<std::size_t> group_offsets_;
  std::vector<std::size_t> cursor_;  // per-group fill cursor for set_grouping
  CompositionCache cache_;
};

/// Latency (equation (1) or (2) per the platform class) and failure
/// probability of the viewed mapping, bit-identical to
/// `latency(pipeline, platform, mapping)` and
/// `failure_probability(platform, mapping)` on the materialized equivalent.
[[nodiscard]] ViewEval evaluate_view(const platform::Platform& platform, const MappingView& view,
                                     const CompositionCache& cache);

/// Period of the viewed mapping, bit-identical to
/// `period(pipeline, platform, mapping)` on the materialized equivalent.
[[nodiscard]] double period_view(const platform::Platform& platform, const MappingView& view,
                                 const CompositionCache& cache);

/// Builds the owning `IntervalMapping` the view describes. The only
/// allocating step of the kernel — called for the rare candidates that enter
/// a front or displace an incumbent.
[[nodiscard]] IntervalMapping materialize(const MappingView& view);

}  // namespace relap::mapping
