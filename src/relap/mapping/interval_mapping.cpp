#include "relap/mapping/interval_mapping.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "relap/util/assert.hpp"

namespace relap::mapping {

IntervalMapping::IntervalMapping(std::vector<IntervalAssignment> intervals)
    : intervals_(std::move(intervals)) {
  RELAP_ASSERT(!intervals_.empty(), "an interval mapping needs at least one interval");
  RELAP_ASSERT(intervals_.front().stages.first == 0, "first interval must start at stage 0");
  std::unordered_set<platform::ProcessorId> seen;
  for (std::size_t j = 0; j < intervals_.size(); ++j) {
    IntervalAssignment& a = intervals_[j];
    RELAP_ASSERT(a.stages.first <= a.stages.last, "interval bounds must satisfy first <= last");
    if (j > 0) {
      RELAP_ASSERT(a.stages.first == intervals_[j - 1].stages.last + 1,
                   "intervals must be consecutive");
    }
    RELAP_ASSERT(!a.processors.empty(), "every interval needs a non-empty replica group");
    std::sort(a.processors.begin(), a.processors.end());
    for (std::size_t i = 1; i < a.processors.size(); ++i) {
      RELAP_ASSERT(a.processors[i - 1] != a.processors[i],
                   "replica group contains a duplicate processor");
    }
    for (const platform::ProcessorId u : a.processors) {
      RELAP_ASSERT(seen.insert(u).second, "replica groups of distinct intervals must be disjoint");
    }
  }
}

IntervalMapping IntervalMapping::single_interval(std::size_t stage_count,
                                                 std::vector<platform::ProcessorId> processors) {
  RELAP_ASSERT(stage_count >= 1, "pipeline needs at least one stage");
  return IntervalMapping({IntervalAssignment{{0, stage_count - 1}, std::move(processors)}});
}

IntervalMapping IntervalMapping::from_composition(
    std::span<const std::size_t> lengths,
    std::vector<std::vector<platform::ProcessorId>> groups) {
  RELAP_ASSERT(lengths.size() == groups.size(), "need one replica group per interval length");
  std::vector<IntervalAssignment> intervals;
  intervals.reserve(lengths.size());
  std::size_t next = 0;
  for (std::size_t j = 0; j < lengths.size(); ++j) {
    RELAP_ASSERT(lengths[j] >= 1, "interval lengths must be positive");
    intervals.push_back(IntervalAssignment{{next, next + lengths[j] - 1}, std::move(groups[j])});
    next += lengths[j];
  }
  return IntervalMapping(std::move(intervals));
}

const IntervalAssignment& IntervalMapping::interval(std::size_t j) const {
  RELAP_ASSERT(j < intervals_.size(), "interval index out of range");
  return intervals_[j];
}

std::size_t IntervalMapping::processors_used() const {
  std::size_t total = 0;
  for (const IntervalAssignment& a : intervals_) total += a.processors.size();
  return total;
}

std::string IntervalMapping::describe() const {
  std::string out;
  for (std::size_t j = 0; j < intervals_.size(); ++j) {
    if (j > 0) out += ' ';
    const IntervalAssignment& a = intervals_[j];
    out += '[' + std::to_string(a.stages.first) + ".." + std::to_string(a.stages.last) + "]->{";
    for (std::size_t i = 0; i < a.processors.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(a.processors[i]);
    }
    out += '}';
  }
  return out;
}

}  // namespace relap::mapping
