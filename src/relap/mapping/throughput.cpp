#include "relap/mapping/throughput.hpp"

#include <algorithm>

#include "relap/util/assert.hpp"

namespace relap::mapping {

double period(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
              const IntervalMapping& mapping) {
  RELAP_ASSERT(mapping.stage_count() == pipeline.stage_count(),
               "mapping does not cover the pipeline");
  const std::size_t p = mapping.interval_count();

  // P_in: k_1 serialized sends of delta_0 per data set.
  double worst = 0.0;
  {
    double in_cycle = 0.0;
    for (const platform::ProcessorId u : mapping.interval(0).processors) {
      in_cycle += pipeline.data(0) / platform.bandwidth_in(u);
    }
    worst = in_cycle;
  }

  for (std::size_t j = 0; j < p; ++j) {
    const IntervalAssignment& a = mapping.interval(j);
    const double work = pipeline.work_sum(a.stages.first, a.stages.last);
    const double in_size = pipeline.data(a.stages.first);
    const double out_size = pipeline.data(a.stages.last + 1);
    for (const platform::ProcessorId u : a.processors) {
      // Receive one copy (from the previous interval's sender, or P_in).
      double cycle = work / platform.speed(u);
      if (j == 0) {
        cycle += in_size / platform.bandwidth_in(u);
      } else {
        // In the failure-free steady state the previous sender is unknown in
        // advance; take the worst link into u, matching the latency model's
        // adversarial stance.
        double slowest = platform.bandwidth(mapping.interval(j - 1).processors.front(), u);
        for (const platform::ProcessorId w : mapping.interval(j - 1).processors) {
          if (w != u) slowest = std::min(slowest, platform.bandwidth(w, u));
        }
        cycle += in_size / slowest;
      }
      // Acting as designated sender: k_{j+1} serialized copies out.
      if (j + 1 < p) {
        for (const platform::ProcessorId v : mapping.interval(j + 1).processors) {
          cycle += out_size / platform.bandwidth(u, v);
        }
      } else {
        cycle += out_size / platform.bandwidth_out(u);
      }
      worst = std::max(worst, cycle);
    }
  }
  return worst;
}

double throughput(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                  const IntervalMapping& mapping) {
  return 1.0 / period(pipeline, platform, mapping);
}

}  // namespace relap::mapping
