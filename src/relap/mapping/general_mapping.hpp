#pragma once

/// \file general_mapping.hpp
/// General (non-interval) and one-to-one mappings, used by Theorems 3 and 4.
///
/// A *general mapping* assigns every stage to one processor, with no
/// replication and no interval constraint: the same processor may execute
/// non-consecutive stages (paper Section 4.1, Theorem 4). A *one-to-one
/// mapping* is the restriction where all assigned processors are distinct
/// (Theorem 3; requires n <= m).

#include <cstddef>
#include <string>
#include <vector>

#include "relap/platform/platform.hpp"

namespace relap::mapping {

/// Stage -> processor assignment, one entry per stage, no replication.
class GeneralMapping {
 public:
  /// `assignment[k]` is the processor executing stage k.
  explicit GeneralMapping(std::vector<platform::ProcessorId> assignment);

  [[nodiscard]] std::size_t stage_count() const { return assignment_.size(); }
  [[nodiscard]] platform::ProcessorId processor_of(std::size_t stage) const;
  [[nodiscard]] const std::vector<platform::ProcessorId>& assignment() const {
    return assignment_;
  }

  /// True iff all assigned processors are pairwise distinct.
  [[nodiscard]] bool is_one_to_one() const;

  /// True iff every processor's set of stages is a consecutive run, i.e. the
  /// mapping is expressible as an interval mapping without replication.
  [[nodiscard]] bool is_interval_based() const;

  /// Human-readable "S0->P2 S1->P2 S2->P0" form.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const GeneralMapping&, const GeneralMapping&) = default;

 private:
  std::vector<platform::ProcessorId> assignment_;
};

}  // namespace relap::mapping
