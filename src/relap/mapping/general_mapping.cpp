#include "relap/mapping/general_mapping.hpp"

#include <unordered_set>
#include <utility>

#include "relap/util/assert.hpp"

namespace relap::mapping {

GeneralMapping::GeneralMapping(std::vector<platform::ProcessorId> assignment)
    : assignment_(std::move(assignment)) {
  RELAP_ASSERT(!assignment_.empty(), "a general mapping needs at least one stage");
}

platform::ProcessorId GeneralMapping::processor_of(std::size_t stage) const {
  RELAP_ASSERT(stage < assignment_.size(), "stage index out of range");
  return assignment_[stage];
}

bool GeneralMapping::is_one_to_one() const {
  std::unordered_set<platform::ProcessorId> seen;
  for (const platform::ProcessorId u : assignment_) {
    if (!seen.insert(u).second) return false;
  }
  return true;
}

bool GeneralMapping::is_interval_based() const {
  // A processor's stages form a consecutive run iff the processor never
  // reappears after a different processor has taken over.
  std::unordered_set<platform::ProcessorId> retired;
  for (std::size_t k = 0; k < assignment_.size(); ++k) {
    if (k > 0 && assignment_[k] != assignment_[k - 1]) {
      retired.insert(assignment_[k - 1]);
      if (retired.contains(assignment_[k])) return false;
    }
  }
  return true;
}

std::string GeneralMapping::describe() const {
  std::string out;
  for (std::size_t k = 0; k < assignment_.size(); ++k) {
    if (k > 0) out += ' ';
    out += 'S' + std::to_string(k) + "->P" + std::to_string(assignment_[k]);
  }
  return out;
}

}  // namespace relap::mapping
