#pragma once

/// \file latency.hpp
/// Latency (response-time) evaluators for the paper's cost model.
///
/// The latency of a mapping is the worst-case time elapsed between the
/// moment a data set leaves P_in and the moment its result reaches P_out,
/// under the one-port communication model. For a replicated interval the
/// worst case is when the first k_j - 1 replicas to receive their (serialized)
/// input fail during execution, so all k_j input communications must be
/// counted; a standard consensus protocol then lets one surviving replica
/// perform the outgoing communications.
///
/// Two closed forms from the paper:
///  * Equation (1) — platforms with identical links (Fully Homogeneous and
///    Communication Homogeneous):
///        T = sum_j { k_j * delta_{d_j - 1} / b
///                    + (sum_{i in I_j} w_i) / min_{u in alloc(j)} s_u }
///            + delta_n / b
///  * Equation (2) — Fully Heterogeneous platforms:
///        T = sum_{u in alloc(1)} delta_0 / b_{in,u}
///            + sum_j max_{u in alloc(j)} { (sum_{i in I_j} w_i) / s_u
///                    + sum_{v in alloc(j+1)} delta_{e_j} / b_{u,v} }
///    where alloc(p+1) = {P_out}.
///
/// On identical-link platforms the two formulas coincide (the serialized
/// boundary transfers are merely attributed to the receiving side in (1) and
/// to the sending side in (2)); a unit test pins this equivalence down.
///
/// General mappings (Theorem 4) have no replication; their latency is the
/// weight of the corresponding path in the layered graph of Figure 6:
/// computation w_k / s_{alloc(k)} per stage plus delta_k / b_{u,v} on every
/// boundary where the processor changes, plus the P_in / P_out transfers.

#include <cstdint>
#include <span>

#include "relap/mapping/general_mapping.hpp"
#include "relap/mapping/interval_mapping.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"

namespace relap::mapping {

/// Equation (1). Precondition: `platform.has_homogeneous_links()` and the
/// mapping is compatible with the instance (see validate.hpp).
[[nodiscard]] double latency_eq1(const pipeline::Pipeline& pipeline,
                                 const platform::Platform& platform,
                                 const IntervalMapping& mapping);

/// Equation (2). Valid on any platform; on identical-link platforms it
/// equals `latency_eq1`.
[[nodiscard]] double latency_eq2(const pipeline::Pipeline& pipeline,
                                 const platform::Platform& platform,
                                 const IntervalMapping& mapping);

/// Dispatches to the paper's formula for the platform class: (1) on
/// identical-link platforms, (2) otherwise.
[[nodiscard]] double latency(const pipeline::Pipeline& pipeline,
                             const platform::Platform& platform, const IntervalMapping& mapping);

/// Latency of a general (unreplicated, possibly non-interval) mapping: the
/// layered-graph path weight of Theorem 4.
[[nodiscard]] double latency(const pipeline::Pipeline& pipeline,
                             const platform::Platform& platform, const GeneralMapping& mapping);

/// Same, on a bare stage->processor assignment span. This is the
/// zero-allocation form the parallel enumerators evaluate millions of
/// candidates through; the `GeneralMapping` overload forwards to it, so the
/// two are bit-identical by construction.
[[nodiscard]] double latency(const pipeline::Pipeline& pipeline,
                             const platform::Platform& platform,
                             std::span<const platform::ProcessorId> assignment);

/// Lane-batched form of the span-assignment latency for the general and
/// one-to-one enumerators: evaluates W assignments at once, one per SIMD
/// lane. `ids` is lane-major — ids[k * W + l] holds assignment l's processor
/// for stage k — and all W * n entries must be in-bounds processor ids (a
/// partial batch keeps stale-but-valid ids in the unused lanes and the
/// caller ignores those outputs). Writes out[l] for l in [0, W), each
/// bit-identical to the scalar span overload on that lane's assignment.
/// Instantiated for W in {1, 4, 8}.
template <std::size_t W>
void latency_assignment_lanes(const pipeline::Pipeline& pipeline,
                              const platform::Platform& platform, const std::uint64_t* ids,
                              double* out);

/// Lower bound on the latency of *any* interval mapping on this instance:
/// total work on the fastest processor plus the cheapest possible input and
/// output transfers. Used by benches and tests as a sanity floor.
[[nodiscard]] double latency_lower_bound(const pipeline::Pipeline& pipeline,
                                         const platform::Platform& platform);

}  // namespace relap::mapping
