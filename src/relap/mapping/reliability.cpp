#include "relap/mapping/reliability.hpp"

#include <cmath>
#include <limits>

#include "relap/util/assert.hpp"

namespace relap::mapping {

double group_failure_probability(const platform::Platform& platform,
                                 const std::vector<platform::ProcessorId>& group) {
  RELAP_ASSERT(!group.empty(), "replica group must be non-empty");
  double product = 1.0;
  for (const platform::ProcessorId u : group) product *= platform.failure_prob(u);
  return product;
}

double failure_probability(const platform::Platform& platform, const IntervalMapping& mapping) {
  double survival = 1.0;
  for (const IntervalAssignment& a : mapping.intervals()) {
    survival *= 1.0 - group_failure_probability(platform, a.processors);
  }
  return 1.0 - survival;
}

double log_survival_probability(const platform::Platform& platform,
                                const IntervalMapping& mapping) {
  double log_survival = 0.0;
  for (const IntervalAssignment& a : mapping.intervals()) {
    const double group_fp = group_failure_probability(platform, a.processors);
    if (group_fp >= 1.0) return -std::numeric_limits<double>::infinity();
    log_survival += std::log1p(-group_fp);
  }
  return log_survival;
}

double min_achievable_failure_probability(const platform::Platform& platform) {
  double product = 1.0;
  for (platform::ProcessorId u = 0; u < platform.processor_count(); ++u) {
    product *= platform.failure_prob(u);
  }
  return product;  // 1 - (1 - prod fp_u) for the single all-processor interval
}

}  // namespace relap::mapping
