#pragma once

/// \file reliability.hpp
/// Failure-probability evaluation (paper Section 2.2).
///
/// The application executes successfully iff, for every interval, at least
/// one replica survives. Processor failures are independent, so:
///
///   FP(mapping) = 1 - prod_j ( 1 - prod_{u in alloc(j)} fp_u ).
///
/// For heavily replicated mappings, prod fp_u underflows harmlessly to 0;
/// the dual problem — distinguishing survival probabilities extremely close
/// to 1 — is the numerically delicate one, so a log-domain evaluator of
/// log(1 - FP) built on log1p is provided for tests and tie-breaking.

#include <vector>

#include "relap/mapping/interval_mapping.hpp"
#include "relap/platform/platform.hpp"

namespace relap::mapping {

/// Probability that *all* processors of `group` fail: prod fp_u.
[[nodiscard]] double group_failure_probability(const platform::Platform& platform,
                                               const std::vector<platform::ProcessorId>& group);

/// Global failure probability FP of an interval mapping, in [0, 1].
[[nodiscard]] double failure_probability(const platform::Platform& platform,
                                         const IntervalMapping& mapping);

/// log(1 - FP) = sum_j log1p(-prod_{u in alloc(j)} fp_u), computed without
/// forming 1 - FP. More negative means less reliable; 0 means certain
/// success. Returns -infinity when some interval is certain to fail
/// (all its replicas have fp_u = 1).
[[nodiscard]] double log_survival_probability(const platform::Platform& platform,
                                              const IntervalMapping& mapping);

/// Failure probability of the degenerate "no replication anywhere" bound:
/// the minimum achievable FP on this platform, reached by replicating a
/// single interval on all m processors (Theorem 1).
[[nodiscard]] double min_achievable_failure_probability(const platform::Platform& platform);

}  // namespace relap::mapping
