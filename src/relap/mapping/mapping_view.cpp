#include "relap/mapping/mapping_view.hpp"

#include <algorithm>
#include <limits>

#include "relap/util/assert.hpp"
#include "relap/util/stats.hpp"

namespace relap::mapping {

EvalScratch::EvalScratch(std::size_t stage_count, std::size_t processor_count) {
  const std::size_t max_parts = std::min(stage_count, processor_count);
  stage_offsets_.reserve(max_parts + 1);
  processors_.reserve(processor_count);
  group_offsets_.reserve(max_parts + 1);
  cursor_.reserve(max_parts);
  cache_.work.reserve(max_parts);
  cache_.data_first.reserve(max_parts);
  cache_.out_size.reserve(max_parts);
}

void EvalScratch::set_composition(const pipeline::Pipeline& pipeline,
                                  std::span<const std::size_t> lengths) {
  const std::size_t p = lengths.size();
  RELAP_ASSERT(p >= 1, "composition needs at least one part");
  stage_offsets_.resize(p + 1);
  cache_.work.resize(p);
  cache_.data_first.resize(p);
  cache_.out_size.resize(p);
  std::size_t next = 0;
  for (std::size_t j = 0; j < p; ++j) {
    stage_offsets_[j] = next;
    next += lengths[j];
    cache_.work[j] = pipeline.work_sum(stage_offsets_[j], next - 1);
    cache_.data_first[j] = pipeline.data(stage_offsets_[j]);
    cache_.out_size[j] = pipeline.data(next);
  }
  stage_offsets_[p] = next;
  cache_.data_out = pipeline.data(pipeline.stage_count());
  RELAP_ASSERT(next == pipeline.stage_count(), "composition does not cover the pipeline");
}

void EvalScratch::set_grouping(std::span<const std::size_t> group_of,
                               std::span<const std::size_t> group_sizes) {
  const std::size_t p = stage_offsets_.size() - 1;
  RELAP_ASSERT(group_sizes.size() == p, "group count does not match the composition");
  group_offsets_.resize(p + 1);
  cursor_.resize(p);
  std::size_t total = 0;
  for (std::size_t g = 0; g < p; ++g) {
    group_offsets_[g] = total;
    cursor_[g] = total;
    total += group_sizes[g];
  }
  group_offsets_[p] = total;
  processors_.resize(total);
  // Counting-sort the items into their groups; iterating u ascending keeps
  // every group ascending, matching IntervalMapping's canonical sorted form.
  const std::size_t m = group_of.size();
  for (std::size_t u = 0; u < m; ++u) {
    const std::size_t g = group_of[u];
    if (g < p) processors_[cursor_[g]++] = static_cast<platform::ProcessorId>(u);
  }
}

void EvalScratch::set_intervals(const pipeline::Pipeline& pipeline,
                                std::span<const IntervalAssignment> intervals) {
  const std::size_t p = intervals.size();
  RELAP_ASSERT(p >= 1, "an interval mapping needs at least one interval");
  stage_offsets_.resize(p + 1);
  group_offsets_.resize(p + 1);
  cache_.work.resize(p);
  cache_.data_first.resize(p);
  cache_.out_size.resize(p);
  processors_.clear();
  for (std::size_t j = 0; j < p; ++j) {
    const IntervalAssignment& a = intervals[j];
    stage_offsets_[j] = a.stages.first;
    group_offsets_[j] = processors_.size();
    for (std::size_t i = 0; i < a.processors.size(); ++i) {
      RELAP_ASSERT(i == 0 || a.processors[i - 1] < a.processors[i],
                   "interval groups must be sorted ascending (canonical form)");
      processors_.push_back(a.processors[i]);
    }
    cache_.work[j] = pipeline.work_sum(a.stages.first, a.stages.last);
    cache_.data_first[j] = pipeline.data(a.stages.first);
    cache_.out_size[j] = pipeline.data(a.stages.last + 1);
  }
  stage_offsets_[p] = intervals.back().stages.last + 1;
  group_offsets_[p] = processors_.size();
  cache_.data_out = pipeline.data(pipeline.stage_count());
}

namespace {

/// Equation (1) latency: identical links. Same term order as `latency_eq1`.
double latency_eq1_view(const platform::Platform& platform, const MappingView& view,
                        const CompositionCache& cache) {
  const double inv_b = platform.inv_common_bandwidth();
  util::KahanSum total;
  const std::size_t p = view.interval_count();
  for (std::size_t j = 0; j < p; ++j) {
    const std::span<const platform::ProcessorId> group = view.group(j);
    const double k = static_cast<double>(group.size());
    total.add(k * cache.data_first[j] * inv_b);
    double lo = std::numeric_limits<double>::infinity();
    for (const platform::ProcessorId u : group) lo = std::min(lo, platform.speed(u));
    total.add(cache.work[j] / lo);
  }
  total.add(cache.data_out * inv_b);
  return total.value();
}

/// Equation (2) latency: heterogeneous links. Same term order as `latency_eq2`.
double latency_eq2_view(const platform::Platform& platform, const MappingView& view,
                        const CompositionCache& cache) {
  util::KahanSum total;

  // Serialized initial transfers: P_in sends delta_0 to every replica of the
  // first interval (one-port model).
  for (const platform::ProcessorId u : view.group(0)) {
    total.add(cache.data_first[0] * platform.inv_bandwidth_in(u));
  }

  const std::size_t p = view.interval_count();
  for (std::size_t j = 0; j < p; ++j) {
    const double work = cache.work[j];
    const double out_size = cache.out_size[j];
    double worst = 0.0;
    for (const platform::ProcessorId u : view.group(j)) {
      double term = work * platform.inv_speed(u);
      if (j + 1 < p) {
        // Serialized sends to every replica of the next interval.
        for (const platform::ProcessorId v : view.group(j + 1)) {
          term += out_size * platform.inv_bandwidth(u, v);
        }
      } else {
        term += out_size * platform.inv_bandwidth_out(u);
      }
      worst = std::max(worst, term);
    }
    total.add(worst);
  }
  return total.value();
}

/// Failure probability, same factor order as `failure_probability`.
double failure_probability_view(const platform::Platform& platform, const MappingView& view) {
  double survival = 1.0;
  const std::size_t p = view.interval_count();
  for (std::size_t j = 0; j < p; ++j) {
    double product = 1.0;
    for (const platform::ProcessorId u : view.group(j)) product *= platform.failure_prob(u);
    survival *= 1.0 - product;
  }
  return 1.0 - survival;
}

}  // namespace

ViewEval evaluate_view(const platform::Platform& platform, const MappingView& view,
                       const CompositionCache& cache) {
  ViewEval out;
  out.latency = platform.has_homogeneous_links() ? latency_eq1_view(platform, view, cache)
                                                 : latency_eq2_view(platform, view, cache);
  out.failure_probability = failure_probability_view(platform, view);
  return out;
}

double period_view(const platform::Platform& platform, const MappingView& view,
                   const CompositionCache& cache) {
  const std::size_t p = view.interval_count();

  // P_in: k_1 serialized sends of delta_0 per data set.
  double worst = 0.0;
  {
    double in_cycle = 0.0;
    for (const platform::ProcessorId u : view.group(0)) {
      in_cycle += cache.data_first[0] / platform.bandwidth_in(u);
    }
    worst = in_cycle;
  }

  for (std::size_t j = 0; j < p; ++j) {
    const double work = cache.work[j];
    const double in_size = cache.data_first[j];
    const double out_size = cache.out_size[j];
    for (const platform::ProcessorId u : view.group(j)) {
      // Receive one copy (from the previous interval's sender, or P_in).
      double cycle = work / platform.speed(u);
      if (j == 0) {
        cycle += in_size / platform.bandwidth_in(u);
      } else {
        // In the failure-free steady state the previous sender is unknown in
        // advance; take the worst link into u, matching the latency model's
        // adversarial stance.
        const std::span<const platform::ProcessorId> prev = view.group(j - 1);
        double slowest = platform.bandwidth(prev.front(), u);
        for (const platform::ProcessorId w : prev) {
          if (w != u) slowest = std::min(slowest, platform.bandwidth(w, u));
        }
        cycle += in_size / slowest;
      }
      // Acting as designated sender: k_{j+1} serialized copies out.
      if (j + 1 < p) {
        for (const platform::ProcessorId v : view.group(j + 1)) {
          cycle += out_size / platform.bandwidth(u, v);
        }
      } else {
        cycle += out_size / platform.bandwidth_out(u);
      }
      worst = std::max(worst, cycle);
    }
  }
  return worst;
}

IntervalMapping materialize(const MappingView& view) {
  std::vector<IntervalAssignment> intervals;
  const std::size_t p = view.interval_count();
  intervals.reserve(p);
  for (std::size_t j = 0; j < p; ++j) {
    const std::span<const platform::ProcessorId> group = view.group(j);
    intervals.push_back(IntervalAssignment{
        Interval{view.first_stage(j), view.last_stage(j)},
        std::vector<platform::ProcessorId>(group.begin(), group.end())});
  }
  return IntervalMapping(std::move(intervals));
}

}  // namespace relap::mapping
