#pragma once

/// \file interval_mapping.hpp
/// Interval-based replicated mappings (paper Section 2.2).
///
/// An interval mapping partitions the n stages into p consecutive intervals
/// I_j = [d_j, e_j] (0-based, inclusive) with d_1 = 0, d_{j+1} = e_j + 1 and
/// e_p = n-1, and assigns each interval a non-empty *replica group*
/// alloc(j) of processors. Every processor of alloc(j) executes all the
/// stages of I_j on every data set; groups of distinct intervals must be
/// disjoint (a processor executes a single interval).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "relap/platform/platform.hpp"

namespace relap::mapping {

/// A contiguous range of stages, inclusive on both ends, 0-based.
struct Interval {
  std::size_t first = 0;
  std::size_t last = 0;

  [[nodiscard]] std::size_t length() const { return last - first + 1; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// One interval together with its replica group.
struct IntervalAssignment {
  Interval stages;
  /// Processor ids executing the interval; non-empty, disjoint from all
  /// other intervals' groups. Kept sorted ascending by the constructor of
  /// `IntervalMapping` so that equality and hashing are canonical.
  std::vector<platform::ProcessorId> processors;

  friend bool operator==(const IntervalAssignment&, const IntervalAssignment&) = default;
};

/// A structurally well-formed interval mapping.
///
/// The constructor enforces *structural* invariants (consecutive covering
/// intervals, non-empty disjoint groups) via RELAP_ASSERT, because violating
/// them is a programming error. Compatibility with a concrete pipeline and
/// platform (stage count, processor ids in range) is checked separately by
/// `validate()` from validate.hpp, because mismatched instances are runtime
/// inputs when mappings are read from files.
class IntervalMapping {
 public:
  explicit IntervalMapping(std::vector<IntervalAssignment> intervals);

  /// The whole pipeline [0, n) as one interval replicated on `processors`.
  [[nodiscard]] static IntervalMapping single_interval(
      std::size_t stage_count, std::vector<platform::ProcessorId> processors);

  /// Builds a mapping from interval lengths (a composition of n) and one
  /// replica group per part. `lengths.size() == groups.size()`.
  [[nodiscard]] static IntervalMapping from_composition(
      std::span<const std::size_t> lengths, std::vector<std::vector<platform::ProcessorId>> groups);

  [[nodiscard]] std::size_t interval_count() const { return intervals_.size(); }
  [[nodiscard]] const std::vector<IntervalAssignment>& intervals() const { return intervals_; }
  [[nodiscard]] const IntervalAssignment& interval(std::size_t j) const;

  /// Total number of stages covered (e_p + 1).
  [[nodiscard]] std::size_t stage_count() const { return intervals_.back().stages.last + 1; }

  /// Total number of processors enrolled across all replica groups.
  [[nodiscard]] std::size_t processors_used() const;

  /// Replica-group size k_j of interval j.
  [[nodiscard]] std::size_t replication(std::size_t j) const { return interval(j).processors.size(); }

  /// Human-readable "[0..2]->{1,3} [3..5]->{0}" form.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const IntervalMapping&, const IntervalMapping&) = default;

 private:
  std::vector<IntervalAssignment> intervals_;
};

}  // namespace relap::mapping
