#include "relap/mapping/latency.hpp"

#include <algorithm>
#include <limits>

#include "relap/util/assert.hpp"
#include "relap/util/simd.hpp"
#include "relap/util/stats.hpp"

namespace relap::mapping {

namespace {

/// Smallest speed within a replica group (the paper's min_{u in alloc(j)} s_u).
double min_speed(const platform::Platform& platform,
                 const std::vector<platform::ProcessorId>& group) {
  double lo = std::numeric_limits<double>::infinity();
  for (const platform::ProcessorId u : group) lo = std::min(lo, platform.speed(u));
  return lo;
}

}  // namespace

double latency_eq1(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                   const IntervalMapping& mapping) {
  RELAP_ASSERT(platform.has_homogeneous_links(),
               "equation (1) applies to identical-link platforms only");
  RELAP_ASSERT(mapping.stage_count() == pipeline.stage_count(),
               "mapping does not cover the pipeline");
  const double inv_b = platform.inv_common_bandwidth();
  util::KahanSum total;
  for (const IntervalAssignment& a : mapping.intervals()) {
    const double k = static_cast<double>(a.processors.size());
    total.add(k * pipeline.data(a.stages.first) * inv_b);
    total.add(pipeline.work_sum(a.stages.first, a.stages.last) / min_speed(platform, a.processors));
  }
  total.add(pipeline.data(pipeline.stage_count()) * inv_b);
  return total.value();
}

double latency_eq2(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
                   const IntervalMapping& mapping) {
  RELAP_ASSERT(mapping.stage_count() == pipeline.stage_count(),
               "mapping does not cover the pipeline");
  util::KahanSum total;

  // Serialized initial transfers: P_in sends delta_0 to every replica of the
  // first interval (one-port model).
  for (const platform::ProcessorId u : mapping.interval(0).processors) {
    total.add(pipeline.data(0) * platform.inv_bandwidth_in(u));
  }

  const std::size_t p = mapping.interval_count();
  for (std::size_t j = 0; j < p; ++j) {
    const IntervalAssignment& a = mapping.interval(j);
    const double work = pipeline.work_sum(a.stages.first, a.stages.last);
    const double out_size = pipeline.data(a.stages.last + 1);
    double worst = 0.0;
    for (const platform::ProcessorId u : a.processors) {
      double term = work * platform.inv_speed(u);
      if (j + 1 < p) {
        // Serialized sends to every replica of the next interval.
        for (const platform::ProcessorId v : mapping.interval(j + 1).processors) {
          term += out_size * platform.inv_bandwidth(u, v);
        }
      } else {
        term += out_size * platform.inv_bandwidth_out(u);
      }
      worst = std::max(worst, term);
    }
    total.add(worst);
  }
  return total.value();
}

double latency(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
               const IntervalMapping& mapping) {
  return platform.has_homogeneous_links() ? latency_eq1(pipeline, platform, mapping)
                                          : latency_eq2(pipeline, platform, mapping);
}

double latency(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
               const GeneralMapping& mapping) {
  RELAP_ASSERT(mapping.stage_count() == pipeline.stage_count(),
               "mapping does not cover the pipeline");
  return latency(pipeline, platform, std::span<const platform::ProcessorId>(mapping.assignment()));
}

double latency(const pipeline::Pipeline& pipeline, const platform::Platform& platform,
               std::span<const platform::ProcessorId> assignment) {
  RELAP_ASSERT(assignment.size() == pipeline.stage_count(),
               "assignment does not cover the pipeline");
  const std::size_t n = pipeline.stage_count();
  util::KahanSum total;
  total.add(pipeline.data(0) * platform.inv_bandwidth_in(assignment[0]));
  for (std::size_t k = 0; k < n; ++k) {
    const platform::ProcessorId u = assignment[k];
    total.add(pipeline.work(k) * platform.inv_speed(u));
    if (k + 1 < n) {
      const platform::ProcessorId v = assignment[k + 1];
      if (u != v) total.add(pipeline.data(k + 1) * platform.inv_bandwidth(u, v));
    }
  }
  total.add(pipeline.data(n) * platform.inv_bandwidth_out(assignment[n - 1]));
  return total.value();
}

template <std::size_t W>
void latency_assignment_lanes(const pipeline::Pipeline& pipeline,
                              const platform::Platform& platform, const std::uint64_t* ids,
                              double* out) {
  namespace simd = util::simd;
  using D = simd::DoubleLanes<W>;
  using U = simd::UintLanes<W>;
  const std::size_t n = pipeline.stage_count();
  const double* inv_speeds = platform.inv_speeds().data();
  const double* inv_bw_in = platform.inv_in_bandwidths().data();
  const double* inv_bw_out = platform.inv_out_bandwidths().data();
  const double* flat_inv_bw = platform.flat_inv_link_bandwidths().data();
  const std::uint64_t m = platform.processor_count();

  // Term-for-term transcription of the scalar span overload above; the
  // u == v "communication is free" skip becomes a masked add that leaves the
  // Kahan sum and compensation of skipping lanes untouched.
  simd::KahanLanes<W> total;
  U u = simd::load_u<W>(ids);
  total.add(simd::mul(simd::broadcast<W>(pipeline.data(0)), simd::gather(inv_bw_in, u)));
  for (std::size_t k = 0; k < n; ++k) {
    total.add(simd::mul(simd::broadcast<W>(pipeline.work(k)), simd::gather(inv_speeds, u)));
    if (k + 1 < n) {
      const U v = simd::load_u<W>(ids + (k + 1) * W);
      total.add_masked(
          simd::mul(simd::broadcast<W>(pipeline.data(k + 1)), simd::gather2(flat_inv_bw, u, v, m)),
          simd::not_equal_u(u, v));
      u = v;
    }
  }
  total.add(simd::mul(simd::broadcast<W>(pipeline.data(n)), simd::gather(inv_bw_out, u)));
  const D result = total.value();
  for (std::size_t l = 0; l < W; ++l) out[l] = result.v[l];
}

template void latency_assignment_lanes<1>(const pipeline::Pipeline&, const platform::Platform&,
                                          const std::uint64_t*, double*);
template void latency_assignment_lanes<4>(const pipeline::Pipeline&, const platform::Platform&,
                                          const std::uint64_t*, double*);
template void latency_assignment_lanes<8>(const pipeline::Pipeline&, const platform::Platform&,
                                          const std::uint64_t*, double*);

double latency_lower_bound(const pipeline::Pipeline& pipeline,
                           const platform::Platform& platform) {
  const std::size_t m = platform.processor_count();
  double best_speed = 0.0;
  double best_in = 0.0;
  double best_out = 0.0;
  for (platform::ProcessorId u = 0; u < m; ++u) {
    best_speed = std::max(best_speed, platform.speed(u));
    best_in = std::max(best_in, platform.bandwidth_in(u));
    best_out = std::max(best_out, platform.bandwidth_out(u));
  }
  return pipeline.data(0) / best_in + pipeline.total_work() / best_speed +
         pipeline.data(pipeline.stage_count()) / best_out;
}

}  // namespace relap::mapping
