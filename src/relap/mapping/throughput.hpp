#pragma once

/// \file throughput.hpp
/// Steady-state period / throughput evaluation — an *extension* of the
/// paper (its Section 5 names the latency/throughput/reliability interplay
/// as future work; this module supplies the throughput leg so the
/// tri-criteria benches can explore it).
///
/// Model (documented choice, consistent with the one-port assumptions the
/// latency formulas make):
///  * every replica of interval j receives one copy of the interval input
///    per data set and computes the whole interval;
///  * the designated sender of interval j emits k_{j+1} serialized copies of
///    the interval output (one per replica of the next interval; a single
///    copy to P_out for the last interval);
///  * P_in emits k_1 serialized copies of delta_0 per data set.
///
/// The cycle time of a resource is the time it is busy per data set; the
/// period is the maximum cycle time over all resources (P_in, processors,
/// P_out); throughput = 1 / period. A replica that is not the designated
/// sender has a smaller cycle time, so the period uses the worst replica of
/// each group — in the failure-free steady state this is the group's slowest
/// processor acting as sender, the same worst-case stance the latency
/// formulas take.

#include "relap/mapping/interval_mapping.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"

namespace relap::mapping {

/// Steady-state period (time per data set) of an interval mapping.
[[nodiscard]] double period(const pipeline::Pipeline& pipeline,
                            const platform::Platform& platform, const IntervalMapping& mapping);

/// 1 / period.
[[nodiscard]] double throughput(const pipeline::Pipeline& pipeline,
                                const platform::Platform& platform,
                                const IntervalMapping& mapping);

}  // namespace relap::mapping
