#pragma once

/// \file mapping_lanes.hpp
/// Lane-batched candidate evaluation: `evaluate_view`'s SIMD counterpart.
///
/// `LaneEvalBatch<W>` evaluates up to `W` interval mappings at once, one per
/// SIMD lane, on top of preallocated lane-major SoA staging buffers (group
/// sums, replica ids, boundary-transfer terms). The scalar evaluators in
/// mapping_view.cpp remain the bit-exactness oracle: every lane applies the
/// exact per-candidate operation sequence of the scalar kernel — the same
/// `KahanSum` adds in the same order, compensated summation kept per lane
/// and never interleaved across lanes — so lane l's `ViewEval` is
/// bit-identical to `evaluate_view` on the same mapping, for every `W` and
/// every ISA (see util/simd.hpp for the contract). Lanes whose structure is
/// shorter than the widest lane in the batch are masked: rejected lanes'
/// accumulators (Kahan sum *and* compensation) pass through `select`
/// untouched, garbage values computed under a false mask are discarded, and
/// stale staging ids stay in bounds so gathers never fault.
///
/// Two staging modes:
///  * enumeration: `set_composition` once per composition, then
///    `push_grouping` per candidate — the composition columns are copied
///    into the pushed lane, so one batch may span a composition wrap;
///  * heuristics: `push_intervals` per candidate with explicit interval
///    assignments (per-lane compositions, per-lane interval counts).
///
/// After warm-up no method allocates (counting-allocator pinned); a batch
/// is reused clear/push/evaluate for the whole enumeration chunk.
///
/// Typical driver loop:
///
///   LaneEvalBatch<W> batch(n, m);
///   batch.set_composition(pipeline, lengths);       // once per composition
///   for (each candidate) {
///     batch.push_grouping(group_of, group_sizes);
///     if (batch.full()) {
///       batch.evaluate(platform, evals);
///       for (l < batch.size()) consume(batch.view(l), batch.cache(l), evals[l]);
///       batch.clear();
///     }
///   }
///   // final partial batch: same evaluate/consume/clear

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "relap/mapping/interval_mapping.hpp"
#include "relap/mapping/mapping_view.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"
#include "relap/util/simd.hpp"

namespace relap::mapping {

template <std::size_t W>
class LaneEvalBatch {
 public:
  /// Reserves every staging buffer for pipelines up to `stage_count` stages
  /// on platforms up to `processor_count` processors.
  LaneEvalBatch(std::size_t stage_count, std::size_t processor_count);

  /// Installs the shared composition for subsequent `push_grouping` calls
  /// (the enumeration drivers' once-per-composition step). Does not touch
  /// lanes already pushed — each lane pins the composition slot it was
  /// staged under, and the slot ring holds every composition a batch spans.
  void set_composition(const pipeline::Pipeline& pipeline, std::span<const std::size_t> lengths);

  /// Stages one candidate of the current shared composition into the next
  /// free lane (enumeration word form, as `EvalScratch::set_grouping`).
  /// Precondition: `!full()` and `set_composition` was called.
  void push_grouping(std::span<const std::size_t> group_of,
                     std::span<const std::size_t> group_sizes);

  /// Stages one candidate from explicit interval assignments (the
  /// heuristics' representation, as `EvalScratch::set_intervals`).
  /// Precondition: `!full()`; groups sorted ascending (canonical form).
  void push_intervals(const pipeline::Pipeline& pipeline,
                      std::span<const IntervalAssignment> intervals);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool full() const { return size_ == W; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Forgets all staged lanes (stale staging data remains, harmlessly).
  void clear();

  /// Evaluates all staged lanes; writes `out[l]` for l in [0, size()).
  /// Each result is bit-identical to `evaluate_view` on `view(l)`.
  void evaluate(const platform::Platform& platform, std::span<ViewEval> out) const;

  /// Canonical per-lane view (for `materialize`, `period_view`,
  /// `processors_used`). Valid until the lane is overwritten after `clear`.
  [[nodiscard]] MappingView view(std::size_t lane) const;

  /// Per-lane composition cache (for `period_view`).
  [[nodiscard]] const CompositionCache& cache(std::size_t lane) const {
    const std::size_t s = slot_of_lane_[lane];
    return s == kNoSlot ? cache_[lane] : slots_[s].cache;
  }

 private:
  /// One installed composition: the derived per-interval columns plus the
  /// stage offsets that `view`/`cache` hand back. `push_grouping` pins the
  /// active slot instead of copying it into the lane; a ring of W + 1 slots
  /// is enough because a batch of W lanes can span at most W distinct
  /// compositions plus the currently installed one.
  struct CompositionSlot {
    CompositionCache cache;
    std::vector<std::size_t> stage_offsets;  // p + 1 entries
    std::size_t p = 0;
  };
  static constexpr std::size_t kNoSlot = W + 1;  ///< lane staged via push_intervals

  void stage_lane_columns(std::size_t lane, std::size_t p);

  std::size_t mcap_;  ///< max processors
  std::size_t pcap_;  ///< max interval count = min(stage, processor caps)
  std::size_t size_ = 0;
  std::size_t pmax_ = 0;  ///< widest staged lane's interval count

  // Composition slot ring (enumeration mode); see CompositionSlot.
  std::array<CompositionSlot, W + 1> slots_;
  std::size_t active_slot_ = 0;
  std::array<std::size_t, W + 1> slot_refs_{};  ///< lanes pinning each slot
  std::array<std::size_t, W> slot_of_lane_{};

  // Canonical per-lane rows backing `view(lane)` / `cache(lane)`
  // (grouping-mode lanes read their composition from the pinned slot and
  // only stage_offsets_l_ is interval-mode-specific).
  std::array<CompositionCache, W> cache_;
  std::vector<std::size_t> stage_offsets_l_;       // W rows of pcap_+1
  std::vector<std::size_t> group_offsets_l_;       // W rows of pcap_+1
  std::vector<platform::ProcessorId> processors_l_;  // W rows of mcap_
  std::vector<std::size_t> cursor_;                // pcap_ scratch (counting sort)

  // Lane-major staging for the vector kernels; column (j) or (j, r) holds W
  // contiguous lanes. Entries beyond a lane's structure are stale garbage —
  // finite doubles and in-bounds ids — masked out during evaluation.
  // The composition columns (work_/dfirst_/dout_/dlast_) are evaluate-time
  // scratch: a single-slot batch broadcasts straight from the slot instead,
  // and a mixed batch fills them from each lane's pinned composition.
  std::array<std::uint64_t, W> p_u_;   ///< interval count per lane
  mutable std::array<double, W> dlast_;  ///< delta_n per lane
  mutable std::vector<double> work_;     // pcap_ * W
  mutable std::vector<double> dfirst_;   // pcap_ * W
  mutable std::vector<double> dout_;     // pcap_ * W
  std::vector<std::uint64_t> ksize_u_; // pcap_ * W (zeroed beyond a lane's p)
  std::vector<std::uint64_t> proc_;    // pcap_ * mcap_ * W, (j*mcap_+r)*W + l
  std::vector<std::size_t> kmax_j_;    // pcap_: widest group at j this batch

  // Evaluate-time scratch: receiver-side ids and raggedness masks of the
  // next interval, hoisted out of the sender loop (mcap_ entries each).
  mutable std::vector<util::simd::UintLanes<W>> v_ids_;
  mutable std::vector<util::simd::UintLanes<W>> v_mask_;
};

}  // namespace relap::mapping
