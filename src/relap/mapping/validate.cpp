#include "relap/mapping/validate.hpp"

namespace relap::mapping {

namespace {

util::Error mismatch(std::string message) { return util::make_error("mismatch", std::move(message)); }

}  // namespace

util::Expected<Valid> validate(const pipeline::Pipeline& pipeline,
                               const platform::Platform& platform,
                               const IntervalMapping& mapping) {
  if (mapping.stage_count() != pipeline.stage_count()) {
    return mismatch("mapping covers " + std::to_string(mapping.stage_count()) +
                    " stages but the pipeline has " + std::to_string(pipeline.stage_count()));
  }
  for (const IntervalAssignment& a : mapping.intervals()) {
    for (const platform::ProcessorId u : a.processors) {
      if (u >= platform.processor_count()) {
        return mismatch("mapping names processor " + std::to_string(u) +
                        " but the platform has only " +
                        std::to_string(platform.processor_count()) + " processors");
      }
    }
  }
  return Valid{};
}

util::Expected<Valid> validate(const pipeline::Pipeline& pipeline,
                               const platform::Platform& platform,
                               const GeneralMapping& mapping) {
  if (mapping.stage_count() != pipeline.stage_count()) {
    return mismatch("mapping covers " + std::to_string(mapping.stage_count()) +
                    " stages but the pipeline has " + std::to_string(pipeline.stage_count()));
  }
  for (const platform::ProcessorId u : mapping.assignment()) {
    if (u >= platform.processor_count()) {
      return mismatch("mapping names processor " + std::to_string(u) +
                      " but the platform has only " + std::to_string(platform.processor_count()) +
                      " processors");
    }
  }
  return Valid{};
}

util::Expected<Valid> validate_one_to_one(const pipeline::Pipeline& pipeline,
                                          const platform::Platform& platform,
                                          const GeneralMapping& mapping) {
  auto base = validate(pipeline, platform, mapping);
  if (!base) return base;
  if (pipeline.stage_count() > platform.processor_count()) {
    return mismatch("one-to-one mappings require n <= m");
  }
  if (!mapping.is_one_to_one()) {
    return mismatch("mapping assigns two stages to the same processor");
  }
  return Valid{};
}

}  // namespace relap::mapping
