#include "relap/mapping/mapping_lanes.hpp"

#include <algorithm>
#include <limits>

#include "relap/util/assert.hpp"
#include "relap/util/simd.hpp"

namespace relap::mapping {

namespace simd = util::simd;

template <std::size_t W>
LaneEvalBatch<W>::LaneEvalBatch(std::size_t stage_count, std::size_t processor_count)
    : mcap_(processor_count), pcap_(std::min(stage_count, processor_count)) {
  for (CompositionSlot& s : slots_) {
    s.stage_offsets.reserve(pcap_ + 1);
    s.cache.work.reserve(pcap_);
    s.cache.data_first.reserve(pcap_);
    s.cache.out_size.reserve(pcap_);
  }
  slot_of_lane_.fill(kNoSlot);
  for (CompositionCache& c : cache_) {
    c.work.reserve(pcap_);
    c.data_first.reserve(pcap_);
    c.out_size.reserve(pcap_);
  }
  stage_offsets_l_.resize(W * (pcap_ + 1), 0);
  group_offsets_l_.resize(W * (pcap_ + 1), 0);
  processors_l_.resize(W * mcap_, 0);
  cursor_.resize(pcap_, 0);
  p_u_.fill(0);
  dlast_.fill(0.0);
  work_.resize(pcap_ * W, 0.0);
  dfirst_.resize(pcap_ * W, 0.0);
  dout_.resize(pcap_ * W, 0.0);
  ksize_u_.resize(pcap_ * W, 0);
  proc_.resize(pcap_ * mcap_ * W, 0);
  kmax_j_.resize(pcap_, 0);
  v_ids_.resize(mcap_);
  v_mask_.resize(mcap_);
}

template <std::size_t W>
void LaneEvalBatch<W>::set_composition(const pipeline::Pipeline& pipeline,
                                       std::span<const std::size_t> lengths) {
  const std::size_t p = lengths.size();
  RELAP_ASSERT(p >= 1 && p <= pcap_, "composition part count out of range for this batch");
  // Reuse the active slot if no staged lane pins it; otherwise advance the
  // ring (the next slot is always free: at most W of the W + 1 slots can be
  // pinned by a batch of W lanes).
  if (slot_refs_[active_slot_] != 0) {
    active_slot_ = (active_slot_ + 1) % (W + 1);
    RELAP_ASSERT(slot_refs_[active_slot_] == 0, "composition slot ring exhausted");
  }
  CompositionSlot& slot = slots_[active_slot_];
  slot.p = p;
  slot.stage_offsets.resize(p + 1);
  slot.cache.work.resize(p);
  slot.cache.data_first.resize(p);
  slot.cache.out_size.resize(p);
  std::size_t next = 0;
  for (std::size_t j = 0; j < p; ++j) {
    slot.stage_offsets[j] = next;
    next += lengths[j];
    slot.cache.work[j] = pipeline.work_sum(slot.stage_offsets[j], next - 1);
    slot.cache.data_first[j] = pipeline.data(slot.stage_offsets[j]);
    slot.cache.out_size[j] = pipeline.data(next);
  }
  slot.stage_offsets[p] = next;
  slot.cache.data_out = pipeline.data(pipeline.stage_count());
  RELAP_ASSERT(next == pipeline.stage_count(), "composition does not cover the pipeline");
}

template <std::size_t W>
void LaneEvalBatch<W>::push_grouping(std::span<const std::size_t> group_of,
                                     std::span<const std::size_t> group_sizes) {
  RELAP_ASSERT(size_ < W, "batch is full");
  const CompositionSlot& slot = slots_[active_slot_];
  const std::size_t p = slot.p;
  RELAP_ASSERT(group_sizes.size() == p, "group count does not match the composition");
  const std::size_t lane = size_++;

  // Pin the installed composition instead of copying it: the slot survives
  // a composition change mid-fill (set_composition advances the ring).
  slot_of_lane_[lane] = active_slot_;
  ++slot_refs_[active_slot_];

  // Counting-sort the enumeration word into the contiguous per-lane row
  // (backing `view`) and the lane-major proc columns in one pass (ascending
  // within each group, exactly as `EvalScratch::set_grouping`).
  std::size_t* go = group_offsets_l_.data() + lane * (pcap_ + 1);
  std::size_t total = 0;
  for (std::size_t g = 0; g < p; ++g) {
    go[g] = total;
    cursor_[g] = 0;
    total += group_sizes[g];
    const std::size_t k = group_sizes[g];
    ksize_u_[g * W + lane] = k;
    if (k > kmax_j_[g]) kmax_j_[g] = k;
  }
  go[p] = total;
  platform::ProcessorId* procs = processors_l_.data() + lane * mcap_;
  const std::size_t m = group_of.size();
  for (std::size_t u = 0; u < m; ++u) {
    const std::size_t g = group_of[u];
    if (g < p) {
      const std::size_t r = cursor_[g]++;
      procs[go[g] + r] = static_cast<platform::ProcessorId>(u);
      proc_[(g * mcap_ + r) * W + lane] = u;
    }
  }
  for (std::size_t j = p; j < pcap_; ++j) ksize_u_[j * W + lane] = 0;
  p_u_[lane] = p;
  if (p > pmax_) pmax_ = p;
}

template <std::size_t W>
void LaneEvalBatch<W>::push_intervals(const pipeline::Pipeline& pipeline,
                                      std::span<const IntervalAssignment> intervals) {
  RELAP_ASSERT(size_ < W, "batch is full");
  const std::size_t p = intervals.size();
  RELAP_ASSERT(p >= 1 && p <= pcap_, "an interval mapping needs 1..pcap intervals");
  const std::size_t lane = size_++;
  slot_of_lane_[lane] = kNoSlot;

  CompositionCache& c = cache_[lane];
  c.work.resize(p);
  c.data_first.resize(p);
  c.out_size.resize(p);
  std::size_t* so = stage_offsets_l_.data() + lane * (pcap_ + 1);
  std::size_t* go = group_offsets_l_.data() + lane * (pcap_ + 1);
  platform::ProcessorId* procs = processors_l_.data() + lane * mcap_;
  std::size_t count = 0;
  for (std::size_t j = 0; j < p; ++j) {
    const IntervalAssignment& a = intervals[j];
    so[j] = a.stages.first;
    go[j] = count;
    for (std::size_t i = 0; i < a.processors.size(); ++i) {
      RELAP_ASSERT(i == 0 || a.processors[i - 1] < a.processors[i],
                   "interval groups must be sorted ascending (canonical form)");
      procs[count++] = a.processors[i];
    }
    c.work[j] = pipeline.work_sum(a.stages.first, a.stages.last);
    c.data_first[j] = pipeline.data(a.stages.first);
    c.out_size[j] = pipeline.data(a.stages.last + 1);
  }
  so[p] = intervals.back().stages.last + 1;
  go[p] = count;
  c.data_out = pipeline.data(pipeline.stage_count());

  stage_lane_columns(lane, p);
}

/// Interval-mode column staging: scatters the contiguous per-lane rows
/// written by `push_intervals` into the lane-major columns. Zeroed group
/// sizes past the lane's structure make every `r < k` / `j < p` mask
/// naturally false there; other staging stays stale (valid ids, finite
/// doubles) and is discarded by the masks.
template <std::size_t W>
void LaneEvalBatch<W>::stage_lane_columns(std::size_t lane, std::size_t p) {
  const std::size_t* go = group_offsets_l_.data() + lane * (pcap_ + 1);
  const platform::ProcessorId* procs = processors_l_.data() + lane * mcap_;
  p_u_[lane] = p;
  for (std::size_t j = 0; j < p; ++j) {
    const std::size_t k = go[j + 1] - go[j];
    ksize_u_[j * W + lane] = k;
    if (k > kmax_j_[j]) kmax_j_[j] = k;
    for (std::size_t r = 0; r < k; ++r) {
      proc_[(j * mcap_ + r) * W + lane] = procs[go[j] + r];
    }
  }
  for (std::size_t j = p; j < pcap_; ++j) ksize_u_[j * W + lane] = 0;
  if (p > pmax_) pmax_ = p;
}

template <std::size_t W>
void LaneEvalBatch<W>::clear() {
  size_ = 0;
  pmax_ = 0;
  std::fill(kmax_j_.begin(), kmax_j_.end(), 0);
  slot_refs_.fill(0);
}

template <std::size_t W>
MappingView LaneEvalBatch<W>::view(std::size_t lane) const {
  RELAP_ASSERT(lane < size_, "lane out of range");
  const std::size_t slot = slot_of_lane_[lane];
  const std::size_t p = static_cast<std::size_t>(p_u_[lane]);
  const std::size_t* so = slot == kNoSlot ? stage_offsets_l_.data() + lane * (pcap_ + 1)
                                          : slots_[slot].stage_offsets.data();
  const std::size_t* go = group_offsets_l_.data() + lane * (pcap_ + 1);
  return MappingView{std::span<const std::size_t>(so, p + 1),
                     std::span<const platform::ProcessorId>(
                         processors_l_.data() + lane * mcap_, go[p]),
                     std::span<const std::size_t>(go, p + 1)};
}

template <std::size_t W>
void LaneEvalBatch<W>::evaluate(const platform::Platform& platform,
                                std::span<ViewEval> out) const {
  RELAP_ASSERT(out.size() >= size_, "output span too small for the staged lanes");
  if (size_ == 0) return;

  using D = simd::DoubleLanes<W>;
  using U = simd::UintLanes<W>;

  const double* speeds = platform.speeds().data();
  const U p_lanes = simd::load_u<W>(p_u_.data());

  // Source of the composition columns: a batch whose lanes all pin the same
  // slot (the common enumeration case) broadcasts straight from it; a mixed
  // batch falls back to filling the lane-major scratch columns from each
  // lane's pinned composition.
  const CompositionCache* uni = nullptr;
  {
    const std::size_t s0 = slot_of_lane_[0];
    bool uniform = s0 != kNoSlot;
    for (std::size_t l = 1; l < size_ && uniform; ++l) uniform = slot_of_lane_[l] == s0;
    if (uniform) {
      uni = &slots_[s0].cache;
    } else {
      for (std::size_t l = 0; l < size_; ++l) {
        const CompositionCache& c = cache(l);
        const std::size_t p = static_cast<std::size_t>(p_u_[l]);
        for (std::size_t j = 0; j < p; ++j) {
          work_[j * W + l] = c.work[j];
          dfirst_[j * W + l] = c.data_first[j];
          dout_[j * W + l] = c.out_size[j];
        }
        dlast_[l] = c.data_out;
      }
    }
  }

  // --- latency: the lane transcription of latency_eq1_view / latency_eq2_view.
  D latency;
  if (platform.has_homogeneous_links()) {
    const D inv_b = simd::broadcast<W>(platform.inv_common_bandwidth());
    simd::KahanLanes<W> total;
    for (std::size_t j = 0; j < pmax_; ++j) {
      const U active = simd::less_u(simd::broadcast_u<W>(j), p_lanes);
      const U ku = simd::load_u<W>(ksize_u_.data() + j * W);
      const D kd = simd::to_double_lanes<W>(ku);
      const D df = uni != nullptr ? simd::broadcast<W>(j < uni->data_first.size()
                                                           ? uni->data_first[j]
                                                           : 0.0)
                                  : simd::load<W>(dfirst_.data() + j * W);
      total.add_masked(simd::mul(simd::mul(kd, df), inv_b), active);
      D lo = simd::broadcast<W>(std::numeric_limits<double>::infinity());
      for (std::size_t r = 0; r < kmax_j_[j]; ++r) {
        const U rm = simd::less_u(simd::broadcast_u<W>(r), ku);
        const U ids = simd::load_u<W>(proc_.data() + (j * mcap_ + r) * W);
        lo = simd::select(rm, simd::min(simd::gather(speeds, ids), lo), lo);
      }
      const D work = uni != nullptr
                         ? simd::broadcast<W>(j < uni->work.size() ? uni->work[j] : 0.0)
                         : simd::load<W>(work_.data() + j * W);
      total.add_masked(simd::div(work, lo), active);
    }
    const D dlast = uni != nullptr ? simd::broadcast<W>(uni->data_out)
                                   : simd::load<W>(dlast_.data());
    total.add(simd::mul(dlast, inv_b));
    latency = total.value();
  } else {
    const double* inv_speeds = platform.inv_speeds().data();
    const double* inv_bw_in = platform.inv_in_bandwidths().data();
    const double* inv_bw_out = platform.inv_out_bandwidths().data();
    const double* flat_inv_bw = platform.flat_inv_link_bandwidths().data();
    const std::uint64_t m = platform.processor_count();
    simd::KahanLanes<W> total;

    // Serialized initial transfers into the first interval's replicas.
    {
      const U k0 = simd::load_u<W>(ksize_u_.data());
      const D df0 = uni != nullptr ? simd::broadcast<W>(uni->data_first[0])
                                   : simd::load<W>(dfirst_.data());
      for (std::size_t r = 0; r < kmax_j_[0]; ++r) {
        const U rm = simd::less_u(simd::broadcast_u<W>(r), k0);
        const U ids = simd::load_u<W>(proc_.data() + r * W);
        total.add_masked(simd::mul(df0, simd::gather(inv_bw_in, ids)), rm);
      }
    }

    for (std::size_t j = 0; j < pmax_; ++j) {
      const U active = simd::less_u(simd::broadcast_u<W>(j), p_lanes);
      const U lastj = simd::equal_u(simd::broadcast_u<W>(j + 1), p_lanes);
      const D work = uni != nullptr
                         ? simd::broadcast<W>(j < uni->work.size() ? uni->work[j] : 0.0)
                         : simd::load<W>(work_.data() + j * W);
      const D out_size = uni != nullptr
                             ? simd::broadcast<W>(j < uni->out_size.size() ? uni->out_size[j] : 0.0)
                             : simd::load<W>(dout_.data() + j * W);
      const U ku = simd::load_u<W>(ksize_u_.data() + j * W);
      // Receiver-side columns of the *next* interval are invariant across
      // the sender loop: hoist the ids and their `rv < k_{j+1}` masks. A
      // lane whose structure ends at j + 1 (or earlier) has a zeroed next
      // group size, so its send masks are false and only the `lastj` P_out
      // term applies.
      const std::size_t kvmax = j + 1 < pmax_ ? kmax_j_[j + 1] : 0;
      U* const v_ids = v_ids_.data();
      U* const v_mask = v_mask_.data();
      if (kvmax > 0) {
        const U kv = simd::load_u<W>(ksize_u_.data() + (j + 1) * W);
        for (std::size_t rv = 0; rv < kvmax; ++rv) {
          v_ids[rv] = simd::load_u<W>(proc_.data() + ((j + 1) * mcap_ + rv) * W);
          v_mask[rv] = simd::less_u(simd::broadcast_u<W>(rv), kv);
        }
      }
      D worst = simd::broadcast<W>(0.0);
      for (std::size_t ru = 0; ru < kmax_j_[j]; ++ru) {
        const U um = simd::less_u(simd::broadcast_u<W>(ru), ku);
        const U u_ids = simd::load_u<W>(proc_.data() + (j * mcap_ + ru) * W);
        D term = simd::mul(work, simd::gather(inv_speeds, u_ids));
        // Row base of the flat bandwidth matrix, shared by every receiver.
        const U u_row = simd::mul_u(u_ids, simd::broadcast_u<W>(m));
        for (std::size_t rv = 0; rv < kvmax; ++rv) {
          term = simd::select(
              v_mask[rv],
              simd::add(term, simd::mul(out_size,
                                        simd::gather(flat_inv_bw, simd::add_u(u_row, v_ids[rv])))),
              term);
        }
        term = simd::select(
            lastj, simd::add(term, simd::mul(out_size, simd::gather(inv_bw_out, u_ids))), term);
        worst = simd::select(um, simd::max(term, worst), worst);
      }
      total.add_masked(worst, active);
    }
    latency = total.value();
  }

  // --- failure probability: lane transcription of failure_probability_view.
  const double* fps = platform.failure_probs().data();
  const D one = simd::broadcast<W>(1.0);
  D survival = one;
  for (std::size_t j = 0; j < pmax_; ++j) {
    const U active = simd::less_u(simd::broadcast_u<W>(j), p_lanes);
    const U ku = simd::load_u<W>(ksize_u_.data() + j * W);
    D product = one;
    for (std::size_t r = 0; r < kmax_j_[j]; ++r) {
      const U rm = simd::less_u(simd::broadcast_u<W>(r), ku);
      const U ids = simd::load_u<W>(proc_.data() + (j * mcap_ + r) * W);
      product = simd::select(rm, simd::mul(product, simd::gather(fps, ids)), product);
    }
    survival = simd::select(active, simd::mul(survival, simd::sub(one, product)), survival);
  }
  const D failure = simd::sub(one, survival);

  for (std::size_t l = 0; l < size_; ++l) {
    out[l] = ViewEval{latency.v[l], failure.v[l]};
  }
}

template class LaneEvalBatch<1>;
template class LaneEvalBatch<4>;
template class LaneEvalBatch<8>;

}  // namespace relap::mapping
