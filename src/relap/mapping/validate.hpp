#pragma once

/// \file validate.hpp
/// Instance-compatibility validation for mappings.
///
/// Structural invariants (consecutive intervals, disjoint non-empty groups)
/// are enforced by the mapping constructors as programming contracts. This
/// module checks the *runtime* conditions that depend on a concrete pipeline
/// and platform — stage counts matching, processor ids in range, one-to-one
/// feasibility — and reports failures as `Expected` errors, because mappings
/// read from instance files or produced by external tools are ordinary
/// untrusted input.

#include "relap/mapping/general_mapping.hpp"
#include "relap/mapping/interval_mapping.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"
#include "relap/util/expected.hpp"

namespace relap::mapping {

/// Marker for successful validation.
struct Valid {};

/// Checks that `mapping` covers exactly the pipeline's stages and only names
/// processors of `platform`.
[[nodiscard]] util::Expected<Valid> validate(const pipeline::Pipeline& pipeline,
                                             const platform::Platform& platform,
                                             const IntervalMapping& mapping);

/// Same for general mappings.
[[nodiscard]] util::Expected<Valid> validate(const pipeline::Pipeline& pipeline,
                                             const platform::Platform& platform,
                                             const GeneralMapping& mapping);

/// `validate` plus the one-to-one restriction of Theorem 3: all stages on
/// pairwise distinct processors (requires n <= m).
[[nodiscard]] util::Expected<Valid> validate_one_to_one(const pipeline::Pipeline& pipeline,
                                                        const platform::Platform& platform,
                                                        const GeneralMapping& mapping);

}  // namespace relap::mapping
