#include "relap/io/instance_format.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <sstream>
#include <vector>

#include "relap/util/bytes.hpp"
#include "relap/util/strings.hpp"

namespace relap::io {

namespace {

/// A comment-stripped, trimmed line with its 1-based source position.
struct Line {
  int number;
  std::string_view text;
};

std::vector<Line> significant_lines(std::string_view text) {
  std::vector<Line> lines;
  int number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    ++number;
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = util::trim(line);
    if (!line.empty()) lines.push_back(Line{number, line});
    if (end == text.size()) break;
    start = end + 1;
  }
  return lines;
}

/// Cursor over significant lines with one-token-lookahead helpers.
class Reader {
 public:
  explicit Reader(std::vector<Line> lines) : lines_(std::move(lines)) {}

  [[nodiscard]] bool done() const { return index_ >= lines_.size(); }
  [[nodiscard]] const Line& peek() const { return lines_[index_]; }
  const Line& next() { return lines_[index_++]; }
  [[nodiscard]] int last_line() const {
    return lines_.empty() ? 0 : lines_[std::min(index_, lines_.size() - 1)].number;
  }

 private:
  std::vector<Line> lines_;
  std::size_t index_ = 0;
};

util::Expected<std::vector<double>> parse_value_line(const Line& line, std::string_view keyword,
                                                     std::size_t expected_count) {
  const std::vector<std::string_view> tokens = util::split_ws(line.text);
  if (tokens.empty() || tokens.front() != keyword) {
    return util::parse_error(line.number, "expected '" + std::string(keyword) + " ...'");
  }
  std::vector<double> values;
  values.reserve(tokens.size() - 1);
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::optional<double> v = util::parse_double(tokens[i]);
    if (!v) {
      return util::parse_error(line.number, "bad number '" + std::string(tokens[i]) + "'");
    }
    values.push_back(*v);
  }
  if (values.size() != expected_count) {
    return util::parse_error(line.number, "expected " + std::to_string(expected_count) +
                                              " values after '" + std::string(keyword) +
                                              "', got " + std::to_string(values.size()));
  }
  return values;
}

util::Expected<std::size_t> parse_count_line(const Line& line, std::string_view keyword) {
  const std::vector<std::string_view> tokens = util::split_ws(line.text);
  if (tokens.size() != 2 || tokens.front() != keyword) {
    return util::parse_error(line.number, "expected '" + std::string(keyword) + " <count>'");
  }
  const std::optional<std::size_t> count = util::parse_size(tokens[1]);
  if (!count || *count == 0) {
    return util::parse_error(line.number, "count must be a positive integer");
  }
  return *count;
}

}  // namespace

util::Expected<Instance> parse_instance(std::string_view text) {
  Reader reader(significant_lines(text));
  if (reader.done() || reader.next().text != "relap-instance v1") {
    return util::parse_error(1, "missing 'relap-instance v1' header");
  }

  if (reader.done()) return util::parse_error(reader.last_line(), "missing 'pipeline' section");
  auto stage_count = parse_count_line(reader.next(), "pipeline");
  if (!stage_count) return stage_count.error();

  if (reader.done()) return util::parse_error(reader.last_line(), "missing 'work' line");
  auto work = parse_value_line(reader.next(), "work", *stage_count);
  if (!work) return work.error();

  if (reader.done()) return util::parse_error(reader.last_line(), "missing 'data' line");
  auto data = parse_value_line(reader.next(), "data", *stage_count + 1);
  if (!data) return data.error();

  if (reader.done()) return util::parse_error(reader.last_line(), "missing 'platform' section");
  auto proc_count = parse_count_line(reader.next(), "platform");
  if (!proc_count) return proc_count.error();
  const std::size_t m = *proc_count;

  if (reader.done()) return util::parse_error(reader.last_line(), "missing 'speeds' line");
  auto speeds = parse_value_line(reader.next(), "speeds", m);
  if (!speeds) return speeds.error();

  if (reader.done()) return util::parse_error(reader.last_line(), "missing 'failures' line");
  auto failures = parse_value_line(reader.next(), "failures", m);
  if (!failures) return failures.error();

  if (reader.done()) return util::parse_error(reader.last_line(), "missing 'links' line");
  const Line links_line = reader.next();
  const std::vector<std::string_view> link_tokens = util::split_ws(links_line.text);
  if (link_tokens.empty() || link_tokens.front() != "links") {
    return util::parse_error(links_line.number, "expected 'links uniform <b>' or 'links matrix'");
  }

  std::vector<std::vector<double>> link;
  std::vector<double> in;
  std::vector<double> out;
  if (link_tokens.size() == 3 && link_tokens[1] == "uniform") {
    const std::optional<double> b = util::parse_double(link_tokens[2]);
    if (!b || *b <= 0.0) {
      return util::parse_error(links_line.number, "uniform bandwidth must be positive");
    }
    link.assign(m, std::vector<double>(m, *b));
    in.assign(m, *b);
    out.assign(m, *b);
  } else if (link_tokens.size() == 2 && link_tokens[1] == "matrix") {
    for (std::size_t u = 0; u < m; ++u) {
      if (reader.done()) return util::parse_error(reader.last_line(), "missing 'row' line");
      auto row = parse_value_line(reader.next(), "row", m);
      if (!row) return row.error();
      std::vector<double> values = std::move(row).take();
      // The diagonal entry is ignored by the model; normalize it so the
      // Platform constructor's positivity check never sees it.
      values[u] = 1.0;
      link.push_back(std::move(values));
    }
    if (reader.done()) return util::parse_error(reader.last_line(), "missing 'in' line");
    auto in_values = parse_value_line(reader.next(), "in", m);
    if (!in_values) return in_values.error();
    in = std::move(in_values).take();
    if (reader.done()) return util::parse_error(reader.last_line(), "missing 'out' line");
    auto out_values = parse_value_line(reader.next(), "out", m);
    if (!out_values) return out_values.error();
    out = std::move(out_values).take();
  } else {
    return util::parse_error(links_line.number, "expected 'links uniform <b>' or 'links matrix'");
  }

  if (!reader.done()) {
    return util::parse_error(reader.peek().number, "unexpected trailing content");
  }

  // Semantic validation (positive speeds, fp in [0,1], ...) lives in the
  // model constructors; translate contract violations into parse errors by
  // pre-checking the few things RELAP_ASSERT would abort on.
  for (const double s : *speeds) {
    if (!(s > 0.0)) return util::parse_error(0, "speeds must be positive");
  }
  for (const double f : *failures) {
    if (!(f >= 0.0 && f <= 1.0)) return util::parse_error(0, "failure probabilities must be in [0,1]");
  }
  for (const auto& row : link) {
    for (const double b : row) {
      if (!(b > 0.0)) return util::parse_error(0, "bandwidths must be positive");
    }
  }
  for (const double b : in) {
    if (!(b > 0.0)) return util::parse_error(0, "bandwidths must be positive");
  }
  for (const double b : out) {
    if (!(b > 0.0)) return util::parse_error(0, "bandwidths must be positive");
  }
  for (const double w : *work) {
    if (!(w >= 0.0)) return util::parse_error(0, "work must be non-negative");
  }
  for (const double d : *data) {
    if (!(d >= 0.0)) return util::parse_error(0, "data sizes must be non-negative");
  }

  return Instance{pipeline::Pipeline(std::move(*work), std::move(*data)),
                  platform::Platform(std::move(*speeds), std::move(*failures), std::move(link),
                                     std::move(in), std::move(out))};
}

util::Expected<Instance> load_instance(const std::string& path) {
  std::ifstream file(path);
  if (!file) return util::make_error("io", "cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_instance(buffer.str());
}

std::string format_instance(const Instance& instance) {
  const pipeline::Pipeline& pipe = instance.pipeline;
  const platform::Platform& plat = instance.platform;
  const std::size_t m = plat.processor_count();

  std::string text = "relap-instance v1\n";
  text += "pipeline " + std::to_string(pipe.stage_count()) + '\n';
  text += "work";
  for (const double w : pipe.work_vector()) text += ' ' + util::format_double(w);
  text += "\ndata";
  for (const double d : pipe.data_vector()) text += ' ' + util::format_double(d);
  text += "\nplatform " + std::to_string(m) + '\n';
  text += "speeds";
  for (const double s : plat.speeds()) text += ' ' + util::format_double(s);
  text += "\nfailures";
  for (const double f : plat.failure_probs()) text += ' ' + util::format_double(f);
  text += '\n';

  if (plat.has_homogeneous_links()) {
    text += "links uniform " + util::format_double(plat.common_bandwidth()) + '\n';
  } else {
    text += "links matrix\n";
    for (std::size_t u = 0; u < m; ++u) {
      text += "row";
      for (std::size_t v = 0; v < m; ++v) {
        text += ' ' + util::format_double(u == v ? 1.0 : plat.bandwidth(u, v));
      }
      text += '\n';
    }
    text += "in";
    for (std::size_t u = 0; u < m; ++u) text += ' ' + util::format_double(plat.bandwidth_in(u));
    text += "\nout";
    for (std::size_t u = 0; u < m; ++u) text += ' ' + util::format_double(plat.bandwidth_out(u));
    text += '\n';
  }
  return text;
}

void append_instance_key_bytes(const pipeline::Pipeline& pipeline,
                               const platform::Platform& platform, std::string& out) {
  // Explicitly little-endian via util/bytes so the key bytes — and every
  // canonical hash and snapshot derived from them — are portable across
  // hosts. Layout is known-answer pinned in tests/test_util_bytes.cpp.
  const std::size_t m = platform.processor_count();
  out.reserve(out.size() + 8 * (2 + pipeline.stage_count() * 2 + 1 + m * (4 + m)));
  util::bytes::append_u64_le(out, pipeline.stage_count());
  util::bytes::append_u64_le(out, m);
  util::bytes::append_doubles_le(out, pipeline.work_vector());
  util::bytes::append_doubles_le(out, pipeline.data_vector());
  util::bytes::append_doubles_le(out, platform.speeds());
  util::bytes::append_doubles_le(out, platform.failure_probs());
  util::bytes::append_doubles_le(out, platform.in_bandwidths());
  util::bytes::append_doubles_le(out, platform.out_bandwidths());
  for (std::size_t u = 0; u < m; ++u) {
    for (std::size_t v = 0; v < m; ++v) {
      if (u != v) util::bytes::append_double_le(out, platform.bandwidth(u, v));
    }
  }
}

util::Expected<bool> save_instance(const Instance& instance, const std::string& path) {
  std::ofstream file(path);
  if (!file) return util::make_error("io", "cannot open '" + path + "' for writing");
  file << format_instance(instance);
  if (!file) return util::make_error("io", "write to '" + path + "' failed");
  return true;
}

util::Expected<mapping::IntervalMapping> parse_mapping(std::string_view text) {
  std::vector<mapping::IntervalAssignment> intervals;
  for (const std::string_view token : util::split_ws(text)) {
    // Token shape: [a..b]->{x,y,z}
    const std::size_t dots = token.find("..");
    const std::size_t close = token.find("]->{");
    if (token.empty() || token.front() != '[' || token.back() != '}' ||
        dots == std::string_view::npos || close == std::string_view::npos || dots > close) {
      return util::parse_error(0, "bad interval token '" + std::string(token) + "'");
    }
    const std::optional<std::size_t> first = util::parse_size(token.substr(1, dots - 1));
    const std::optional<std::size_t> last =
        util::parse_size(token.substr(dots + 2, close - dots - 2));
    if (!first || !last || *first > *last) {
      return util::parse_error(0, "bad interval bounds in '" + std::string(token) + "'");
    }
    std::vector<platform::ProcessorId> processors;
    const std::string_view group = token.substr(close + 4, token.size() - close - 5);
    for (const std::string_view id_token : util::split(group, ',')) {
      const std::optional<std::size_t> id = util::parse_size(util::trim(id_token));
      if (!id) return util::parse_error(0, "bad processor id in '" + std::string(token) + "'");
      processors.push_back(*id);
    }
    if (processors.empty()) {
      return util::parse_error(0, "empty replica group in '" + std::string(token) + "'");
    }
    intervals.push_back(mapping::IntervalAssignment{{*first, *last}, std::move(processors)});
  }
  if (intervals.empty()) return util::parse_error(0, "empty mapping");
  // Re-validate the structural invariants the constructor asserts, as parse
  // errors rather than aborts.
  if (intervals.front().stages.first != 0) {
    return util::parse_error(0, "first interval must start at stage 0");
  }
  for (std::size_t j = 1; j < intervals.size(); ++j) {
    if (intervals[j].stages.first != intervals[j - 1].stages.last + 1) {
      return util::parse_error(0, "intervals must be consecutive");
    }
  }
  std::vector<platform::ProcessorId> all;
  for (const auto& a : intervals) {
    for (const platform::ProcessorId u : a.processors) all.push_back(u);
  }
  std::sort(all.begin(), all.end());
  if (std::adjacent_find(all.begin(), all.end()) != all.end()) {
    return util::parse_error(0, "replica groups must be disjoint");
  }
  return mapping::IntervalMapping(std::move(intervals));
}

std::string format_mapping(const mapping::IntervalMapping& mapping) { return mapping.describe(); }

}  // namespace relap::io
