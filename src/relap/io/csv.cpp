#include "relap/io/csv.hpp"

#include <fstream>

#include "relap/util/assert.hpp"
#include "relap/util/strings.hpp"

namespace relap::io {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

CsvWriter::CsvWriter(std::vector<std::string> columns) : columns_(columns.size()) {
  RELAP_ASSERT(!columns.empty(), "CSV needs at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    append_cell(columns[i], i == 0);
  }
  buffer_ += '\n';
}

void CsvWriter::append_cell(const std::string& cell, bool first) {
  if (!first) buffer_ += ',';
  buffer_ += csv_escape(cell);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  RELAP_ASSERT(cells.size() == columns_, "row width must match the declared columns");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    append_cell(cells[i], i == 0);
  }
  buffer_ += '\n';
  ++rows_;
}

void CsvWriter::add_numeric_row(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) formatted.push_back(util::format_double(v));
  add_row(formatted);
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << buffer_;
  return static_cast<bool>(file);
}

}  // namespace relap::io
