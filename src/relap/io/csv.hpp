#pragma once

/// \file csv.hpp
/// Minimal CSV emission for benches and examples: fixed column set declared
/// up front, type-checked row length, RFC-4180-style quoting of text cells.

#include <iosfwd>
#include <string>
#include <vector>

namespace relap::io {

/// Accumulates a CSV table in memory; `str()` yields the document.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> columns);

  /// Adds a row of already-formatted cells. Precondition: one cell per column.
  void add_row(const std::vector<std::string>& cells);

  /// Adds a row of numeric cells formatted with format_double.
  void add_numeric_row(const std::vector<double>& cells);

  [[nodiscard]] std::size_t row_count() const { return rows_; }
  [[nodiscard]] const std::string& str() const { return buffer_; }

  /// Writes the document to a file; returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  void append_cell(const std::string& cell, bool first);

  std::size_t columns_;
  std::size_t rows_ = 0;
  std::string buffer_;
};

/// Quotes a cell if it contains separators, quotes or newlines.
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace relap::io
