#pragma once

/// \file instance_format.hpp
/// Plain-text instance format: a pipeline plus a platform in one file,
/// parsed and written losslessly (round-trip tested). Mappings have their
/// own compact one-line syntax for the CLI tool.
///
/// Format (line-oriented, '#' starts a comment, blank lines ignored):
///
///     relap-instance v1
///     pipeline 3
///     work 1 2 3
///     data 1 1 1 1
///     platform 2
///     speeds 1 2
///     failures 0.1 0.2
///     links uniform 5
///
/// or, for Fully Heterogeneous platforms:
///
///     links matrix
///     row 0 4 2          # m values per row; the diagonal entry is ignored
///     row 2 0 7
///     in 1 3
///     out 2 2
///
/// Mapping syntax (whitespace-separated intervals):
///
///     [0..1]->{0,2} [2..2]->{1}

#include <iosfwd>
#include <string>

#include "relap/mapping/interval_mapping.hpp"
#include "relap/pipeline/pipeline.hpp"
#include "relap/platform/platform.hpp"
#include "relap/util/expected.hpp"

namespace relap::io {

/// A parsed instance: the application and the target platform.
struct Instance {
  pipeline::Pipeline pipeline;
  platform::Platform platform;
};

/// Parses the textual format above. Errors carry the offending line number.
[[nodiscard]] util::Expected<Instance> parse_instance(std::string_view text);

/// Reads and parses a file. Errors: "io" when unreadable, else parse errors.
[[nodiscard]] util::Expected<Instance> load_instance(const std::string& path);

/// Serializes an instance in the format `parse_instance` accepts.
[[nodiscard]] std::string format_instance(const Instance& instance);

/// Writes `format_instance` to a file. Error code "io" on failure.
[[nodiscard]] util::Expected<bool> save_instance(const Instance& instance,
                                                 const std::string& path);

/// Compact binary serialization of an instance, used by the service layer as
/// the cache-key payload (service/cache.hpp): stage and processor counts
/// followed by the raw little-endian IEEE-754 bit patterns of every column in
/// a fixed order (work, data, speeds, failure probabilities, P_in/P_out
/// bandwidths, then the off-diagonal link matrix row-major). Two instances
/// produce the same bytes iff they are bit-identical as problems — the
/// ignored link-matrix diagonal is excluded. Appends to `out`.
void append_instance_key_bytes(const pipeline::Pipeline& pipeline,
                               const platform::Platform& platform, std::string& out);

/// Parses the one-line mapping syntax.
[[nodiscard]] util::Expected<mapping::IntervalMapping> parse_mapping(std::string_view text);

/// Serializes a mapping in the syntax `parse_mapping` accepts.
[[nodiscard]] std::string format_mapping(const mapping::IntervalMapping& mapping);

}  // namespace relap::io
