#pragma once

/// \file assert.hpp
/// Contract-checking macros for relap.
///
/// `RELAP_ASSERT` guards *programming errors* (violated preconditions or
/// invariants). It is active in all build types: the algorithms in this
/// library are cheap relative to the cost of silently producing a wrong
/// mapping, so we never compile the checks out. Failures print the condition,
/// an explanatory message and the source location, then abort.

#include <string_view>

namespace relap::util {

/// Prints a diagnostic for a failed contract and aborts the process.
/// Exposed as a function (rather than inlining everything in the macro) to
/// keep call sites small.
[[noreturn]] void assert_fail(std::string_view condition, std::string_view message,
                              std::string_view file, int line);

}  // namespace relap::util

#define RELAP_ASSERT(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::relap::util::assert_fail(#cond, (msg), __FILE__, __LINE__);          \
    }                                                                        \
  } while (false)

/// Marks code paths that are logically impossible to reach.
#define RELAP_UNREACHABLE(msg) ::relap::util::assert_fail("unreachable", (msg), __FILE__, __LINE__)
