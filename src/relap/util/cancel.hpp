#pragma once

/// \file cancel.hpp
/// Cooperative cancellation for long-running solver drivers.
///
/// A `CancelToken` is an atomic flag plus an optional wall-clock deadline.
/// The parallel enumeration and heuristic drivers poll `cancelled()` at
/// chunk granularity (thousands of candidates per check, so the clock read
/// is off the per-candidate hot path) and abandon the remaining work when it
/// trips; the entry point then returns a structured "cancelled" error
/// instead of a result. Cancellation therefore never changes *what* a
/// successful solve computes — a cancelled solve has no result at all —
/// which keeps the bit-identical determinism contract intact.
///
/// The broker (service/broker.hpp) is the main producer: it arms one token
/// per dispatch group with the group's tightest deadline, so a solve that
/// outlives its request's wall-clock budget stops burning pool time instead
/// of completing into a reply nobody can use.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace relap::util {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trips the token; `cancelled()` is true from now on.
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }

  /// Trips the token automatically once `Clock::now()` reaches `deadline`.
  void set_deadline(Clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(), std::memory_order_relaxed);
  }

  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// True iff `cancel()` was called or the deadline (if any) has passed.
  /// Reads the clock only when a deadline is armed.
  [[nodiscard]] bool cancelled() const noexcept {
    if (flag_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != kNoDeadline && Clock::now().time_since_epoch().count() >= deadline;
  }

 private:
  static constexpr std::int64_t kNoDeadline = INT64_MAX;

  std::atomic<bool> flag_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

/// `token && token->cancelled()` — the null-tolerant check the option
/// structs' `const CancelToken* cancel` members are polled through.
[[nodiscard]] inline bool cancel_requested(const CancelToken* token) noexcept {
  return token != nullptr && token->cancelled();
}

}  // namespace relap::util
