#include "relap/util/strings.hpp"

#include <charconv>
#include <cstdio>

namespace relap::util {

namespace {
bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_ws(s[begin])) ++begin;
  while (end > begin && is_ws(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_ws(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_ws(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::optional<double> parse_double(std::string_view token) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<std::size_t> parse_size(std::string_view token) {
  std::size_t value = 0;
  const char* begin = token.data();
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string format_double(double value) {
  // Small integers print as integers ("100", not "1e+02"): instance files
  // and describe() strings are read by humans first.
  if (value == static_cast<double>(static_cast<long long>(value)) && value > -1e15 &&
      value < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // Trim to the shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    double reparsed = 0.0;
    std::sscanf(shorter, "%lf", &reparsed);
    if (reparsed == value) return shorter;
  }
  return buffer;
}

std::string join(const std::vector<std::string>& tokens, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(tokens[i]);
  }
  return out;
}

}  // namespace relap::util
