#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// Every randomized component in relap (generators, heuristics, the failure
/// simulator) takes an explicit 64-bit seed so that runs are reproducible.
/// We use our own SplitMix64/xoshiro256** implementation rather than
/// `std::mt19937` because (a) the stream is identical across standard-library
/// implementations, which matters for cross-platform test goldens, and
/// (b) it is faster for the Monte-Carlo workloads in `relap::sim`.

#include <array>
#include <cstdint>
#include <vector>

#include "relap/util/assert.hpp"

namespace relap::util {

/// The golden-ratio increment of SplitMix64 (2^64 / phi, odd).
inline constexpr std::uint64_t kSplitMix64Gamma = 0x9E3779B97F4A7C15ULL;

/// SplitMix64's output mixing function (finalizer).
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// SplitMix64: used to expand a single seed into the xoshiro state.
/// Reference: Sebastiano Vigna, public-domain implementation.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += kSplitMix64Gamma;
  return splitmix64_mix(state);
}

/// Counter-based (stateless) draw: the value SplitMix64 seeded with `seed`
/// would produce at position `counter`. Unlike a sequential stream, every
/// draw is addressed by an absolute index, so a parallel or lane-batched
/// consumer obtains bit-identical values regardless of chunk grid, thread
/// count or lane width — the Monte-Carlo drivers key their trials on this.
[[nodiscard]] constexpr std::uint64_t counter_hash(std::uint64_t seed, std::uint64_t counter) {
  return splitmix64_mix(seed + (counter + 1) * kSplitMix64Gamma);
}

/// Canonical uint64 -> uniform double in [0, 1): 53 mantissa bits, exactly
/// `Rng::uniform`'s conversion.
[[nodiscard]] constexpr double to_unit_double(std::uint64_t z) {
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

/// xoshiro256** generator. Satisfies `std::uniform_random_bit_generator`.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    // 53 random mantissa bits; the canonical xoshiro conversion.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) {
    RELAP_ASSERT(lo <= hi, "uniform(lo, hi) requires lo <= hi");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's nearly-divisionless bounded sampling.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t bound) {
    RELAP_ASSERT(bound > 0, "uniform_int bound must be positive");
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform size_t index in [0, n). Precondition: n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(static_cast<std::uint64_t>(n)));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Derives an independent child generator; used to give each Monte-Carlo
  /// replicate its own stream without long-range correlation.
  [[nodiscard]] Rng split() { return Rng((*this)() ^ 0xA5A5A5A5DEADBEEFULL); }

  /// Derives `count` child generators by repeated `split()`, in index order.
  /// This is the per-task RNG derivation of `exec::parallel_*`: the children
  /// are pre-split serially, so handing child i to task i yields the same
  /// streams at any thread count.
  [[nodiscard]] std::vector<Rng> split_n(std::size_t count);

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[index(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Returns {0, 1, ..., n-1}.
[[nodiscard]] std::vector<std::size_t> iota_indices(std::size_t n);

}  // namespace relap::util
