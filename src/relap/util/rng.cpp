#include "relap/util/rng.hpp"

#include <numeric>

namespace relap::util {

std::vector<Rng> Rng::split_n(std::size_t count) {
  std::vector<Rng> children;
  children.reserve(count);
  for (std::size_t i = 0; i < count; ++i) children.push_back(split());
  return children;
}

std::vector<std::size_t> iota_indices(std::size_t n) {
  std::vector<std::size_t> out(n);
  std::iota(out.begin(), out.end(), std::size_t{0});
  return out;
}

}  // namespace relap::util
