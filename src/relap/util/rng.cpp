#include "relap/util/rng.hpp"

#include <numeric>

namespace relap::util {

std::vector<std::size_t> iota_indices(std::size_t n) {
  std::vector<std::size_t> out(n);
  std::iota(out.begin(), out.end(), std::size_t{0});
  return out;
}

}  // namespace relap::util
