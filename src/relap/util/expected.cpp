#include "relap/util/expected.hpp"

#include <string>

namespace relap::util {

Error make_error(std::string code, std::string message) {
  return Error{std::move(code), std::move(message)};
}

Error infeasible(std::string message) { return Error{"infeasible", std::move(message)}; }

Error budget_exceeded(std::string message) { return Error{"budget", std::move(message)}; }

Error parse_error(int line, std::string message) {
  return Error{"parse", "line " + std::to_string(line) + ": " + std::move(message)};
}

}  // namespace relap::util
