#pragma once

/// \file enumeration.hpp
/// Combinatorial enumeration primitives used by the exact (exponential)
/// baseline solvers in `relap::algorithms`.
///
/// All enumerators take a callback returning `bool`: `true` continues the
/// enumeration, `false` aborts it early. The enumerator itself returns `true`
/// iff the enumeration ran to completion (was not aborted). Callbacks are
/// templated (not `std::function`) so the enumeration hot loops inline them —
/// the exhaustive solvers visit tens of millions of candidates and a type-
/// erased call per candidate is measurable.
///
/// Beyond the visitors, two *indexers* provide lexicographic rank/unrank over
/// the same enumeration orders, so parallel drivers can split the candidate
/// index space [0, count) into uniform chunks instead of materializing
/// blocks of prefixes:
///  * `CompositionIndexer` — compositions of n into exactly p positive parts;
///  * `GroupingIndexer` — assignments of m items to p disjoint non-empty
///    groups (plus "unused"), the words `for_each_grouping` visits.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "relap/util/assert.hpp"

namespace relap::util {

namespace detail {

template <typename Visit>
bool compose_rec(std::size_t remaining, std::size_t parts_left, std::vector<std::size_t>& parts,
                 const Visit& visit) {
  if (remaining == 0) return visit(std::span<const std::size_t>(parts));
  if (parts_left == 0) return true;  // dead branch, not an abort
  for (std::size_t take = 1; take <= remaining; ++take) {
    // The remaining stages must still fit: with parts_left-1 more parts each
    // of size >= 1 we can absorb anything, so no upper-bound prune is needed
    // beyond `take <= remaining`; but if this is the last allowed part it
    // must take everything.
    if (parts_left == 1 && take != remaining) continue;
    parts.push_back(take);
    const bool keep_going = compose_rec(remaining - take, parts_left - 1, parts, visit);
    parts.pop_back();
    if (!keep_going) return false;
  }
  return true;
}

template <typename Visit>
bool grouping_rec(std::size_t item, std::size_t m, std::size_t p, std::vector<std::size_t>& group_of,
                  std::vector<std::size_t>& group_sizes, std::size_t empty_groups,
                  const Visit& visit) {
  if (item == m) {
    if (empty_groups > 0) return true;  // dead branch
    return visit(std::span<const std::size_t>(group_of));
  }
  // Prune: every still-empty group needs at least one of the remaining items.
  if (empty_groups > m - item) return true;
  for (std::size_t g = 0; g <= p; ++g) {  // g == p means "unused"
    const bool fills_empty = g < p && group_sizes[g] == 0;
    group_of[item] = g;
    if (g < p) ++group_sizes[g];
    const bool keep_going =
        grouping_rec(item + 1, m, p, group_of, group_sizes,
                     fills_empty ? empty_groups - 1 : empty_groups, visit);
    if (g < p) --group_sizes[g];
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace detail

/// Visits every composition of `n` into between 1 and `max_parts` ordered
/// positive parts. A composition (c_1, ..., c_p) with sum n corresponds to the
/// partition of stages [0, n) into intervals of those lengths.
/// Preconditions: n >= 1, max_parts >= 1.
template <typename Visit>
bool for_each_composition(std::size_t n, std::size_t max_parts, const Visit& visit) {
  RELAP_ASSERT(n >= 1, "composition of zero stages");
  RELAP_ASSERT(max_parts >= 1, "need at least one part");
  std::vector<std::size_t> parts;
  parts.reserve(n < max_parts ? n : max_parts);
  return detail::compose_rec(n, n < max_parts ? n : max_parts, parts, visit);
}

/// Number of compositions of n into at most max_parts parts
/// (sum_{p=1}^{min(n,max_parts)} C(n-1, p-1)).
[[nodiscard]] std::uint64_t count_compositions(std::size_t n, std::size_t max_parts);

/// Visits every subset of {0, ..., m-1} (optionally skipping the empty set),
/// as a sorted vector of indices. Precondition: m <= 63.
template <typename Visit>
bool for_each_subset(std::size_t m, bool include_empty, const Visit& visit) {
  RELAP_ASSERT(m <= 63, "subset enumeration limited to 63 elements");
  std::vector<std::size_t> subset;
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = include_empty ? 0 : 1; mask < limit; ++mask) {
    subset.clear();
    for (std::size_t i = 0; i < m; ++i) {
      if ((mask >> i) & 1U) subset.push_back(i);
    }
    if (!visit(subset)) return false;
  }
  return true;
}

/// Visits every k-element combination of {0, ..., m-1} in lexicographic
/// order. Preconditions: k <= m.
template <typename Visit>
bool for_each_combination(std::size_t m, std::size_t k, const Visit& visit) {
  RELAP_ASSERT(k <= m, "combination size exceeds ground set");
  std::vector<std::size_t> comb(k);
  for (std::size_t i = 0; i < k; ++i) comb[i] = i;
  if (k == 0) return visit(std::span<const std::size_t>(comb));
  while (true) {
    if (!visit(std::span<const std::size_t>(comb))) return false;
    // Advance to next lexicographic combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (comb[i] != i + m - k) break;
      if (i == 0) return true;  // last combination visited
    }
    ++comb[i];
    for (std::size_t j = i + 1; j < k; ++j) comb[j] = comb[j - 1] + 1;
  }
}

/// Visits every function g: {0,...,m-1} -> {0,...,p-1, UNUSED} such that each
/// of the p groups is non-empty, where UNUSED = p means "item not assigned to
/// any group". The callback receives the group id per item.
/// This enumerates all ways to pick p disjoint non-empty replica groups out
/// of m processors. Preconditions: p >= 1, m >= p.
template <typename Visit>
bool for_each_grouping(std::size_t m, std::size_t p, const Visit& visit) {
  RELAP_ASSERT(p >= 1, "need at least one group");
  RELAP_ASSERT(m >= p, "cannot fill p groups with fewer than p items");
  std::vector<std::size_t> group_of(m, 0);
  std::vector<std::size_t> group_sizes(p, 0);
  return detail::grouping_rec(0, m, p, group_of, group_sizes, p, visit);
}

/// UNUSED marker for `for_each_grouping`: group id == p.
[[nodiscard]] constexpr std::size_t unused_group(std::size_t p) { return p; }

/// (p+1)^m, the number of raw assignments `for_each_grouping` filters.
[[nodiscard]] std::uint64_t count_raw_groupings(std::size_t m, std::size_t p);

/// Number of ordered sequences of p disjoint non-empty subsets of an m-set
/// (the number of callbacks `for_each_grouping` makes): the surjection-style
/// inclusion-exclusion count sum_{j=0}^{p} (-1)^j C(p,j) (p-j+1)^m ... computed
/// exactly by DP instead. Used by budgeting logic in the exhaustive solver.
[[nodiscard]] std::uint64_t count_groupings(std::size_t m, std::size_t p);

/// Binomial coefficient with saturation at uint64 max.
[[nodiscard]] std::uint64_t binomial(std::size_t n, std::size_t k);

/// The saturation sentinel every counting helper and indexer `count()`
/// sticks at on overflow. A count equal to this is not a real size — callers
/// must reject it before unranking or budgeting against it.
inline constexpr std::uint64_t kSaturated = ~std::uint64_t{0};

/// Saturating uint64 arithmetic for the counting helpers and for clients
/// composing candidate-space sizes from them: once any factor or term
/// saturates, the result sticks at `kSaturated` instead of wrapping.
[[nodiscard]] constexpr std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSaturated / b) return kSaturated;
  return a * b;
}

[[nodiscard]] constexpr std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  if (a > kSaturated - b) return kSaturated;
  return a + b;
}

/// Lexicographic rank/unrank over compositions of `n` into exactly `parts`
/// positive parts, in the order `for_each_composition` visits them (which,
/// restricted to a fixed part count, is lexicographic on the part sequence).
/// Ranks are in [0, C(n-1, parts-1)).
class CompositionIndexer {
 public:
  /// Preconditions: 1 <= parts <= n.
  CompositionIndexer(std::size_t n, std::size_t parts);

  [[nodiscard]] std::size_t total() const { return n_; }
  [[nodiscard]] std::size_t parts() const { return parts_; }

  /// C(n-1, parts-1), saturating at uint64 max.
  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Writes the `rank`-th composition into `lengths` (resized to `parts`).
  /// Precondition: rank < count().
  void unrank(std::uint64_t rank, std::vector<std::size_t>& lengths) const;

  /// Inverse of `unrank`. Precondition: `lengths` is a composition of n into
  /// exactly `parts` positive parts.
  [[nodiscard]] std::uint64_t rank(std::span<const std::size_t> lengths) const;

 private:
  std::size_t n_;
  std::size_t parts_;
  std::uint64_t count_;
};

/// Lexicographic rank/unrank over the words `for_each_grouping(m, p)` visits:
/// functions {0..m-1} -> {0..p} (p = unused) with every group 0..p-1
/// non-empty, ordered lexicographically on (g_0, ..., g_{m-1}).
///
/// The scheme hinges on the completion count depending only on (items left,
/// still-empty groups): N(r, e) = (p+1-e) N(r-1, e) + e N(r-1, e-1), which
/// the constructor tabulates once. unrank is O(m p); `next` (lexicographic
/// successor) is amortized O(p), which is what the chunked enumerators use
/// in their inner loop.
class GroupingIndexer {
 public:
  /// Preconditions: p >= 1, m >= p.
  GroupingIndexer(std::size_t m, std::size_t p);

  [[nodiscard]] std::size_t items() const { return m_; }
  [[nodiscard]] std::size_t groups() const { return p_; }

  /// Number of valid groupings; equals `count_groupings(m, p)`. Saturates.
  [[nodiscard]] std::uint64_t count() const { return completions(m_, p_); }

  /// Writes the `rank`-th grouping into `group_of` (size m) and the group
  /// occupancy into `group_sizes` (size p). Precondition: rank < count().
  void unrank(std::uint64_t rank, std::span<std::size_t> group_of,
              std::span<std::size_t> group_sizes) const;

  /// Inverse of `unrank`. Precondition: `group_of` is a valid grouping word.
  [[nodiscard]] std::uint64_t rank(std::span<const std::size_t> group_of) const;

  /// Advances `group_of` (with its `group_sizes` kept in sync) to the
  /// lexicographic successor. Returns false iff `group_of` was the last
  /// grouping (in which case both spans are left in an unspecified state).
  bool next(std::span<std::size_t> group_of, std::span<std::size_t> group_sizes) const;

 private:
  /// N(items_left, empty): valid completions of a prefix. Saturating.
  [[nodiscard]] std::uint64_t completions(std::size_t items_left, std::size_t empty) const {
    return table_[items_left * (p_ + 1) + empty];
  }

  std::size_t m_;
  std::size_t p_;
  std::vector<std::uint64_t> table_;  // (m+1) x (p+1)
};

/// Rank/unrank over all symbols^length words (stage -> processor
/// assignments), in the little-endian odometer order the serial general
/// enumerator visits: digit 0 spins fastest. The rank is the base-`symbols`
/// value of the word read little-endian.
class AssignmentIndexer {
 public:
  /// Preconditions: length >= 1, symbols >= 1.
  AssignmentIndexer(std::size_t length, std::size_t symbols);

  [[nodiscard]] std::size_t length() const { return length_; }
  [[nodiscard]] std::size_t symbols() const { return symbols_; }

  /// symbols^length, saturating at uint64 max. A saturated count means the
  /// rank space is unaddressable — callers must reject it before unranking.
  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Writes the `rank`-th word into `word` (size length).
  /// Precondition: rank < count() and count() is not saturated.
  void unrank(std::uint64_t rank, std::span<std::size_t> word) const;

  /// Inverse of `unrank`.
  [[nodiscard]] std::uint64_t rank(std::span<const std::size_t> word) const;

  /// Advances `word` to its odometer successor; false iff `word` was the
  /// last word (all digits symbols-1), in which case it wraps to all zeros.
  bool next(std::span<std::size_t> word) const;

 private:
  std::size_t length_;
  std::size_t symbols_;
  std::uint64_t count_;
};

/// Rank/unrank over injections [0, length) -> [0, symbols) in lexicographic
/// order on the word — the serial DFS visit order: at each position, the
/// unused symbols ascending. The rank is mixed-radix with per-position
/// weight fall(symbols-k-1, length-k-1) (completions of the suffix).
class InjectionIndexer {
 public:
  /// Preconditions: 1 <= length <= symbols.
  InjectionIndexer(std::size_t length, std::size_t symbols);

  [[nodiscard]] std::size_t length() const { return length_; }
  [[nodiscard]] std::size_t symbols() const { return symbols_; }

  /// Falling factorial symbols * (symbols-1) * ... * (symbols-length+1),
  /// saturating at uint64 max (see AssignmentIndexer::count on saturation).
  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Writes the `rank`-th injection into `word` (size length); `used` is
  /// reset to size `symbols` and left marking the decoded word, as the
  /// scratch `next` advances with. Precondition: rank < count() and count()
  /// is not saturated.
  void unrank(std::uint64_t rank, std::span<std::size_t> word, std::vector<bool>& used) const;

  /// Inverse of `unrank`. Precondition: `word` is a valid injection.
  [[nodiscard]] std::uint64_t rank(std::span<const std::size_t> word) const;

  /// Advances `word` (with its `used` marks kept in sync) to the
  /// lexicographically next injection; false iff `word` was the last one
  /// (in which case word/used are left in an unspecified state).
  bool next(std::span<std::size_t> word, std::vector<bool>& used) const;

 private:
  std::size_t length_;
  std::size_t symbols_;
  std::uint64_t count_;
  std::vector<std::uint64_t> weights_;  ///< weights_[k] = fall(symbols-k-1, length-k-1)
};

}  // namespace relap::util
