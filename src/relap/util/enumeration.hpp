#pragma once

/// \file enumeration.hpp
/// Combinatorial enumeration primitives used by the exact (exponential)
/// baseline solvers in `relap::algorithms`.
///
/// All enumerators take a callback returning `bool`: `true` continues the
/// enumeration, `false` aborts it early. The enumerator itself returns `true`
/// iff the enumeration ran to completion (was not aborted).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace relap::util {

/// Visits every composition of `n` into between 1 and `max_parts` ordered
/// positive parts. A composition (c_1, ..., c_p) with sum n corresponds to the
/// partition of stages [0, n) into intervals of those lengths.
/// Preconditions: n >= 1, max_parts >= 1.
bool for_each_composition(std::size_t n, std::size_t max_parts,
                          const std::function<bool(std::span<const std::size_t>)>& visit);

/// Number of compositions of n into at most max_parts parts
/// (sum_{p=1}^{min(n,max_parts)} C(n-1, p-1)).
[[nodiscard]] std::uint64_t count_compositions(std::size_t n, std::size_t max_parts);

/// Visits every subset of {0, ..., m-1} (optionally skipping the empty set),
/// as a sorted vector of indices. Precondition: m <= 63.
bool for_each_subset(std::size_t m, bool include_empty,
                     const std::function<bool(const std::vector<std::size_t>&)>& visit);

/// Visits every k-element combination of {0, ..., m-1} in lexicographic
/// order. Preconditions: k <= m.
bool for_each_combination(std::size_t m, std::size_t k,
                          const std::function<bool(std::span<const std::size_t>)>& visit);

/// Visits every function g: {0,...,m-1} -> {0,...,p-1, UNUSED} such that each
/// of the p groups is non-empty, where UNUSED = p means "item not assigned to
/// any group". The callback receives the group id per item.
/// This enumerates all ways to pick p disjoint non-empty replica groups out
/// of m processors. Preconditions: p >= 1, m >= p.
bool for_each_grouping(std::size_t m, std::size_t p,
                       const std::function<bool(std::span<const std::size_t>)>& visit);

/// UNUSED marker for `for_each_grouping`: group id == p.
[[nodiscard]] constexpr std::size_t unused_group(std::size_t p) { return p; }

/// (p+1)^m, the number of raw assignments `for_each_grouping` filters.
[[nodiscard]] std::uint64_t count_raw_groupings(std::size_t m, std::size_t p);

/// Number of ordered sequences of p disjoint non-empty subsets of an m-set
/// (the number of callbacks `for_each_grouping` makes): the surjection-style
/// inclusion-exclusion count sum_{j=0}^{p} (-1)^j C(p,j) (p-j+1)^m ... computed
/// exactly by DP instead. Used by budgeting logic in the exhaustive solver.
[[nodiscard]] std::uint64_t count_groupings(std::size_t m, std::size_t p);

/// Binomial coefficient with saturation at uint64 max.
[[nodiscard]] std::uint64_t binomial(std::size_t n, std::size_t k);

}  // namespace relap::util
