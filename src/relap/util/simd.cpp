#include "relap/util/simd.hpp"

namespace relap::util::simd {

const char* isa_name() {
#if defined(RELAP_SIMD_HAVE_AVX2)
  return "avx2";
#elif defined(RELAP_SIMD_HAVE_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

}  // namespace relap::util::simd
