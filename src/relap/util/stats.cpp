#include "relap/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace relap::util {

double kahan_sum(std::span<const double> values) {
  KahanSum acc;
  for (const double v : values) acc.add(v);
  return acc.value();
}

void StreamingStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.959963984540054 * stddev() / std::sqrt(static_cast<double>(count_));
}

bool approx_equal(double a, double b, double rel_tol, double abs_tol) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

bool definitely_less(double a, double b, double rel_tol, double abs_tol) {
  return a < b && !approx_equal(a, b, rel_tol, abs_tol);
}

}  // namespace relap::util
