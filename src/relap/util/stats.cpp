#include "relap/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "relap/util/assert.hpp"

namespace relap::util {

double kahan_sum(std::span<const double> values) {
  KahanSum acc;
  for (const double v : values) acc.add(v);
  return acc.value();
}

void StreamingStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * (n2 / n);
  m2_ += other.m2_ + delta * delta * (n1 * n2 / n);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.959963984540054 * stddev() / std::sqrt(static_cast<double>(count_));
}

ProportionInterval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  RELAP_ASSERT(trials >= 1, "wilson_interval needs at least one trial");
  RELAP_ASSERT(successes <= trials, "more successes than trials");
  const auto n = static_cast<double>(trials);
  const double p_hat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p_hat + z2 / (2.0 * n)) / denom;
  const double half = z * std::sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)) / denom;
  ProportionInterval interval;
  // At the degenerate rates the matching bound is exactly 0 (resp. 1);
  // pin it so rounding residue cannot exclude a perfect analytic match.
  interval.low = successes == 0 ? 0.0 : std::max(0.0, center - half);
  interval.high = successes == trials ? 1.0 : std::min(1.0, center + half);
  return interval;
}

bool approx_equal(double a, double b, double rel_tol, double abs_tol) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

bool definitely_less(double a, double b, double rel_tol, double abs_tol) {
  return a < b && !approx_equal(a, b, rel_tol, abs_tol);
}

}  // namespace relap::util
