#include "relap/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "relap/util/assert.hpp"

namespace relap::util {

double kahan_sum(std::span<const double> values) {
  KahanSum acc;
  for (const double v : values) acc.add(v);
  return acc.value();
}

void StreamingStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * (n2 / n);
  m2_ += other.m2_ + delta * delta * (n1 * n2 / n);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.959963984540054 * stddev() / std::sqrt(static_cast<double>(count_));
}

ProportionInterval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  RELAP_ASSERT(trials >= 1, "wilson_interval needs at least one trial");
  RELAP_ASSERT(successes <= trials, "more successes than trials");
  const auto n = static_cast<double>(trials);
  const double p_hat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p_hat + z2 / (2.0 * n)) / denom;
  const double half = z * std::sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)) / denom;
  ProportionInterval interval;
  // At the degenerate rates the matching bound is exactly 0 (resp. 1);
  // pin it so rounding residue cannot exclude a perfect analytic match.
  interval.low = successes == 0 ? 0.0 : std::max(0.0, center - half);
  interval.high = successes == trials ? 1.0 : std::min(1.0, center + half);
  return interval;
}

namespace {

/// Continued fraction for the regularized incomplete beta (Lentz's method,
/// the classic Numerical Recipes formulation). Converges in a few dozen
/// iterations for the x < (a+1)/(a+b+2) regime it is called in.
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3e-16;
  constexpr double kTiny = 1e-300;  // floor keeping Lentz denominators nonzero
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double m = static_cast<double>(i);
    const double m2 = 2.0 * m;
    double numerator = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + numerator * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + numerator / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + numerator * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + numerator / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h;
}

/// p-quantile of Beta(a, b) by fixed-count bisection on the monotone CDF.
/// 100 halvings shrink the bracket below one ulp of any double in (0, 1);
/// a fixed count (rather than a convergence test) keeps the result
/// bit-identical across platforms and optimization levels.
double beta_quantile(double a, double b, double p) {
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;  // bracket collapsed to adjacent doubles
    if (regularized_incomplete_beta(a, b, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  RELAP_ASSERT(a > 0.0 && b > 0.0, "beta shapes must be positive");
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                           a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(log_front);
  // Use the continued fraction on whichever tail converges fast and reflect.
  if (x < (a + 1.0) / (a + b + 2.0)) return front * beta_continued_fraction(a, b, x) / a;
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

ProportionInterval clopper_pearson_interval(std::size_t successes, std::size_t trials,
                                            double alpha) {
  RELAP_ASSERT(trials >= 1, "clopper_pearson_interval needs at least one trial");
  RELAP_ASSERT(successes <= trials, "more successes than trials");
  RELAP_ASSERT(alpha > 0.0 && alpha < 1.0, "confidence level must be in (0, 1)");
  const auto n = static_cast<double>(trials);
  const auto s = static_cast<double>(successes);
  ProportionInterval interval;
  interval.low = successes == 0 ? 0.0 : beta_quantile(s, n - s + 1.0, alpha / 2.0);
  interval.high = successes == trials ? 1.0 : beta_quantile(s + 1.0, n - s, 1.0 - alpha / 2.0);
  return interval;
}

}  // namespace relap::util
