#pragma once

/// \file stats.hpp
/// Numerically careful summation and streaming statistics.
///
/// The latency formulas sum many magnitudes-apart terms (tiny communication
/// costs next to large compute terms), and the Monte-Carlo validation
/// aggregates millions of samples, so we provide Kahan-compensated summation
/// and a Welford accumulator instead of naive `+=` loops.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

namespace relap::util {

/// Kahan (compensated) summation.
class KahanSum {
 public:
  void add(double x) {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  [[nodiscard]] double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Compensated sum of a span.
[[nodiscard]] double kahan_sum(std::span<const double> values);

/// Streaming mean / variance / extrema (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x);

  /// Folds `other` into this accumulator (Chan et al.'s pairwise update).
  /// Deterministic: merging the same accumulators in the same order always
  /// yields the same bits, which is how the parallel Monte-Carlo reduction
  /// stays thread-count-invariant.
  void merge(const StreamingStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  /// Half-width of the normal-approximation 95% confidence interval on the
  /// mean. 0 for fewer than two samples.
  [[nodiscard]] double ci95_half_width() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A two-sided confidence interval on a proportion.
struct ProportionInterval {
  double low = 0.0;
  double high = 0.0;

  [[nodiscard]] double center() const { return 0.5 * (low + high); }
  [[nodiscard]] double half_width() const { return 0.5 * (high - low); }
  [[nodiscard]] bool contains(double p, double slack = 0.0) const {
    return p >= low - slack && p <= high + slack;
  }
};

/// Wilson score interval for a binomial proportion with `successes` hits out
/// of `trials` draws (z defaults to the two-sided 95% quantile). Unlike the
/// normal approximation, the interval keeps a positive width when the
/// empirical rate is exactly 0 or 1, so consistency checks against an
/// analytic probability stay meaningful at the extremes.
/// Precondition: trials >= 1, successes <= trials.
[[nodiscard]] ProportionInterval wilson_interval(std::size_t successes, std::size_t trials,
                                                 double z = 1.959963984540054);

/// Clopper-Pearson "exact" two-sided interval for a binomial proportion, at
/// confidence 1 - alpha (default 95%). Inverts the binomial CDF via the
/// regularized incomplete beta function:
///   low  = BetaInv(alpha/2;     s,     n - s + 1)   (0 when s == 0)
///   high = BetaInv(1 - alpha/2; s + 1, n - s)       (1 when s == n)
/// Guaranteed >= nominal coverage for every (n, p) — conservative where the
/// Wilson score interval is approximate — which is what the tri-criteria
/// bench's tiny-trial regimes (a handful of Monte-Carlo repetitions per
/// threshold) need: Wilson's asymptotics have nothing to stand on at n < 30.
/// Deterministic: the beta quantile is found by fixed-count bisection, so
/// identical inputs give bit-identical intervals within one toolchain.
/// (Across libm implementations the lgamma/exp/log calls underneath may
/// differ in the last ulp, so do not feed these bounds into cross-platform
/// result checksums.)
/// Preconditions: trials >= 1, successes <= trials, 0 < alpha < 1.
[[nodiscard]] ProportionInterval clopper_pearson_interval(std::size_t successes,
                                                          std::size_t trials,
                                                          double alpha = 0.05);

/// Regularized incomplete beta function I_x(a, b), the CDF of Beta(a, b) at
/// x. Continued-fraction evaluation (Lentz), accurate to ~1e-15 for the
/// a, b >= 1 shapes the binomial inversion uses. Exposed for tests.
[[nodiscard]] double regularized_incomplete_beta(double a, double b, double x);

/// Relative-tolerance comparison used throughout the tests and Pareto logic:
/// true iff |a-b| <= abs_tol + rel_tol*max(|a|,|b|). Inline: the Pareto-front
/// rejection scan calls this per front point per candidate, which makes it
/// hot in the exhaustive enumeration driver.
[[nodiscard]] inline bool approx_equal(double a, double b, double rel_tol = 1e-9,
                                       double abs_tol = 1e-12) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

/// a is strictly better (smaller) than b beyond tolerance.
[[nodiscard]] inline bool definitely_less(double a, double b, double rel_tol = 1e-9,
                                          double abs_tol = 1e-12) {
  return a < b && !approx_equal(a, b, rel_tol, abs_tol);
}

}  // namespace relap::util
