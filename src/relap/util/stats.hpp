#pragma once

/// \file stats.hpp
/// Numerically careful summation and streaming statistics.
///
/// The latency formulas sum many magnitudes-apart terms (tiny communication
/// costs next to large compute terms), and the Monte-Carlo validation
/// aggregates millions of samples, so we provide Kahan-compensated summation
/// and a Welford accumulator instead of naive `+=` loops.

#include <cstddef>
#include <limits>
#include <span>

namespace relap::util {

/// Kahan (compensated) summation.
class KahanSum {
 public:
  void add(double x) {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  [[nodiscard]] double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Compensated sum of a span.
[[nodiscard]] double kahan_sum(std::span<const double> values);

/// Streaming mean / variance / extrema (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  /// Half-width of the normal-approximation 95% confidence interval on the
  /// mean. 0 for fewer than two samples.
  [[nodiscard]] double ci95_half_width() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Relative-tolerance comparison used throughout the tests and Pareto logic:
/// true iff |a-b| <= abs_tol + rel_tol*max(|a|,|b|).
[[nodiscard]] bool approx_equal(double a, double b, double rel_tol = 1e-9, double abs_tol = 1e-12);

/// a is strictly better (smaller) than b beyond tolerance.
[[nodiscard]] bool definitely_less(double a, double b, double rel_tol = 1e-9,
                                   double abs_tol = 1e-12);

}  // namespace relap::util
