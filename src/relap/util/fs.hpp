#pragma once

/// \file fs.hpp
/// Tiny POSIX filesystem helpers shared by the crash-safe persistence code
/// (service/snapshot.cpp, service/journal.cpp): full-buffer writes and the
/// directory-fsync half of the write -> fsync -> rename -> fsync(dir)
/// durability protocol.

#include <fcntl.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <string_view>

namespace relap::util::fs {

/// Writes all of `bytes` to `fd`, retrying short writes and EINTR.
inline bool write_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t written = ::write(fd, bytes.data(), bytes.size());
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(written));
  }
  return true;
}

/// Directory holding `path` ("." for a bare filename) — the entry that must
/// be fsynced for a rename into it to survive a crash.
inline std::string parent_directory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  return slash == 0 ? "/" : path.substr(0, slash);
}

/// Fsyncs the directory holding `path`, making a rename into it durable.
inline bool fsync_parent_directory(const std::string& path) {
  const std::string dir = parent_directory(path);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return false;
  const bool synced = ::fsync(dir_fd) == 0;
  ::close(dir_fd);
  return synced;
}

}  // namespace relap::util::fs
