#include "relap/util/enumeration.hpp"

#include <algorithm>
#include <limits>

namespace relap::util {


std::uint64_t binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  // 128-bit intermediates: C(64, 32) fits in uint64 but its running products
  // do not. (__extension__ silences -Wpedantic for the GCC/Clang extension.)
  __extension__ typedef unsigned __int128 UWide;
  UWide result = 1;
  for (std::size_t i = 0; i < k; ++i) {
    result = result * static_cast<UWide>(n - i) / static_cast<UWide>(i + 1);
    if (result > static_cast<UWide>(kSaturated)) return kSaturated;
  }
  return static_cast<std::uint64_t>(result);
}

std::uint64_t count_compositions(std::size_t n, std::size_t max_parts) {
  std::uint64_t total = 0;
  for (std::size_t p = 1; p <= std::min(n, max_parts); ++p) {
    total = sat_add(total, binomial(n - 1, p - 1));
  }
  return total;
}

std::uint64_t count_raw_groupings(std::size_t m, std::size_t p) {
  std::uint64_t result = 1;
  for (std::size_t i = 0; i < m; ++i) result = sat_mul(result, static_cast<std::uint64_t>(p + 1));
  return result;
}

std::uint64_t count_groupings(std::size_t m, std::size_t p) {
  // Inclusion-exclusion over which of the p groups stay empty:
  //   sum_{j=0}^{p} (-1)^j C(p, j) (p - j + 1)^m
  // computed with signed 128-bit arithmetic, saturating on overflow.
  // (__int128 is a GCC/Clang extension; __extension__ keeps -Wpedantic
  // quiet. It is exact far beyond any instance the enumerator could visit.)
  __extension__ typedef __int128 Wide;
  Wide total = 0;
  for (std::size_t j = 0; j <= p; ++j) {
    Wide term = static_cast<Wide>(binomial(p, j));
    for (std::size_t i = 0; i < m; ++i) term *= static_cast<Wide>(p - j + 1);
    total += (j % 2 == 0) ? term : -term;
  }
  if (total < 0) return 0;
  if (total > static_cast<Wide>(kSaturated)) return kSaturated;
  return static_cast<std::uint64_t>(total);
}

// ---------------------------------------------------------------------------
// CompositionIndexer
// ---------------------------------------------------------------------------

CompositionIndexer::CompositionIndexer(std::size_t n, std::size_t parts)
    : n_(n), parts_(parts), count_(binomial(n - 1, parts - 1)) {
  RELAP_ASSERT(parts >= 1, "composition needs at least one part");
  RELAP_ASSERT(parts <= n, "cannot split n stages into more than n parts");
}

void CompositionIndexer::unrank(std::uint64_t rank, std::vector<std::size_t>& lengths) const {
  RELAP_ASSERT(rank < count_, "composition rank out of range");
  lengths.clear();
  std::size_t remaining = n_;
  for (std::size_t parts_left = parts_; parts_left > 1; --parts_left) {
    // Choosing `take` for this part leaves C(remaining-take-1, parts_left-2)
    // compositions of the rest; walk take upward until rank falls inside.
    std::size_t take = 1;
    while (true) {
      const std::uint64_t completions = binomial(remaining - take - 1, parts_left - 2);
      if (rank < completions) break;
      rank -= completions;
      ++take;
    }
    lengths.push_back(take);
    remaining -= take;
  }
  lengths.push_back(remaining);
}

std::uint64_t CompositionIndexer::rank(std::span<const std::size_t> lengths) const {
  RELAP_ASSERT(lengths.size() == parts_, "composition has the wrong part count");
  std::uint64_t rank = 0;
  std::size_t remaining = n_;
  for (std::size_t j = 0; j + 1 < parts_; ++j) {
    const std::size_t parts_left = parts_ - j;
    for (std::size_t take = 1; take < lengths[j]; ++take) {
      rank += binomial(remaining - take - 1, parts_left - 2);
    }
    remaining -= lengths[j];
  }
  return rank;
}

// ---------------------------------------------------------------------------
// GroupingIndexer
// ---------------------------------------------------------------------------

GroupingIndexer::GroupingIndexer(std::size_t m, std::size_t p)
    : m_(m), p_(p), table_((m + 1) * (p + 1), 0) {
  RELAP_ASSERT(p >= 1, "need at least one group");
  RELAP_ASSERT(m >= p, "cannot fill p groups with fewer than p items");
  // N(0, 0) = 1; N(0, e > 0) = 0 (an empty suffix cannot fill empty groups);
  // N(r, e) = (p + 1 - e) N(r-1, e) + e N(r-1, e-1): the next item either
  // goes to an already-filled group or "unused" (p + 1 - e choices, empties
  // unchanged) or fills one of the e empty groups.
  table_[0] = 1;
  for (std::size_t r = 1; r <= m; ++r) {
    for (std::size_t e = 0; e <= p; ++e) {
      const std::uint64_t stay = sat_mul(static_cast<std::uint64_t>(p + 1 - e),
                                         table_[(r - 1) * (p + 1) + e]);
      const std::uint64_t fill =
          e == 0 ? 0
                 : sat_mul(static_cast<std::uint64_t>(e), table_[(r - 1) * (p + 1) + (e - 1)]);
      table_[r * (p + 1) + e] = sat_add(stay, fill);
    }
  }
}

void GroupingIndexer::unrank(std::uint64_t rank, std::span<std::size_t> group_of,
                             std::span<std::size_t> group_sizes) const {
  RELAP_ASSERT(group_of.size() == m_, "group_of span has the wrong size");
  RELAP_ASSERT(group_sizes.size() == p_, "group_sizes span has the wrong size");
  RELAP_ASSERT(rank < count(), "grouping rank out of range");
  std::fill(group_sizes.begin(), group_sizes.end(), std::size_t{0});
  std::size_t empty = p_;
  for (std::size_t item = 0; item < m_; ++item) {
    const std::size_t left = m_ - item - 1;
    for (std::size_t g = 0; g <= p_; ++g) {
      const bool fills = g < p_ && group_sizes[g] == 0;
      const std::size_t e = fills ? empty - 1 : empty;
      const std::uint64_t below = completions(left, e);
      if (rank < below) {
        group_of[item] = g;
        if (g < p_) ++group_sizes[g];
        empty = e;
        break;
      }
      rank -= below;
    }
  }
}

std::uint64_t GroupingIndexer::rank(std::span<const std::size_t> group_of) const {
  RELAP_ASSERT(group_of.size() == m_, "group_of span has the wrong size");
  std::vector<std::size_t> sizes(p_, 0);
  std::uint64_t rank = 0;
  std::size_t empty = p_;
  for (std::size_t item = 0; item < m_; ++item) {
    const std::size_t left = m_ - item - 1;
    const std::size_t chosen = group_of[item];
    for (std::size_t g = 0; g < chosen; ++g) {
      const bool fills = g < p_ && sizes[g] == 0;
      rank += completions(left, fills ? empty - 1 : empty);
    }
    if (chosen < p_) {
      if (sizes[chosen] == 0) --empty;
      ++sizes[chosen];
    }
  }
  return rank;
}

bool GroupingIndexer::next(std::span<std::size_t> group_of,
                           std::span<std::size_t> group_sizes) const {
  std::size_t empty = 0;
  for (std::size_t g = 0; g < p_; ++g) empty += group_sizes[g] == 0 ? 1 : 0;
  for (std::size_t item = m_; item-- > 0;) {
    const std::size_t current = group_of[item];
    if (current < p_) {
      if (--group_sizes[current] == 0) ++empty;
    }
    const std::size_t left = m_ - item - 1;
    for (std::size_t g = current + 1; g <= p_; ++g) {
      const bool fills = g < p_ && group_sizes[g] == 0;
      const std::size_t e = fills ? empty - 1 : empty;
      if (completions(left, e) == 0) continue;
      group_of[item] = g;
      if (g < p_) ++group_sizes[g];
      // Fill the suffix with its lexicographically smallest valid completion.
      std::size_t empties_left = e;
      for (std::size_t i = item + 1; i < m_; ++i) {
        const std::size_t r = m_ - i - 1;
        for (std::size_t gg = 0; gg <= p_; ++gg) {
          const bool f = gg < p_ && group_sizes[gg] == 0;
          const std::size_t ee = f ? empties_left - 1 : empties_left;
          if (completions(r, ee) == 0) continue;
          group_of[i] = gg;
          if (gg < p_) ++group_sizes[gg];
          empties_left = ee;
          break;
        }
      }
      return true;
    }
  }
  return false;
}

AssignmentIndexer::AssignmentIndexer(std::size_t length, std::size_t symbols)
    : length_(length), symbols_(symbols), count_(1) {
  RELAP_ASSERT(length >= 1, "assignment words need at least one position");
  RELAP_ASSERT(symbols >= 1, "assignment words need at least one symbol");
  for (std::size_t k = 0; k < length; ++k) {
    count_ = sat_mul(count_, static_cast<std::uint64_t>(symbols));
  }
}

void AssignmentIndexer::unrank(std::uint64_t rank, std::span<std::size_t> word) const {
  RELAP_ASSERT(rank < count_, "assignment rank out of range");
  for (std::size_t k = 0; k < length_; ++k) {
    word[k] = static_cast<std::size_t>(rank % symbols_);
    rank /= symbols_;
  }
}

std::uint64_t AssignmentIndexer::rank(std::span<const std::size_t> word) const {
  std::uint64_t value = 0;
  for (std::size_t k = length_; k-- > 0;) {
    value = value * symbols_ + static_cast<std::uint64_t>(word[k]);
  }
  return value;
}

bool AssignmentIndexer::next(std::span<std::size_t> word) const {
  for (std::size_t k = 0; k < length_; ++k) {
    if (word[k] + 1 < symbols_) {
      ++word[k];
      return true;
    }
    word[k] = 0;
  }
  return false;
}

InjectionIndexer::InjectionIndexer(std::size_t length, std::size_t symbols)
    : length_(length), symbols_(symbols), count_(1), weights_(length) {
  RELAP_ASSERT(length >= 1, "injections need at least one position");
  RELAP_ASSERT(length <= symbols, "injections need length <= symbols");
  // weights_[k] = fall(symbols-k-1, length-k-1), built right to left;
  // count_ = fall(symbols, length) extends the same product one more step.
  std::uint64_t fall = 1;
  for (std::size_t k = length; k-- > 0;) {
    weights_[k] = fall;
    fall = sat_mul(fall, static_cast<std::uint64_t>(symbols - k));
  }
  count_ = fall;
}

void InjectionIndexer::unrank(std::uint64_t rank, std::span<std::size_t> word,
                              std::vector<bool>& used) const {
  RELAP_ASSERT(rank < count_, "injection rank out of range");
  used.assign(symbols_, false);
  for (std::size_t k = 0; k < length_; ++k) {
    std::uint64_t choice = rank / weights_[k];
    rank %= weights_[k];
    for (std::size_t u = 0; u < symbols_; ++u) {
      if (used[u]) continue;
      if (choice == 0) {
        word[k] = u;
        used[u] = true;
        break;
      }
      --choice;
    }
  }
}

std::uint64_t InjectionIndexer::rank(std::span<const std::size_t> word) const {
  std::uint64_t value = 0;
  for (std::size_t k = 0; k < length_; ++k) {
    // The digit is word[k]'s position among the symbols unused by the prefix.
    std::uint64_t choice = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (word[j] < word[k]) ++choice;
    }
    value += (static_cast<std::uint64_t>(word[k]) - choice) * weights_[k];
  }
  return value;
}

bool InjectionIndexer::next(std::span<std::size_t> word, std::vector<bool>& used) const {
  for (std::size_t k = length_; k-- > 0;) {
    const std::size_t current = word[k];
    used[current] = false;
    for (std::size_t v = current + 1; v < symbols_; ++v) {
      if (used[v]) continue;
      word[k] = v;
      used[v] = true;
      // Fill the suffix with the smallest unused symbols, ascending.
      std::size_t next_free = 0;
      for (std::size_t j = k + 1; j < length_; ++j) {
        while (used[next_free]) ++next_free;
        word[j] = next_free;
        used[next_free] = true;
      }
      return true;
    }
  }
  return false;
}

}  // namespace relap::util
