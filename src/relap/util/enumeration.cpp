#include "relap/util/enumeration.hpp"

#include <algorithm>
#include <limits>

#include "relap/util/assert.hpp"

namespace relap::util {

namespace {

constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();

/// Saturating multiply for the counting helpers.
std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSaturated / b) return kSaturated;
  return a * b;
}

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  if (a > kSaturated - b) return kSaturated;
  return a + b;
}

bool compose_rec(std::size_t remaining, std::size_t parts_left, std::vector<std::size_t>& parts,
                 const std::function<bool(std::span<const std::size_t>)>& visit) {
  if (remaining == 0) return visit(parts);
  if (parts_left == 0) return true;  // dead branch, not an abort
  for (std::size_t take = 1; take <= remaining; ++take) {
    // The remaining stages must still fit: with parts_left-1 more parts each
    // of size >= 1 we can absorb anything, so no upper-bound prune is needed
    // beyond `take <= remaining`; but if this is the last allowed part it
    // must take everything.
    if (parts_left == 1 && take != remaining) continue;
    parts.push_back(take);
    const bool keep_going = compose_rec(remaining - take, parts_left - 1, parts, visit);
    parts.pop_back();
    if (!keep_going) return false;
  }
  return true;
}

bool grouping_rec(std::size_t item, std::size_t m, std::size_t p, std::vector<std::size_t>& group_of,
                  std::vector<std::size_t>& group_sizes, std::size_t empty_groups,
                  const std::function<bool(std::span<const std::size_t>)>& visit) {
  if (item == m) {
    if (empty_groups > 0) return true;  // dead branch
    return visit(group_of);
  }
  // Prune: every still-empty group needs at least one of the remaining items.
  if (empty_groups > m - item) return true;
  for (std::size_t g = 0; g <= p; ++g) {  // g == p means "unused"
    const bool fills_empty = g < p && group_sizes[g] == 0;
    group_of[item] = g;
    if (g < p) ++group_sizes[g];
    const bool keep_going =
        grouping_rec(item + 1, m, p, group_of, group_sizes,
                     fills_empty ? empty_groups - 1 : empty_groups, visit);
    if (g < p) --group_sizes[g];
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace

bool for_each_composition(std::size_t n, std::size_t max_parts,
                          const std::function<bool(std::span<const std::size_t>)>& visit) {
  RELAP_ASSERT(n >= 1, "composition of zero stages");
  RELAP_ASSERT(max_parts >= 1, "need at least one part");
  std::vector<std::size_t> parts;
  parts.reserve(std::min(n, max_parts));
  return compose_rec(n, std::min(n, max_parts), parts, visit);
}

std::uint64_t binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  // 128-bit intermediates: C(64, 32) fits in uint64 but its running products
  // do not. (__extension__ silences -Wpedantic for the GCC/Clang extension.)
  __extension__ typedef unsigned __int128 UWide;
  UWide result = 1;
  for (std::size_t i = 0; i < k; ++i) {
    result = result * static_cast<UWide>(n - i) / static_cast<UWide>(i + 1);
    if (result > static_cast<UWide>(kSaturated)) return kSaturated;
  }
  return static_cast<std::uint64_t>(result);
}

std::uint64_t count_compositions(std::size_t n, std::size_t max_parts) {
  std::uint64_t total = 0;
  for (std::size_t p = 1; p <= std::min(n, max_parts); ++p) {
    total = sat_add(total, binomial(n - 1, p - 1));
  }
  return total;
}

bool for_each_subset(std::size_t m, bool include_empty,
                     const std::function<bool(const std::vector<std::size_t>&)>& visit) {
  RELAP_ASSERT(m <= 63, "subset enumeration limited to 63 elements");
  std::vector<std::size_t> subset;
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = include_empty ? 0 : 1; mask < limit; ++mask) {
    subset.clear();
    for (std::size_t i = 0; i < m; ++i) {
      if ((mask >> i) & 1U) subset.push_back(i);
    }
    if (!visit(subset)) return false;
  }
  return true;
}

bool for_each_combination(std::size_t m, std::size_t k,
                          const std::function<bool(std::span<const std::size_t>)>& visit) {
  RELAP_ASSERT(k <= m, "combination size exceeds ground set");
  std::vector<std::size_t> comb(k);
  for (std::size_t i = 0; i < k; ++i) comb[i] = i;
  if (k == 0) return visit(comb);
  while (true) {
    if (!visit(comb)) return false;
    // Advance to next lexicographic combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (comb[i] != i + m - k) break;
      if (i == 0) return true;  // last combination visited
    }
    ++comb[i];
    for (std::size_t j = i + 1; j < k; ++j) comb[j] = comb[j - 1] + 1;
  }
}

bool for_each_grouping(std::size_t m, std::size_t p,
                       const std::function<bool(std::span<const std::size_t>)>& visit) {
  RELAP_ASSERT(p >= 1, "need at least one group");
  RELAP_ASSERT(m >= p, "cannot fill p groups with fewer than p items");
  std::vector<std::size_t> group_of(m, 0);
  std::vector<std::size_t> group_sizes(p, 0);
  return grouping_rec(0, m, p, group_of, group_sizes, p, visit);
}

std::uint64_t count_raw_groupings(std::size_t m, std::size_t p) {
  std::uint64_t result = 1;
  for (std::size_t i = 0; i < m; ++i) result = sat_mul(result, static_cast<std::uint64_t>(p + 1));
  return result;
}

std::uint64_t count_groupings(std::size_t m, std::size_t p) {
  // Inclusion-exclusion over which of the p groups stay empty:
  //   sum_{j=0}^{p} (-1)^j C(p, j) (p - j + 1)^m
  // computed with signed 128-bit arithmetic, saturating on overflow.
  // (__int128 is a GCC/Clang extension; __extension__ keeps -Wpedantic
  // quiet. It is exact far beyond any instance the enumerator could visit.)
  __extension__ typedef __int128 Wide;
  Wide total = 0;
  for (std::size_t j = 0; j <= p; ++j) {
    Wide term = static_cast<Wide>(binomial(p, j));
    for (std::size_t i = 0; i < m; ++i) term *= static_cast<Wide>(p - j + 1);
    total += (j % 2 == 0) ? term : -term;
  }
  if (total < 0) return 0;
  if (total > static_cast<Wide>(kSaturated)) return kSaturated;
  return static_cast<std::uint64_t>(total);
}

}  // namespace relap::util
