#pragma once

/// \file simd.hpp
/// Width-generic SIMD lane abstraction for the batched evaluation and
/// simulation kernels.
///
/// A "lane batch" is a fixed-width `W` bundle of doubles (`DoubleLanes`) or
/// uint64 words (`UintLanes`) with aligned storage. Each lane carries one
/// independent candidate/trial; ops are strictly *vertical* (elementwise),
/// never horizontal, so lane l's value stream is bit-identical to running
/// the scalar code on lane l alone. That is the whole bit-exactness
/// contract: IEEE-754 add/sub/mul/div/min/max/compare are deterministic per
/// element, and the build disables FP contraction (`-ffp-contract=off` in
/// CMakeLists.txt) so no fused multiply-adds can reassociate a Kahan update.
///
/// Dispatch is compile-time: every op is a generic fixed-trip-count loop
/// with an `if constexpr` AVX2 (4-double blocks) or NEON (2-double blocks)
/// fast path when the TU is compiled for that ISA. Defining
/// `RELAP_SIMD_FORCE_SCALAR` (CMake option of the same name) compiles the
/// portable fallback everywhere — CI builds both and the results must be
/// bit-identical, which the lane-invariance tests pin.
///
/// uint64 multiply and uint64->double conversion have no single AVX2
/// instruction, but both are specialized anyway: the low-64 product
/// decomposes exactly into three 32x32 `vpmuludq` partials, and the unit
/// conversion of a 53-bit value splits exactly into magic-number converts of
/// its low-32/high-21 halves. Keeping these in the SIMD domain matters more
/// than the op counts suggest — the splitmix lane mixer alternates multiplies
/// with xor-shifts, and a scalar multiply in the middle forces a GPR
/// round-trip per lane per step. Both forms are exact (no rounding anywhere),
/// so they are bit-identical to the generic loops by construction.
///
/// Adding a width: instantiate the kernels for the new `W` (see the explicit
/// instantiation lists in mapping_lanes.cpp / latency.cpp) and add it to the
/// drivers' dispatch switches. Adding an ISA: add an `if constexpr` block
/// per op below, guarded by a detection macro — the op must keep IEEE
/// semantics (no FMA, no reassociation) and the same NaN/tie behavior as
/// the generic loop, or the scalar-oracle tests will catch it.

#include <cstddef>
#include <cstdint>

#if !defined(RELAP_SIMD_FORCE_SCALAR) && defined(__AVX2__)
#define RELAP_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#elif !defined(RELAP_SIMD_FORCE_SCALAR) && defined(__aarch64__) && defined(__ARM_NEON)
#define RELAP_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace relap::util::simd {

/// Default lane width of the batched kernels; drivers accept `lane_width`
/// overrides of 1 / 4 / 8 and treat 0 as "use the default".
inline constexpr std::size_t kDefaultLaneWidth = 8;

/// Name of the ISA the lane ops were compiled for ("avx2", "neon" or
/// "scalar") — recorded in bench metadata.
[[nodiscard]] const char* isa_name();

/// Resolves a driver's `lane_width` option: 0 means the build default.
[[nodiscard]] constexpr std::size_t effective_lane_width(std::size_t requested) {
  return requested == 0 ? kDefaultLaneWidth : requested;
}

namespace detail {
constexpr std::size_t alignment_for(std::size_t width) {
  if (width % 4 == 0) return 32;
  if (width % 2 == 0) return 16;
  return 8;
}
}  // namespace detail

/// W doubles, one independent candidate/trial per lane.
template <std::size_t W>
struct DoubleLanes {
  alignas(detail::alignment_for(W)) double v[W];
};

/// W uint64 words: processor ids, hash states, or masks. A mask lane is
/// all-ones (selected) or all-zeros (rejected) — nothing in between.
template <std::size_t W>
struct UintLanes {
  alignas(detail::alignment_for(W)) std::uint64_t v[W];
};

template <std::size_t W>
[[nodiscard]] inline DoubleLanes<W> broadcast(double x) {
  DoubleLanes<W> out;
  for (std::size_t i = 0; i < W; ++i) out.v[i] = x;
  return out;
}

template <std::size_t W>
[[nodiscard]] inline UintLanes<W> broadcast_u(std::uint64_t x) {
  UintLanes<W> out;
  for (std::size_t i = 0; i < W; ++i) out.v[i] = x;
  return out;
}

/// Loads W contiguous doubles (no alignment requirement on `src`).
template <std::size_t W>
[[nodiscard]] inline DoubleLanes<W> load(const double* src) {
  DoubleLanes<W> out;
  for (std::size_t i = 0; i < W; ++i) out.v[i] = src[i];
  return out;
}

/// Loads W contiguous uint64 words.
template <std::size_t W>
[[nodiscard]] inline UintLanes<W> load_u(const std::uint64_t* src) {
  UintLanes<W> out;
  for (std::size_t i = 0; i < W; ++i) out.v[i] = src[i];
  return out;
}

#if defined(RELAP_SIMD_HAVE_AVX2)
#define RELAP_SIMD_DOUBLE_BINOP(name, expr, intrinsic)                               \
  template <std::size_t W>                                                           \
  [[nodiscard]] inline DoubleLanes<W> name(const DoubleLanes<W>& a,                  \
                                           const DoubleLanes<W>& b) {                \
    DoubleLanes<W> out;                                                              \
    if constexpr (W % 4 == 0) {                                                      \
      for (std::size_t i = 0; i < W; i += 4) {                                       \
        _mm256_store_pd(out.v + i,                                                   \
                        intrinsic(_mm256_load_pd(a.v + i), _mm256_load_pd(b.v + i))); \
      }                                                                              \
    } else {                                                                         \
      for (std::size_t i = 0; i < W; ++i) out.v[i] = (expr);                         \
    }                                                                                \
    return out;                                                                      \
  }
#elif defined(RELAP_SIMD_HAVE_NEON)
#define RELAP_SIMD_DOUBLE_BINOP(name, expr, intrinsic)                         \
  template <std::size_t W>                                                     \
  [[nodiscard]] inline DoubleLanes<W> name(const DoubleLanes<W>& a,            \
                                           const DoubleLanes<W>& b) {          \
    DoubleLanes<W> out;                                                        \
    if constexpr (W % 2 == 0) {                                                \
      for (std::size_t i = 0; i < W; i += 2) {                                 \
        vst1q_f64(out.v + i, intrinsic(vld1q_f64(a.v + i), vld1q_f64(b.v + i))); \
      }                                                                        \
    } else {                                                                   \
      for (std::size_t i = 0; i < W; ++i) out.v[i] = (expr);                   \
    }                                                                          \
    return out;                                                                \
  }
#else
#define RELAP_SIMD_DOUBLE_BINOP(name, expr, intrinsic)              \
  template <std::size_t W>                                          \
  [[nodiscard]] inline DoubleLanes<W> name(const DoubleLanes<W>& a, \
                                           const DoubleLanes<W>& b) { \
    DoubleLanes<W> out;                                             \
    for (std::size_t i = 0; i < W; ++i) out.v[i] = (expr);          \
    return out;                                                     \
  }
#endif

#if defined(RELAP_SIMD_HAVE_NEON)
RELAP_SIMD_DOUBLE_BINOP(add, a.v[i] + b.v[i], vaddq_f64)
RELAP_SIMD_DOUBLE_BINOP(sub, a.v[i] - b.v[i], vsubq_f64)
RELAP_SIMD_DOUBLE_BINOP(mul, a.v[i] * b.v[i], vmulq_f64)
RELAP_SIMD_DOUBLE_BINOP(div, a.v[i] / b.v[i], vdivq_f64)
#else
RELAP_SIMD_DOUBLE_BINOP(add, a.v[i] + b.v[i], _mm256_add_pd)
RELAP_SIMD_DOUBLE_BINOP(sub, a.v[i] - b.v[i], _mm256_sub_pd)
RELAP_SIMD_DOUBLE_BINOP(mul, a.v[i] * b.v[i], _mm256_mul_pd)
RELAP_SIMD_DOUBLE_BINOP(div, a.v[i] / b.v[i], _mm256_div_pd)
#endif

/// min(a, b): a where a < b, else b (ties and NaN pick b — the x86 MINPD /
/// C ternary semantics). `std::min(acc, x)` is mirrored by `min(x, acc)`.
#if defined(RELAP_SIMD_HAVE_NEON)
RELAP_SIMD_DOUBLE_BINOP(min, a.v[i] < b.v[i] ? a.v[i] : b.v[i], vminnmq_f64)
#else
RELAP_SIMD_DOUBLE_BINOP(min, a.v[i] < b.v[i] ? a.v[i] : b.v[i], _mm256_min_pd)
#endif

/// max(a, b): a where a > b, else b (ties and NaN pick b). `std::max(acc, x)`
/// is mirrored by `max(x, acc)`.
#if defined(RELAP_SIMD_HAVE_NEON)
RELAP_SIMD_DOUBLE_BINOP(max, a.v[i] > b.v[i] ? a.v[i] : b.v[i], vmaxnmq_f64)
#else
RELAP_SIMD_DOUBLE_BINOP(max, a.v[i] > b.v[i] ? a.v[i] : b.v[i], _mm256_max_pd)
#endif

#undef RELAP_SIMD_DOUBLE_BINOP

/// a < b as a mask (ordered, quiet: NaN compares false).
template <std::size_t W>
[[nodiscard]] inline UintLanes<W> less(const DoubleLanes<W>& a, const DoubleLanes<W>& b) {
  UintLanes<W> out;
#if defined(RELAP_SIMD_HAVE_AVX2)
  if constexpr (W % 4 == 0) {
    for (std::size_t i = 0; i < W; i += 4) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(out.v + i),
                         _mm256_castpd_si256(_mm256_cmp_pd(_mm256_load_pd(a.v + i),
                                                           _mm256_load_pd(b.v + i), _CMP_LT_OQ)));
    }
    return out;
  }
#elif defined(RELAP_SIMD_HAVE_NEON)
  if constexpr (W % 2 == 0) {
    for (std::size_t i = 0; i < W; i += 2) {
      vst1q_u64(out.v + i, vcltq_f64(vld1q_f64(a.v + i), vld1q_f64(b.v + i)));
    }
    return out;
  }
#endif
  for (std::size_t i = 0; i < W; ++i) {
    out.v[i] = a.v[i] < b.v[i] ? ~std::uint64_t{0} : std::uint64_t{0};
  }
  return out;
}

/// mask ? a : b per lane. Preconditions: each mask lane is all-ones or
/// all-zeros (as produced by `less` / the integer compares below).
template <std::size_t W>
[[nodiscard]] inline DoubleLanes<W> select(const UintLanes<W>& mask, const DoubleLanes<W>& a,
                                           const DoubleLanes<W>& b) {
  DoubleLanes<W> out;
#if defined(RELAP_SIMD_HAVE_AVX2)
  if constexpr (W % 4 == 0) {
    for (std::size_t i = 0; i < W; i += 4) {
      const __m256d mask_pd =
          _mm256_castsi256_pd(_mm256_load_si256(reinterpret_cast<const __m256i*>(mask.v + i)));
      _mm256_store_pd(out.v + i,
                      _mm256_blendv_pd(_mm256_load_pd(b.v + i), _mm256_load_pd(a.v + i), mask_pd));
    }
    return out;
  }
#elif defined(RELAP_SIMD_HAVE_NEON)
  if constexpr (W % 2 == 0) {
    for (std::size_t i = 0; i < W; i += 2) {
      vst1q_f64(out.v + i,
                vbslq_f64(vld1q_u64(mask.v + i), vld1q_f64(a.v + i), vld1q_f64(b.v + i)));
    }
    return out;
  }
#endif
  for (std::size_t i = 0; i < W; ++i) out.v[i] = mask.v[i] ? a.v[i] : b.v[i];
  return out;
}

// --- uint64 lanes: plain generic loops (see the file comment). -------------

template <std::size_t W>
[[nodiscard]] inline UintLanes<W> add_u(const UintLanes<W>& a, const UintLanes<W>& b) {
  UintLanes<W> out;
  for (std::size_t i = 0; i < W; ++i) out.v[i] = a.v[i] + b.v[i];
  return out;
}

/// Low 64 bits of the product (the wrap-around splitmix64 multiply).
/// AVX2 path: a*b mod 2^64 = a_lo*b_lo + ((a_lo*b_hi + a_hi*b_lo) << 32),
/// three `vpmuludq` 32x32->64 partials — exact, so identical to the scalar
/// wrap-around multiply.
template <std::size_t W>
[[nodiscard]] inline UintLanes<W> mul_u(const UintLanes<W>& a, const UintLanes<W>& b) {
  UintLanes<W> out;
#if defined(RELAP_SIMD_HAVE_AVX2)
  if constexpr (W % 4 == 0) {
    for (std::size_t i = 0; i < W; i += 4) {
      const __m256i va = _mm256_load_si256(reinterpret_cast<const __m256i*>(a.v + i));
      const __m256i vb = _mm256_load_si256(reinterpret_cast<const __m256i*>(b.v + i));
      const __m256i low = _mm256_mul_epu32(va, vb);
      const __m256i cross =
          _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(va, 32), vb),
                           _mm256_mul_epu32(va, _mm256_srli_epi64(vb, 32)));
      _mm256_store_si256(reinterpret_cast<__m256i*>(out.v + i),
                         _mm256_add_epi64(low, _mm256_slli_epi64(cross, 32)));
    }
    return out;
  }
#endif
  for (std::size_t i = 0; i < W; ++i) out.v[i] = a.v[i] * b.v[i];
  return out;
}

template <std::size_t W>
[[nodiscard]] inline UintLanes<W> xor_u(const UintLanes<W>& a, const UintLanes<W>& b) {
  UintLanes<W> out;
  for (std::size_t i = 0; i < W; ++i) out.v[i] = a.v[i] ^ b.v[i];
  return out;
}

template <std::size_t W>
[[nodiscard]] inline UintLanes<W> and_u(const UintLanes<W>& a, const UintLanes<W>& b) {
  UintLanes<W> out;
  for (std::size_t i = 0; i < W; ++i) out.v[i] = a.v[i] & b.v[i];
  return out;
}

template <std::size_t W>
[[nodiscard]] inline UintLanes<W> or_u(const UintLanes<W>& a, const UintLanes<W>& b) {
  UintLanes<W> out;
  for (std::size_t i = 0; i < W; ++i) out.v[i] = a.v[i] | b.v[i];
  return out;
}

template <int Shift, std::size_t W>
[[nodiscard]] inline UintLanes<W> shr_u(const UintLanes<W>& a) {
  UintLanes<W> out;
  for (std::size_t i = 0; i < W; ++i) out.v[i] = a.v[i] >> Shift;
  return out;
}

/// a < b (unsigned) as a mask. Used for the `replica < group_size` lane masks.
template <std::size_t W>
[[nodiscard]] inline UintLanes<W> less_u(const UintLanes<W>& a, const UintLanes<W>& b) {
  UintLanes<W> out;
  for (std::size_t i = 0; i < W; ++i) {
    out.v[i] = a.v[i] < b.v[i] ? ~std::uint64_t{0} : std::uint64_t{0};
  }
  return out;
}

/// a == b as a mask. Used for the "is this the last interval" lane masks.
template <std::size_t W>
[[nodiscard]] inline UintLanes<W> equal_u(const UintLanes<W>& a, const UintLanes<W>& b) {
  UintLanes<W> out;
  for (std::size_t i = 0; i < W; ++i) {
    out.v[i] = a.v[i] == b.v[i] ? ~std::uint64_t{0} : std::uint64_t{0};
  }
  return out;
}

/// a != b as a mask. Used for the boundary-transfer masks of the general
/// mapping kernel (no transfer when consecutive stages share a processor).
template <std::size_t W>
[[nodiscard]] inline UintLanes<W> not_equal_u(const UintLanes<W>& a, const UintLanes<W>& b) {
  UintLanes<W> out;
  for (std::size_t i = 0; i < W; ++i) {
    out.v[i] = a.v[i] != b.v[i] ? ~std::uint64_t{0} : std::uint64_t{0};
  }
  return out;
}

/// table[idx] per lane. Preconditions: every lane's index is in bounds —
/// including masked-out lanes, which is why the staging buffers keep stale
/// (but valid) ids instead of sentinels.
template <std::size_t W>
[[nodiscard]] inline DoubleLanes<W> gather(const double* table, const UintLanes<W>& idx) {
  DoubleLanes<W> out;
#if defined(RELAP_SIMD_HAVE_AVX2)
  // VGATHERQPD loads exactly table[idx] per lane — same IEEE doubles as the
  // scalar loop, so bit-exactness is preserved by construction.
  if constexpr (W % 4 == 0) {
    for (std::size_t i = 0; i < W; i += 4) {
      const __m256i vidx = _mm256_load_si256(reinterpret_cast<const __m256i*>(idx.v + i));
      _mm256_store_pd(out.v + i, _mm256_i64gather_pd(table, vidx, 8));
    }
    return out;
  }
#endif
  for (std::size_t i = 0; i < W; ++i) out.v[i] = table[idx.v[i]];
  return out;
}

/// table[row * stride + col] per lane (the flat bandwidth-matrix gather).
template <std::size_t W>
[[nodiscard]] inline DoubleLanes<W> gather2(const double* table, const UintLanes<W>& row,
                                            const UintLanes<W>& col, std::uint64_t stride) {
  UintLanes<W> idx;
  for (std::size_t i = 0; i < W; ++i) idx.v[i] = row.v[i] * stride + col.v[i];
  return gather<W>(table, idx);
}

/// Number of set lanes in a mask batch. Preconditions: every lane is
/// all-ones or all-zeros. The AVX2 path folds each 4-lane block to a sign
/// bitmask and popcounts it; both paths count the same lanes, so the result
/// is width- and ISA-invariant.
template <std::size_t W>
[[nodiscard]] inline std::size_t count_set_lanes(const UintLanes<W>& mask) {
#if defined(RELAP_SIMD_HAVE_AVX2)
  if constexpr (W % 4 == 0) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < W; i += 4) {
      const __m256d block =
          _mm256_castsi256_pd(_mm256_load_si256(reinterpret_cast<const __m256i*>(mask.v + i)));
      n += static_cast<std::size_t>(__builtin_popcount(
          static_cast<unsigned>(_mm256_movemask_pd(block))));
    }
    return n;
  }
#endif
  std::size_t n = 0;
  for (std::size_t i = 0; i < W; ++i) n += mask.v[i] & 1;
  return n;
}

/// static_cast<double>(z) per lane — exact for the small counts (group
/// sizes) it is used on, hence bit-identical to the scalar cast.
template <std::size_t W>
[[nodiscard]] inline DoubleLanes<W> to_double_lanes(const UintLanes<W>& z) {
  DoubleLanes<W> out;
  for (std::size_t i = 0; i < W; ++i) out.v[i] = static_cast<double>(z.v[i]);
  return out;
}

/// (z >> 11) * 2^-53 per lane: the canonical uint64 -> [0,1) conversion,
/// bit-identical to `Rng::uniform`'s scalar form.
/// AVX2 path (no packed uint64->double before AVX-512): x = z >> 11 has 53
/// bits, so split x = hi*2^32 + lo with lo < 2^32, hi < 2^21. OR-ing a value
/// below 2^52 into the mantissa of the double 2^52 and subtracting 2^52
/// converts it exactly; hi*2^32 (a multiple of 2^32 below 2^53) and the
/// recombining add (disjoint bit ranges, sum < 2^53) are also exact, as is
/// the final power-of-two scale — every step rounds nothing, so the result
/// equals the scalar cast-and-scale bit for bit.
template <std::size_t W>
[[nodiscard]] inline DoubleLanes<W> to_unit_double_lanes(const UintLanes<W>& z) {
  DoubleLanes<W> out;
#if defined(RELAP_SIMD_HAVE_AVX2)
  if constexpr (W % 4 == 0) {
    const __m256i magic_bits = _mm256_set1_epi64x(0x4330000000000000LL);  // double 2^52
    const __m256d magic = _mm256_set1_pd(0x1.0p52);
    const __m256i low32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
    for (std::size_t i = 0; i < W; i += 4) {
      const __m256i x =
          _mm256_srli_epi64(_mm256_load_si256(reinterpret_cast<const __m256i*>(z.v + i)), 11);
      const __m256d lo = _mm256_sub_pd(
          _mm256_castsi256_pd(_mm256_or_si256(_mm256_and_si256(x, low32), magic_bits)), magic);
      const __m256d hi = _mm256_sub_pd(
          _mm256_castsi256_pd(_mm256_or_si256(_mm256_srli_epi64(x, 32), magic_bits)), magic);
      const __m256d value = _mm256_add_pd(_mm256_mul_pd(hi, _mm256_set1_pd(0x1.0p32)), lo);
      _mm256_store_pd(out.v + i, _mm256_mul_pd(value, _mm256_set1_pd(0x1.0p-53)));
    }
    return out;
  }
#endif
  for (std::size_t i = 0; i < W; ++i) {
    out.v[i] = static_cast<double>(z.v[i] >> 11) * 0x1.0p-53;
  }
  return out;
}

/// W independent Kahan accumulators, one per lane. `add` applies the exact
/// scalar `util::KahanSum::add` update to every lane; `add_masked` applies
/// it only where the mask is set, leaving rejected lanes' sum *and*
/// compensation untouched (Kahan add of 0 is not the identity when the
/// compensation is nonzero, so masking must select both words).
template <std::size_t W>
class KahanLanes {
 public:
  KahanLanes() : sum_(broadcast<W>(0.0)), compensation_(broadcast<W>(0.0)) {}

  void add(const DoubleLanes<W>& x) {
    const DoubleLanes<W> y = sub(x, compensation_);
    const DoubleLanes<W> t = simd::add(sum_, y);
    compensation_ = sub(sub(t, sum_), y);
    sum_ = t;
  }

  void add_masked(const DoubleLanes<W>& x, const UintLanes<W>& mask) {
    const DoubleLanes<W> y = sub(x, compensation_);
    const DoubleLanes<W> t = simd::add(sum_, y);
    compensation_ = select(mask, sub(sub(t, sum_), y), compensation_);
    sum_ = select(mask, t, sum_);
  }

  [[nodiscard]] const DoubleLanes<W>& value() const { return sum_; }

 private:
  DoubleLanes<W> sum_;
  DoubleLanes<W> compensation_;
};

}  // namespace relap::util::simd
